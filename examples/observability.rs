//! The observability stack end to end: run mixed traffic through the
//! service with tracing and the solver flight recorder on, print one
//! request's span tree, rank the slowest solves from the flight recorder,
//! and dump the whole hub as JSON.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p qsp-examples --bin observability
//! ```

use std::time::Duration;

use qsp_core::BatchOptions;
use qsp_serve::{
    ObsOptions, Response, SchedulerConfig, ServiceConfig, Shutdown, SpanKind, SynthesisRequest,
    SynthesisService,
};
use qsp_state::generators::{self, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small service with the full observability surface on: every request
    // head-sampled into the trace ring, every fresh solve filed in the
    // flight recorder, cache probes/evictions timed into histograms.
    let service = SynthesisService::start(
        ServiceConfig::default()
            .with_queue_capacity(64)
            .with_scheduler(
                SchedulerConfig::default()
                    .with_max_batch(4)
                    .with_max_wait(Duration::from_millis(1))
                    .with_workers(2),
            )
            .with_batch(
                BatchOptions::default().with_obs(
                    ObsOptions::default()
                        .with_tracing(true)
                        .with_ring_capacity(1024)
                        .with_flight(true)
                        .with_timing_detail(true),
                ),
            ),
    );

    // Mixed traffic with repeats: the duplicate GHZ rides the cache or an
    // in-flight attach, the dense target gives the flight recorder a real
    // A* search to narrate.
    let targets = [
        ("ghz(6)", generators::ghz(6)?),
        ("dicke(5,2)", generators::dicke(5, 2)?),
        ("ghz(6) again", generators::ghz(6)?),
        ("w(5)", generators::w_state(5)?),
        (
            "random sparse(8)",
            Workload::RandomSparse { n: 8, seed: 7 }.instantiate()?,
        ),
        (
            "random dense(4)",
            Workload::RandomDense { n: 4, seed: 11 }.instantiate()?,
        ),
    ];
    let mut handles = Vec::new();
    for (label, target) in &targets {
        let submit = service.submit(SynthesisRequest::new(target.clone()));
        handles.push((*label, submit.handle().expect("queue sized for the mix")));
    }

    // Every completed report carries its span tree: the six pipeline stages
    // laid end to end, summing exactly to the request's end-to-end latency.
    println!("== per-request span trees ==");
    for (label, handle) in handles {
        let Response::Completed(report) = handle.wait() else {
            panic!("{label}: request did not complete");
        };
        let trace = report.trace.as_ref().expect("served reports carry traces");
        println!(
            "{label}: {} CNOTs, trace {} ({:.2} ms end to end)",
            report.cnot_cost,
            trace.id.as_u64(),
            report.timings.total.as_secs_f64() * 1e3,
        );
        for span in &trace.spans {
            let micros = span.duration.as_secs_f64() * 1e6;
            let bar = "#".repeat(1 + (micros.log10().max(0.0) * 8.0) as usize);
            println!("    {:>12}  {micros:>10.1} us  {bar}", span.kind.name());
        }
        // The queue-wait share is one subtraction away.
        if let Some(wait) = trace.duration_of(SpanKind::QueueWait) {
            let share = wait.as_secs_f64() / report.timings.total.as_secs_f64().max(1e-12);
            println!("    (queue wait was {:.0}% of the latency)", share * 100.0);
        }
    }

    // The flight recorder ranks the solves that actually cost something.
    println!("\n== top 5 slowest solves (flight recorder) ==");
    let flight = service.engine().obs().flight();
    for record in flight.top_slowest(5) {
        println!(
            "{:>10.2} ms  {}  expanded {} nodes (frontier peak {}), {} incumbent update(s){}",
            record.duration.as_secs_f64() * 1e3,
            record.label,
            record.nodes_expanded,
            record.frontier_high_water,
            record.incumbent_updates,
            match record.cancellation {
                Some(cause) => format!(", cancelled: {}", cause.name()),
                None => String::new(),
            },
        );
    }

    // One snapshot carries everything — metrics, sampled spans, flights —
    // as plain JSON for dashboards or offline diffing.
    service.shutdown(Shutdown::Drain);
    let snapshot = service.obs_snapshot();
    println!(
        "\n== obs snapshot: {} metrics, {} ring spans, {} flight records ==",
        snapshot.metrics.samples.len(),
        snapshot.spans.len(),
        snapshot.flights.len(),
    );
    let json = snapshot.to_json_string();
    println!("snapshot JSON is {} bytes; a taste:", json.len());
    for sample in &snapshot.metrics.samples {
        if sample.name.starts_with("serve.") {
            println!("    {}", sample.to_json().to_json());
        }
    }
    Ok(())
}
