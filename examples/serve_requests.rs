//! The synthesis service end to end: submit typed requests with deadlines
//! and priorities, watch dedup and micro-batching do their thing, read the
//! provenance off every report and the stats off the service.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p qsp-examples --bin serve_requests
//! ```

use std::time::{Duration, Instant};

use qsp_serve::{
    Provenance, Response, SchedulerConfig, ServiceConfig, Shutdown, SynthesisRequest,
    SynthesisService,
};
use qsp_state::generators::{self, Workload};

fn provenance_label(provenance: &Provenance) -> &'static str {
    match provenance {
        Provenance::Solved => "fresh solve",
        Provenance::CacheHit { .. } => "cache hit",
        Provenance::DedupAttach { .. } => "in-flight dedup attach",
        Provenance::ReconstructedFromBatchRep { .. } => "batch-rep reconstruction",
        _ => "other",
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small service: 2 workers, micro-batches of up to 8 requests drained
    // after at most 2 ms of batching delay, a queue bounded at 64.
    let service = SynthesisService::start(
        ServiceConfig::default()
            .with_queue_capacity(64)
            .with_scheduler(
                SchedulerConfig::default()
                    .with_max_batch(8)
                    .with_max_wait(Duration::from_millis(2))
                    .with_workers(2),
            ),
    );

    // Mixed traffic with repeats: GHZ twice, a Dicke state, a W state and a
    // random sparse target. The duplicate GHZ never reaches the solver — its
    // report's provenance shows the in-flight attach or cache hit.
    let targets = [
        ("ghz(6)", generators::ghz(6)?),
        ("dicke(5,2)", generators::dicke(5, 2)?),
        ("ghz(6) again", generators::ghz(6)?),
        ("w(5)", generators::w_state(5)?),
        (
            "random sparse(8)",
            Workload::RandomSparse { n: 8, seed: 7 }.instantiate()?,
        ),
    ];
    let mut handles = Vec::new();
    for (i, (label, target)) in targets.iter().enumerate() {
        // Every request gets a 10 s deadline (an expired request would
        // complete with `Response::Timeout` without being solved) and a
        // priority that breaks deadline ties in the drain order.
        let request = SynthesisRequest::new(target.clone())
            .with_deadline(Instant::now() + Duration::from_secs(10))
            .with_priority((targets.len() - i) as u8);
        match service.submit(request) {
            qsp_serve::Submit::Accepted(handle) => handles.push((label, handle)),
            qsp_serve::Submit::Rejected { reason } => {
                println!("{label}: rejected ({reason:?})")
            }
        }
    }

    for (label, handle) in &handles {
        match handle.wait() {
            Response::Completed(report) => println!(
                "{label:>18}: {} CNOTs, {} gates — {} in {:.2} ms",
                report.cnot_cost,
                report.circuit.len(),
                provenance_label(&report.provenance),
                report.timings.total.as_secs_f64() * 1e3,
            ),
            other => println!("{label:>18}: {other:?}"),
        }
    }

    let stats = service.shutdown(Shutdown::Drain);
    println!(
        "\nsubmitted {} | completed {} | solver runs {} | deduped {} | cache hits {}",
        stats.submitted, stats.completed, stats.solver_runs, stats.deduped, stats.cache_hits
    );
    println!(
        "queue wait p95 {:?} | end-to-end p95 {:?} | queue high-water {}",
        stats.queue_wait.percentile(0.95),
        stats.end_to_end.percentile(0.95),
        stats.queue_high_water
    );
    println!("\nstats as JSON:\n{}", stats.to_json().to_json_pretty());
    Ok(())
}
