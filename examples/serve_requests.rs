//! The synthesis service end to end: submit concurrent requests with
//! deadlines, watch dedup and micro-batching do their thing, read the stats.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p qsp-examples --bin serve_requests
//! ```

use std::time::{Duration, Instant};

use qsp_serve::{Response, SchedulerConfig, ServiceConfig, Shutdown, SynthesisService};
use qsp_state::generators::{self, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small service: 2 workers, micro-batches of up to 8 requests drained
    // after at most 2 ms of batching delay, a queue bounded at 64.
    let service = SynthesisService::start(ServiceConfig {
        queue_capacity: 64,
        scheduler: SchedulerConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            workers: 2,
        },
        ..ServiceConfig::default()
    });

    // Mixed traffic with repeats: GHZ twice, a Dicke state, a W state and a
    // random sparse target. The duplicate GHZ never reaches the solver — it
    // attaches to the in-flight solve or hits the cache.
    let targets = vec![
        ("ghz(6)", generators::ghz(6)?),
        ("dicke(5,2)", generators::dicke(5, 2)?),
        ("ghz(6) again", generators::ghz(6)?),
        ("w(5)", generators::w_state(5)?),
        (
            "random sparse(8)",
            Workload::RandomSparse { n: 8, seed: 7 }.instantiate()?,
        ),
    ];
    let mut handles = Vec::new();
    for (label, target) in &targets {
        // Every request gets a 10 s deadline; an expired request would
        // complete with `Response::Timeout` without being solved.
        let deadline = Some(Instant::now() + Duration::from_secs(10));
        match service.submit(target.clone(), deadline) {
            qsp_serve::Submit::Accepted(handle) => handles.push((label, handle)),
            qsp_serve::Submit::Rejected { queue_full } => {
                println!("{label}: rejected (queue_full = {queue_full})")
            }
        }
    }

    for (label, handle) in &handles {
        match handle.wait() {
            Response::Completed(circuit) => println!(
                "{label:>18}: {} CNOTs, {} gates",
                circuit.cnot_cost(),
                circuit.len()
            ),
            other => println!("{label:>18}: {other:?}"),
        }
    }

    let stats = service.shutdown(Shutdown::Drain);
    println!(
        "\nsubmitted {} | completed {} | solver runs {} | deduped {} | cache hits {}",
        stats.submitted, stats.completed, stats.solver_runs, stats.deduped, stats.cache_hits
    );
    println!(
        "queue wait p95 {:?} | end-to-end p95 {:?} | queue high-water {}",
        stats.queue_wait.percentile(0.95),
        stats.end_to_end.percentile(0.95),
        stats.queue_high_water
    );
    println!("\nstats as JSON:\n{}", stats.to_json().to_json_pretty());
    Ok(())
}
