//! The motivating example of the paper (Sec. III, Figures 1–3): the same
//! 3-qubit state prepared with qubit reduction (6 CNOTs), cardinality
//! reduction (7 CNOTs) and exact synthesis (2 CNOTs).
//!
//! Run with `cargo run -p qsp-examples --bin motivating_example`.

use qsp_baselines::{CardinalityReduction, QubitReduction, StatePreparator};
use qsp_core::QspWorkflow;
use qsp_sim::verify_preparation;
use qsp_state::{BasisIndex, SparseState};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target = SparseState::uniform_superposition(
        3,
        [0b000u64, 0b011, 0b101, 0b110].map(BasisIndex::new),
    )?;
    println!("target: {target}\n");

    let methods: Vec<(&str, Box<dyn StatePreparator>)> = vec![
        (
            "qubit reduction (Fig. 1, paper: 6 CNOTs)",
            Box::new(QubitReduction::new()),
        ),
        (
            "cardinality reduction (Fig. 2, paper: 7 CNOTs)",
            Box::new(CardinalityReduction::new()),
        ),
        (
            "exact synthesis (Fig. 3, paper: 2 CNOTs)",
            Box::new(QspWorkflow::new()),
        ),
    ];

    for (label, method) in methods {
        let circuit = method.prepare_sparse(&target)?;
        let report = verify_preparation(&circuit, &target)?;
        println!(
            "{label:55}  ->  {:2} CNOTs, {:2} gates, fidelity {:.6}",
            circuit.cnot_cost(),
            circuit.len(),
            report.fidelity
        );
        assert!(report.is_correct(), "{label} produced an incorrect circuit");
    }

    println!(
        "\nthe exact formulation explores state transitions without the structural\n\
         constraints of the heuristics, which is how it reaches the 2-CNOT solution\n\
         of Fig. 3 that neither reduction flow can represent."
    );
    Ok(())
}
