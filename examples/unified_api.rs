//! The unified `SynthesisRequest` / `SynthesisReport` API, end to end: one
//! typed request model accepted by the workflow, the batch engine and the
//! synthesis service, with per-request solver overrides and provenance-rich
//! outcomes.
//!
//! Run with `cargo run --release -p qsp-examples --bin unified_api`.

use std::time::{Duration, Instant};

use qsp_core::{
    BatchSynthesizer, CachePolicy, Provenance, QspWorkflow, SearchStrategy, SynthesisReport,
    SynthesisRequest, Synthesizer,
};
use qsp_serve::{Response, SchedulerConfig, ServiceConfig, Shutdown, SynthesisService};
use qsp_state::{generators, SparseState};

fn describe(label: &str, report: &SynthesisReport) {
    let how = match &report.provenance {
        Provenance::Solved => "fresh solve",
        Provenance::CacheHit { .. } => "cache hit",
        Provenance::ReconstructedFromBatchRep { .. } => "batch-rep reconstruction",
        Provenance::DedupAttach { .. } => "in-flight dedup attach",
        _ => "other",
    };
    println!(
        "{label:<34} {:>2} CNOTs via {how:<28} ({:>7.3} ms total, fingerprint {:#018x})",
        report.cnot_cost,
        report.timings.total.as_secs_f64() * 1e3,
        report.resolved.fingerprint,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ----- One request model, any synthesizer ---------------------------
    // A request pairs a target with per-request options; anything unset
    // inherits the synthesizer's own configuration.
    let dicke = generators::dicke(4, 2)?;
    let request = SynthesisRequest::new(dicke.clone());

    // The trait seam: the same function drives any layer.
    fn solve<T: Synthesizer<SparseState>>(
        s: &T,
        r: &SynthesisRequest<SparseState>,
    ) -> SynthesisReport {
        s.synthesize(r).expect("request solves")
    }

    let workflow = QspWorkflow::new();
    let engine = BatchSynthesizer::new();
    describe("workflow", &solve(&workflow, &request));
    describe("batch engine (cold cache)", &solve(&engine, &request));
    describe("batch engine (warm cache)", &solve(&engine, &request));

    // ----- Per-request overrides are dedup-sound ------------------------
    // Cost-relevant overrides (here: the approximate PU(2) compression)
    // fork the request into its own fingerprinted class: it can never be
    // served from the default-config cache entry, so its (larger) cost is
    // honest. Cost-neutral overrides (the portfolio strategy) share the
    // class and hit the warm cache.
    let compressed = solve(
        &engine,
        &SynthesisRequest::new(dicke.clone()).with_permutation_compression(true),
    );
    describe("per-request compression ablation", &compressed);
    let portfolio = solve(
        &engine,
        &SynthesisRequest::new(dicke.clone())
            .with_strategy(SearchStrategy::Portfolio { workers: 2 }),
    );
    describe("portfolio strategy (cost-neutral)", &portfolio);

    // ----- The serve layer speaks the same contract ---------------------
    let service = SynthesisService::start(
        ServiceConfig::default()
            .with_queue_capacity(16)
            .with_scheduler(
                SchedulerConfig::default()
                    .with_max_batch(4)
                    .with_max_wait(Duration::from_millis(1))
                    .with_workers(2),
            ),
    );
    let served = service
        .submit(
            SynthesisRequest::new(generators::ghz(6)?)
                .with_deadline(Instant::now() + Duration::from_secs(10))
                .with_priority(5)
                .with_cache_policy(CachePolicy::Use),
        )
        .handle()
        .expect("accepted");
    match served.wait() {
        Response::Completed(report) => describe("service (deadline + priority)", &report),
        other => println!("service request resolved as {other:?}"),
    }
    let stats = service.shutdown(Shutdown::Drain);
    println!(
        "\nservice counters: submitted {} | completed {} | solver runs {}",
        stats.submitted, stats.completed, stats.solver_runs
    );
    Ok(())
}
