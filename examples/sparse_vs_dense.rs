//! Sparse vs dense random states (the Table V workloads): how the workflow
//! picks its divide-and-conquer strategy (Fig. 5) and how it compares with
//! the specialized baselines in each regime.
//!
//! Run with `cargo run --release -p qsp-examples --bin sparse_vs_dense`.

use qsp_baselines::{CardinalityReduction, QubitReduction, StatePreparator};
use qsp_core::QspWorkflow;
use qsp_sim::verify_preparation;
use qsp_state::generators::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>8} {:>3} {:>6} {:>8} {:>8} {:>8} {:>10}",
        "regime", "n", "m", "m-flow", "n-flow", "ours", "verified"
    );
    for n in [6usize, 8, 10] {
        for (regime, workload) in [
            ("sparse", Workload::RandomSparse { n, seed: 7 }),
            ("dense", Workload::RandomDense { n, seed: 7 }),
        ] {
            let target = workload.instantiate()?;
            let mflow = CardinalityReduction::new().prepare(&target)?;
            let nflow = QubitReduction::new().prepare(&target)?;
            let ours = QspWorkflow::new().prepare(&target)?;
            let verified = verify_preparation(&ours, &target)?.is_correct();
            println!(
                "{regime:>8} {n:>3} {:>6} {:>8} {:>8} {:>8} {:>10}",
                target.cardinality(),
                mflow.cnot_cost(),
                nflow.cnot_cost(),
                ours.cnot_cost(),
                if verified { "yes" } else { "NO" }
            );
        }
    }
    println!(
        "\nthe workflow (Fig. 5) reduces sparse states with cardinality reduction and\n\
         dense states with qubit reduction before running exact synthesis, so it\n\
         tracks the better baseline in each regime and improves on it."
    );
    Ok(())
}
