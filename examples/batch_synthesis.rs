//! Batch synthesis: prepare a whole fleet of target states in one call,
//! letting the engine parallelize across cores and solve each Sec. V-B
//! equivalence class only once.
//!
//! Run with `cargo run --release -p qsp-examples --bin batch_synthesis`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qsp_core::batch::{BatchSynthesizer, DedupPolicy};
use qsp_sim::verify_preparation;
use qsp_state::{generators, SparseState};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mixed workload: named states, random sparse states, and a few
    // duplicates/permuted variants the deduplication should collapse.
    let mut rng = StdRng::seed_from_u64(2024);
    let mut targets: Vec<SparseState> = vec![
        generators::ghz(6)?,
        generators::w_state(5)?,
        generators::dicke(4, 2)?,
        generators::ghz(6)?, // exact duplicate
        generators::ghz(6)?.permute_qubits(&[5, 4, 3, 2, 1, 0])?, // permuted variant
    ];
    for _ in 0..10 {
        targets.push(generators::random_sparse_state(8, &mut rng)?);
    }

    let engine = BatchSynthesizer::new();
    assert_eq!(engine.options().dedup, DedupPolicy::Canonical);
    let outcome = engine.synthesize_batch(&targets);

    println!(
        "batch of {} targets: {} solver runs, {} cache hits, {} errors in {:.2} ms\n",
        outcome.stats.targets,
        outcome.stats.solver_runs,
        outcome.stats.cache_hits,
        outcome.stats.errors,
        outcome.stats.elapsed.as_secs_f64() * 1e3,
    );

    for (target, result) in targets.iter().zip(&outcome.results) {
        let circuit = result.clone()?;
        let report = verify_preparation(&circuit, target)?;
        println!(
            "{:>2} qubits, cardinality {:>3} -> {:>3} CNOTs (verified: {})",
            target.num_qubits(),
            target.cardinality(),
            circuit.cnot_cost(),
            report.is_correct(),
        );
    }

    // Submitting the same workload again is served entirely from the cache.
    let again = engine.synthesize_batch(&targets);
    println!(
        "\nresubmission: {} solver runs, {} cache hits",
        again.stats.solver_runs, again.stats.cache_hits
    );
    Ok(())
}
