//! Batch synthesis: prepare a whole fleet of target states in one call,
//! letting the engine parallelize across cores and solve each Sec. V-B
//! equivalence class only once — and read off each report's provenance to
//! see *how* every circuit was produced.
//!
//! Run with `cargo run --release -p qsp-examples --bin batch_synthesis`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qsp_core::batch::{BatchSynthesizer, DedupPolicy};
use qsp_core::{Provenance, SynthesisRequest};
use qsp_sim::verify_preparation;
use qsp_state::{generators, SparseState};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mixed workload: named states, random sparse states, and a few
    // duplicates/permuted variants the deduplication should collapse.
    let mut rng = StdRng::seed_from_u64(2024);
    let mut targets: Vec<SparseState> = vec![
        generators::ghz(6)?,
        generators::w_state(5)?,
        generators::dicke(4, 2)?,
        generators::ghz(6)?, // exact duplicate
        generators::ghz(6)?.permute_qubits(&[5, 4, 3, 2, 1, 0])?, // permuted variant
    ];
    for _ in 0..10 {
        targets.push(generators::random_sparse_state(8, &mut rng)?);
    }
    let requests: Vec<SynthesisRequest<SparseState>> = targets
        .iter()
        .map(|t| SynthesisRequest::new(t.clone()))
        .collect();

    let engine = BatchSynthesizer::new();
    assert_eq!(engine.options().dedup, DedupPolicy::Canonical);
    let outcome = engine.synthesize_requests(&requests);

    println!(
        "batch of {} requests: {} solver runs, {} cache hits, {} errors in {:.2} ms\n",
        outcome.stats.targets,
        outcome.stats.solver_runs,
        outcome.stats.cache_hits,
        outcome.stats.errors,
        outcome.stats.elapsed.as_secs_f64() * 1e3,
    );

    for (target, report) in targets.iter().zip(&outcome.reports) {
        let report = report.as_ref().map_err(|e| e.clone())?;
        let how = match &report.provenance {
            Provenance::Solved => "fresh solve",
            Provenance::ReconstructedFromBatchRep { .. } => "batch-rep reconstruction",
            Provenance::CacheHit { .. } => "cache hit",
            Provenance::DedupAttach { .. } => "dedup attach",
            _ => "other",
        };
        let verified = verify_preparation(&report.circuit, target)?;
        println!(
            "{:>2} qubits, cardinality {:>3} -> {:>3} CNOTs via {how:<24} (verified: {})",
            target.num_qubits(),
            target.cardinality(),
            report.cnot_cost,
            verified.is_correct(),
        );
    }

    // Submitting the same workload again is served entirely from the cache.
    let again = engine.synthesize_requests(&requests);
    println!(
        "\nresubmission: {} solver runs, {} cache hits",
        again.stats.solver_runs, again.stats.cache_hits
    );
    Ok(())
}
