//! The wire protocol end to end: handshake, pipelined requests, per-tenant
//! throttling and deadline timeouts — against an in-process server, so the
//! example is self-contained.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p qsp-examples --bin wire_client
//! ```

use std::sync::Arc;
use std::time::Duration;

use qsp_serve::{
    SchedulerConfig, ServiceConfig, Shutdown, SynthesisService, TenantConfig, TenantPolicy,
};
use qsp_state::generators;
use qsp_wire::{ServerFrame, WireClient, WireConfig, WireServer};

fn frame_label(frame: &ServerFrame) -> String {
    match frame {
        ServerFrame::Report {
            id,
            cnot_cost,
            provenance,
            total_ms,
            ..
        } => format!("request {id}: {cnot_cost} CNOTs ({provenance}, {total_ms:.2} ms)"),
        ServerFrame::Rejected { id, reason } => format!("request {id}: rejected ({reason})"),
        ServerFrame::Timeout { id } => format!("request {id}: deadline expired"),
        ServerFrame::Cancelled { id } => format!("request {id}: cancelled"),
        ServerFrame::Failed { id, message, .. } => format!("request {id}: failed ({message})"),
        other => format!("{other:?}"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An in-process server: tenant `burst` may send 2 requests back to back
    // and then refills at 1 token/s — flooding it demonstrates typed
    // throttling over the wire.
    let service = Arc::new(SynthesisService::start(
        ServiceConfig::default()
            .with_queue_capacity(64)
            .with_scheduler(
                SchedulerConfig::default()
                    .with_max_batch(8)
                    .with_max_wait(Duration::from_millis(2))
                    .with_workers(2),
            )
            .with_tenants(
                TenantPolicy::new().with_tenant(TenantConfig::new("burst").with_rate(1.0, 2.0)),
            ),
    ));
    let mut server = WireServer::bind("127.0.0.1:0", Arc::clone(&service), WireConfig::new())?;
    let addr = server.local_addr();
    println!("in-process wire server on {addr}");

    // 1. Handshake: the hello carries the tenant name, the ack echoes what
    //    the server resolved it to and advertises the frame-size bound.
    let mut client = WireClient::connect(addr, Some("burst"))?;
    let handshake = client.handshake();
    println!(
        "handshake: v{} as tenant `{}`, frames up to {} bytes",
        handshake.version, handshake.tenant, handshake.max_frame
    );

    // 2. Pipelining: all requests go out before any response is read; the
    //    server settles each as it finishes and the id correlates them.
    let targets = [
        generators::ghz(5)?,
        generators::w_state(4)?,
        generators::dicke(4, 2)?,
    ];
    println!("\npipelined burst of {} requests:", targets.len());
    let mut pending = 0;
    for target in &targets {
        client.send_request(target, None, None)?;
        pending += 1;
    }
    // The burst allowance is 2, so the third request of the flood comes
    // back `rejected (throttled)` while the first two complete.
    for _ in 0..pending {
        println!("  {}", frame_label(&client.recv()?));
    }

    // 3. Deadline timeout: a request whose deadline has already passed is
    //    answered with a timeout frame and never reaches the solver. Sent
    //    from a second, unthrottled connection (the default tenant) so the
    //    drained `burst` bucket doesn't throttle it first.
    println!("\nzero-deadline request (default tenant):");
    let mut anonymous = WireClient::connect(addr, None)?;
    let frame = anonymous.call(&generators::ghz(4)?, Some(0), None)?;
    println!("  {}", frame_label(&frame));

    server.shutdown();
    let stats = service.shutdown(Shutdown::Drain);
    println!(
        "\nservice stats: submitted={} completed={} throttled={} expired={}",
        stats.submitted, stats.completed, stats.throttled, stats.expired
    );
    Ok(())
}
