//! Quickstart: synthesize a CNOT-optimal preparation circuit for a small
//! state, verify it with the simulator and export it as OpenQASM.
//!
//! Run with `cargo run -p qsp-examples --bin quickstart`.

use qsp_circuit::qasm::to_qasm;
use qsp_core::prepare_state;
use qsp_sim::verify_preparation;
use qsp_state::{BasisIndex, SparseState};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Target: the motivating example of the paper,
    // (|000⟩ + |011⟩ + |101⟩ + |110⟩)/2.
    let target = SparseState::uniform_superposition(
        3,
        [0b000u64, 0b011, 0b101, 0b110].map(BasisIndex::new),
    )?;
    println!("target state: {target}");
    println!("cardinality:  {}", target.cardinality());

    // Synthesize with the exact CNOT synthesis workflow.
    let outcome = prepare_state(&target)?;
    println!(
        "\nsynthesized circuit with {} CNOTs in {:.3} ms:",
        outcome.cnot_cost,
        outcome.elapsed.as_secs_f64() * 1e3
    );
    println!("{}", outcome.circuit);

    // Verify against the dense simulator (the paper uses Qiskit for this).
    let report = verify_preparation(&outcome.circuit, &target)?;
    println!("verification fidelity: {:.9}", report.fidelity);
    assert!(report.is_correct());

    // Export to OpenQASM 2.0 for external toolchains.
    println!("\nOpenQASM 2.0:\n{}", to_qasm(&outcome.circuit)?);
    Ok(())
}
