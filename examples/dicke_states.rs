//! Dicke-state preparation (the headline result of the paper, Table IV):
//! exact synthesis beats the best published manual designs — including the
//! 2× reduction for |D^2_4⟩ shown in Fig. 6.
//!
//! Run with `cargo run --release -p qsp-examples --bin dicke_states`.

use qsp_baselines::dicke::manual_cnot_count;
use qsp_baselines::StatePreparator;
use qsp_core::QspWorkflow;
use qsp_sim::verify_preparation;
use qsp_state::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Dicke state preparation |D^k_n> — ours vs the manual design [7]\n");
    println!(
        "{:>3} {:>3} {:>12} {:>8} {:>10}",
        "n", "k", "manual", "ours", "verified"
    );
    for (n, k) in [(3usize, 1usize), (4, 1), (4, 2), (5, 1), (5, 2), (6, 1)] {
        let target = generators::dicke(n, k)?;
        let circuit = QspWorkflow::new().prepare(&target)?;
        let report = verify_preparation(&circuit, &target)?;
        println!(
            "{n:>3} {k:>3} {:>12} {:>8} {:>10}",
            manual_cnot_count(n, k),
            circuit.cnot_cost(),
            if report.is_correct() { "yes" } else { "NO" }
        );
    }

    // Fig. 6: print the actual circuit found for |D^2_4>.
    let target = generators::dicke(4, 2)?;
    let circuit = QspWorkflow::new().prepare(&target)?;
    println!(
        "\ncircuit for |D^2_4> ({} CNOTs vs 12 for the manual design):\n{circuit}",
        circuit.cnot_cost()
    );
    Ok(())
}
