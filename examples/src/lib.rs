//! Shared nothing: the runnable examples are standalone binaries.
