//! A standalone wire server: the synthesis service on a TCP socket.
//!
//! Binds an ephemeral loopback port, prints the address, serves the framed
//! protocol for a short demo window and shuts down cleanly — pair it with
//! the `wire_client` example (which spawns its own in-process server when
//! not pointed at one) or any client speaking the protocol.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p qsp-examples --bin wire_server
//! ```

use std::sync::Arc;
use std::time::Duration;

use qsp_serve::{
    SchedulerConfig, ServiceConfig, Shutdown, SynthesisService, TenantConfig, TenantPolicy,
};
use qsp_wire::{WireConfig, WireServer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two named tenants: `gold` gets 3x the fair-share weight of `standard`
    // and no admission throttle; `standard` is capped at 50 requests/s with
    // a burst allowance of 10.
    let service = Arc::new(SynthesisService::start(
        ServiceConfig::default()
            .with_queue_capacity(256)
            .with_scheduler(
                SchedulerConfig::default()
                    .with_max_batch(8)
                    .with_max_wait(Duration::from_millis(2))
                    .with_workers(2),
            )
            .with_tenants(
                TenantPolicy::new()
                    .with_tenant(TenantConfig::new("gold").with_weight(3))
                    .with_tenant(
                        TenantConfig::new("standard")
                            .with_weight(1)
                            .with_rate(50.0, 10.0),
                    ),
            ),
    ));

    let mut server = WireServer::bind("127.0.0.1:0", Arc::clone(&service), WireConfig::new())?;
    println!("wire server listening on {}", server.local_addr());
    println!("tenants: gold (weight 3), standard (weight 1, 50 req/s, burst 10)");

    // Serve for a short demo window, then tear down. A real deployment
    // would park the main thread instead.
    std::thread::sleep(Duration::from_millis(1500));

    server.shutdown();
    let stats = service.shutdown(Shutdown::Drain);
    println!(
        "served: submitted={} completed={} throttled={} rejected={}",
        stats.submitted, stats.completed, stats.throttled, stats.rejected
    );
    for tenant in &stats.tenants {
        println!(
            "  tenant {:>8}: submitted={} completed={} throttled={}",
            tenant.name, tenant.submitted, tenant.completed, tenant.throttled
        );
    }
    Ok(())
}
