//! Acceptance tests of the unified `SynthesisRequest`/`SynthesisReport`
//! API:
//!
//! * **parity** — the same request solved via the workflow, the batch
//!   engine and the serve layer yields bit-identical `cnot_cost` with the
//!   correct [`Provenance`] on every path;
//! * **option-fingerprint keying** — two requests for the same state with
//!   different cost-relevant [`RequestOptions`] produce two solver runs and
//!   different outcomes where expected, and never cross-contaminate the
//!   dedup table or the cache (at the serve level *and* the batch level);
//! * **cost-neutral options** — strategy/deadline/priority/cache-policy
//!   differences keep deduplicating freely.

use std::time::{Duration, Instant};

use qsp_core::{
    BatchSynthesizer, CachePolicy, ExactSynthesizer, Provenance, QspWorkflow, SearchStrategy,
    SynthesisError, SynthesisReport, SynthesisRequest, Synthesizer,
};
use qsp_serve::{Response, SchedulerConfig, ServiceConfig, Shutdown, SynthesisService};
use qsp_state::{generators, SparseState};

const HANG: Duration = Duration::from_secs(120);

fn service(workers: usize, max_batch: usize) -> SynthesisService {
    SynthesisService::start(
        ServiceConfig::default()
            .with_queue_capacity(64)
            .with_scheduler(
                SchedulerConfig::default()
                    .with_max_batch(max_batch)
                    .with_max_wait(Duration::from_millis(1))
                    .with_workers(workers),
            ),
    )
}

fn submit_and_wait(service: &SynthesisService, request: SynthesisRequest<SparseState>) -> Response {
    service
        .submit(request)
        .handle()
        .expect("accepted")
        .wait_timeout(HANG)
        .expect("no hang")
}

/// Generic over the trait — proves the one-seam contract compiles and runs
/// for any synthesizer implementation.
fn solve_generically<T: Synthesizer<SparseState>>(
    synthesizer: &T,
    request: &SynthesisRequest<SparseState>,
) -> SynthesisReport {
    synthesizer.synthesize(request).expect("request solves")
}

#[test]
fn same_request_yields_bit_identical_costs_across_all_four_layers() {
    let targets = [
        generators::dicke(4, 2).unwrap(),
        generators::ghz(6).unwrap(),
        generators::w_state(5).unwrap(),
    ];
    for target in &targets {
        let request = SynthesisRequest::new(target.clone());

        // Layer 1: the workflow (trait seam).
        let workflow = QspWorkflow::new();
        let via_workflow = solve_generically(&workflow, &request);
        assert!(matches!(via_workflow.provenance, Provenance::Solved));

        // Layer 2: the batch engine (fresh engine → fresh solve; duplicate
        // in the same batch → batch-rep reconstruction).
        let engine = BatchSynthesizer::new();
        let outcome = engine.synthesize_requests(&[request.clone(), request.clone()]);
        let via_batch = outcome.reports[0].as_ref().unwrap();
        let follower = outcome.reports[1].as_ref().unwrap();
        assert!(matches!(via_batch.provenance, Provenance::Solved));
        assert!(matches!(
            follower.provenance,
            Provenance::ReconstructedFromBatchRep { .. }
        ));
        assert_eq!(outcome.stats.solver_runs, 1);

        // Layer 3: the serve layer (fresh service → fresh solve; repeat →
        // cache hit).
        let serve = service(2, 4);
        let Response::Completed(via_serve) = submit_and_wait(&serve, request.clone()) else {
            panic!("serve request did not complete");
        };
        assert!(matches!(via_serve.provenance, Provenance::Solved));
        let Response::Completed(via_serve_again) = submit_and_wait(&serve, request.clone()) else {
            panic!("repeat serve request did not complete");
        };
        assert!(matches!(
            via_serve_again.provenance,
            Provenance::CacheHit { .. }
        ));
        serve.shutdown(Shutdown::Drain);

        // Parity: every layer reports the identical CNOT cost, and every
        // circuit prepares the target.
        let costs = [
            via_workflow.cnot_cost,
            via_batch.cnot_cost,
            follower.cnot_cost,
            via_serve.cnot_cost,
            via_serve_again.cnot_cost,
        ];
        assert!(
            costs.iter().all(|&c| c == via_workflow.cnot_cost),
            "layer costs diverged on {target}: {costs:?}"
        );
        for report in [
            &via_workflow,
            via_batch,
            follower,
            &via_serve,
            &via_serve_again,
        ] {
            assert!(qsp_sim::verify_preparation(&report.circuit, target)
                .unwrap()
                .is_correct());
        }
    }

    // The exact synthesizer joins the parity set on a threshold-sized state.
    let small = generators::dicke(4, 2).unwrap();
    let request = SynthesisRequest::new(small.clone());
    let via_exact = solve_generically(&ExactSynthesizer::new(), &request);
    let via_workflow = solve_generically(&QspWorkflow::new(), &request);
    assert_eq!(via_exact.cnot_cost, via_workflow.cnot_cost);
    assert_eq!(via_exact.cnot_cost, 6, "Table IV: |D^2_4> takes 6 CNOTs");
}

#[test]
fn serve_never_mixes_requests_with_different_cost_relevant_options() {
    // Eight concurrent requests for the *same* state, alternating between
    // the default config and the controlled-merge ablation. The restricted
    // library cannot solve the W state at all, so any cross-config dedup or
    // cache sharing would be immediately visible: a default request served
    // from the ablated class would fail (or the ablated ones would
    // impossibly succeed at 4 CNOTs).
    let target = generators::dicke(3, 1).unwrap(); // the 3-qubit W state
    let serve = service(4, 1);
    let handles: Vec<(bool, _)> = (0..8)
        .map(|i| {
            let ablated = i % 2 == 1;
            let mut request = SynthesisRequest::new(target.clone());
            if ablated {
                request = request.with_controlled_merges(false);
            }
            (ablated, serve.submit(request).handle().expect("accepted"))
        })
        .collect();
    for (ablated, handle) in &handles {
        let response = handle.wait_timeout(HANG).expect("no hang");
        if *ablated {
            assert!(
                matches!(
                    response,
                    Response::Failed(SynthesisError::SearchBudgetExhausted { .. })
                ),
                "the {{Ry, CNOT}} library cannot prepare W3; got {response:?}"
            );
        } else {
            let report = response.report().expect("default config completes");
            assert_eq!(report.cnot_cost, 4, "Table IV: |D^1_3> takes 4 CNOTs");
        }
    }
    let stats = serve.shutdown(Shutdown::Drain);
    assert_eq!(
        stats.solver_runs, 2,
        "exactly one solve per (state, options fingerprint) class"
    );
    assert_eq!(
        stats.deduped + stats.cache_hits,
        6,
        "dedup still collapses requests *within* each class"
    );
}

#[test]
fn serve_reports_different_costs_for_different_effective_configs() {
    // The approximate PU(2) compression settles |D^2_4> at 7 CNOTs where
    // the exact keys find the true optimum 6 — a genuine per-request cost
    // difference that must never be papered over by dedup or the cache.
    let target = generators::dicke(4, 2).unwrap();
    let serve = service(2, 4);
    let Response::Completed(exact) = submit_and_wait(&serve, SynthesisRequest::new(target.clone()))
    else {
        panic!("default request did not complete");
    };
    let Response::Completed(compressed) = submit_and_wait(
        &serve,
        SynthesisRequest::new(target.clone()).with_permutation_compression(true),
    ) else {
        panic!("compressed request did not complete");
    };
    let stats = serve.shutdown(Shutdown::Drain);
    assert_eq!(exact.cnot_cost, 6);
    assert!(
        compressed.cnot_cost > exact.cnot_cost,
        "the approximate compression must not inherit the exact-key result \
         through the cache (got {} vs {})",
        compressed.cnot_cost,
        exact.cnot_cost
    );
    assert_eq!(stats.solver_runs, 2, "no cache hit across configurations");
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.deduped, 0);
    // Both circuits still prepare the target — the compressed one just
    // spends more CNOTs.
    for report in [&exact, &compressed] {
        assert!(qsp_sim::verify_preparation(&report.circuit, &target)
            .unwrap()
            .is_correct());
    }
    // The reports carry their effective configs and distinct fingerprints.
    assert!(!exact.resolved.workflow.search.permutation_compression);
    assert!(compressed.resolved.workflow.search.permutation_compression);
    assert_ne!(exact.resolved.fingerprint, compressed.resolved.fingerprint);
}

#[test]
fn cost_neutral_options_still_dedup_at_the_serve_layer() {
    // Strategy, deadline, priority and a ReadOnly cache policy are all
    // cost-neutral: requests differing only in those must share one solve.
    let target = generators::ghz(5).unwrap();
    let serve = service(2, 4);
    let variants = [
        SynthesisRequest::new(target.clone()),
        SynthesisRequest::new(target.clone())
            .with_strategy(SearchStrategy::Portfolio { workers: 2 }),
        SynthesisRequest::new(target.clone())
            .with_deadline(Instant::now() + Duration::from_secs(60))
            .with_priority(9),
        SynthesisRequest::new(target.clone()).with_cache_policy(CachePolicy::ReadOnly),
    ];
    for request in variants {
        let response = submit_and_wait(&serve, request);
        assert_eq!(response.report().expect("completes").cnot_cost, 4);
    }
    let stats = serve.shutdown(Shutdown::Drain);
    assert_eq!(
        stats.solver_runs, 1,
        "cost-neutral options must not fork the dedup class"
    );
    assert_eq!(stats.cache_hits, 3);
}

#[test]
fn batch_engine_mirrors_the_fingerprint_keying() {
    let w3 = generators::dicke(3, 1).unwrap();
    let d42 = generators::dicke(4, 2).unwrap();
    let engine = BatchSynthesizer::new();
    let requests = vec![
        SynthesisRequest::new(w3.clone()),
        SynthesisRequest::new(w3.clone()).with_controlled_merges(false),
        SynthesisRequest::new(d42.clone()),
        SynthesisRequest::new(d42.clone()).with_permutation_compression(true),
        // Duplicates of the first two: same fingerprints, so they follow
        // their in-batch representatives instead of solving again.
        SynthesisRequest::new(w3.clone()),
        SynthesisRequest::new(w3.clone()).with_controlled_merges(false),
    ];
    let outcome = engine.synthesize_requests(&requests);
    assert_eq!(
        outcome.stats.solver_runs, 4,
        "one solve per (state, fingerprint) class"
    );
    assert_eq!(outcome.stats.cache_hits, 2, "the two in-batch duplicates");

    // Default W3 solves at 4; the ablated library fails outright — on both
    // the representative and its follower.
    assert_eq!(outcome.reports[0].as_ref().unwrap().cnot_cost, 4);
    assert!(matches!(
        outcome.reports[1],
        Err(SynthesisError::SearchBudgetExhausted { .. })
    ));
    assert_eq!(outcome.reports[4].as_ref().unwrap().cnot_cost, 4);
    assert!(matches!(
        outcome.reports[5],
        Err(SynthesisError::SearchBudgetExhausted { .. })
    ));
    // The compressed Dicke request costs strictly more than the exact one.
    let exact_cost = outcome.reports[2].as_ref().unwrap().cnot_cost;
    let compressed_cost = outcome.reports[3].as_ref().unwrap().cnot_cost;
    assert_eq!(exact_cost, 6);
    assert!(compressed_cost > exact_cost);

    // Four distinct classes live in the cache (failures are cached too, so
    // repeated bad requests fail fast) — and a replay is all cache hits
    // with identical outcomes.
    assert_eq!(engine.cache_len(), 4);
    let replay = engine.synthesize_requests(&requests[..4]);
    assert_eq!(replay.stats.solver_runs, 0);
    assert_eq!(replay.stats.cache_hits, 4);
    assert_eq!(replay.reports[0].as_ref().unwrap().cnot_cost, 4);
    assert!(replay.reports[1].is_err());
    assert_eq!(replay.reports[2].as_ref().unwrap().cnot_cost, exact_cost);
    assert_eq!(
        replay.reports[3].as_ref().unwrap().cnot_cost,
        compressed_cost
    );
}

#[test]
fn batch_engine_dedups_cost_neutral_options() {
    let target = generators::ghz(5).unwrap();
    let engine = BatchSynthesizer::new();
    let requests = vec![
        SynthesisRequest::new(target.clone()),
        SynthesisRequest::new(target.clone())
            .with_strategy(SearchStrategy::Portfolio { workers: 2 }),
        SynthesisRequest::new(target.clone()).with_priority(3),
    ];
    let outcome = engine.synthesize_requests(&requests);
    assert_eq!(outcome.stats.solver_runs, 1);
    assert_eq!(outcome.stats.cache_hits, 2);
    for report in &outcome.reports {
        assert_eq!(report.as_ref().unwrap().cnot_cost, 4);
    }
}
