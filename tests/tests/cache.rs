//! Integration tests for the sharded, eviction-aware synthesis cache — the
//! acceptance criteria of the cache refactor:
//!
//! * hit/miss counters stay consistent under concurrent batch traffic,
//! * eviction respects the configured size bound,
//! * a snapshot round-trip (save → load → warm hits) is lossless.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qsp_core::batch::{BatchOptions, BatchSynthesizer};
use qsp_core::{CacheConfig, Provenance, SynthesisRequest, WorkflowConfig};
use qsp_sim::verify_preparation;
use qsp_state::{generators, SparseState};

fn random_workload(seed: u64, count: usize) -> Vec<SparseState> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| generators::random_sparse_state(7, &mut rng).unwrap())
        .collect()
}

fn requests(targets: &[SparseState]) -> Vec<SynthesisRequest<SparseState>> {
    targets
        .iter()
        .map(|t| SynthesisRequest::new(t.clone()))
        .collect()
}

#[test]
fn snapshot_round_trip_is_lossless() {
    let targets = vec![
        generators::ghz(5).unwrap(),
        generators::dicke(4, 2).unwrap(),
        generators::w_state(4).unwrap(),
    ];
    let warm = BatchSynthesizer::new();
    let original = warm.synthesize_requests(&requests(&targets));
    assert_eq!(original.stats.errors, 0);
    assert_eq!(warm.cache_len(), 3);

    let dir = std::env::temp_dir().join("qsp_cache_snapshot_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snapshot.json");
    let written = warm.save_cache_snapshot(&path).unwrap();
    assert_eq!(written, 3);

    // A fresh engine (cold cache) loads the snapshot and serves the whole
    // batch without a single solver run, bit-identically.
    let cold = BatchSynthesizer::new();
    assert_eq!(cold.cache_len(), 0);
    let loaded = cold.load_cache_snapshot(&path).unwrap();
    assert_eq!(loaded, 3);
    let warmed = cold.synthesize_requests(&requests(&targets));
    assert_eq!(warmed.stats.solver_runs, 0, "every class must warm-hit");
    assert_eq!(warmed.stats.cache_hits, targets.len());
    for ((a, b), target) in original.reports.iter().zip(&warmed.reports).zip(&targets) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(
            a.circuit, b.circuit,
            "snapshot round-trip must reproduce the identical circuit"
        );
        assert!(
            matches!(b.provenance, Provenance::CacheHit { .. }),
            "warm-start hits must be attributed to the cache"
        );
        assert!(verify_preparation(&b.circuit, target).unwrap().is_correct());
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn eviction_respects_the_size_bound_under_batch_load() {
    let engine = BatchSynthesizer::with_options(
        WorkflowConfig::default(),
        BatchOptions::default()
            .with_threads(2)
            .with_cache(CacheConfig::bounded(4).with_shards(2)),
    );
    let targets = random_workload(7, 16);
    let outcome = engine.synthesize_requests(&requests(&targets));
    assert_eq!(outcome.stats.errors, 0);
    let stats = engine.cache_stats();
    assert!(
        engine.cache_len() <= engine.cache().capacity(),
        "cache holds {} classes, bound is {}",
        engine.cache_len(),
        engine.cache().capacity()
    );
    assert!(
        stats.evictions > 0,
        "a 4-class bound must evict on 16 classes"
    );
    assert_eq!(stats.entries as u64 + stats.evictions, stats.insertions);
    // Results stay correct even with heavy eviction.
    for (target, report) in targets.iter().zip(&outcome.reports) {
        assert!(
            verify_preparation(&report.as_ref().unwrap().circuit, target)
                .unwrap()
                .is_correct()
        );
    }
}

#[test]
fn hit_and_miss_counters_stay_consistent_under_contention() {
    let engine = BatchSynthesizer::new();
    let workloads: Vec<Vec<SparseState>> =
        (0..4).map(|i| random_workload(100 + i % 2, 10)).collect();
    // Four threads share the cache through clones; workloads pairwise repeat
    // so cross-thread hits genuinely occur.
    std::thread::scope(|scope| {
        for targets in &workloads {
            let engine = engine.clone();
            scope.spawn(move || {
                let outcome = engine.synthesize_requests(&requests(targets));
                assert_eq!(outcome.stats.errors, 0);
            });
        }
    });
    let stats = engine.cache_stats();
    // Every planning lookup is exactly one hit or one miss; 40 targets were
    // looked up in total (each batch plans every target once; within-batch
    // followers bypass the store).
    assert!(stats.hits + stats.misses >= 20, "stats: {stats:?}");
    // Two batches sharing a seed can race planning-before-publish and both
    // solve (and insert) the same class — a replacement, not a new entry —
    // so insertions may exceed entries; it can never be below, and nothing
    // is evicted in an unbounded cache.
    assert!(stats.insertions >= stats.entries as u64, "stats: {stats:?}");
    assert_eq!(stats.evictions, 0);
    // 20 distinct classes across the four workloads (two seeds × 10).
    assert_eq!(engine.cache_len(), 20);

    // A replay of all workloads is served fully from the cache.
    let replay: usize = workloads
        .iter()
        .map(|targets| {
            engine
                .synthesize_requests(&requests(targets))
                .stats
                .solver_runs
        })
        .sum();
    assert_eq!(replay, 0);
}

#[test]
fn snapshot_of_a_bounded_cache_loads_into_a_bounded_cache() {
    let bounded_options =
        BatchOptions::default().with_cache(CacheConfig::bounded(2).with_shards(2));
    let warm = BatchSynthesizer::new();
    warm.synthesize_requests(&requests(&random_workload(55, 6)));
    let dir = std::env::temp_dir().join("qsp_cache_snapshot_bounded");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snapshot.json");
    assert_eq!(warm.save_cache_snapshot(&path).unwrap(), 6);

    // Loading 6 classes into a 2-slot cache goes through the eviction-aware
    // path: the bound holds and the overflow is counted as evictions.
    let bounded = BatchSynthesizer::with_options(WorkflowConfig::default(), bounded_options);
    let loaded = bounded.load_cache_snapshot(&path).unwrap();
    assert_eq!(loaded, 6);
    assert!(bounded.cache_len() <= bounded.cache().capacity());
    assert!(bounded.cache_stats().evictions >= 4);
    std::fs::remove_file(&path).unwrap();
}
