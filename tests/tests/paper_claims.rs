//! Integration tests pinning the *shape* of the paper's headline claims:
//! the motivating example, the Table III canonical-state counts, the
//! Table IV Dicke results and the Table V scaling relations.

use qsp_baselines::dicke::manual_cnot_count;
use qsp_baselines::{CardinalityReduction, QubitReduction, StatePreparator};
use qsp_core::{ExactSynthesizer, QspWorkflow};
use qsp_sim::verify_preparation;
use qsp_state::canonical::{count_canonical_states, CanonicalOptions};
use qsp_state::{generators, BasisIndex, SparseState};

fn motivating_example() -> SparseState {
    SparseState::uniform_superposition(3, [0b000u64, 0b011, 0b101, 0b110].map(BasisIndex::new))
        .unwrap()
}

/// Sec. III: exact synthesis finds the 2-CNOT circuit of Fig. 3 while the
/// qubit-reduction heuristic spends 6 CNOTs (Fig. 1) and the cardinality
/// reduction about 7 (Fig. 2).
#[test]
fn motivating_example_matches_figures_1_to_3() {
    let target = motivating_example();

    let exact = ExactSynthesizer::new()
        .synthesize_request(&qsp_core::SynthesisRequest::new(target.clone()))
        .unwrap();
    assert_eq!(exact.cnot_cost, 2, "Fig. 3: exact synthesis finds 2 CNOTs");
    assert!(verify_preparation(&exact.circuit, &target)
        .unwrap()
        .is_correct());

    let nflow = QubitReduction::new().prepare(&target).unwrap();
    assert_eq!(
        nflow.cnot_cost(),
        6,
        "Fig. 1: qubit reduction spends 2^3 - 2 = 6"
    );

    let mflow = CardinalityReduction::new().prepare(&target).unwrap();
    assert!(
        (3..=10).contains(&mflow.cnot_cost()),
        "Fig. 2 ballpark: cardinality reduction spends a handful of CNOTs, got {}",
        mflow.cnot_cost()
    );
    assert!(mflow.cnot_cost() > exact.cnot_cost);
}

/// Table III, small-cardinality rows: the canonicalization reproduces the
/// published equivalence-class counts.
#[test]
fn table3_counts_for_small_cardinalities() {
    // |V_G/U(2)| for m = 1, 2 and |V_G/PU(2)| for m = 1, 2, 3.
    assert_eq!(
        count_canonical_states(4, 1, CanonicalOptions::layout_variant()),
        1
    );
    assert_eq!(
        count_canonical_states(4, 2, CanonicalOptions::layout_variant()),
        11
    );
    assert_eq!(
        count_canonical_states(4, 1, CanonicalOptions::layout_invariant()),
        1
    );
    assert_eq!(
        count_canonical_states(4, 2, CanonicalOptions::layout_invariant()),
        3
    );
}

/// Table IV: the exact-synthesis workflow matches or beats the manual design
/// on every Dicke benchmark it can verify quickly, and beats it strictly on
/// |D^2_4⟩ (the paper's 2× headline).
#[test]
fn table4_ours_vs_manual_design() {
    for (n, k) in [(3usize, 1usize), (4, 1), (4, 2), (5, 1)] {
        let target = generators::dicke(n, k).unwrap();
        let ours = QspWorkflow::new().prepare(&target).unwrap();
        assert!(
            verify_preparation(&ours, &target).unwrap().is_correct(),
            "circuit for |D^{k}_{n}> is wrong"
        );
        assert!(
            ours.cnot_cost() <= manual_cnot_count(n, k),
            "|D^{k}_{n}>: ours {} vs manual {}",
            ours.cnot_cost(),
            manual_cnot_count(n, k)
        );
    }
    let d42 = QspWorkflow::new()
        .prepare(&generators::dicke(4, 2).unwrap())
        .unwrap();
    assert!(
        d42.cnot_cost() < manual_cnot_count(4, 2),
        "|D^2_4>: ours {} must strictly beat the manual 12",
        d42.cnot_cost()
    );
}

/// Table V scaling relations: the n-flow cost is exactly `2^n − 2`, the
/// m-flow cost on sparse states stays `O(nm)`, and the workflow improves on
/// the stronger baseline in each regime for the sizes tested here.
#[test]
fn table5_scaling_relations() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(2024);

    for n in [6usize, 8] {
        // Sparse regime.
        let sparse = generators::random_sparse_state(n, &mut rng).unwrap();
        let mflow = CardinalityReduction::new()
            .prepare(&sparse)
            .unwrap()
            .cnot_cost();
        let nflow = QubitReduction::new().prepare(&sparse).unwrap().cnot_cost();
        let ours = QspWorkflow::new().prepare(&sparse).unwrap().cnot_cost();
        assert_eq!(nflow, (1 << n) - 2);
        assert!(mflow < nflow, "sparse n = {n}: m-flow must beat n-flow");
        assert!(
            ours <= mflow,
            "sparse n = {n}: ours must not lose to m-flow"
        );

        // Dense regime.
        let dense = generators::random_dense_state(n, &mut rng).unwrap();
        let nflow_dense = QubitReduction::new().prepare(&dense).unwrap().cnot_cost();
        let mflow_dense = CardinalityReduction::new()
            .prepare(&dense)
            .unwrap()
            .cnot_cost();
        let ours_dense = QspWorkflow::new().prepare(&dense).unwrap().cnot_cost();
        assert_eq!(nflow_dense, (1 << n) - 2);
        assert!(
            mflow_dense > nflow_dense,
            "dense n = {n}: the m-flow must degrade on dense states"
        );
        assert!(
            ours_dense <= nflow_dense,
            "dense n = {n}: ours must not lose to n-flow"
        );
    }
}

/// GHZ states: the well-known optimum of `n − 1` CNOTs is recovered through
/// the whole workflow stack for registers small and large.
#[test]
fn ghz_optimum_is_recovered_at_scale() {
    for n in [3usize, 5, 8, 12] {
        let target = generators::ghz(n).unwrap();
        let circuit = QspWorkflow::new().prepare(&target).unwrap();
        assert_eq!(circuit.cnot_cost(), n - 1, "ghz({n})");
        if n <= 10 {
            assert!(verify_preparation(&circuit, &target).unwrap().is_correct());
        }
    }
}

/// The heuristic of Sec. V-A is admissible on the states it is evaluated on:
/// it never exceeds the optimal CNOT count found by the exact solver.
#[test]
fn heuristic_is_admissible_on_small_states() {
    use qsp_state::cofactor::entanglement_lower_bound;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..10 {
        let target = generators::random_uniform_state(4, 6, &mut rng).unwrap();
        let bound = entanglement_lower_bound(&target);
        let exact = ExactSynthesizer::new()
            .synthesize_request(&qsp_core::SynthesisRequest::new(target.clone()))
            .unwrap();
        assert!(
            bound <= exact.cnot_cost,
            "heuristic {bound} exceeds the optimum {}",
            exact.cnot_cost
        );
    }
}
