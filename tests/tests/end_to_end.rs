//! End-to-end integration tests: every preparation method, applied to a suite
//! of workloads, must produce circuits that the dense simulator verifies, and
//! the exact-synthesis workflow must never lose to the baselines on the
//! paper's headline comparisons.

use qsp_baselines::{CardinalityReduction, HybridPreparator, QubitReduction, StatePreparator};
use qsp_circuit::decompose::decompose_circuit;
use qsp_circuit::Circuit;
use qsp_core::QspWorkflow;
use qsp_sim::verify_preparation;
use qsp_state::{generators, SparseState};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn all_methods() -> Vec<(&'static str, Box<dyn StatePreparator>)> {
    vec![
        ("m-flow", Box::new(CardinalityReduction::new())),
        ("n-flow", Box::new(QubitReduction::new())),
        ("hybrid", Box::new(HybridPreparator::new())),
        ("ours", Box::new(QspWorkflow::new())),
    ]
}

fn verify_circuit(label: &str, circuit: &Circuit, target: &SparseState) {
    let report = verify_preparation(circuit, target).expect("simulation succeeds");
    assert!(
        report.is_correct(),
        "{label}: circuit does not prepare the target (fidelity {})",
        report.fidelity
    );
}

fn workload_suite() -> Vec<(String, SparseState)> {
    let mut rng = StdRng::seed_from_u64(97);
    let mut suite = vec![
        ("ghz3".to_string(), generators::ghz(3).unwrap()),
        ("ghz6".to_string(), generators::ghz(6).unwrap()),
        ("w4".to_string(), generators::w_state(4).unwrap()),
        ("w7".to_string(), generators::w_state(7).unwrap()),
        ("dicke_4_2".to_string(), generators::dicke(4, 2).unwrap()),
        ("dicke_5_2".to_string(), generators::dicke(5, 2).unwrap()),
        ("dicke_6_3".to_string(), generators::dicke(6, 3).unwrap()),
    ];
    for n in 4..8 {
        suite.push((
            format!("sparse_{n}"),
            generators::random_sparse_state(n, &mut rng).unwrap(),
        ));
        suite.push((
            format!("dense_{n}"),
            generators::random_dense_state(n, &mut rng).unwrap(),
        ));
    }
    suite
}

#[test]
fn every_method_prepares_every_workload_correctly() {
    for (name, target) in workload_suite() {
        for (label, method) in all_methods() {
            let circuit = method
                .prepare_sparse(&target)
                .unwrap_or_else(|e| panic!("{label} failed on {name}: {e}"));
            verify_circuit(&format!("{label}/{name}"), &circuit, &target);
        }
    }
}

#[test]
fn lowered_circuits_still_prepare_the_target() {
    // Decomposing every multi-controlled rotation to {Ry, X, CNOT} must not
    // change the prepared state, and the literal CNOT count must equal the
    // cost model's prediction (how the paper counts CNOTs, Sec. VI-A).
    for (name, target) in workload_suite().into_iter().take(8) {
        for (label, method) in all_methods() {
            let circuit = method.prepare_sparse(&target).expect("synthesis succeeds");
            let lowered = decompose_circuit(&circuit).expect("lowering succeeds");
            assert_eq!(
                lowered.cnot_gate_count(),
                circuit.cnot_cost(),
                "{label}/{name}: lowered CNOT count disagrees with the cost model"
            );
            verify_circuit(&format!("lowered {label}/{name}"), &lowered, &target);
        }
    }
}

#[test]
fn workflow_is_never_worse_than_the_better_baseline() {
    let mut rng = StdRng::seed_from_u64(11);
    for n in 4..8 {
        for target in [
            generators::random_sparse_state(n, &mut rng).unwrap(),
            generators::random_dense_state(n, &mut rng).unwrap(),
        ] {
            let ours = QspWorkflow::new().prepare(&target).unwrap().cnot_cost();
            let mflow = CardinalityReduction::new()
                .prepare(&target)
                .unwrap()
                .cnot_cost();
            let nflow = QubitReduction::new().prepare(&target).unwrap().cnot_cost();
            let best_baseline = mflow.min(nflow);
            assert!(
                ours <= best_baseline,
                "n = {n}: ours ({ours}) worse than best baseline ({best_baseline})"
            );
        }
    }
}

#[test]
fn dicke_headline_result_beats_the_manual_design() {
    // Table IV headline: the exact synthesis is the first automated flow to
    // beat the manual design, halving the |D^2_4> count (12 -> 6).
    let target = generators::dicke(4, 2).unwrap();
    let ours = QspWorkflow::new().prepare(&target).unwrap();
    verify_circuit("ours/dicke_4_2", &ours, &target);
    let manual = generators::manual_dicke_cnot_count(4, 2);
    assert!(
        ours.cnot_cost() <= manual / 2 + 1,
        "ours {} is not ~2x better than manual {manual}",
        ours.cnot_cost()
    );
    // ... and no baseline does better.
    for (label, method) in all_methods().into_iter().take(3) {
        let baseline = method.prepare_sparse(&target).unwrap().cnot_cost();
        assert!(
            baseline >= ours.cnot_cost(),
            "{label} ({baseline}) unexpectedly beats exact synthesis ({})",
            ours.cnot_cost()
        );
    }
}

#[test]
fn nflow_cost_is_register_size_dependent_only() {
    // Table V: the n-flow column is 2^n − 2 for every workload.
    let mut rng = StdRng::seed_from_u64(3);
    for n in 3..9 {
        let sparse = generators::random_sparse_state(n, &mut rng).unwrap();
        let dense = generators::random_dense_state(n, &mut rng).unwrap();
        for target in [sparse, dense] {
            let cost = QubitReduction::new().prepare(&target).unwrap().cnot_cost();
            assert_eq!(cost, (1 << n) - 2, "n = {n}");
        }
    }
}

#[test]
fn mflow_scales_with_cardinality_not_register_width() {
    // Table V (sparse): the m-flow cost grows roughly like n·m, far below
    // 2^n − 2 once the register is wide.
    let mut rng = StdRng::seed_from_u64(5);
    for n in [8usize, 10, 12] {
        let target = generators::random_sparse_state(n, &mut rng).unwrap();
        let mflow = CardinalityReduction::new()
            .prepare(&target)
            .unwrap()
            .cnot_cost();
        assert!(
            mflow < (1 << n) / 2,
            "n = {n}: m-flow cost {mflow} does not reflect sparsity"
        );
    }
}

#[test]
fn qasm_export_of_a_synthesized_circuit_is_loadable_text() {
    let target = generators::dicke(4, 2).unwrap();
    let circuit = QspWorkflow::new().prepare(&target).unwrap();
    let qasm = qsp_circuit::qasm::to_qasm(&circuit).unwrap();
    assert!(qasm.contains("OPENQASM 2.0"));
    assert!(qasm.contains("qreg q[4];"));
    assert!(qasm.matches("cx ").count() >= circuit.cnot_cost());
}
