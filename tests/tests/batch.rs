//! Integration tests for the `QuantumState` backend trait and the parallel
//! batch-synthesis engine — the acceptance criteria of the trait/batch
//! refactor:
//!
//! * the batch engine returns circuits **bit-identical** to per-target
//!   `QspWorkflow` runs on the Dicke/GHZ/W/random workloads,
//! * canonical-duplicate targets are solved exactly once (cache hit counts
//!   asserted),
//! * sparse and dense backends flow through the same generic workflow path.
//!
//! This suite deliberately drives the **deprecated compatibility wrappers**
//! (`QspWorkflow::synthesize`, `BatchSynthesizer::synthesize_batch`) so the
//! pre-request-API entry points stay covered until they are removed; the
//! unified `SynthesisRequest` API is exercised by `unified_api.rs`.
#![allow(deprecated)]

use rand::rngs::StdRng;
use rand::SeedableRng;

use qsp_core::batch::{BatchOptions, BatchSynthesizer, DedupPolicy};
use qsp_core::{prepare_state, QspWorkflow, WorkflowConfig};
use qsp_sim::verify_preparation;
use qsp_state::{generators, AdaptiveState, DenseState, SparseState};

fn workloads() -> Vec<SparseState> {
    let mut rng = StdRng::seed_from_u64(4242);
    let mut targets = vec![
        generators::dicke(4, 2).unwrap(),
        generators::dicke(5, 2).unwrap(),
        generators::ghz(3).unwrap(),
        generators::ghz(7).unwrap(),
        generators::w_state(4).unwrap(),
        generators::w_state(6).unwrap(),
    ];
    for n in 5..9 {
        targets.push(generators::random_sparse_state(n, &mut rng).unwrap());
    }
    targets
}

#[test]
fn batch_circuits_are_bit_identical_to_sequential_workflow_runs() {
    let targets = workloads();
    let sequential: Vec<_> = targets
        .iter()
        .map(|t| QspWorkflow::new().synthesize(t).unwrap())
        .collect();

    let outcome = BatchSynthesizer::new().synthesize_batch(&targets);
    assert_eq!(outcome.stats.targets, targets.len());
    assert_eq!(outcome.stats.errors, 0);

    for (i, (seq, bat)) in sequential.iter().zip(&outcome.results).enumerate() {
        let bat = bat.as_ref().unwrap();
        assert_eq!(
            seq, bat,
            "target {i}: batch circuit differs from the sequential workflow"
        );
        assert!(verify_preparation(bat, &targets[i]).unwrap().is_correct());
    }
}

/// An asymmetric 4-qubit uniform state: permuting or flipping its qubits
/// yields a *different* state of the same Sec. V-B equivalence class (unlike
/// GHZ/W/Dicke states, which are permutation-symmetric).
fn asymmetric_state() -> SparseState {
    SparseState::uniform_superposition(
        4,
        [0b0001u64, 0b0011, 0b0111].map(qsp_state::BasisIndex::new),
    )
    .unwrap()
}

#[test]
fn canonical_duplicates_are_solved_exactly_once() {
    let asym = asymmetric_state();
    let permuted = asym.permute_qubits(&[1, 0, 3, 2]).unwrap();
    let negated = asym.apply_x(0).unwrap();
    assert_ne!(
        asym, permuted,
        "the permuted variant must be a distinct state"
    );
    assert_ne!(asym, negated);
    let ghz = generators::ghz(4).unwrap();

    // 6 targets, but only 2 canonical classes:
    // {asym, permuted, negated, asym} and {ghz, ghz}.
    let targets = vec![
        asym.clone(),
        ghz.clone(),
        permuted.clone(),
        negated.clone(),
        ghz.clone(),
        asym.clone(),
    ];
    let engine = BatchSynthesizer::new();
    let outcome = engine.synthesize_batch(&targets);

    assert_eq!(
        outcome.stats.solver_runs, 2,
        "one solve per canonical class"
    );
    assert_eq!(
        outcome.stats.cache_hits, 4,
        "every other target hits the cache"
    );
    assert_eq!(outcome.stats.errors, 0);
    assert_eq!(engine.cache_len(), 2);

    // Every circuit still prepares *its own* target, and the zero-cost
    // reconstruction preserves the CNOT cost across the class.
    let asym_cost = outcome.results[0].as_ref().unwrap().cnot_cost();
    for (target, result) in targets.iter().zip(&outcome.results) {
        let circuit = result.as_ref().unwrap();
        assert!(
            verify_preparation(circuit, target).unwrap().is_correct(),
            "reconstructed circuit does not prepare its target"
        );
    }
    for i in [2usize, 3, 5] {
        assert_eq!(outcome.results[i].as_ref().unwrap().cnot_cost(), asym_cost);
    }

    // Exact duplicates get bit-identical circuits.
    assert_eq!(
        outcome.results[0].as_ref().unwrap(),
        outcome.results[5].as_ref().unwrap()
    );
    assert_eq!(
        outcome.results[1].as_ref().unwrap(),
        outcome.results[4].as_ref().unwrap()
    );

    // Resubmitting the whole batch is served from the cache without solving.
    let again = engine.synthesize_batch(&targets);
    assert_eq!(again.stats.solver_runs, 0);
    assert_eq!(again.stats.cache_hits, targets.len());
}

#[test]
fn exact_dedup_policy_only_merges_identical_states() {
    let base = asymmetric_state();
    let permuted = base.permute_qubits(&[1, 0, 3, 2]).unwrap();
    let targets = vec![base.clone(), permuted, base];
    let engine = BatchSynthesizer::with_options(
        WorkflowConfig::default(),
        BatchOptions::default()
            .with_threads(2)
            .with_dedup(DedupPolicy::Exact),
    );
    let outcome = engine.synthesize_batch(&targets);
    assert_eq!(outcome.stats.solver_runs, 2);
    assert_eq!(outcome.stats.cache_hits, 1);
}

#[test]
fn sparse_and_dense_backends_share_the_workflow_path() {
    let sparse = generators::dicke(4, 2).unwrap();
    let dense = DenseState::from_sparse(&sparse);
    let adaptive = AdaptiveState::from_sparse(sparse.clone());

    let via_sparse = QspWorkflow::new().synthesize(&sparse).unwrap();
    let via_dense = QspWorkflow::new().synthesize(&dense).unwrap();
    let via_adaptive = QspWorkflow::new().synthesize(&adaptive).unwrap();
    assert_eq!(via_sparse, via_dense);
    assert_eq!(via_sparse, via_adaptive);
    assert!(verify_preparation(&via_dense, &dense).unwrap().is_correct());

    // prepare_state and the batch engine accept dense targets too.
    let outcome = prepare_state(&dense).unwrap();
    assert_eq!(outcome.cnot_cost, via_sparse.cnot_cost());
    let batch = BatchSynthesizer::new().synthesize_batch(std::slice::from_ref(&dense));
    assert_eq!(batch.results[0].as_ref().unwrap(), &via_sparse);

    // A batch mixing representations of the *same* state solves it once.
    let engine = BatchSynthesizer::new();
    let mixed_sparse = engine.synthesize_batch(std::slice::from_ref(&sparse));
    let mixed_dense = engine.synthesize_batch(&[dense]);
    assert_eq!(mixed_sparse.stats.solver_runs, 1);
    assert_eq!(
        mixed_dense.stats.solver_runs, 0,
        "dense view of a cached sparse state hits"
    );
    assert_eq!(
        mixed_sparse.results[0].as_ref().unwrap(),
        mixed_dense.results[0].as_ref().unwrap()
    );
}

#[test]
fn batch_scales_to_a_wide_mixed_workload() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut targets = Vec::new();
    for _ in 0..20 {
        targets.push(generators::random_sparse_state(7, &mut rng).unwrap());
    }
    // Duplicate a slice of the workload.
    for i in 0..10 {
        targets.push(targets[i].clone());
    }
    let outcome = BatchSynthesizer::new().synthesize_batch(&targets);
    assert_eq!(outcome.stats.errors, 0);
    assert!(outcome.stats.solver_runs <= 20);
    assert!(outcome.stats.cache_hits >= 10);
    for (target, result) in targets.iter().zip(&outcome.results) {
        assert!(verify_preparation(result.as_ref().unwrap(), target)
            .unwrap()
            .is_correct());
    }
}
