//! Randomized property tests: correctness invariants of the whole stack on
//! randomly generated states and circuits.
//!
//! The offline build cannot depend on `proptest`, so each property is checked
//! on a seeded stream of random cases (the deterministic `qsp-rand` shim);
//! failures reproduce exactly.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use qsp_baselines::{CardinalityReduction, HybridPreparator, QubitReduction, StatePreparator};
use qsp_circuit::apply::prepare_from_ground;
use qsp_circuit::decompose::decompose_circuit;
use qsp_circuit::optimizer::optimize;
use qsp_circuit::{Circuit, Gate};
use qsp_core::{ExactSynthesizer, QspWorkflow};
use qsp_sim::verify_preparation;
use qsp_state::{BasisIndex, SparseState};

const CASES: usize = 32;

/// A uniform superposition over `m` distinct indices of an `n`-qubit
/// register, with 2 ≤ n ≤ 5 and 2 ≤ m ≤ 2^n.
fn random_uniform_state(rng: &mut StdRng) -> SparseState {
    let n = rng.gen_range(2usize..=5);
    let max_m = 1usize << n;
    let m = rng.gen_range(2usize..=max_m);
    let mut all: Vec<u64> = (0..(1u64 << n)).collect();
    all.shuffle(rng);
    all.truncate(m);
    SparseState::uniform_superposition(n, all.into_iter().map(BasisIndex::new))
        .expect("valid uniform state")
}

/// A random circuit over the paper's gate library on 4 qubits.
fn random_circuit(rng: &mut StdRng) -> Circuit {
    let len = rng.gen_range(0usize..20);
    let gates: Vec<Gate> = (0..len)
        .map(|_| {
            let kind = rng.gen_range(0usize..4);
            let a = rng.gen_range(0usize..4);
            let b = rng.gen_range(0usize..4);
            let theta = rng.gen_range(-3.0f64..3.0);
            let target = a % 4;
            let control = if b % 4 == target {
                (target + 1) % 4
            } else {
                b % 4
            };
            match kind {
                0 => Gate::ry(target, theta),
                1 => Gate::x(target),
                2 => Gate::cnot(control, target),
                _ => Gate::cry(control, target, theta),
            }
        })
        .collect();
    Circuit::from_gates(4, gates).expect("gates are valid for 4 qubits")
}

/// Every flow prepares every random uniform state it accepts, and the exact
/// workflow is never worse than any baseline on these small states.
#[test]
fn all_flows_prepare_random_uniform_states() {
    let mut rng = StdRng::seed_from_u64(0x3001);
    for _ in 0..CASES {
        let target = random_uniform_state(&mut rng);
        let ours = QspWorkflow::new()
            .prepare(&target)
            .expect("workflow succeeds");
        let report = verify_preparation(&ours, &target).expect("simulation succeeds");
        assert!(report.is_correct(), "fidelity {}", report.fidelity);

        let baselines: Vec<Box<dyn StatePreparator>> = vec![
            Box::new(CardinalityReduction::new()),
            Box::new(QubitReduction::new()),
            Box::new(HybridPreparator::new()),
        ];
        for baseline in baselines {
            let circuit = baseline.prepare_sparse(&target).expect("baseline succeeds");
            let report = verify_preparation(&circuit, &target).expect("simulation succeeds");
            assert!(report.is_correct(), "{} incorrect", baseline.name());
            assert!(
                ours.cnot_cost() <= circuit.cnot_cost(),
                "ours ({}) worse than {} ({})",
                ours.cnot_cost(),
                baseline.name(),
                circuit.cnot_cost()
            );
        }
    }
}

/// Exact synthesis of small states is idempotent with respect to cost:
/// re-synthesizing the state prepared by its own circuit gives the same
/// optimal CNOT count.
#[test]
fn exact_synthesis_cost_is_stable() {
    let mut rng = StdRng::seed_from_u64(0x3002);
    let mut checked = 0usize;
    while checked < CASES {
        let target = random_uniform_state(&mut rng);
        if target.cardinality() > 16 || target.num_qubits() > 4 {
            continue;
        }
        checked += 1;
        let synthesizer = ExactSynthesizer::new();
        let first = synthesizer
            .synthesize_request(&qsp_core::SynthesisRequest::new(target.clone()))
            .expect("synthesis succeeds");
        let prepared = prepare_from_ground(&first.circuit).expect("circuit applies");
        let second = synthesizer.synthesize_request(&qsp_core::SynthesisRequest::new(
            prepared.normalize().expect("normalizable"),
        ));
        if let Ok(second) = second {
            assert_eq!(first.cnot_cost, second.cnot_cost);
        }
    }
}

/// Lowering to {Ry, X, CNOT} and peephole optimization never change the
/// prepared state, and optimization never increases the CNOT cost.
#[test]
fn lowering_and_optimization_preserve_semantics() {
    let mut rng = StdRng::seed_from_u64(0x3003);
    for _ in 0..CASES {
        let circuit = random_circuit(&mut rng);
        let reference = prepare_from_ground(&circuit).expect("circuit applies");

        let lowered = decompose_circuit(&circuit).expect("lowering succeeds");
        let lowered_state = prepare_from_ground(&lowered).expect("lowered circuit applies");
        assert!(lowered_state.approx_eq(&reference, 1e-6));
        assert_eq!(lowered.cnot_gate_count(), circuit.cnot_cost());

        let (optimized, _) = optimize(&circuit);
        let optimized_state = prepare_from_ground(&optimized).expect("optimized circuit applies");
        assert!(optimized_state.approx_eq(&reference, 1e-6));
        assert!(optimized.cnot_cost() <= circuit.cnot_cost());
    }
}

/// A circuit followed by its inverse is the identity on the ground state.
#[test]
fn circuit_inverse_round_trips() {
    let mut rng = StdRng::seed_from_u64(0x3004);
    for _ in 0..CASES {
        let circuit = random_circuit(&mut rng);
        let state = prepare_from_ground(&circuit).expect("circuit applies");
        let back = qsp_circuit::apply_circuit(&state, &circuit.inverse()).expect("inverse applies");
        assert!(back.is_ground_state(1e-6));
    }
}
