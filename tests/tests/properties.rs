//! Property-based integration tests (proptest): correctness invariants of the
//! whole stack on randomly generated states and circuits.

use proptest::prelude::*;

use qsp_baselines::{CardinalityReduction, HybridPreparator, QubitReduction, StatePreparator};
use qsp_circuit::apply::prepare_from_ground;
use qsp_circuit::decompose::decompose_circuit;
use qsp_circuit::optimizer::optimize;
use qsp_circuit::{Circuit, Gate};
use qsp_core::{ExactSynthesizer, QspWorkflow};
use qsp_sim::verify_preparation;
use qsp_state::{BasisIndex, SparseState};

/// Strategy: a uniform superposition over `m` distinct indices of an
/// `n`-qubit register, with 2 ≤ n ≤ 5 and 2 ≤ m ≤ 2^n.
fn uniform_state_strategy() -> impl Strategy<Value = SparseState> {
    (2usize..=5)
        .prop_flat_map(|n| {
            let max_m = 1usize << n;
            (Just(n), 2usize..=max_m)
        })
        .prop_flat_map(|(n, m)| {
            proptest::sample::subsequence((0..(1u64 << n)).collect::<Vec<u64>>(), m)
                .prop_map(move |indices| {
                    SparseState::uniform_superposition(
                        n,
                        indices.into_iter().map(BasisIndex::new),
                    )
                    .expect("valid uniform state")
                })
        })
}

/// Strategy: a random circuit over the paper's gate library.
fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    let gate = (0usize..4, 0usize..4, 0usize..4, -3.0f64..3.0).prop_map(
        |(kind, a, b, theta)| {
            let target = a % 4;
            let control = if b % 4 == target { (target + 1) % 4 } else { b % 4 };
            match kind {
                0 => Gate::ry(target, theta),
                1 => Gate::x(target),
                2 => Gate::cnot(control, target),
                _ => Gate::cry(control, target, theta),
            }
        },
    );
    proptest::collection::vec(gate, 0..20).prop_map(|gates| {
        Circuit::from_gates(4, gates).expect("gates are valid for 4 qubits")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every flow prepares every random uniform state it accepts, and the
    /// exact workflow is never worse than any baseline on these small states.
    #[test]
    fn all_flows_prepare_random_uniform_states(target in uniform_state_strategy()) {
        let ours = QspWorkflow::new().prepare(&target).expect("workflow succeeds");
        let report = verify_preparation(&ours, &target).expect("simulation succeeds");
        prop_assert!(report.is_correct(), "fidelity {}", report.fidelity);

        let baselines: Vec<Box<dyn StatePreparator>> = vec![
            Box::new(CardinalityReduction::new()),
            Box::new(QubitReduction::new()),
            Box::new(HybridPreparator::new()),
        ];
        for baseline in baselines {
            let circuit = baseline.prepare(&target).expect("baseline succeeds");
            let report = verify_preparation(&circuit, &target).expect("simulation succeeds");
            prop_assert!(report.is_correct(), "{} incorrect", baseline.name());
            prop_assert!(
                ours.cnot_cost() <= circuit.cnot_cost(),
                "ours ({}) worse than {} ({})",
                ours.cnot_cost(),
                baseline.name(),
                circuit.cnot_cost()
            );
        }
    }

    /// Exact synthesis of small states is idempotent with respect to cost:
    /// re-synthesizing the state prepared by its own circuit gives the same
    /// optimal CNOT count.
    #[test]
    fn exact_synthesis_cost_is_stable(target in uniform_state_strategy()) {
        prop_assume!(target.cardinality() <= 16 && target.num_qubits() <= 4);
        let synthesizer = ExactSynthesizer::new();
        let first = synthesizer.synthesize(&target).expect("synthesis succeeds");
        let prepared = prepare_from_ground(&first.circuit).expect("circuit applies");
        let second = synthesizer.synthesize(&prepared.normalize().expect("normalizable"));
        if let Ok(second) = second {
            prop_assert_eq!(first.cnot_cost, second.cnot_cost);
        }
    }

    /// Lowering to {Ry, X, CNOT} and peephole optimization never change the
    /// prepared state, and optimization never increases the CNOT cost.
    #[test]
    fn lowering_and_optimization_preserve_semantics(circuit in circuit_strategy()) {
        let reference = prepare_from_ground(&circuit).expect("circuit applies");

        let lowered = decompose_circuit(&circuit).expect("lowering succeeds");
        let lowered_state = prepare_from_ground(&lowered).expect("lowered circuit applies");
        prop_assert!(lowered_state.approx_eq(&reference, 1e-6));
        prop_assert_eq!(lowered.cnot_gate_count(), circuit.cnot_cost());

        let (optimized, _) = optimize(&circuit);
        let optimized_state = prepare_from_ground(&optimized).expect("optimized circuit applies");
        prop_assert!(optimized_state.approx_eq(&reference, 1e-6));
        prop_assert!(optimized.cnot_cost() <= circuit.cnot_cost());
    }

    /// A circuit followed by its inverse is the identity on the ground state.
    #[test]
    fn circuit_inverse_round_trips(circuit in circuit_strategy()) {
        let state = prepare_from_ground(&circuit).expect("circuit applies");
        let back = qsp_circuit::apply_circuit(&state, &circuit.inverse()).expect("inverse applies");
        prop_assert!(back.is_ground_state(1e-6));
    }
}
