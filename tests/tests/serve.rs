//! Workspace-level serving-layer tests: the service must agree CNOT-for-CNOT
//! with the sequential workflow and compose with the cache snapshot story.

use std::time::Duration;

use qsp_core::{BatchSynthesizer, QspWorkflow, SynthesisRequest};
use qsp_serve::{Response, SchedulerConfig, ServiceConfig, Shutdown, SynthesisService};
use qsp_state::generators::{self, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

const HANG: Duration = Duration::from_secs(120);

#[test]
fn service_costs_match_the_sequential_workflow_on_a_seeded_mix() {
    let mut rng = StdRng::seed_from_u64(4242);
    let mut targets = Vec::new();
    for i in 0..24 {
        let n = 4 + (i % 4);
        targets.push(generators::random_uniform_state(n, n + 1, &mut rng).unwrap());
        if i % 5 == 4 {
            // Skewed repeats so dedup has something to do.
            targets.push(targets[i / 2].clone());
        }
    }
    targets.push(generators::ghz(6).unwrap());
    targets.push(generators::w_state(5).unwrap());

    let workflow = QspWorkflow::new();
    let service = SynthesisService::start(
        ServiceConfig::default()
            .with_queue_capacity(targets.len())
            .with_scheduler(
                SchedulerConfig::default()
                    .with_max_batch(8)
                    .with_max_wait(Duration::from_millis(1))
                    .with_workers(4),
            ),
    );
    let handles: Vec<_> = targets
        .iter()
        .map(|t| {
            service
                .submit(SynthesisRequest::new(t.clone()))
                .handle()
                .expect("accepted")
        })
        .collect();
    for (target, handle) in targets.iter().zip(&handles) {
        let Some(Response::Completed(served)) = handle.wait_timeout(HANG) else {
            panic!("request did not complete");
        };
        let sequential = workflow
            .synthesize_request(&SynthesisRequest::new(target.clone()))
            .unwrap();
        assert_eq!(
            served.cnot_cost, sequential.cnot_cost,
            "service CNOT cost diverged from the sequential workflow"
        );
        let report = qsp_sim::verify_preparation(&served.circuit, target).unwrap();
        assert!(report.is_correct());
    }
    let stats = service.shutdown(Shutdown::Drain);
    assert_eq!(stats.completed as usize, targets.len());
    assert!(
        stats.deduped + stats.cache_hits > 0,
        "the repeated targets must be served without fresh solves"
    );
    assert!((stats.solver_runs as usize) < targets.len());
}

#[test]
fn service_shares_a_warm_cache_with_the_batch_engine() {
    let dir = std::env::temp_dir().join("qsp_serve_warm_test");
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot = dir.join("warm.json");

    // An offline batch run solves the classes and persists them.
    let offline = BatchSynthesizer::new();
    let targets = [
        Workload::Dicke { n: 5, k: 2 }.instantiate().unwrap(),
        generators::ghz(6).unwrap(),
    ];
    let offline_requests: Vec<_> = targets
        .iter()
        .map(|t| SynthesisRequest::new(t.clone()))
        .collect();
    let outcome = offline.synthesize_requests(&offline_requests);
    assert_eq!(outcome.stats.errors, 0);
    offline.save_cache_snapshot(&snapshot).unwrap();

    // A fresh service warm-starts from the snapshot through the shared
    // engine: no solver runs for the same traffic.
    let engine = BatchSynthesizer::new();
    engine.cache().merge_snapshot(&snapshot).unwrap();
    let service = SynthesisService::with_engine(
        engine,
        16,
        SchedulerConfig::default()
            .with_max_batch(4)
            .with_max_wait(Duration::from_millis(1))
            .with_workers(2),
    );
    let handles: Vec<_> = targets
        .iter()
        .map(|t| {
            service
                .submit(SynthesisRequest::new(t.clone()))
                .handle()
                .expect("accepted")
        })
        .collect();
    for (target, handle) in targets.iter().zip(&handles) {
        let Some(Response::Completed(served)) = handle.wait_timeout(HANG) else {
            panic!("request did not complete");
        };
        let report = qsp_sim::verify_preparation(&served.circuit, target).unwrap();
        assert!(report.is_correct());
    }
    let stats = service.shutdown(Shutdown::Drain);
    assert_eq!(stats.solver_runs, 0, "warm cache must serve everything");
    assert_eq!(stats.cache_hits, 2);
    std::fs::remove_file(&snapshot).ok();
}
