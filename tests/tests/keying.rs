//! Keying-soundness suite for the invariant canonicalization pipeline —
//! the acceptance criteria of the unified keying refactor:
//!
//! * **Randomized soundness**: random permutation + flip witnesses applied
//!   to random sparse *and* dense states up to 8 qubits must key equal with
//!   mutually consistent witnesses (either member's solved circuit
//!   reconstructs the other, CNOT-for-CNOT), while states with genuinely
//!   different invariant spectra must key different.
//! * **Wide-register regression**: an 8-qubit equivalent pair that the old
//!   5-qubit exhaustive-permutation cap solved *twice* now solves one
//!   representative (`solver_runs == 1`) and reconstructs the other with
//!   bit-identical `cnot_cost`.
//! * **Coverage observability**: the `keys_exhaustive` /
//!   `keys_orbit_pruned` / `keys_greedy` / `keys_sig_fast_path` counters
//!   tally every keyed target, in both `BatchStats` and the serve layer's
//!   `ServiceStats`.
//! * **Signature-collision soundness**: adversarial pairs with equal Stage 0
//!   signatures but genuinely different classes (C6 vs. C3+C3 edge states —
//!   WL-indistinguishable 2-regular graphs) must stay apart through the
//!   batch engine, the serve layer and a cache snapshot round-trip.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qsp_core::{
    BatchOptions, BatchSynthesizer, KeyCoverage, Provenance, SynthesisRequest, WorkflowConfig,
};
use qsp_serve::{SchedulerConfig, Shutdown, SynthesisService};
use qsp_sim::verify_preparation;
use qsp_state::{generators, BasisIndex, SparseState};

/// A uniformly random permutation + flip-mask witness on `n` qubits.
fn random_witness(rng: &mut StdRng, n: usize) -> (Vec<usize>, u64) {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..(i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    (perm, rng.gen_range(0..(1u64 << n)))
}

fn transformed(state: &SparseState, perm: &[usize], mask: u64) -> SparseState {
    let mut out = state.permute_qubits(perm).unwrap();
    for qubit in 0..state.num_qubits() {
        if mask >> qubit & 1 == 1 {
            out = out.apply_x(qubit).unwrap();
        }
    }
    out
}

#[test]
fn random_witnesses_key_equal_with_mutually_consistent_witnesses() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let engine = BatchSynthesizer::new();
    for n in 3..=8usize {
        for round in 0..6 {
            // Alternate sparse (m ≈ n) and dense-ish (m ≈ 2^(n-1)) supports.
            let base = if round % 2 == 0 {
                generators::random_uniform_state(n, n.min(6), &mut rng).unwrap()
            } else {
                generators::random_uniform_state(n, (1 << (n - 1)).min(20), &mut rng).unwrap()
            };
            let (perm, mask) = random_witness(&mut rng, n);
            let variant = transformed(&base, &perm, mask);

            // Under tiered keying either member may take the signature
            // fast path (fresh signature or raw anchor match) or pay the
            // collision tier — the engine's interner persists across
            // rounds, so even a "fresh" base can collide with an earlier
            // round's anchor. What must hold regardless of tier: the
            // equivalent pair keys equal with consistent witnesses.
            let class_a = engine.canonical_class(&base).unwrap();
            let class_b = engine.canonical_class(&variant).unwrap();
            if class_a.coverage == KeyCoverage::Greedy || class_b.coverage == KeyCoverage::Greedy {
                // Greedy keys are sound but may split classes; nothing more
                // to assert here (the budget test below pins this path).
                continue;
            }
            assert_eq!(
                class_a.key, class_b.key,
                "equivalent states must key equal (n={n} round={round})"
            );

            // Mutually consistent witnesses: solving either member's state
            // and rebuilding through the witness pair prepares the *other*
            // member at the same CNOT cost.
            let solved = engine.solve_class(&class_a.key, &class_a.transform, &base);
            let own = BatchSynthesizer::reconstruct_for(&solved, &class_a.transform).unwrap();
            let other = BatchSynthesizer::reconstruct_for(&solved, &class_b.transform).unwrap();
            assert!(verify_preparation(&own, &base).unwrap().is_correct());
            assert!(verify_preparation(&other, &variant).unwrap().is_correct());
            assert_eq!(own.cnot_cost(), other.cnot_cost());
        }
    }
}

#[test]
fn different_invariant_spectra_key_different() {
    let engine = BatchSynthesizer::new();
    // Same cardinality, same width — but different pairwise Hamming
    // structure (an equilateral triangle of distances 2-2-2 vs. a 1-2-1
    // chain), which no permutation/flip witness can reconcile.
    let triangle =
        SparseState::uniform_superposition(4, [0b0001u64, 0b0010, 0b0100].map(BasisIndex::new))
            .unwrap();
    let chain =
        SparseState::uniform_superposition(4, [0b0001u64, 0b0011, 0b0111].map(BasisIndex::new))
            .unwrap();
    let class_triangle = engine.canonical_class(&triangle).unwrap();
    let class_chain = engine.canonical_class(&chain).unwrap();
    assert_ne!(class_triangle.key, class_chain.key);
    assert_ne!(
        class_triangle.key.signature(),
        class_chain.key.signature(),
        "the Stage 0 signature alone must separate different spectra"
    );

    // Different amplitude multisets fork the signature too.
    let mut rng = StdRng::seed_from_u64(99);
    let uniform = generators::random_uniform_state(5, 4, &mut rng).unwrap();
    let weighted = SparseState::from_amplitudes(
        5,
        uniform
            .iter()
            .enumerate()
            .map(|(i, (index, _))| (index, if i == 0 { 0.8 } else { 0.3464 })),
    )
    .unwrap();
    let class_u = engine.canonical_class(&uniform).unwrap();
    let class_w = engine.canonical_class(&weighted).unwrap();
    assert_ne!(class_u.key.signature(), class_w.key.signature());
}

/// The wide-register regression pair: an 8-qubit sparse state and a
/// permuted+flipped equivalent. Under the old 5-qubit exhaustive cap these
/// keyed apart (greedy flips on the identity permutation cannot undo a
/// relabelling), so a batch containing both ran the solver twice.
fn eight_qubit_pair() -> (SparseState, SparseState) {
    let base = SparseState::uniform_superposition(
        8,
        [
            0b0000_0001u64,
            0b0000_0110,
            0b0011_1000,
            0b1100_0000,
            0b1010_1010,
        ]
        .map(BasisIndex::new),
    )
    .unwrap();
    let perm = vec![5, 2, 7, 0, 3, 6, 1, 4];
    let variant = transformed(&base, &perm, 0b0110_1001);
    (base, variant)
}

#[test]
fn eight_qubit_equivalent_pair_dedups_to_one_solve() {
    let (base, variant) = eight_qubit_pair();
    let engine = BatchSynthesizer::new();
    let requests = vec![
        SynthesisRequest::new(base.clone()),
        SynthesisRequest::new(variant.clone()),
    ];
    let outcome = engine.synthesize_requests(&requests);
    assert_eq!(outcome.stats.errors, 0);
    assert_eq!(
        outcome.stats.solver_runs, 1,
        "the 8-qubit equivalent pair must share one solve"
    );
    assert_eq!(outcome.stats.cache_hits, 1);
    // Tiered keying: one member anchors its fresh signature on Stage 0
    // alone, the other collides and runs the orbit enumeration — never the
    // greedy fallback.
    assert_eq!(outcome.stats.keys_greedy, 0);
    assert_eq!(outcome.stats.keys_sig_fast_path, 1);
    assert_eq!(
        outcome.stats.keys_exhaustive + outcome.stats.keys_orbit_pruned,
        1
    );

    let first = outcome.reports[0].as_ref().unwrap();
    let second = outcome.reports[1].as_ref().unwrap();
    assert!(matches!(
        second.provenance,
        Provenance::ReconstructedFromBatchRep { .. } | Provenance::Solved
    ));
    assert!(
        first.provenance.is_fresh_solve() != second.provenance.is_fresh_solve(),
        "exactly one member is the fresh solve"
    );
    assert_eq!(
        first.cnot_cost, second.cnot_cost,
        "reconstruction must be bit-identical in CNOT cost"
    );
    assert!(verify_preparation(&first.circuit, &base)
        .unwrap()
        .is_correct());
    assert!(verify_preparation(&second.circuit, &variant)
        .unwrap()
        .is_correct());
}

#[test]
fn eight_qubit_pair_attaches_in_flight_on_the_serve_layer() {
    let (base, variant) = eight_qubit_pair();
    let service =
        SynthesisService::with_engine(BatchSynthesizer::new(), 16, SchedulerConfig::default());
    let a = service
        .submit(SynthesisRequest::new(base))
        .handle()
        .unwrap();
    let b = service
        .submit(SynthesisRequest::new(variant))
        .handle()
        .unwrap();
    let response_a = a.wait();
    let response_b = b.wait();
    let report_a = response_a.report().unwrap();
    let report_b = response_b.report().unwrap();
    assert_eq!(report_a.cnot_cost, report_b.cnot_cost);
    let stats = service.shutdown(Shutdown::Drain);
    assert_eq!(stats.solver_runs, 1, "one solve across the equivalent pair");
    assert_eq!(stats.keys_greedy, 0);
    assert_eq!(stats.keys_sig_fast_path, 1);
    assert_eq!(stats.keys_exhaustive + stats.keys_orbit_pruned, 1);
}

#[test]
fn a_starved_budget_degrades_to_greedy_and_the_counters_show_it() {
    // With an orbit budget of 1 every *collision-tier* canonicalization
    // (beyond trivial single-candidate spaces) takes the greedy path; dedup
    // of *exact* duplicates must still work (they never leave the signature
    // fast path), and the degradation must be observable.
    let (base, variant) = eight_qubit_pair();
    let engine = BatchSynthesizer::with_options(
        WorkflowConfig::default(),
        BatchOptions::default().with_orbit_node_budget(1),
    );
    let requests = vec![
        SynthesisRequest::new(base.clone()),
        SynthesisRequest::new(variant),
        SynthesisRequest::new(base), // exact duplicate of the first
    ];
    let outcome = engine.synthesize_requests(&requests);
    assert_eq!(outcome.stats.errors, 0);
    assert_eq!(
        outcome.stats.keys_greedy, 1,
        "only the colliding variant pays the starved canonicalization"
    );
    assert_eq!(
        outcome.stats.keys_sig_fast_path, 2,
        "the base and its exact duplicate never leave the fast path"
    );
    assert!(
        outcome.stats.solver_runs <= 2,
        "exact duplicates must still collapse under greedy keys"
    );
    // Every report still prepares its own target.
    let costs: Vec<usize> = outcome
        .reports
        .iter()
        .map(|r| r.as_ref().unwrap().cnot_cost)
        .collect();
    assert_eq!(costs[0], costs[2]);
}

#[test]
fn coverage_counters_partition_the_batch() {
    let mut rng = StdRng::seed_from_u64(7171);
    let mut requests = Vec::new();
    // Fresh signatures (GHZ widths and random supports) take the signature
    // fast path; their flipped/relabelled equivalents collide and pay the
    // full tier — GHZ's single orbit keys exhaustively, scattered random
    // colors key orbit-pruned.
    for n in 3..=6 {
        let ghz = generators::ghz(n).unwrap();
        let identity: Vec<usize> = (0..n).collect();
        requests.push(SynthesisRequest::new(transformed(&ghz, &identity, 0b1)));
        requests.push(SynthesisRequest::new(ghz));
    }
    for _ in 0..4 {
        let base = generators::random_uniform_state(6, 5, &mut rng).unwrap();
        let (perm, mask) = random_witness(&mut rng, 6);
        requests.push(SynthesisRequest::new(transformed(&base, &perm, mask)));
        requests.push(SynthesisRequest::new(base));
    }
    let engine = BatchSynthesizer::new();
    let outcome = engine.synthesize_requests(&requests);
    assert_eq!(outcome.stats.errors, 0);
    assert_eq!(
        outcome.stats.keys_exhaustive
            + outcome.stats.keys_orbit_pruned
            + outcome.stats.keys_greedy
            + outcome.stats.keys_sig_fast_path,
        requests.len(),
        "every target is tallied exactly once"
    );
    assert_eq!(
        outcome.stats.keys_sig_fast_path, 8,
        "each class's first-seen member anchors on Stage 0 alone"
    );
    assert!(outcome.stats.keys_exhaustive >= 4, "GHZ keys exhaustively");
    assert_eq!(outcome.stats.keys_greedy, 0);
}

/// Uniform edge-indicator state of a graph on 6 vertices: one basis state
/// per edge with both endpoint bits set. C6 and C3+C3 are 2-regular and
/// WL-indistinguishable, so their states share a Stage 0 signature while
/// being genuinely inequivalent — the adversarial input for the tiered
/// fast path.
fn edge_state(edges: &[(usize, usize)]) -> SparseState {
    let indices: Vec<BasisIndex> = edges
        .iter()
        .map(|&(u, v)| BasisIndex::new((1u64 << u) | (1u64 << v)))
        .collect();
    SparseState::uniform_superposition(6, indices).unwrap()
}

fn c6_state() -> SparseState {
    edge_state(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
}

fn c3c3_state() -> SparseState {
    edge_state(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
}

#[test]
fn colliding_signatures_stay_apart_in_the_batch() {
    let engine = BatchSynthesizer::new();
    let c6 = c6_state();
    let c3c3 = c3c3_state();
    let class_c6 = engine.canonical_class(&c6).unwrap();
    let class_c3c3 = engine.canonical_class(&c3c3).unwrap();
    assert_eq!(
        class_c6.key.signature(),
        class_c3c3.key.signature(),
        "the pair must actually collide at Stage 0 to be adversarial"
    );
    assert_ne!(class_c6.key, class_c3c3.key, "the classes must stay apart");

    let outcome = engine.synthesize_requests(&[
        SynthesisRequest::new(c6.clone()),
        SynthesisRequest::new(c3c3.clone()),
    ]);
    assert_eq!(outcome.stats.errors, 0);
    assert_eq!(
        outcome.stats.solver_runs, 2,
        "a signature collision must never merge inequivalent targets"
    );
    let report_c6 = outcome.reports[0].as_ref().unwrap();
    let report_c3c3 = outcome.reports[1].as_ref().unwrap();
    assert!(verify_preparation(&report_c6.circuit, &c6)
        .unwrap()
        .is_correct());
    assert!(verify_preparation(&report_c3c3.circuit, &c3c3)
        .unwrap()
        .is_correct());
}

#[test]
fn colliding_signatures_stay_apart_through_a_snapshot_round_trip() {
    let c6 = c6_state();
    let c3c3 = c3c3_state();
    let warm = BatchSynthesizer::new();
    let outcome = warm.synthesize_requests(&[
        SynthesisRequest::new(c6.clone()),
        SynthesisRequest::new(c3c3.clone()),
    ]);
    assert_eq!(outcome.stats.errors, 0);
    let cost_c6 = outcome.reports[0].as_ref().unwrap().cnot_cost;
    let cost_c3c3 = outcome.reports[1].as_ref().unwrap().cnot_cost;

    let dir = std::env::temp_dir().join("qsp_keying_collision_snapshot");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snapshot.json");
    assert_eq!(warm.save_cache_snapshot(&path).unwrap(), 2);

    // The cold engine adopts both persisted keys as interner anchors for
    // the *same* signature bucket; each resubmission must land on its own
    // cached class, not its collision partner's.
    let cold = BatchSynthesizer::new();
    assert_eq!(cold.load_cache_snapshot(&path).unwrap(), 2);
    let warmed = cold.synthesize_requests(&[
        SynthesisRequest::new(c6.clone()),
        SynthesisRequest::new(c3c3.clone()),
    ]);
    assert_eq!(warmed.stats.errors, 0);
    assert_eq!(warmed.stats.solver_runs, 0, "both classes must warm-hit");
    assert_eq!(warmed.stats.cache_hits, 2);
    let report_c6 = warmed.reports[0].as_ref().unwrap();
    let report_c3c3 = warmed.reports[1].as_ref().unwrap();
    assert_eq!(report_c6.cnot_cost, cost_c6);
    assert_eq!(report_c3c3.cnot_cost, cost_c3c3);
    assert!(verify_preparation(&report_c6.circuit, &c6)
        .unwrap()
        .is_correct());
    assert!(verify_preparation(&report_c3c3.circuit, &c3c3)
        .unwrap()
        .is_correct());
    std::fs::remove_file(&path).ok();
}

#[test]
fn colliding_signatures_stay_apart_on_the_serve_layer() {
    let c6 = c6_state();
    let c3c3 = c3c3_state();
    let service =
        SynthesisService::with_engine(BatchSynthesizer::new(), 16, SchedulerConfig::default());
    let a = service
        .submit(SynthesisRequest::new(c6.clone()))
        .handle()
        .unwrap();
    let b = service
        .submit(SynthesisRequest::new(c3c3.clone()))
        .handle()
        .unwrap();
    let response_a = a.wait();
    let response_b = b.wait();
    let report_a = response_a.report().unwrap();
    let report_b = response_b.report().unwrap();
    assert!(verify_preparation(&report_a.circuit, &c6)
        .unwrap()
        .is_correct());
    assert!(verify_preparation(&report_b.circuit, &c3c3)
        .unwrap()
        .is_correct());
    let stats = service.shutdown(Shutdown::Drain);
    assert_eq!(stats.completed, 2);
    assert_eq!(
        stats.solver_runs, 2,
        "in-flight dedup must not attach across the signature collision"
    );
    assert_eq!(stats.deduped, 0);
}
