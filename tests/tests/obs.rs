//! Workspace-level observability tests: the trace ring under real
//! multi-thread contention, and the serve path's span tree accounting for
//! (essentially all of) each request's measured end-to-end latency.

use std::time::Duration;

use qsp_core::{BatchOptions, BatchSynthesizer, ObsOptions, SynthesisRequest};
use qsp_obs::{RequestTrace, SpanKind, TraceId, Tracer};
use qsp_serve::{Response, SchedulerConfig, ServiceConfig, Shutdown, SynthesisService};
use qsp_state::generators::{self, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const HANG: Duration = Duration::from_secs(120);

/// The index of a kind in the pipeline taxonomy (stable across runs).
fn kind_index(kind: SpanKind) -> u64 {
    SpanKind::ALL.iter().position(|&k| k == kind).unwrap() as u64
}

/// Builds the self-checking trace for `id`: every span's payload is a
/// function of the trace id and the span's kind, so a reader can detect a
/// torn read (fields from two different writers) by recomputing it.
fn self_checking_trace(id: u64) -> RequestTrace {
    let mut trace = RequestTrace::new(TraceId::from_raw(id));
    for kind in [SpanKind::Key, SpanKind::Solve, SpanKind::Reconstruct] {
        trace.push(
            kind,
            Duration::from_nanos(id),
            Duration::from_nanos(id * 3 + kind_index(kind)),
        );
    }
    trace
}

#[test]
fn trace_ring_survives_seeded_multi_thread_contention() {
    const THREADS: u64 = 8;
    const TRACES_PER_THREAD: u64 = 400;
    const SAMPLE_EVERY: u64 = 2;
    let tracer = Tracer::new(true, SAMPLE_EVERY, 256);
    let mut rng = StdRng::seed_from_u64(0x0B5);

    // Seeded, per-thread-disjoint id schedules (shuffled so neighbouring
    // ids — which share ring slots — collide across threads).
    let schedules: Vec<Vec<u64>> = (0..THREADS)
        .map(|t| {
            let mut ids: Vec<u64> = (0..TRACES_PER_THREAD)
                .map(|i| 1 + t * TRACES_PER_THREAD + i)
                .collect();
            for i in (1..ids.len()).rev() {
                ids.swap(i, rng.gen_range(0..=i));
            }
            ids
        })
        .collect();
    let sampled_traces: u64 = schedules
        .iter()
        .flatten()
        .filter(|id| *id % SAMPLE_EVERY == 0)
        .count() as u64;

    std::thread::scope(|scope| {
        let tracer = &tracer;
        for ids in &schedules {
            scope.spawn(move || {
                for &id in ids {
                    let trace = self_checking_trace(id);
                    assert_eq!(tracer.record_trace(&trace), id % SAMPLE_EVERY == 0);
                }
            });
        }
    });

    // Every offered span of a sampled trace was either written or counted
    // as dropped by a full-lap race — none vanished.
    let ring = tracer.ring();
    assert_eq!(ring.recorded() + ring.dropped(), sampled_traces * 3);

    let spans = tracer.ring().read();
    assert!(!spans.is_empty());
    assert!(spans.len() <= ring.capacity());
    let mut last_order = None;
    for recorded in &spans {
        let id = recorded.trace.as_u64();
        // Head sampling honoured: only sampled trace ids ever reach the ring.
        assert_eq!(id % SAMPLE_EVERY, 0, "unsampled trace id {id} in the ring");
        // No torn spans: the payload is exactly what this id's writer wrote.
        assert_eq!(recorded.span.start, Duration::from_nanos(id));
        assert_eq!(
            recorded.span.duration,
            Duration::from_nanos(id * 3 + kind_index(recorded.span.kind)),
            "torn span payload for trace {id}"
        );
        // Oldest-first drain: global write order is strictly increasing.
        assert!(last_order < Some(recorded.order));
        last_order = Some(recorded.order);
    }
}

#[test]
fn trace_ring_eviction_is_oldest_first_at_capacity() {
    let tracer = Tracer::new(true, 1, 16);
    let total = 50u64;
    for id in 1..=total {
        let mut trace = RequestTrace::new(TraceId::from_raw(id));
        trace.push(SpanKind::Solve, Duration::ZERO, Duration::from_nanos(id));
        assert!(tracer.record_trace(&trace));
    }
    let spans = tracer.ring().read();
    // Exactly the newest `capacity` single-span traces survive, in order.
    let capacity = tracer.ring().capacity() as u64;
    assert_eq!(spans.len() as u64, capacity);
    let ids: Vec<u64> = spans.iter().map(|s| s.trace.as_u64()).collect();
    let expected: Vec<u64> = (total - capacity + 1..=total).collect();
    assert_eq!(ids, expected);
}

#[test]
fn serve_span_tree_covers_the_measured_end_to_end_latency() {
    let mut rng = StdRng::seed_from_u64(9091);
    let mut targets = Vec::new();
    for i in 0..18 {
        let n = 4 + (i % 3);
        targets.push(generators::random_uniform_state(n, n + 1, &mut rng).unwrap());
        if i % 4 == 3 {
            targets.push(targets[i / 2].clone()); // dedup/cache traffic
        }
    }
    targets.push(generators::ghz(5).unwrap());

    let service = SynthesisService::start(
        ServiceConfig::default()
            .with_queue_capacity(targets.len())
            .with_scheduler(
                SchedulerConfig::default()
                    .with_max_batch(4)
                    .with_max_wait(Duration::from_millis(1))
                    .with_workers(3),
            )
            .with_batch(
                BatchOptions::default().with_obs(
                    ObsOptions::default()
                        .with_tracing(true)
                        .with_ring_capacity(512),
                ),
            ),
    );
    let handles: Vec<_> = targets
        .iter()
        .map(|t| {
            service
                .submit(SynthesisRequest::new(t.clone()))
                .handle()
                .expect("accepted")
        })
        .collect();
    for handle in &handles {
        let Some(Response::Completed(report)) = handle.wait_timeout(HANG) else {
            panic!("request did not complete");
        };
        let trace = report.trace.as_ref().expect("served reports carry a trace");
        // The six pipeline stages, in order.
        let kinds: Vec<SpanKind> = trace.spans.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, SpanKind::ALL);
        // The spans are contiguous (each starts where the previous ended)…
        let mut cursor = Duration::ZERO;
        for span in &trace.spans {
            assert_eq!(span.start, cursor, "span tree has a gap or overlap");
            cursor += span.duration;
        }
        // …so they must account for ≥ 95% of the measured end-to-end
        // latency (by construction they sum to it exactly).
        let covered = trace.span_total();
        let total = report.timings.total;
        assert!(
            covered.as_secs_f64() >= total.as_secs_f64() * 0.95,
            "span tree covers {covered:?} of {total:?}"
        );
        assert!(covered <= total, "spans exceed the end-to-end latency");
    }

    // The same traces were head-sampled into the hub's ring (modulus 1).
    let snapshot = service.shutdown(Shutdown::Drain);
    assert_eq!(snapshot.completed as usize, targets.len());
    let obs = service.obs_snapshot();
    assert!(obs.tracer_enabled);
    assert!(obs.spans_recorded >= 6 * targets.len() as u64);
}

#[test]
fn batch_requests_carry_traces_and_feed_the_registry() {
    let engine = BatchSynthesizer::with_options(
        Default::default(),
        BatchOptions::default()
            .with_threads(2)
            .with_obs(ObsOptions::default().with_tracing(true).with_flight(true)),
    );
    let targets: Vec<_> = (0..6)
        .map(|i| {
            Workload::RandomSparse {
                n: 5,
                seed: 300 + (i % 3),
            }
            .instantiate()
            .unwrap()
        })
        .collect();
    let requests: Vec<SynthesisRequest<_>> = targets
        .iter()
        .map(|t| SynthesisRequest::new(t.clone()))
        .collect();
    let outcome = engine.synthesize_requests(&requests);
    assert_eq!(outcome.stats.errors, 0);
    for report in &outcome.reports {
        let report = report.as_ref().unwrap();
        let trace = report.trace.as_ref().expect("batch reports carry a trace");
        assert!(trace.duration_of(SpanKind::Key).is_some());
        assert!(trace.span_total() > Duration::ZERO);
    }

    let snapshot = engine.obs().snapshot();
    let metric = |name: &str| snapshot.metrics.get(name).cloned();
    let Some(targets_metric) = metric("batch.targets") else {
        panic!("batch.targets must be registered");
    };
    assert_eq!(
        targets_metric.value,
        qsp_obs::MetricValue::Counter(targets.len() as u64)
    );
    // Three distinct classes: solver runs + cache hits account for all six.
    let count = |name: &str| match metric(name).map(|m| m.value) {
        Some(qsp_obs::MetricValue::Counter(c)) => c,
        other => panic!("{name}: unexpected {other:?}"),
    };
    assert_eq!(count("batch.solver_runs") + count("batch.cache_hits"), 6);
    // The flight recorder filed one record per fresh solve.
    assert_eq!(snapshot.flights.len() as u64, count("batch.solver_runs"));
}
