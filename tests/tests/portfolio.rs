//! Integration tests for the portfolio solver engine — the acceptance
//! criterion of the `SolverEngine` refactor: the portfolio returns
//! **bit-identical** `cnot_cost` to the sequential A* across the property
//! workloads, from every entry point (exact synthesizer, workflow, batch).
//!
//! This suite drives the **deprecated compatibility wrappers** on purpose,
//! keeping the pre-request-API entry points covered across both solver
//! strategies; the unified `SynthesisRequest` API is exercised by
//! `unified_api.rs`.
#![allow(deprecated)]

use rand::rngs::StdRng;
use rand::SeedableRng;

use qsp_baselines::StatePreparator;
use qsp_core::batch::{BatchOptions, BatchSynthesizer};
use qsp_core::{ExactSynthesizer, QspWorkflow, SearchConfig, SearchStrategy, WorkflowConfig};
use qsp_sim::verify_preparation;
use qsp_state::{generators, SparseState};

fn property_workloads() -> Vec<SparseState> {
    let mut rng = StdRng::seed_from_u64(777);
    let mut targets = vec![
        generators::ghz(4).unwrap(),
        generators::w_state(4).unwrap(),
        generators::dicke(4, 2).unwrap(),
        generators::dicke(4, 1).unwrap(),
        generators::dicke(3, 1).unwrap(),
    ];
    for _ in 0..8 {
        targets.push(generators::random_uniform_state(4, 6, &mut rng).unwrap());
    }
    for m in 2..=5 {
        targets.push(generators::random_uniform_state(4, m, &mut rng).unwrap());
    }
    targets
}

#[test]
fn portfolio_exact_costs_are_bit_identical_to_sequential() {
    let sequential = ExactSynthesizer::new();
    let portfolio = ExactSynthesizer::with_config(SearchConfig::portfolio(4));
    for target in property_workloads() {
        let seq = sequential.synthesize(&target).unwrap();
        let par = portfolio.synthesize(&target).unwrap();
        assert_eq!(
            seq.cnot_cost, par.cnot_cost,
            "portfolio cost diverged on {target}"
        );
        let report = verify_preparation(&par.circuit, &target).unwrap();
        assert!(
            report.is_correct(),
            "portfolio circuit does not prepare {target} (fidelity {})",
            report.fidelity
        );
    }
}

#[test]
fn portfolio_workflow_matches_sequential_workflow_costs() {
    // Wider targets exercise the reduction stages around the exact core; the
    // strategy must ride through the whole workflow.
    let mut rng = StdRng::seed_from_u64(888);
    let mut targets = vec![
        generators::ghz(8).unwrap(),
        generators::w_state(6).unwrap(),
        generators::dicke(5, 2).unwrap(),
    ];
    for n in 6..9 {
        targets.push(generators::random_sparse_state(n, &mut rng).unwrap());
    }
    let sequential = QspWorkflow::new();
    let portfolio =
        QspWorkflow::with_config(WorkflowConfig::with_strategy(SearchStrategy::Portfolio {
            workers: 3,
        }));
    for target in &targets {
        let seq = sequential.prepare(target).unwrap();
        let par = portfolio.prepare(target).unwrap();
        assert_eq!(
            seq.cnot_cost(),
            par.cnot_cost(),
            "workflow costs diverged on {target}"
        );
        assert!(verify_preparation(&par, target).unwrap().is_correct());
    }
}

#[test]
fn batch_engine_rides_the_portfolio_strategy() {
    let targets = vec![
        generators::dicke(4, 2).unwrap(),
        generators::ghz(4).unwrap(),
        generators::dicke(4, 2).unwrap(), // duplicate → cache hit
    ];
    let sequential = BatchSynthesizer::new().synthesize_batch(&targets);
    let portfolio_engine = BatchSynthesizer::with_options(
        WorkflowConfig::with_strategy(SearchStrategy::Portfolio { workers: 3 }),
        BatchOptions::default(),
    );
    let portfolio = portfolio_engine.synthesize_batch(&targets);
    assert_eq!(portfolio.stats.solver_runs, 2);
    assert_eq!(portfolio.stats.cache_hits, 1);
    for (i, (seq, par)) in sequential
        .results
        .iter()
        .zip(&portfolio.results)
        .enumerate()
    {
        assert_eq!(
            seq.as_ref().unwrap().cnot_cost(),
            par.as_ref().unwrap().cnot_cost(),
            "batch target {i} diverged under the portfolio strategy"
        );
        assert!(verify_preparation(par.as_ref().unwrap(), &targets[i])
            .unwrap()
            .is_correct());
    }
}

#[test]
fn degenerate_portfolios_fall_back_to_sequential() {
    // workers = 1 and fully symmetric targets (single distinct variant) must
    // behave exactly like the sequential engine.
    let one_worker = ExactSynthesizer::with_config(SearchConfig::portfolio(1));
    let ghz = generators::ghz(4).unwrap();
    let outcome = one_worker.synthesize(&ghz).unwrap();
    assert_eq!(outcome.cnot_cost, 3);
    assert_eq!(outcome.stats.variants, 1);

    let ground = SparseState::ground_state(4).unwrap();
    let outcome = one_worker.synthesize(&ground).unwrap();
    assert_eq!(outcome.cnot_cost, 0);
}
