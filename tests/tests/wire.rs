//! Workspace-level wire-protocol tests: the TCP loopback path must agree
//! CNOT-for-CNOT with the in-process workflow, tenancy must resolve and
//! throttle over the wire, and frame-level misbehaviour must come back as
//! typed error frames — with byte offsets for malformed JSON.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use qsp_core::QspWorkflow;
use qsp_core::SynthesisRequest;
use qsp_obs::MetricValue;
use qsp_serve::{
    SchedulerConfig, ServiceConfig, Shutdown, SynthesisService, TenantConfig, TenantPolicy,
};
use qsp_state::generators;
use qsp_wire::{codec, ServerFrame, WireClient, WireConfig, WireError, WireServer};

fn quick_scheduler() -> SchedulerConfig {
    SchedulerConfig::default()
        .with_max_batch(8)
        .with_max_wait(Duration::from_millis(1))
        .with_workers(2)
}

fn start_service(config: ServiceConfig) -> Arc<SynthesisService> {
    Arc::new(SynthesisService::start(config))
}

/// A counter sample's value for `name` with the given tenant label.
fn tenant_counter(service: &SynthesisService, name: &str, tenant: &str) -> u64 {
    let snapshot = service.obs_snapshot();
    let sample = snapshot
        .metrics
        .samples
        .iter()
        .find(|s| s.name == name && s.labels.iter().any(|(k, v)| k == "tenant" && v == tenant))
        .unwrap_or_else(|| panic!("{name}{{tenant={tenant}}} must be registered"));
    match &sample.value {
        MetricValue::Counter(c) => *c,
        other => panic!("{name}: expected a counter, got {other:?}"),
    }
}

#[test]
fn loopback_costs_match_the_in_process_workflow() {
    let service = start_service(
        ServiceConfig::default()
            .with_queue_capacity(64)
            .with_scheduler(quick_scheduler()),
    );
    let mut server =
        WireServer::bind("127.0.0.1:0", Arc::clone(&service), WireConfig::new()).unwrap();
    let addr = server.local_addr();

    let targets = vec![
        generators::ghz(5).unwrap(),
        generators::w_state(4).unwrap(),
        generators::dicke(4, 2).unwrap(),
        generators::ghz(5).unwrap(), // repeat: dedup/cache over the wire
    ];
    let workflow = QspWorkflow::new();

    let mut client = WireClient::connect(addr, None).unwrap();
    assert_eq!(client.handshake().tenant, "default");

    // Pipelined: all requests on the wire before any response is read.
    let ids: Vec<u64> = targets
        .iter()
        .map(|t| client.send_request(t, None, None).unwrap())
        .collect();
    let mut responses = Vec::new();
    for _ in &ids {
        responses.push(client.recv().unwrap());
    }
    // Responses may settle out of order; correlate by id.
    for (id, target) in ids.iter().zip(&targets) {
        let frame = responses
            .iter()
            .find(|f| f.request_id() == Some(*id))
            .expect("every request must be answered");
        let ServerFrame::Report {
            cnot_cost, qasm, ..
        } = frame
        else {
            panic!("expected a report for id {id}, got {frame:?}");
        };
        let reference = workflow
            .synthesize_request(&SynthesisRequest::new(target.clone()))
            .unwrap();
        assert_eq!(
            *cnot_cost as usize, reference.cnot_cost,
            "wire-served cost diverged from the in-process workflow"
        );
        assert!(qasm.contains("OPENQASM"), "reports carry the circuit");
    }

    server.shutdown();
    let stats = service.shutdown(Shutdown::Drain);
    assert_eq!(stats.completed, targets.len() as u64);
    assert!(
        stats.deduped + stats.cache_hits > 0,
        "the repeated target must not trigger a second solve"
    );
}

#[test]
fn tenants_resolve_and_unknown_names_fall_back_to_default() {
    let service = start_service(
        ServiceConfig::default()
            .with_queue_capacity(16)
            .with_scheduler(quick_scheduler())
            .with_tenants(
                TenantPolicy::new()
                    .with_tenant(TenantConfig::new("acme").with_weight(3))
                    .with_tenant(TenantConfig::new("zipline")),
            ),
    );
    let mut server =
        WireServer::bind("127.0.0.1:0", Arc::clone(&service), WireConfig::new()).unwrap();
    let addr = server.local_addr();

    let acme = WireClient::connect(addr, Some("acme")).unwrap();
    assert_eq!(acme.handshake().tenant, "acme");
    let stranger = WireClient::connect(addr, Some("nobody")).unwrap();
    assert_eq!(stranger.handshake().tenant, "default");
    let anonymous = WireClient::connect(addr, None).unwrap();
    assert_eq!(anonymous.handshake().tenant, "default");

    // A named tenant's request bills to its labelled metric slice.
    let mut acme = acme;
    let frame = acme.call(&generators::ghz(3).unwrap(), None, None).unwrap();
    assert!(matches!(frame, ServerFrame::Report { .. }));
    assert_eq!(
        tenant_counter(&service, "serve.tenant.submitted", "acme"),
        1
    );
    assert_eq!(
        tenant_counter(&service, "serve.tenant.completed", "acme"),
        1
    );

    server.shutdown();
    service.shutdown(Shutdown::Drain);
}

#[test]
fn zero_deadlines_time_out_over_the_wire() {
    let service = start_service(
        ServiceConfig::default()
            .with_queue_capacity(16)
            .with_scheduler(quick_scheduler()),
    );
    let mut server =
        WireServer::bind("127.0.0.1:0", Arc::clone(&service), WireConfig::new()).unwrap();

    let mut client = WireClient::connect(server.local_addr(), None).unwrap();
    let frame = client
        .call(&generators::ghz(4).unwrap(), Some(0), None)
        .unwrap();
    assert!(
        matches!(frame, ServerFrame::Timeout { .. }),
        "an already-expired deadline must come back as a timeout frame, got {frame:?}"
    );

    server.shutdown();
    let stats = service.shutdown(Shutdown::Drain);
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.solver_runs, 0, "expired requests are never solved");
}

#[test]
fn flooding_a_throttled_tenant_rejects_with_conservation_and_metric_parity() {
    let service = start_service(
        ServiceConfig::default()
            .with_queue_capacity(256)
            .with_scheduler(quick_scheduler())
            .with_tenants(
                TenantPolicy::new()
                    // 2-token burst, negligible refill: from the third
                    // back-to-back request on, admission must throttle.
                    .with_tenant(TenantConfig::new("burst").with_rate(0.001, 2.0)),
            ),
    );
    let mut server =
        WireServer::bind("127.0.0.1:0", Arc::clone(&service), WireConfig::new()).unwrap();

    let mut client = WireClient::connect(server.local_addr(), Some("burst")).unwrap();
    let target = generators::ghz(4).unwrap();
    let total = 8u64;
    let ids: Vec<u64> = (0..total)
        .map(|_| client.send_request(&target, None, None).unwrap())
        .collect();
    let mut reports = 0u64;
    let mut throttled = 0u64;
    for _ in &ids {
        match client.recv().unwrap() {
            ServerFrame::Report { .. } => reports += 1,
            ServerFrame::Rejected { reason, .. } => {
                assert_eq!(reason, "throttled", "rejections must be typed");
                throttled += 1;
            }
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    assert_eq!(reports, 2, "exactly the burst allowance completes");
    assert_eq!(throttled, total - 2);

    server.shutdown();
    let stats = service.shutdown(Shutdown::Drain);
    let tenant = stats
        .tenants
        .iter()
        .find(|t| t.name == "burst")
        .expect("per-tenant stats slice");
    assert_eq!(tenant.submitted, total);
    assert_eq!(tenant.throttled, throttled);
    assert_eq!(tenant.completed, reports);
    assert!(
        tenant.is_conserved(),
        "per-tenant fleet conservation must hold: {tenant:?}"
    );
    // Registry parity: the labelled counters tell the same story as the
    // typed stats, and the per-tenant depth gauge is zero after Drain.
    assert_eq!(
        tenant_counter(&service, "serve.tenant.submitted", "burst"),
        tenant.submitted
    );
    assert_eq!(
        tenant_counter(&service, "serve.tenant.throttled", "burst"),
        tenant.throttled
    );
    assert_eq!(
        tenant_counter(&service, "serve.tenant.completed", "burst"),
        tenant.completed
    );
    assert_eq!(tenant.queue_depth, 0);
    let snapshot = service.obs_snapshot();
    for sample in &snapshot.metrics.samples {
        if sample.name == "serve.tenant.queue_depth" {
            assert_eq!(
                sample.value,
                MetricValue::Gauge(0),
                "tenant queue depth gauges must drain to zero: {sample:?}"
            );
        }
    }
}

#[test]
fn malformed_frames_answer_with_bad_json_and_a_byte_offset() {
    let service = start_service(
        ServiceConfig::default()
            .with_queue_capacity(4)
            .with_scheduler(quick_scheduler()),
    );
    let mut server =
        WireServer::bind("127.0.0.1:0", Arc::clone(&service), WireConfig::new()).unwrap();

    let mut client = WireClient::connect(server.local_addr(), None).unwrap();
    client.send_raw("{\"type\": \"request\", !!}").unwrap();
    let error = client.recv().unwrap_err();
    let WireError::Remote {
        code, byte_offset, ..
    } = error
    else {
        panic!("expected a remote error frame, got {error:?}");
    };
    assert_eq!(code, "bad_json");
    let offset = byte_offset.expect("bad_json replies localize the malformed byte");
    assert!(offset > 0 && offset < 24, "offset {offset} out of range");

    server.shutdown();
    service.shutdown(Shutdown::Drain);
}

#[test]
fn oversized_frames_are_refused_by_both_sides() {
    let service = start_service(
        ServiceConfig::default()
            .with_queue_capacity(4)
            .with_scheduler(quick_scheduler()),
    );
    let max_frame = 256;
    let mut server = WireServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        WireConfig::new().with_max_frame(max_frame),
    )
    .unwrap();
    let addr = server.local_addr();

    // The handshake advertises the server's bound, and the client adopts
    // it: an oversized send fails locally, before touching the socket.
    let mut client = WireClient::connect(addr, None).unwrap();
    assert_eq!(client.handshake().max_frame, max_frame as u64);
    let big = "x".repeat(max_frame + 1);
    assert!(matches!(
        client.send_raw(&big),
        Err(WireError::FrameTooLarge { .. })
    ));

    // A peer that ignores the advertised bound gets a typed refusal: write
    // the oversized frame with raw codec calls on a fresh connection.
    let mut rogue = TcpStream::connect(addr).unwrap();
    codec::write_frame(&mut rogue, "{\"type\":\"hello\",\"version\":1}", usize::MAX).unwrap();
    let ack = codec::read_frame(&mut rogue, usize::MAX).unwrap().unwrap();
    assert!(ack.contains("hello_ack"));
    codec::write_frame(&mut rogue, &big, usize::MAX).unwrap();
    let reply = codec::read_frame(&mut rogue, usize::MAX).unwrap().unwrap();
    let frame = ServerFrame::parse(&reply).unwrap();
    let ServerFrame::Error { code, .. } = frame else {
        panic!("expected an error frame, got {frame:?}");
    };
    assert_eq!(code, "frame_too_large");
    // The connection is closed after the terminal error frame.
    assert!(codec::read_frame(&mut rogue, usize::MAX).unwrap().is_none());

    server.shutdown();
    service.shutdown(Shutdown::Drain);
}

#[test]
fn requests_before_the_handshake_are_protocol_errors() {
    let service = start_service(
        ServiceConfig::default()
            .with_queue_capacity(4)
            .with_scheduler(quick_scheduler()),
    );
    let mut server =
        WireServer::bind("127.0.0.1:0", Arc::clone(&service), WireConfig::new()).unwrap();

    let mut rogue = TcpStream::connect(server.local_addr()).unwrap();
    let bits = std::f64::consts::FRAC_1_SQRT_2.to_bits();
    let request = format!(
        "{{\"type\":\"request\",\"id\":1,\"target\":{{\"n\":1,\"amps\":[[0,{bits}],[1,{bits}]]}}}}"
    );
    codec::write_frame(&mut rogue, &request, usize::MAX).unwrap();
    let reply = codec::read_frame(&mut rogue, usize::MAX).unwrap().unwrap();
    let frame = ServerFrame::parse(&reply).unwrap();
    assert!(
        matches!(&frame, ServerFrame::Error { code, .. } if code == "protocol"),
        "expected a protocol error, got {frame:?}"
    );

    // A wrong-version hello is refused with a version_mismatch error.
    let mut old = TcpStream::connect(server.local_addr()).unwrap();
    codec::write_frame(&mut old, "{\"type\":\"hello\",\"version\":99}", usize::MAX).unwrap();
    let reply = codec::read_frame(&mut old, usize::MAX).unwrap().unwrap();
    let frame = ServerFrame::parse(&reply).unwrap();
    assert!(
        matches!(&frame, ServerFrame::Error { code, .. } if code == "version_mismatch"),
        "expected version_mismatch, got {frame:?}"
    );

    server.shutdown();
    service.shutdown(Shutdown::Drain);
}
