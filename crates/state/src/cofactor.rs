//! Cofactor extraction and entanglement analysis.
//!
//! The admissible heuristic of the paper's A* search (Sec. V-A) lower-bounds
//! the CNOT cost of a state by inspecting, for every qubit, whether its two
//! cofactors can possibly be separated with zero-cost single-qubit gates. A
//! qubit whose positive and negative cofactor *index sets* coincide might be
//! separable; a qubit whose cofactor index sets differ is certainly entangled
//! with the rest of the register, and disentangling it requires at least one
//! two-qubit interaction.
//!
//! Every function here is generic over [`QuantumState`], so sparse, dense
//! and adaptive backends share one implementation of the analysis.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::backend::QuantumState;
use crate::basis::BasisIndex;
use crate::DEFAULT_TOLERANCE;

/// The two cofactors of a state with respect to one qubit.
///
/// `negative` collects the entries with the qubit at `|0⟩`, `positive` the
/// entries with the qubit at `|1⟩`; in both maps the qubit has been removed
/// from the index (the cofactors live on `n − 1` qubits).
///
/// # Example
///
/// ```
/// use qsp_state::{BasisIndex, Cofactors, SparseState};
///
/// # fn main() -> Result<(), qsp_state::StateError> {
/// let state = SparseState::uniform_superposition(
///     2,
///     [BasisIndex::new(0b00), BasisIndex::new(0b11)],
/// )?;
/// let cof = Cofactors::of(&state, 0);
/// assert_eq!(cof.negative_support().len(), 1);
/// assert_eq!(cof.positive_support().len(), 1);
/// assert!(!cof.index_sets_equal());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cofactors {
    qubit: usize,
    negative: BTreeMap<BasisIndex, f64>,
    positive: BTreeMap<BasisIndex, f64>,
}

impl Cofactors {
    /// Computes the cofactors of `state` with respect to `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is outside the register.
    pub fn of<S: QuantumState>(state: &S, qubit: usize) -> Self {
        assert!(
            qubit < state.num_qubits(),
            "qubit {qubit} out of range for {}-qubit state",
            state.num_qubits()
        );
        let mut negative = BTreeMap::new();
        let mut positive = BTreeMap::new();
        for (index, amp) in state.amplitudes() {
            let reduced = index.remove_qubit(qubit);
            if index.bit(qubit) {
                *positive.entry(reduced).or_insert(0.0) += amp;
            } else {
                *negative.entry(reduced).or_insert(0.0) += amp;
            }
        }
        Cofactors {
            qubit,
            negative,
            positive,
        }
    }

    /// The qubit these cofactors were taken with respect to.
    #[inline]
    pub fn qubit(&self) -> usize {
        self.qubit
    }

    /// Index set of the negative (`|0⟩`) cofactor.
    pub fn negative_support(&self) -> BTreeSet<BasisIndex> {
        self.negative.keys().copied().collect()
    }

    /// Index set of the positive (`|1⟩`) cofactor.
    pub fn positive_support(&self) -> BTreeSet<BasisIndex> {
        self.positive.keys().copied().collect()
    }

    /// Whether the two cofactor index sets coincide — the paper's criterion
    /// for a qubit that *might* be separable (Sec. V-A).
    pub fn index_sets_equal(&self) -> bool {
        self.negative.len() == self.positive.len()
            && self
                .negative
                .keys()
                .zip(self.positive.keys())
                .all(|(a, b)| a == b)
    }

    /// Whether one of the cofactors is empty (the qubit is a constant `|0⟩`
    /// or `|1⟩` and trivially separable).
    pub fn is_constant(&self) -> bool {
        self.negative.is_empty() || self.positive.is_empty()
    }

    /// Checks full (amplitude-aware) separability of the qubit: the state can
    /// be written as `|rest⟩ ⊗ (a|0⟩ + b|1⟩)`.
    ///
    /// Returns the pair `(a, b)` (with `a² + b² = 1`) when the qubit is
    /// separable and `None` otherwise.
    pub fn separation(&self, tolerance: f64) -> Option<(f64, f64)> {
        let neg_norm: f64 = self.negative.values().map(|a| a * a).sum::<f64>().sqrt();
        let pos_norm: f64 = self.positive.values().map(|a| a * a).sum::<f64>().sqrt();
        let total = (neg_norm * neg_norm + pos_norm * pos_norm).sqrt();
        if total <= tolerance {
            return None;
        }
        if pos_norm <= tolerance {
            return Some((1.0, 0.0));
        }
        if neg_norm <= tolerance {
            return Some((0.0, 1.0));
        }
        // Both cofactors are nonzero: they must be proportional with the same
        // sign pattern for the qubit to be separable.
        if !self.index_sets_equal() {
            return None;
        }
        let ratio = pos_norm / neg_norm;
        for (index, &neg_amp) in &self.negative {
            let pos_amp = self.positive.get(index).copied().unwrap_or(0.0);
            if (pos_amp - ratio * neg_amp).abs() > tolerance * (1.0 + ratio) {
                return None;
            }
        }
        Some((neg_norm / total, pos_norm / total))
    }
}

/// Whether `qubit` is fully separable from the rest of `state` (the state is
/// a tensor product `|rest⟩ ⊗ |χ⟩_qubit`).
///
/// # Example
///
/// ```
/// use qsp_state::{is_qubit_separable, BasisIndex, SparseState};
///
/// # fn main() -> Result<(), qsp_state::StateError> {
/// // |00⟩ + |01⟩: qubit 0 entangled? No — it is constant |0⟩...
/// let state = SparseState::uniform_superposition(
///     2,
///     [BasisIndex::new(0b00), BasisIndex::new(0b10)],
/// )?;
/// assert!(is_qubit_separable(&state, 0, 1e-9)); // constant |0⟩
/// assert!(is_qubit_separable(&state, 1, 1e-9)); // uniform |+⟩-like
/// # Ok(())
/// # }
/// ```
pub fn is_qubit_separable<S: QuantumState>(state: &S, qubit: usize, tolerance: f64) -> bool {
    Cofactors::of(state, qubit).separation(tolerance).is_some()
}

/// The qubits of `state` that are certainly entangled according to the
/// paper's cofactor criterion: their positive and negative cofactor index
/// sets differ and neither is empty.
///
/// This is the quantity `E` feeding the admissible A* heuristic `⌈E/2⌉`.
pub fn entangled_qubits<S: QuantumState>(state: &S) -> Vec<usize> {
    (0..state.num_qubits())
        .filter(|&q| {
            let cof = Cofactors::of(state, q);
            !cof.is_constant() && !cof.index_sets_equal()
        })
        .collect()
}

/// The admissible lower bound on the number of CNOT gates needed to map
/// `state` to a product state: `⌈E/2⌉` where `E` is the number of certainly
/// entangled qubits (Sec. V-A).
///
/// For the 4-qubit GHZ state this returns 2 while the true cost is 3 — an
/// underestimate, as required for A* optimality.
pub fn entanglement_lower_bound<S: QuantumState>(state: &S) -> usize {
    entangled_qubits(state).len().div_ceil(2)
}

/// Marginal probability distribution of a single qubit: `(P[q=0], P[q=1])`.
pub fn qubit_marginal<S: QuantumState>(state: &S, qubit: usize) -> (f64, f64) {
    let mut p0 = 0.0;
    let mut p1 = 0.0;
    for (index, amp) in state.amplitudes() {
        if index.bit(qubit) {
            p1 += amp * amp;
        } else {
            p0 += amp * amp;
        }
    }
    (p0, p1)
}

/// Joint probability distribution of two qubits in measurement basis:
/// `[P(00), P(01), P(10), P(11)]` where the first bit is `a` and the second `b`.
pub fn pairwise_joint_distribution<S: QuantumState>(state: &S, a: usize, b: usize) -> [f64; 4] {
    let mut joint = [0.0; 4];
    for (index, amp) in state.amplitudes() {
        let idx = (index.bit(a) as usize) << 1 | index.bit(b) as usize;
        joint[idx] += amp * amp;
    }
    joint
}

/// Classical mutual information (in bits) between the measurement outcomes of
/// qubits `a` and `b` — the quantity the paper references for detecting
/// entangled qubit pairs (Sec. V-A, citing Shannon).
pub fn mutual_information<S: QuantumState>(state: &S, a: usize, b: usize) -> f64 {
    let joint = pairwise_joint_distribution(state, a, b);
    let pa = [joint[0] + joint[1], joint[2] + joint[3]];
    let pb = [joint[0] + joint[2], joint[1] + joint[3]];
    let mut mi = 0.0;
    for (i, &p) in joint.iter().enumerate() {
        if p > DEFAULT_TOLERANCE {
            let marginal = pa[i >> 1] * pb[i & 1];
            mi += p * (p / marginal).log2();
        }
    }
    mi.max(0.0)
}

/// All unordered qubit pairs with nonzero mutual information above `threshold`.
pub fn entangled_pairs<S: QuantumState>(state: &S, threshold: f64) -> Vec<(usize, usize)> {
    let n = state.num_qubits();
    let mut pairs = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if mutual_information(state, a, b) > threshold {
                pairs.push((a, b));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::SparseState;

    fn ghz(n: usize) -> SparseState {
        SparseState::uniform_superposition(
            n,
            [
                BasisIndex::ZERO,
                BasisIndex::new(if n >= 64 { u64::MAX } else { (1u64 << n) - 1 }),
            ],
        )
        .unwrap()
    }

    #[test]
    fn cofactors_split_the_support() {
        let state = SparseState::uniform_superposition(
            3,
            [
                BasisIndex::new(0b000),
                BasisIndex::new(0b011),
                BasisIndex::new(0b101),
                BasisIndex::new(0b110),
            ],
        )
        .unwrap();
        // Qubit 1 in the paper's ψ1 example has identical cofactor index sets.
        let cof = Cofactors::of(&state, 1);
        assert_eq!(cof.qubit(), 1);
        assert_eq!(cof.negative_support().len(), 2);
        assert_eq!(cof.positive_support().len(), 2);
    }

    #[test]
    fn ghz_state_has_all_qubits_entangled() {
        let state = ghz(4);
        assert_eq!(entangled_qubits(&state), vec![0, 1, 2, 3]);
        // Paper example: heuristic returns ⌈4/2⌉ = 2 for the 4-qubit GHZ state.
        assert_eq!(entanglement_lower_bound(&state), 2);
        for q in 0..4 {
            assert!(!is_qubit_separable(&state, q, 1e-9));
        }
    }

    #[test]
    fn product_states_have_no_entangled_qubits() {
        // (|0⟩+|1⟩)/√2 ⊗ (|0⟩+|1⟩)/√2: all four basis states, uniform.
        let state = SparseState::uniform_superposition(2, (0..4).map(BasisIndex::new)).unwrap();
        assert!(entangled_qubits(&state).is_empty());
        assert_eq!(entanglement_lower_bound(&state), 0);
        assert!(is_qubit_separable(&state, 0, 1e-9));
        assert!(is_qubit_separable(&state, 1, 1e-9));
    }

    #[test]
    fn separation_returns_amplitude_split() {
        let g = SparseState::ground_state(2).unwrap();
        let rotated = g.apply_ry(1, -1.0).unwrap();
        let cof = Cofactors::of(&rotated, 1);
        let (a, b) = cof.separation(1e-9).expect("qubit 1 is separable");
        assert!((a - (0.5f64).cos()).abs() < 1e-9);
        assert!((b.abs() - (0.5f64).sin().abs()).abs() < 1e-9);
        assert!((a * a + b * b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_qubits_are_separable() {
        let state =
            SparseState::uniform_superposition(3, [BasisIndex::new(0b000), BasisIndex::new(0b010)])
                .unwrap();
        let cof = Cofactors::of(&state, 0);
        assert!(cof.is_constant());
        assert_eq!(cof.separation(1e-9), Some((1.0, 0.0)));
        let cof2 = Cofactors::of(&state.apply_x(0).unwrap(), 0);
        assert_eq!(cof2.separation(1e-9), Some((0.0, 1.0)));
    }

    #[test]
    fn equal_index_sets_but_entangled_amplitudes_not_separable() {
        // (sqrt(0.8)|00> + sqrt(0.2)|01> + sqrt(0.2)|10> + sqrt(0.8)|11>)/sqrt(2)
        // has identical cofactor index sets for qubit 1 but is not separable.
        let state = SparseState::from_amplitudes(
            2,
            [
                (BasisIndex::new(0b00), (0.4f64).sqrt()),
                (BasisIndex::new(0b01), (0.1f64).sqrt()),
                (BasisIndex::new(0b10), (0.1f64).sqrt()),
                (BasisIndex::new(0b11), (0.4f64).sqrt()),
            ],
        )
        .unwrap();
        let cof = Cofactors::of(&state, 1);
        assert!(cof.index_sets_equal());
        assert!(cof.separation(1e-9).is_none());
        // The optimistic cofactor criterion still treats it as possibly
        // separable — that is what keeps the heuristic admissible.
        assert!(entangled_qubits(&state).is_empty());
    }

    #[test]
    fn mutual_information_detects_correlation() {
        let bell = ghz(2);
        assert!((mutual_information(&bell, 0, 1) - 1.0).abs() < 1e-9);
        let product = SparseState::uniform_superposition(2, (0..4).map(BasisIndex::new)).unwrap();
        assert!(mutual_information(&product, 0, 1).abs() < 1e-9);
        assert_eq!(entangled_pairs(&bell, 0.5), vec![(0, 1)]);
        assert!(entangled_pairs(&product, 0.5).is_empty());
    }

    #[test]
    fn marginals_sum_to_one() {
        let state = ghz(3);
        for q in 0..3 {
            let (p0, p1) = qubit_marginal(&state, q);
            assert!((p0 + p1 - 1.0).abs() < 1e-12);
            assert!((p0 - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cofactor_of_invalid_qubit_panics() {
        let state = ghz(2);
        let _ = Cofactors::of(&state, 5);
    }
}
