//! Sparse representation of real-amplitude quantum states.
//!
//! A [`SparseState`] stores the index set `S(ψ)` and the associated real
//! amplitudes (Sec. II-A of the paper). Only nonzero amplitudes are stored,
//! so states with cardinality `m ≪ 2^n` stay compact — the `n × m` encoding
//! the paper credits for the scalability of its implementation (Sec. VI-D).

use std::collections::BTreeMap;
use std::fmt;

use crate::basis::BasisIndex;
use crate::error::StateError;
use crate::DEFAULT_TOLERANCE;

/// An `n`-qubit quantum state with real amplitudes, stored sparsely.
///
/// Amplitudes below the construction tolerance are dropped. Iteration order
/// is deterministic (ascending basis index), which keeps the synthesis
/// algorithms and tests reproducible.
///
/// # Example
///
/// ```
/// use qsp_state::{BasisIndex, SparseState};
///
/// # fn main() -> Result<(), qsp_state::StateError> {
/// // GHZ state on 3 qubits: (|000> + |111>)/sqrt(2).
/// let ghz = SparseState::from_amplitudes(
///     3,
///     [
///         (BasisIndex::new(0b000), std::f64::consts::FRAC_1_SQRT_2),
///         (BasisIndex::new(0b111), std::f64::consts::FRAC_1_SQRT_2),
///     ],
/// )?;
/// assert_eq!(ghz.cardinality(), 2);
/// assert!(ghz.is_normalized(1e-9));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseState {
    num_qubits: usize,
    amplitudes: BTreeMap<BasisIndex, f64>,
}

impl SparseState {
    /// Creates the ground state `|0…0⟩` on `num_qubits` qubits.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::TooManyQubits`] if `num_qubits` exceeds
    /// [`BasisIndex::MAX_QUBITS`] and [`StateError::InvalidParameter`] when
    /// `num_qubits` is zero.
    pub fn ground_state(num_qubits: usize) -> Result<Self, StateError> {
        Self::check_width(num_qubits)?;
        let mut amplitudes = BTreeMap::new();
        amplitudes.insert(BasisIndex::ZERO, 1.0);
        Ok(SparseState {
            num_qubits,
            amplitudes,
        })
    }

    /// Creates a state from `(basis index, amplitude)` pairs.
    ///
    /// Amplitudes on the same index are summed; entries whose magnitude falls
    /// below the default tolerance are dropped. The result is **not**
    /// renormalized; use [`SparseState::normalize`] or
    /// [`SparseState::is_normalized`] as needed.
    ///
    /// # Errors
    ///
    /// Returns an error if an index does not fit in the register, an
    /// amplitude is not finite, or the resulting state is empty.
    pub fn from_amplitudes<I>(num_qubits: usize, entries: I) -> Result<Self, StateError>
    where
        I: IntoIterator<Item = (BasisIndex, f64)>,
    {
        Self::check_width(num_qubits)?;
        let limit = Self::index_limit(num_qubits);
        let mut amplitudes: BTreeMap<BasisIndex, f64> = BTreeMap::new();
        for (index, amplitude) in entries {
            if index.value() >= limit {
                return Err(StateError::IndexOutOfRange {
                    index: index.value(),
                    num_qubits,
                });
            }
            if !amplitude.is_finite() {
                return Err(StateError::InvalidAmplitude { value: amplitude });
            }
            *amplitudes.entry(index).or_insert(0.0) += amplitude;
        }
        amplitudes.retain(|_, a| a.abs() > DEFAULT_TOLERANCE);
        if amplitudes.is_empty() {
            return Err(StateError::EmptyState);
        }
        Ok(SparseState {
            num_qubits,
            amplitudes,
        })
    }

    /// Creates a uniform superposition over the given basis indices:
    /// every index receives amplitude `1/sqrt(m)`.
    ///
    /// This is the state family used by every experiment in the paper
    /// ("we test uniform states to compare with related works", Sec. VI-A).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`SparseState::from_amplitudes`]; duplicate
    /// indices are rejected via [`StateError::InvalidParameter`].
    pub fn uniform_superposition<I>(num_qubits: usize, indices: I) -> Result<Self, StateError>
    where
        I: IntoIterator<Item = BasisIndex>,
    {
        let indices: Vec<BasisIndex> = indices.into_iter().collect();
        if indices.is_empty() {
            return Err(StateError::EmptyState);
        }
        let mut unique = indices.clone();
        unique.sort_unstable();
        unique.dedup();
        if unique.len() != indices.len() {
            return Err(StateError::InvalidParameter {
                reason: "uniform superposition indices must be distinct".to_string(),
            });
        }
        let amp = 1.0 / (indices.len() as f64).sqrt();
        Self::from_amplitudes(num_qubits, indices.into_iter().map(|i| (i, amp)))
    }

    fn check_width(num_qubits: usize) -> Result<(), StateError> {
        if num_qubits == 0 {
            return Err(StateError::InvalidParameter {
                reason: "a state needs at least one qubit".to_string(),
            });
        }
        if num_qubits > BasisIndex::MAX_QUBITS {
            return Err(StateError::TooManyQubits {
                requested: num_qubits,
                max: BasisIndex::MAX_QUBITS,
            });
        }
        Ok(())
    }

    fn index_limit(num_qubits: usize) -> u64 {
        if num_qubits >= 64 {
            u64::MAX
        } else {
            1u64 << num_qubits
        }
    }

    /// Number of qubits of the register.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Cardinality `|S(ψ)|`: the number of basis states with nonzero amplitude.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.amplitudes.len()
    }

    /// Whether the state is *sparse* in the sense of the paper's workflow
    /// (Fig. 5): `n·m < 2^n`.
    pub fn is_sparse(&self) -> bool {
        let n = self.num_qubits;
        let m = self.cardinality();
        if n >= 63 {
            return true;
        }
        ((n * m) as u128) < (1u128 << n)
    }

    /// The amplitude of a basis index (zero if absent).
    #[inline]
    pub fn amplitude(&self, index: BasisIndex) -> f64 {
        self.amplitudes.get(&index).copied().unwrap_or(0.0)
    }

    /// Iterates over `(basis index, amplitude)` pairs in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (BasisIndex, f64)> + '_ {
        self.amplitudes.iter().map(|(&i, &a)| (i, a))
    }

    /// The index set `S(ψ)` in ascending order.
    pub fn support(&self) -> Vec<BasisIndex> {
        self.amplitudes.keys().copied().collect()
    }

    /// Sum of squared amplitudes.
    pub fn norm_squared(&self) -> f64 {
        self.amplitudes.values().map(|a| a * a).sum()
    }

    /// Whether the state is normalized within `tolerance`.
    pub fn is_normalized(&self, tolerance: f64) -> bool {
        (self.norm_squared() - 1.0).abs() <= tolerance
    }

    /// Returns a normalized copy of the state.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::NotNormalized`] if the norm is numerically zero.
    pub fn normalize(&self) -> Result<Self, StateError> {
        let norm = self.norm_squared().sqrt();
        if norm <= DEFAULT_TOLERANCE {
            return Err(StateError::NotNormalized {
                norm_squared: norm * norm,
            });
        }
        let amplitudes = self
            .amplitudes
            .iter()
            .map(|(&i, &a)| (i, a / norm))
            .collect();
        Ok(SparseState {
            num_qubits: self.num_qubits,
            amplitudes,
        })
    }

    /// Inner product `⟨self|other⟩` (real, since amplitudes are real).
    pub fn inner_product(&self, other: &SparseState) -> f64 {
        // Iterate over the smaller support for efficiency.
        let (small, large) = if self.cardinality() <= other.cardinality() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .amplitudes
            .iter()
            .map(|(i, a)| a * large.amplitude(*i))
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|²` with another state.
    pub fn fidelity(&self, other: &SparseState) -> f64 {
        let ip = self.inner_product(other);
        ip * ip
    }

    /// Whether this state equals `other` up to tolerance (same register width
    /// and same amplitudes on every basis index, allowing a global sign).
    pub fn approx_eq(&self, other: &SparseState, tolerance: f64) -> bool {
        if self.num_qubits != other.num_qubits {
            return false;
        }
        let direct = self.support() == other.support()
            && self
                .iter()
                .all(|(i, a)| (a - other.amplitude(i)).abs() <= tolerance);
        if direct {
            return true;
        }
        // Allow a global sign flip (|ψ⟩ and -|ψ⟩ are the same physical state).
        self.support() == other.support()
            && self
                .iter()
                .all(|(i, a)| (a + other.amplitude(i)).abs() <= tolerance)
    }

    /// Whether the state is the ground state `|0…0⟩` (up to global sign).
    pub fn is_ground_state(&self, tolerance: f64) -> bool {
        self.cardinality() == 1
            && self.amplitudes.contains_key(&BasisIndex::ZERO)
            && (self.amplitude(BasisIndex::ZERO).abs() - 1.0).abs() <= tolerance
    }

    /// Applies a Pauli-X gate on `qubit`, returning the new state.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::QubitOutOfRange`] if `qubit` is outside the register.
    pub fn apply_x(&self, qubit: usize) -> Result<Self, StateError> {
        self.check_qubit(qubit)?;
        let amplitudes = self
            .amplitudes
            .iter()
            .map(|(&i, &a)| (i.flip_bit(qubit), a))
            .collect();
        Ok(SparseState {
            num_qubits: self.num_qubits,
            amplitudes,
        })
    }

    /// Applies a CNOT gate (classical basis permutation), returning the new state.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::QubitOutOfRange`] if a qubit is outside the
    /// register or [`StateError::InvalidParameter`] if control equals target.
    pub fn apply_cnot(&self, control: usize, target: usize) -> Result<Self, StateError> {
        self.check_qubit(control)?;
        self.check_qubit(target)?;
        if control == target {
            return Err(StateError::InvalidParameter {
                reason: "cnot control and target must differ".to_string(),
            });
        }
        let amplitudes = self
            .amplitudes
            .iter()
            .map(|(&i, &a)| (i.apply_cnot(control, target), a))
            .collect();
        Ok(SparseState {
            num_qubits: self.num_qubits,
            amplitudes,
        })
    }

    /// Applies a Y rotation `Ry(θ)` on `qubit`, returning the new state.
    ///
    /// `Ry(θ) = [[cos(θ/2), sin(θ/2)], [-sin(θ/2), cos(θ/2)]]` as in Eq. (1)
    /// of the paper.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::QubitOutOfRange`] if `qubit` is outside the register.
    pub fn apply_ry(&self, qubit: usize, theta: f64) -> Result<Self, StateError> {
        self.apply_controlled_ry(&[], qubit, theta)
    }

    /// Applies a multi-controlled Y rotation: the rotation acts on `target`
    /// only for basis states where every `(qubit, polarity)` control is
    /// satisfied (`polarity = true` means the control fires on `|1⟩`).
    ///
    /// # Errors
    ///
    /// Returns an error if any qubit is out of range or the target appears in
    /// the control list.
    pub fn apply_controlled_ry(
        &self,
        controls: &[(usize, bool)],
        target: usize,
        theta: f64,
    ) -> Result<Self, StateError> {
        self.check_qubit(target)?;
        for &(c, _) in controls {
            self.check_qubit(c)?;
            if c == target {
                return Err(StateError::InvalidParameter {
                    reason: "rotation target cannot also be a control".to_string(),
                });
            }
        }
        let cos = (theta / 2.0).cos();
        let sin = (theta / 2.0).sin();
        let mut amplitudes: BTreeMap<BasisIndex, f64> = BTreeMap::new();
        for (&index, &amp) in &self.amplitudes {
            let fires = controls
                .iter()
                .all(|&(c, polarity)| index.bit(c) == polarity);
            if !fires {
                *amplitudes.entry(index).or_insert(0.0) += amp;
                continue;
            }
            let zero_index = index.with_bit(target, false);
            let one_index = index.with_bit(target, true);
            if index.bit(target) {
                // |1⟩ component: contributes sin to |0⟩ and cos to |1⟩.
                *amplitudes.entry(zero_index).or_insert(0.0) += sin * amp;
                *amplitudes.entry(one_index).or_insert(0.0) += cos * amp;
            } else {
                // |0⟩ component: contributes cos to |0⟩ and -sin to |1⟩.
                *amplitudes.entry(zero_index).or_insert(0.0) += cos * amp;
                *amplitudes.entry(one_index).or_insert(0.0) += -sin * amp;
            }
        }
        amplitudes.retain(|_, a| a.abs() > DEFAULT_TOLERANCE);
        if amplitudes.is_empty() {
            return Err(StateError::EmptyState);
        }
        Ok(SparseState {
            num_qubits: self.num_qubits,
            amplitudes,
        })
    }

    /// Applies a qubit permutation: qubit `i` of the result takes the value of
    /// qubit `perm[i]` of `self`.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::InvalidParameter`] if `perm` is not a permutation
    /// of `0..num_qubits`.
    pub fn permute_qubits(&self, perm: &[usize]) -> Result<Self, StateError> {
        if perm.len() != self.num_qubits {
            return Err(StateError::InvalidParameter {
                reason: format!(
                    "permutation length {} does not match register width {}",
                    perm.len(),
                    self.num_qubits
                ),
            });
        }
        let mut seen = vec![false; self.num_qubits];
        for &p in perm {
            if p >= self.num_qubits || seen[p] {
                return Err(StateError::InvalidParameter {
                    reason: "permutation must map 0..n bijectively".to_string(),
                });
            }
            seen[p] = true;
        }
        let amplitudes = self
            .amplitudes
            .iter()
            .map(|(&i, &a)| (i.permute(perm), a))
            .collect();
        Ok(SparseState {
            num_qubits: self.num_qubits,
            amplitudes,
        })
    }

    fn check_qubit(&self, qubit: usize) -> Result<(), StateError> {
        if qubit >= self.num_qubits {
            Err(StateError::QubitOutOfRange {
                qubit,
                num_qubits: self.num_qubits,
            })
        } else {
            Ok(())
        }
    }
}

impl fmt::Display for SparseState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (index, amp) in self.iter() {
            if !first {
                if amp >= 0.0 {
                    write!(f, " + ")?;
                } else {
                    write!(f, " - ")?;
                }
            } else if amp < 0.0 {
                write!(f, "-")?;
            }
            write!(f, "{:.4}{}", amp.abs(), index.to_ket(self.num_qubits))?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<(BasisIndex, f64)> for SparseState {
    /// Collects `(index, amplitude)` pairs into a state, inferring the
    /// register width from the largest index.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty or contains non-finite amplitudes;
    /// prefer [`SparseState::from_amplitudes`] for fallible construction.
    fn from_iter<T: IntoIterator<Item = (BasisIndex, f64)>>(iter: T) -> Self {
        let entries: Vec<(BasisIndex, f64)> = iter.into_iter().collect();
        let max_index = entries
            .iter()
            .map(|(i, _)| i.value())
            .max()
            .expect("cannot collect an empty state");
        let num_qubits = (64 - max_index.leading_zeros()).max(1) as usize;
        SparseState::from_amplitudes(num_qubits, entries).expect("invalid state entries")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> SparseState {
        SparseState::uniform_superposition(2, [BasisIndex::new(0), BasisIndex::new(3)]).unwrap()
    }

    #[test]
    fn ground_state_properties() {
        let g = SparseState::ground_state(4).unwrap();
        assert_eq!(g.num_qubits(), 4);
        assert_eq!(g.cardinality(), 1);
        assert!(g.is_ground_state(1e-9));
        assert!(g.is_normalized(1e-12));
    }

    #[test]
    fn construction_rejects_bad_input() {
        assert!(SparseState::ground_state(0).is_err());
        assert!(SparseState::ground_state(65).is_err());
        assert!(
            SparseState::from_amplitudes(2, [(BasisIndex::new(4), 1.0)]).is_err(),
            "index 4 does not fit in 2 qubits"
        );
        assert!(SparseState::from_amplitudes(2, [(BasisIndex::new(1), f64::NAN)]).is_err());
        assert!(SparseState::from_amplitudes(2, std::iter::empty()).is_err());
        assert!(
            SparseState::uniform_superposition(2, [BasisIndex::new(1), BasisIndex::new(1)])
                .is_err()
        );
    }

    #[test]
    fn duplicate_entries_are_summed_and_zeros_dropped() {
        let s = SparseState::from_amplitudes(
            2,
            [
                (BasisIndex::new(1), 0.5),
                (BasisIndex::new(1), 0.5),
                (BasisIndex::new(2), 1.0),
                (BasisIndex::new(2), -1.0),
            ],
        )
        .unwrap();
        assert_eq!(s.cardinality(), 1);
        assert!((s.amplitude(BasisIndex::new(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparsity_classification_matches_paper_definition() {
        // n = 4, m = 8 (dense: nm = 32 >= 16).
        let dense = SparseState::uniform_superposition(4, (0..8).map(BasisIndex::new)).unwrap();
        assert!(!dense.is_sparse());
        // n = 6, m = 6 (sparse: nm = 36 < 64).
        let sparse = SparseState::uniform_superposition(6, (0..6).map(BasisIndex::new)).unwrap();
        assert!(sparse.is_sparse());
    }

    #[test]
    fn x_and_cnot_permute_the_support() {
        let s = bell();
        let flipped = s.apply_x(0).unwrap();
        assert_eq!(
            flipped.support(),
            vec![BasisIndex::new(1), BasisIndex::new(2)]
        );
        let unentangled = s.apply_cnot(0, 1).unwrap();
        assert_eq!(
            unentangled.support(),
            vec![BasisIndex::new(0), BasisIndex::new(1)]
        );
        assert!(s.apply_cnot(0, 0).is_err());
        assert!(s.apply_x(5).is_err());
    }

    #[test]
    fn ry_rotates_a_single_qubit() {
        let g = SparseState::ground_state(1).unwrap();
        let plus = g.apply_ry(0, -std::f64::consts::FRAC_PI_2).unwrap();
        assert_eq!(plus.cardinality(), 2);
        assert!(
            (plus.amplitude(BasisIndex::new(0)) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12
        );
        assert!(
            (plus.amplitude(BasisIndex::new(1)) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12
        );
        // Rotating back yields the ground state again.
        let back = plus.apply_ry(0, std::f64::consts::FRAC_PI_2).unwrap();
        assert!(back.is_ground_state(1e-9));
    }

    #[test]
    fn controlled_ry_only_touches_control_satisfied_branch() {
        let s = bell();
        // Control on qubit 0 = |1>, rotate qubit 1 by π (maps |11> -> -|10>).
        let rotated = s
            .apply_controlled_ry(&[(0, true)], 1, std::f64::consts::PI)
            .unwrap();
        // With the paper's Ry convention (Eq. 1) the |1⟩ component maps to +|0⟩ at θ = π.
        assert!(
            (rotated.amplitude(BasisIndex::new(0)) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12
        );
        assert!(
            (rotated.amplitude(BasisIndex::new(1)) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12
        );
        assert!(rotated.amplitude(BasisIndex::new(3)).abs() < 1e-12);
        assert!(s.apply_controlled_ry(&[(1, true)], 1, 0.3).is_err());
    }

    #[test]
    fn inner_product_and_fidelity() {
        let s = bell();
        assert!((s.fidelity(&s) - 1.0).abs() < 1e-12);
        let g = SparseState::ground_state(2).unwrap();
        assert!((s.fidelity(&g) - 0.5).abs() < 1e-12);
        let orthogonal =
            SparseState::uniform_superposition(2, [BasisIndex::new(1), BasisIndex::new(2)])
                .unwrap();
        assert!(s.fidelity(&orthogonal).abs() < 1e-12);
    }

    #[test]
    fn approx_eq_allows_global_sign() {
        let s = bell();
        let negated = SparseState::from_amplitudes(2, s.iter().map(|(i, a)| (i, -a))).unwrap();
        assert!(s.approx_eq(&negated, 1e-12));
        let different =
            SparseState::uniform_superposition(2, [BasisIndex::new(0), BasisIndex::new(1)])
                .unwrap();
        assert!(!s.approx_eq(&different, 1e-12));
    }

    #[test]
    fn permutation_of_qubits() {
        let s =
            SparseState::uniform_superposition(3, [BasisIndex::new(0b001), BasisIndex::new(0b110)])
                .unwrap();
        let swapped = s.permute_qubits(&[1, 0, 2]).unwrap();
        assert_eq!(
            swapped.support(),
            vec![BasisIndex::new(0b010), BasisIndex::new(0b101)]
        );
        assert!(s.permute_qubits(&[0, 0, 1]).is_err());
        assert!(s.permute_qubits(&[0, 1]).is_err());
    }

    #[test]
    fn normalization() {
        let s =
            SparseState::from_amplitudes(2, [(BasisIndex::new(0), 3.0), (BasisIndex::new(1), 4.0)])
                .unwrap();
        assert!(!s.is_normalized(1e-9));
        let n = s.normalize().unwrap();
        assert!(n.is_normalized(1e-12));
        assert!((n.amplitude(BasisIndex::new(0)) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn display_renders_kets() {
        let s = bell();
        let rendered = s.to_string();
        assert!(rendered.contains("|00⟩"));
        assert!(rendered.contains("|11⟩"));
    }

    #[test]
    fn collect_from_iterator_infers_width() {
        let s: SparseState = [(BasisIndex::new(0b101), 1.0)].into_iter().collect();
        assert_eq!(s.num_qubits(), 3);
    }
}
