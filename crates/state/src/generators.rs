//! Workload generators for the paper's evaluation.
//!
//! The evaluation of the paper uses three workload families:
//!
//! * **Dicke states** `|D^k_n⟩` (Table IV) — uniform superpositions of all
//!   basis states with exactly `k` ones.
//! * **Random dense states** with cardinality `m = 2^(n-1)` (Table V, top).
//! * **Random sparse states** with cardinality `m = n` (Table V, bottom).
//!
//! GHZ, W and product states are provided as well; they appear as examples in
//! the paper (Sec. II, V-A) and make useful unit-test fixtures.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::basis::BasisIndex;
use crate::error::StateError;
use crate::sparse::SparseState;

/// Generates the `n`-qubit GHZ state `(|0…0⟩ + |1…1⟩)/√2`.
///
/// # Errors
///
/// Returns an error when `n < 2` (a one-qubit "GHZ" state is not entangled).
///
/// # Example
///
/// ```
/// let ghz = qsp_state::generators::ghz(4)?;
/// assert_eq!(ghz.cardinality(), 2);
/// # Ok::<(), qsp_state::StateError>(())
/// ```
pub fn ghz(n: usize) -> Result<SparseState, StateError> {
    if n < 2 {
        return Err(StateError::InvalidParameter {
            reason: "ghz states need at least two qubits".to_string(),
        });
    }
    let all_ones = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
    SparseState::uniform_superposition(n, [BasisIndex::ZERO, BasisIndex::new(all_ones)])
}

/// Generates the `n`-qubit W state: uniform superposition of all basis states
/// with Hamming weight one.
///
/// # Errors
///
/// Returns an error when `n < 2`.
pub fn w_state(n: usize) -> Result<SparseState, StateError> {
    if n < 2 {
        return Err(StateError::InvalidParameter {
            reason: "w states need at least two qubits".to_string(),
        });
    }
    SparseState::uniform_superposition(n, (0..n).map(|q| BasisIndex::new(1u64 << q)))
}

/// Generates the Dicke state `|D^k_n⟩`: the uniform superposition of all
/// `C(n, k)` basis states with exactly `k` qubits at `|1⟩` (Sec. VI-B).
///
/// # Errors
///
/// Returns an error when `k` is zero, `k > n`, or `n` is zero.
///
/// # Example
///
/// ```
/// let dicke = qsp_state::generators::dicke(4, 2)?;
/// assert_eq!(dicke.cardinality(), 6); // C(4, 2)
/// # Ok::<(), qsp_state::StateError>(())
/// ```
pub fn dicke(n: usize, k: usize) -> Result<SparseState, StateError> {
    if n == 0 || k == 0 || k > n {
        return Err(StateError::InvalidParameter {
            reason: format!("dicke state requires 0 < k <= n, got n = {n}, k = {k}"),
        });
    }
    if n > 30 {
        return Err(StateError::InvalidParameter {
            reason: "dicke generator enumerates C(n, k) indices; n > 30 is not supported"
                .to_string(),
        });
    }
    let indices = (0u64..(1u64 << n))
        .filter(|x| x.count_ones() as usize == k)
        .map(BasisIndex::new);
    SparseState::uniform_superposition(n, indices)
}

/// The CNOT count of the best published manual Dicke-state design,
/// `5nk − 5k² − 2n` (Mukherjee et al. \[7\], as quoted in Sec. VI-B).
pub fn manual_dicke_cnot_count(n: usize, k: usize) -> usize {
    let (n, k) = (n as i64, k as i64);
    (5 * n * k - 5 * k * k - 2 * n).max(0) as usize
}

/// Generates a computational basis (product) state `|x⟩`.
///
/// # Errors
///
/// Returns an error if the index does not fit in the register.
pub fn basis_state(n: usize, index: BasisIndex) -> Result<SparseState, StateError> {
    SparseState::from_amplitudes(n, [(index, 1.0)])
}

/// Generates a uniform superposition over `m` random distinct basis indices
/// of an `n`-qubit register — the random uniform states of Table V.
///
/// # Errors
///
/// Returns an error if `m` is zero or exceeds `2^n`.
///
/// # Panics
///
/// Panics if `n > 63` (the dense index range would overflow).
pub fn random_uniform_state<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<SparseState, StateError> {
    assert!(n <= 63, "random uniform states support at most 63 qubits");
    let total: u64 = 1u64 << n;
    if m == 0 || m as u64 > total {
        return Err(StateError::InvalidParameter {
            reason: format!("cardinality {m} is not in 1..=2^{n}"),
        });
    }
    let indices = sample_distinct_indices(total, m, rng);
    SparseState::uniform_superposition(n, indices.into_iter().map(BasisIndex::new))
}

/// Generates a random *dense* uniform state with `m = 2^(n-1)` (Table V, top half).
///
/// # Errors
///
/// Propagates the errors of [`random_uniform_state`].
pub fn random_dense_state<R: Rng + ?Sized>(
    n: usize,
    rng: &mut R,
) -> Result<SparseState, StateError> {
    if n < 2 {
        return Err(StateError::InvalidParameter {
            reason: "dense benchmark states need at least two qubits".to_string(),
        });
    }
    random_uniform_state(n, 1 << (n - 1), rng)
}

/// Generates a random *sparse* uniform state with `m = n` (Table V, bottom half).
///
/// # Errors
///
/// Propagates the errors of [`random_uniform_state`].
pub fn random_sparse_state<R: Rng + ?Sized>(
    n: usize,
    rng: &mut R,
) -> Result<SparseState, StateError> {
    random_uniform_state(n, n, rng)
}

/// Generates a random state with distinct support and random (non-uniform)
/// real amplitudes, normalized. Useful for exercising the amplitude-aware
/// code paths beyond the paper's uniform benchmarks.
///
/// # Errors
///
/// Returns an error if `m` is zero or exceeds `2^n`.
pub fn random_real_state<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<SparseState, StateError> {
    assert!(n <= 63, "random states support at most 63 qubits");
    let total: u64 = 1u64 << n;
    if m == 0 || m as u64 > total {
        return Err(StateError::InvalidParameter {
            reason: format!("cardinality {m} is not in 1..=2^{n}"),
        });
    }
    let indices = sample_distinct_indices(total, m, rng);
    let state = SparseState::from_amplitudes(
        n,
        indices
            .into_iter()
            .map(|i| (BasisIndex::new(i), rng.gen_range(0.1..1.0))),
    )?;
    state.normalize()
}

/// Samples `m` distinct values from `0..total`.
fn sample_distinct_indices<R: Rng + ?Sized>(total: u64, m: usize, rng: &mut R) -> Vec<u64> {
    if total <= 4 * m as u64 || total <= 1 << 20 {
        // Dense regime: shuffle the full range (bounded by 2^20 entries).
        let mut all: Vec<u64> = (0..total).collect();
        all.shuffle(rng);
        all.truncate(m);
        all
    } else {
        // Sparse regime: rejection sampling.
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < m {
            chosen.insert(rng.gen_range(0..total));
        }
        chosen.into_iter().collect()
    }
}

/// A named benchmark workload, used by the benchmark harness and examples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Workload {
    /// `|D^k_n⟩` Dicke state.
    Dicke {
        /// Number of qubits.
        n: usize,
        /// Hamming weight of the superposed basis states.
        k: usize,
    },
    /// GHZ state on `n` qubits.
    Ghz {
        /// Number of qubits.
        n: usize,
    },
    /// W state on `n` qubits.
    W {
        /// Number of qubits.
        n: usize,
    },
    /// Random dense uniform state (`m = 2^(n-1)`) with a seed.
    RandomDense {
        /// Number of qubits.
        n: usize,
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// Random sparse uniform state (`m = n`) with a seed.
    RandomSparse {
        /// Number of qubits.
        n: usize,
        /// RNG seed for reproducibility.
        seed: u64,
    },
}

impl Workload {
    /// Instantiates the workload as a concrete state.
    ///
    /// # Errors
    ///
    /// Propagates generator errors (invalid parameters).
    pub fn instantiate(&self) -> Result<SparseState, StateError> {
        use rand::SeedableRng;
        match *self {
            Workload::Dicke { n, k } => dicke(n, k),
            Workload::Ghz { n } => ghz(n),
            Workload::W { n } => w_state(n),
            Workload::RandomDense { n, seed } => {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                random_dense_state(n, &mut rng)
            }
            Workload::RandomSparse { n, seed } => {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                random_sparse_state(n, &mut rng)
            }
        }
    }

    /// A short human-readable name (used in benchmark reports).
    pub fn name(&self) -> String {
        match *self {
            Workload::Dicke { n, k } => format!("dicke_{n}_{k}"),
            Workload::Ghz { n } => format!("ghz_{n}"),
            Workload::W { n } => format!("w_{n}"),
            Workload::RandomDense { n, seed } => format!("dense_{n}_s{seed}"),
            Workload::RandomSparse { n, seed } => format!("sparse_{n}_s{seed}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ghz_and_w_shapes() {
        let ghz = ghz(5).unwrap();
        assert_eq!(ghz.cardinality(), 2);
        assert!(ghz.is_normalized(1e-12));
        let w = w_state(5).unwrap();
        assert_eq!(w.cardinality(), 5);
        assert!(w.support().iter().all(|i| i.hamming_weight() == 1));
        assert!(super::ghz(1).is_err());
        assert!(super::w_state(1).is_err());
    }

    #[test]
    fn dicke_cardinality_is_binomial() {
        assert_eq!(dicke(4, 2).unwrap().cardinality(), 6);
        assert_eq!(dicke(6, 3).unwrap().cardinality(), 20);
        assert_eq!(dicke(5, 1).unwrap().cardinality(), 5);
        assert!(dicke(3, 0).is_err());
        assert!(dicke(3, 4).is_err());
        // |D^1_n> is the W state.
        assert_eq!(dicke(4, 1).unwrap(), w_state(4).unwrap());
    }

    #[test]
    fn manual_dicke_formula_matches_table4() {
        // Manual column of Table IV.
        assert_eq!(manual_dicke_cnot_count(3, 1), 4);
        assert_eq!(manual_dicke_cnot_count(4, 1), 7);
        assert_eq!(manual_dicke_cnot_count(4, 2), 12);
        assert_eq!(manual_dicke_cnot_count(5, 1), 10);
        assert_eq!(manual_dicke_cnot_count(5, 2), 20);
        assert_eq!(manual_dicke_cnot_count(6, 1), 13);
        assert_eq!(manual_dicke_cnot_count(6, 2), 28);
        assert_eq!(manual_dicke_cnot_count(6, 3), 33);
    }

    #[test]
    fn random_states_have_requested_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let dense = random_dense_state(6, &mut rng).unwrap();
        assert_eq!(dense.cardinality(), 32);
        assert!(!dense.is_sparse());
        let sparse = random_sparse_state(10, &mut rng).unwrap();
        assert_eq!(sparse.cardinality(), 10);
        assert!(sparse.is_sparse());
        assert!(sparse.is_normalized(1e-9));
        assert!(random_uniform_state(3, 0, &mut rng).is_err());
        assert!(random_uniform_state(3, 9, &mut rng).is_err());
    }

    #[test]
    fn random_states_are_reproducible_by_seed() {
        let a = Workload::RandomSparse { n: 8, seed: 42 }
            .instantiate()
            .unwrap();
        let b = Workload::RandomSparse { n: 8, seed: 42 }
            .instantiate()
            .unwrap();
        assert_eq!(a, b);
        let c = Workload::RandomSparse { n: 8, seed: 43 }
            .instantiate()
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn random_real_state_is_normalized() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = random_real_state(5, 7, &mut rng).unwrap();
        assert_eq!(s.cardinality(), 7);
        assert!(s.is_normalized(1e-9));
    }

    #[test]
    fn workload_names_and_instantiation() {
        let w = Workload::Dicke { n: 4, k: 2 };
        assert_eq!(w.name(), "dicke_4_2");
        assert_eq!(w.instantiate().unwrap().cardinality(), 6);
        assert_eq!(Workload::Ghz { n: 3 }.name(), "ghz_3");
        assert_eq!(Workload::W { n: 3 }.name(), "w_3");
        assert!(Workload::RandomDense { n: 5, seed: 1 }
            .name()
            .starts_with("dense_5"));
    }

    #[test]
    fn basis_state_is_cardinality_one() {
        let s = basis_state(3, BasisIndex::new(0b101)).unwrap();
        assert_eq!(s.cardinality(), 1);
        assert!((s.amplitude(BasisIndex::new(0b101)) - 1.0).abs() < 1e-12);
    }
}
