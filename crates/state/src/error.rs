//! Error types for state construction and manipulation.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or transforming quantum states.
#[derive(Debug, Clone, PartialEq)]
pub enum StateError {
    /// A basis index refers to a qubit outside the declared register width.
    IndexOutOfRange {
        /// The offending basis index value.
        index: u64,
        /// The number of qubits of the state.
        num_qubits: usize,
    },
    /// The state has no nonzero amplitude.
    EmptyState,
    /// The squared amplitudes do not sum to one within tolerance.
    NotNormalized {
        /// The actual sum of squared amplitudes.
        norm_squared: f64,
    },
    /// A qubit identifier is outside the register.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: usize,
        /// The number of qubits of the state.
        num_qubits: usize,
    },
    /// The number of qubits exceeds what the basis representation supports.
    TooManyQubits {
        /// Requested register width.
        requested: usize,
        /// Maximum supported width.
        max: usize,
    },
    /// An amplitude is invalid (NaN or infinite).
    InvalidAmplitude {
        /// The offending value.
        value: f64,
    },
    /// Parameters of a generator are inconsistent (e.g. Dicke k > n).
    InvalidParameter {
        /// Human readable description of the parameter problem.
        reason: String,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::IndexOutOfRange { index, num_qubits } => write!(
                f,
                "basis index {index:#b} does not fit in a {num_qubits}-qubit register"
            ),
            StateError::EmptyState => write!(f, "state has no nonzero amplitude"),
            StateError::NotNormalized { norm_squared } => {
                write!(f, "state is not normalized: squared norm is {norm_squared}")
            }
            StateError::QubitOutOfRange { qubit, num_qubits } => write!(
                f,
                "qubit {qubit} is out of range for a {num_qubits}-qubit register"
            ),
            StateError::TooManyQubits { requested, max } => write!(
                f,
                "requested {requested} qubits but at most {max} are supported"
            ),
            StateError::InvalidAmplitude { value } => {
                write!(f, "amplitude {value} is not a finite number")
            }
            StateError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
        }
    }
}

impl Error for StateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = StateError::IndexOutOfRange {
            index: 8,
            num_qubits: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("3-qubit"));
        assert!(msg.starts_with(char::is_lowercase));

        let e = StateError::NotNormalized { norm_squared: 0.5 };
        assert!(e.to_string().contains("0.5"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<StateError>();
    }
}
