//! Canonical forms under zero-cost operations and qubit permutation.
//!
//! The paper compresses the state transition graph by mapping every state to
//! a representative of its equivalence class (Sec. V-B):
//!
//! * **U(2) equivalence** — states reachable from each other with zero-cost
//!   single-qubit gates: Pauli-X flips and Y rotations on separable qubits.
//! * **Qubit permutation** (`P`) — relabelling qubits, valid when the target
//!   coupling graph is symmetric.
//!
//! Table III of the paper counts the canonical 4-qubit uniform states under
//! no relation (`|V_G|`), layout-variant equivalence (`|V_G/U(2)|`) and
//! layout-invariant equivalence (`|V_G/PU(2)|`); the [`CanonicalForm`] type
//! is what the `table3` benchmark enumerates.
//!
//! Only genuinely zero-cost transformations are applied, so two index sets
//! with the same canonical form can always be prepared with the same number
//! of CNOT gates.
//!
//! The flip/permutation minimization itself is delegated to the workspace's
//! staged invariant pipeline ([`crate::pipeline`]) — the same engine the
//! batch keying and the serve layer's in-flight dedup run on — applied here
//! to uniform supports (every amplitude identical). This module adds the
//! uniform-state-specific separable-qubit clearing on top.

use std::collections::BTreeSet;

use crate::backend::QuantumState;
use crate::basis::BasisIndex;
use crate::pipeline::{self, PipelineOptions};

/// Which equivalence relations to apply during canonicalization.
///
/// # Example
///
/// ```
/// use qsp_state::CanonicalOptions;
///
/// let layout_variant = CanonicalOptions::layout_variant();
/// assert!(layout_variant.x_flips && !layout_variant.permutations);
/// let layout_invariant = CanonicalOptions::layout_invariant();
/// assert!(layout_invariant.permutations);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanonicalOptions {
    /// Apply Pauli-X flips (zero CNOT cost) to minimize the representative.
    pub x_flips: bool,
    /// Remove qubits that are separable from the rest of the register
    /// (they can be rotated to `|0⟩` with a zero-cost Y rotation).
    pub remove_separable: bool,
    /// Additionally quotient by qubit permutations (layout-invariant
    /// equivalence, `V_G / PU(2)` in the paper).
    pub permutations: bool,
}

impl CanonicalOptions {
    /// No equivalence at all: the canonical form is the sorted index set.
    pub const fn none() -> Self {
        CanonicalOptions {
            x_flips: false,
            remove_separable: false,
            permutations: false,
        }
    }

    /// Layout-variant equivalence `V_G / U(2)`: X flips plus separable-qubit
    /// removal, no permutations.
    pub const fn layout_variant() -> Self {
        CanonicalOptions {
            x_flips: true,
            remove_separable: true,
            permutations: false,
        }
    }

    /// Layout-invariant equivalence `V_G / PU(2)`: X flips, separable-qubit
    /// removal and qubit permutations.
    pub const fn layout_invariant() -> Self {
        CanonicalOptions {
            x_flips: true,
            remove_separable: true,
            permutations: true,
        }
    }
}

impl Default for CanonicalOptions {
    fn default() -> Self {
        CanonicalOptions::layout_variant()
    }
}

/// The canonical representative of a uniform index-set state.
///
/// The representative consists of the width of the *entangled core* (the
/// register after separable qubits have been removed) and the
/// lexicographically minimal sorted index set over the admitted
/// transformations.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalForm {
    core_qubits: usize,
    indices: Vec<BasisIndex>,
}

impl CanonicalForm {
    /// Canonicalizes a set of basis indices interpreted as a uniform
    /// superposition on `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or an index does not fit in the register.
    pub fn of_index_set(
        indices: &BTreeSet<BasisIndex>,
        num_qubits: usize,
        options: CanonicalOptions,
    ) -> Self {
        assert!(
            !indices.is_empty(),
            "cannot canonicalize an empty index set"
        );
        let limit = if num_qubits >= 64 {
            u64::MAX
        } else {
            1u64 << num_qubits
        };
        assert!(
            indices.iter().all(|i| i.value() < limit),
            "index does not fit in a {num_qubits}-qubit register"
        );

        let mut set: BTreeSet<BasisIndex> = indices.clone();
        let mut core_qubits = num_qubits;
        if options.remove_separable {
            let (cleared, active) = clear_separable_qubits(&set, num_qubits);
            set = cleared;
            core_qubits = active;
        }

        let indices = if options.permutations || options.x_flips {
            let entries: Vec<(u64, u64)> = set.iter().map(|i| (i.value(), 0)).collect();
            let pipeline_options = PipelineOptions {
                permutations: options.permutations,
                x_flips: options.x_flips,
                ..PipelineOptions::layout_invariant()
            };
            pipeline::canonicalize(num_qubits, &entries, &pipeline_options)
                .entries
                .into_iter()
                .map(|(index, _)| BasisIndex::new(index))
                .collect()
        } else {
            set.iter().copied().collect()
        };

        CanonicalForm {
            core_qubits,
            indices,
        }
    }

    /// Canonicalizes the support of any state backend (amplitudes are
    /// ignored; this is the uniform-state equivalence of Table III). Use the
    /// search layer of `qsp-core` for amplitude-aware compression.
    pub fn of_state<S: QuantumState>(state: &S, options: CanonicalOptions) -> Self {
        let set: BTreeSet<BasisIndex> = state.amplitudes().map(|(i, _)| i).collect();
        Self::of_index_set(&set, state.num_qubits(), options)
    }

    /// Width of the entangled core after separable-qubit removal.
    #[inline]
    pub fn core_qubits(&self) -> usize {
        self.core_qubits
    }

    /// Cardinality of the canonical representative.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.indices.len()
    }

    /// The canonical index set (sorted ascending).
    pub fn indices(&self) -> &[BasisIndex] {
        &self.indices
    }
}

/// Clears constant and uniformly separable qubits of a uniform index set.
///
/// A qubit is *cleared* (set to `|0⟩` in every index, duplicates merged) when
/// it is constant over the support or when its two cofactor index sets are
/// identical — for a uniform superposition the qubit then factors out as
/// `(|0⟩ + |1⟩)/√2` and a zero-cost Y rotation maps it to `|0⟩`, halving the
/// cardinality. Qubit positions are preserved (clearing, not removing), which
/// keeps the layout-variant equivalence `V_G / U(2)` position-sensitive as in
/// Table III of the paper.
///
/// Returns the cleared index set together with the number of *active* (still
/// entangled) qubits.
fn clear_separable_qubits(
    indices: &BTreeSet<BasisIndex>,
    num_qubits: usize,
) -> (BTreeSet<BasisIndex>, usize) {
    let mut set = indices.clone();
    let mut active: Vec<bool> = vec![true; num_qubits];
    loop {
        let mut changed = false;
        for (qubit, slot) in active.iter_mut().enumerate() {
            if !*slot {
                continue;
            }
            let negative: BTreeSet<BasisIndex> = set
                .iter()
                .filter(|i| !i.bit(qubit))
                .map(|i| i.with_bit(qubit, false))
                .collect();
            let positive: BTreeSet<BasisIndex> = set
                .iter()
                .filter(|i| i.bit(qubit))
                .map(|i| i.with_bit(qubit, false))
                .collect();
            let separable = negative.is_empty() || positive.is_empty() || negative == positive;
            if separable {
                set = set.iter().map(|i| i.with_bit(qubit, false)).collect();
                *slot = false;
                changed = true;
            }
        }
        if !changed {
            let remaining = active.iter().filter(|&&a| a).count();
            return (set, remaining);
        }
    }
}

/// Visits every permutation of `0..n` exactly once (recursive swap
/// enumeration).
pub fn for_each_permutation<F: FnMut(&[usize])>(n: usize, visit: &mut F) {
    fn rec<F: FnMut(&[usize])>(perm: &mut Vec<usize>, start: usize, visit: &mut F) {
        if start == perm.len() {
            visit(perm);
            return;
        }
        for i in start..perm.len() {
            perm.swap(start, i);
            rec(perm, start + 1, visit);
            perm.swap(start, i);
        }
    }
    let mut perm: Vec<usize> = (0..n).collect();
    rec(&mut perm, 0, visit);
}

/// Counts equivalence classes among all cardinality-`m` uniform states of an
/// `n`-qubit register, attributing each class to the cardinality of its
/// canonical core (the bookkeeping behind Table III).
///
/// Returns the number of classes whose canonical representative still has
/// cardinality `m` — classes that reduce to a smaller cardinality are counted
/// in that smaller row instead, exactly once.
pub fn count_canonical_states(
    num_qubits: usize,
    cardinality: usize,
    options: CanonicalOptions,
) -> usize {
    assert!(
        num_qubits <= 5,
        "exhaustive enumeration limited to 5 qubits"
    );
    let total = 1usize << num_qubits;
    assert!(cardinality >= 1 && cardinality <= total);
    let mut classes: BTreeSet<CanonicalForm> = BTreeSet::new();
    let mut subset = vec![0usize; cardinality];
    enumerate_subsets(total, cardinality, &mut subset, 0, 0, &mut |chosen| {
        let set: BTreeSet<BasisIndex> = chosen.iter().map(|&i| BasisIndex::new(i as u64)).collect();
        let form = CanonicalForm::of_index_set(&set, num_qubits, options);
        if form.cardinality() == cardinality {
            classes.insert(form);
        }
    });
    classes.len()
}

fn enumerate_subsets<F: FnMut(&[usize])>(
    total: usize,
    k: usize,
    subset: &mut Vec<usize>,
    depth: usize,
    start: usize,
    visit: &mut F,
) {
    if depth == k {
        visit(subset);
        return;
    }
    for value in start..total {
        subset[depth] = value;
        enumerate_subsets(total, k, subset, depth + 1, value + 1, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::SparseState;

    fn set(values: &[u64]) -> BTreeSet<BasisIndex> {
        values.iter().map(|&v| BasisIndex::new(v)).collect()
    }

    #[test]
    fn x_flips_translate_the_support() {
        // {|100⟩+|010⟩} and {|000⟩+|110⟩} are equivalent via an X flip (paper example ψ1).
        let a = CanonicalForm::of_index_set(
            &set(&[0b001, 0b010]),
            3,
            CanonicalOptions::layout_variant(),
        );
        let b = CanonicalForm::of_index_set(
            &set(&[0b000, 0b011]),
            3,
            CanonicalOptions::layout_variant(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn separable_qubit_removal_matches_paper_example_psi2() {
        // φ = (|100⟩+|010⟩)/√2 is equivalent to ψ2 = (|000⟩+|001⟩+|110⟩+|111⟩)/2
        // because an Ry(π/2) on the last qubit maps one to the other.
        let phi = CanonicalForm::of_index_set(
            &set(&[0b001, 0b010]),
            3,
            CanonicalOptions::layout_variant(),
        );
        let psi2 = CanonicalForm::of_index_set(
            &set(&[0b000, 0b100, 0b011, 0b111]),
            3,
            CanonicalOptions::layout_variant(),
        );
        assert_eq!(phi, psi2);
        assert_eq!(phi.cardinality(), 2);
    }

    #[test]
    fn permutation_equivalence_matches_paper_example_psi3() {
        // φ = (|100⟩+|010⟩)/√2 equivalent to ψ3 = (|100⟩+|001⟩)/√2 by swapping qubits.
        let phi = CanonicalForm::of_index_set(
            &set(&[0b001, 0b010]),
            3,
            CanonicalOptions::layout_invariant(),
        );
        let psi3 = CanonicalForm::of_index_set(
            &set(&[0b001, 0b100]),
            3,
            CanonicalOptions::layout_invariant(),
        );
        assert_eq!(phi, psi3);
        // Without permutations they differ only if the flip canonicalization
        // cannot align them; here a relabelling is genuinely required.
        let phi_lv = CanonicalForm::of_index_set(
            &set(&[0b001, 0b010]),
            3,
            CanonicalOptions::layout_variant(),
        );
        let psi3_lv = CanonicalForm::of_index_set(
            &set(&[0b001, 0b100]),
            3,
            CanonicalOptions::layout_variant(),
        );
        assert_ne!(phi_lv, psi3_lv);
    }

    #[test]
    fn ghz_is_its_own_core() {
        let ghz = set(&[0b0000, 0b1111]);
        let form = CanonicalForm::of_index_set(&ghz, 4, CanonicalOptions::layout_invariant());
        assert_eq!(form.core_qubits(), 4);
        assert_eq!(form.cardinality(), 2);
        assert_eq!(form.indices()[0], BasisIndex::ZERO);
    }

    #[test]
    fn fully_separable_state_reduces_to_the_ground_state() {
        // Uniform superposition over all of {0,1}^3 is |+++⟩: every qubit separable.
        let all = set(&(0..8u64).collect::<Vec<_>>());
        let form = CanonicalForm::of_index_set(&all, 3, CanonicalOptions::layout_variant());
        assert_eq!(form.cardinality(), 1);
        assert_eq!(form.core_qubits(), 0);
        assert_eq!(form.indices(), &[BasisIndex::ZERO]);
    }

    #[test]
    fn table3_small_cardinalities_match_paper() {
        // Table III, rows m = 1 and m = 2 (4-qubit register):
        //   |V_G/U(2)| = 1, 11    |V_G/PU(2)| = 1, 3
        assert_eq!(
            count_canonical_states(4, 1, CanonicalOptions::layout_variant()),
            1
        );
        assert_eq!(
            count_canonical_states(4, 1, CanonicalOptions::layout_invariant()),
            1
        );
        assert_eq!(
            count_canonical_states(4, 2, CanonicalOptions::layout_variant()),
            11
        );
        assert_eq!(
            count_canonical_states(4, 2, CanonicalOptions::layout_invariant()),
            3
        );
    }

    #[test]
    fn canonicalization_without_options_is_identity() {
        let s = set(&[0b01, 0b10]);
        let form = CanonicalForm::of_index_set(&s, 2, CanonicalOptions::none());
        assert_eq!(
            form.indices(),
            &[BasisIndex::new(0b01), BasisIndex::new(0b10)]
        );
        assert_eq!(form.core_qubits(), 2);
    }

    #[test]
    fn of_state_uses_the_support() {
        let state =
            SparseState::uniform_superposition(3, [BasisIndex::new(0b001), BasisIndex::new(0b010)])
                .unwrap();
        let via_state = CanonicalForm::of_state(&state, CanonicalOptions::layout_variant());
        let via_set = CanonicalForm::of_index_set(
            &set(&[0b001, 0b010]),
            3,
            CanonicalOptions::layout_variant(),
        );
        assert_eq!(via_state, via_set);
    }

    #[test]
    fn wide_registers_canonicalize_exactly_via_support_masks() {
        // 14 qubits was beyond the old exhaustive 2^n flip bound; the
        // support-mask search of the pipeline stays exact at any width, so
        // the representative must start at |0…0⟩.
        let wide = set(&[0b10_0000_0000_0001, 0b01_0000_0000_0010]);
        let form = CanonicalForm::of_index_set(&wide, 14, CanonicalOptions::layout_variant());
        assert_eq!(form.cardinality(), 2);
        assert_eq!(form.indices()[0], BasisIndex::ZERO);
    }

    #[test]
    #[should_panic(expected = "empty index set")]
    fn empty_set_panics() {
        let empty = BTreeSet::new();
        let _ = CanonicalForm::of_index_set(&empty, 2, CanonicalOptions::none());
    }
}
