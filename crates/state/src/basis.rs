//! Computational basis vectors `|x⟩`, `x ∈ {0,1}^n`, stored as bit masks.
//!
//! Qubit `i` corresponds to bit `i` of the underlying `u64`, so at most
//! [`BasisIndex::MAX_QUBITS`] qubits are supported, which is far beyond what
//! any exact-synthesis workload needs (the paper evaluates up to 20 qubits).

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor};

/// A computational basis vector of an `n`-qubit register, encoded as a bit
/// mask: bit `i` is the value of qubit `i`.
///
/// `BasisIndex` is a thin newtype over `u64` providing the bit-level
/// operations the synthesis algorithms need (bit tests, flips, controlled
/// flips, permutations) while keeping qubit indices type-checked at the API
/// boundary.
///
/// # Example
///
/// ```
/// use qsp_state::BasisIndex;
///
/// let x = BasisIndex::new(0b011);
/// assert!(x.bit(0));
/// assert!(x.bit(1));
/// assert!(!x.bit(2));
/// assert_eq!(x.flip_bit(2), BasisIndex::new(0b111));
/// assert_eq!(x.hamming_weight(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BasisIndex(u64);

impl BasisIndex {
    /// Maximum number of qubits representable by a [`BasisIndex`].
    pub const MAX_QUBITS: usize = 64;

    /// The all-zero basis vector `|0…0⟩`.
    pub const ZERO: BasisIndex = BasisIndex(0);

    /// Creates a basis index from its integer encoding.
    #[inline]
    pub const fn new(value: u64) -> Self {
        BasisIndex(value)
    }

    /// Returns the integer encoding of the basis vector.
    #[inline]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns the value of qubit `qubit` (bit `qubit`).
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= 64`.
    #[inline]
    pub const fn bit(self, qubit: usize) -> bool {
        assert!(qubit < Self::MAX_QUBITS);
        (self.0 >> qubit) & 1 == 1
    }

    /// Returns a copy with qubit `qubit` flipped (Pauli-X applied).
    #[inline]
    pub const fn flip_bit(self, qubit: usize) -> Self {
        assert!(qubit < Self::MAX_QUBITS);
        BasisIndex(self.0 ^ (1 << qubit))
    }

    /// Returns a copy with qubit `qubit` set to `value`.
    #[inline]
    pub const fn with_bit(self, qubit: usize, value: bool) -> Self {
        assert!(qubit < Self::MAX_QUBITS);
        if value {
            BasisIndex(self.0 | (1 << qubit))
        } else {
            BasisIndex(self.0 & !(1 << qubit))
        }
    }

    /// Applies a CNOT with control `control` and target `target`: flips the
    /// target bit iff the control bit is set.
    ///
    /// # Panics
    ///
    /// Panics if `control == target`.
    #[inline]
    pub const fn apply_cnot(self, control: usize, target: usize) -> Self {
        assert!(control != target, "cnot control and target must differ");
        if self.bit(control) {
            self.flip_bit(target)
        } else {
            self
        }
    }

    /// Applies a zero-controlled (negative-control) CNOT: flips the target
    /// bit iff the control bit is clear.
    #[inline]
    pub const fn apply_cnot_negated(self, control: usize, target: usize) -> Self {
        assert!(control != target, "cnot control and target must differ");
        if self.bit(control) {
            self
        } else {
            self.flip_bit(target)
        }
    }

    /// Number of qubits set to one.
    #[inline]
    pub const fn hamming_weight(self) -> u32 {
        self.0.count_ones()
    }

    /// Hamming distance to another basis vector.
    #[inline]
    pub const fn hamming_distance(self, other: Self) -> u32 {
        (self.0 ^ other.0).count_ones()
    }

    /// Removes qubit `qubit` from the index, shifting the higher bits down.
    ///
    /// This is the index part of a cofactor computation: the result is the
    /// basis vector over the remaining `n − 1` qubits.
    #[inline]
    pub fn remove_qubit(self, qubit: usize) -> Self {
        assert!(qubit < Self::MAX_QUBITS);
        let low_mask = (1u64 << qubit) - 1;
        let low = self.0 & low_mask;
        let high = (self.0 >> (qubit + 1)) << qubit;
        BasisIndex(low | high)
    }

    /// Inserts a qubit with value `value` at position `qubit`, shifting the
    /// higher bits up. Inverse of [`BasisIndex::remove_qubit`].
    #[inline]
    pub fn insert_qubit(self, qubit: usize, value: bool) -> Self {
        assert!(qubit < Self::MAX_QUBITS);
        let low_mask = (1u64 << qubit) - 1;
        let low = self.0 & low_mask;
        let high = (self.0 & !low_mask) << 1;
        BasisIndex(low | high).with_bit(qubit, value)
    }

    /// Applies a qubit permutation: qubit `i` of the result takes the value
    /// of qubit `perm[i]` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` refers to qubits outside `0..perm.len()`.
    pub fn permute(self, perm: &[usize]) -> Self {
        let mut out = 0u64;
        for (new_pos, &old_pos) in perm.iter().enumerate() {
            assert!(old_pos < perm.len(), "permutation entry out of range");
            if self.bit(old_pos) {
                out |= 1 << new_pos;
            }
        }
        // Preserve any bits above the permuted window untouched.
        let window_mask = if perm.len() >= 64 {
            u64::MAX
        } else {
            (1u64 << perm.len()) - 1
        };
        BasisIndex(out | (self.0 & !window_mask))
    }

    /// Returns the positions at which `self` and `other` differ.
    pub fn differing_qubits(self, other: Self, num_qubits: usize) -> Vec<usize> {
        let diff = self.0 ^ other.0;
        (0..num_qubits).filter(|&q| (diff >> q) & 1 == 1).collect()
    }

    /// Returns the qubits set to one, lowest first.
    pub fn ones(self, num_qubits: usize) -> Vec<usize> {
        (0..num_qubits).filter(|&q| self.bit(q)).collect()
    }

    /// Renders the basis vector as a ket string over `num_qubits` qubits with
    /// qubit 0 leftmost (the convention used in the paper's figures).
    pub fn to_ket(self, num_qubits: usize) -> String {
        let mut s = String::with_capacity(num_qubits + 2);
        s.push('|');
        for q in 0..num_qubits {
            s.push(if self.bit(q) { '1' } else { '0' });
        }
        s.push('⟩');
        s
    }
}

impl From<u64> for BasisIndex {
    fn from(value: u64) -> Self {
        BasisIndex(value)
    }
}

impl From<BasisIndex> for u64 {
    fn from(value: BasisIndex) -> Self {
        value.0
    }
}

impl BitAnd for BasisIndex {
    type Output = BasisIndex;
    fn bitand(self, rhs: Self) -> Self::Output {
        BasisIndex(self.0 & rhs.0)
    }
}

impl BitOr for BasisIndex {
    type Output = BasisIndex;
    fn bitor(self, rhs: Self) -> Self::Output {
        BasisIndex(self.0 | rhs.0)
    }
}

impl BitXor for BasisIndex {
    type Output = BasisIndex;
    fn bitxor(self, rhs: Self) -> Self::Output {
        BasisIndex(self.0 ^ rhs.0)
    }
}

impl fmt::Display for BasisIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Binary for BasisIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for BasisIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for BasisIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Octal for BasisIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_access_and_flip() {
        let x = BasisIndex::new(0b1010);
        assert!(!x.bit(0));
        assert!(x.bit(1));
        assert!(!x.bit(2));
        assert!(x.bit(3));
        assert_eq!(x.flip_bit(0).value(), 0b1011);
        assert_eq!(x.flip_bit(3).value(), 0b0010);
        assert_eq!(x.with_bit(0, true).value(), 0b1011);
        assert_eq!(x.with_bit(1, false).value(), 0b1000);
        assert_eq!(x.with_bit(1, true).value(), 0b1010);
    }

    #[test]
    fn cnot_semantics() {
        let x = BasisIndex::new(0b01);
        assert_eq!(x.apply_cnot(0, 1).value(), 0b11);
        assert_eq!(x.apply_cnot(1, 0).value(), 0b01);
        assert_eq!(x.apply_cnot_negated(1, 0).value(), 0b00);
    }

    #[test]
    #[should_panic(expected = "cnot control and target must differ")]
    fn cnot_same_qubit_panics() {
        let _ = BasisIndex::new(1).apply_cnot(0, 0);
    }

    #[test]
    fn hamming_metrics() {
        let a = BasisIndex::new(0b0110);
        let b = BasisIndex::new(0b1010);
        assert_eq!(a.hamming_weight(), 2);
        assert_eq!(a.hamming_distance(b), 2);
        assert_eq!(a.differing_qubits(b, 4), vec![2, 3]);
        assert_eq!(a.ones(4), vec![1, 2]);
    }

    #[test]
    fn remove_and_insert_qubit_roundtrip() {
        let x = BasisIndex::new(0b10110);
        for q in 0..5 {
            let removed = x.remove_qubit(q);
            let restored = removed.insert_qubit(q, x.bit(q));
            assert_eq!(restored, x, "round trip failed at qubit {q}");
        }
        assert_eq!(BasisIndex::new(0b101).remove_qubit(1).value(), 0b11);
        assert_eq!(BasisIndex::new(0b11).insert_qubit(1, false).value(), 0b101);
    }

    #[test]
    fn permutation_moves_bits() {
        // perm[i] = source qubit for destination i.
        let x = BasisIndex::new(0b001);
        let perm = vec![2, 0, 1];
        // destination 0 takes old qubit 2 (=0), destination 1 takes old qubit 0 (=1),
        // destination 2 takes old qubit 1 (=0) => 0b010.
        assert_eq!(x.permute(&perm).value(), 0b010);

        // Applying a permutation and its inverse restores the value.
        let perm = vec![1, 2, 0];
        let mut inverse = vec![0; 3];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p] = i;
        }
        let y = BasisIndex::new(0b110);
        assert_eq!(y.permute(&perm).permute(&inverse), y);
    }

    #[test]
    fn ket_rendering_uses_qubit0_leftmost() {
        let x = BasisIndex::new(0b011);
        assert_eq!(x.to_ket(3), "|110⟩");
        assert_eq!(BasisIndex::ZERO.to_ket(2), "|00⟩");
    }

    #[test]
    fn formatting_traits() {
        let x = BasisIndex::new(0b1010);
        assert_eq!(format!("{x}"), "10");
        assert_eq!(format!("{x:b}"), "1010");
        assert_eq!(format!("{x:x}"), "a");
        assert_eq!(format!("{x:o}"), "12");
    }

    #[test]
    fn bit_operators() {
        let a = BasisIndex::new(0b1100);
        let b = BasisIndex::new(0b1010);
        assert_eq!((a & b).value(), 0b1000);
        assert_eq!((a | b).value(), 0b1110);
        assert_eq!((a ^ b).value(), 0b0110);
    }
}
