//! # qsp-state
//!
//! Quantum state **backends** and analysis substrate for CNOT-optimal
//! quantum state preparation (QSP), reproducing and extending the exact
//! CNOT synthesis formulation of Wang et al. (DATE 2024).
//!
//! The crate is organized around one abstraction:
//!
//! * [`QuantumState`] — the backend trait every representation implements:
//!   qubit count, cardinality, amplitude iteration, zero-copy
//!   sparse/dense views and the Sec. V-B canonicalization hook. The whole
//!   synthesis stack (`qsp-core`, `qsp-baselines`, `qsp-sim`, `qsp-bench`)
//!   is generic over it.
//!
//! Three backends implement the trait:
//!
//! * [`SparseState`] — the `n × m` index-set representation of the paper
//!   (Sec. II-A); the synthesis workhorse.
//! * [`DenseState`] — a full `2^n` state vector; the verification and
//!   qubit-reduction workhorse.
//! * [`AdaptiveState`] — holds either of the two and switches automatically
//!   by density threshold (promotion/demotion without copying unless the
//!   representation changes).
//!
//! On top of the backends:
//!
//! * [`cofactor`] — cofactor extraction and the entanglement analysis used by
//!   the admissible A* heuristic (Sec. V-A), generic over any backend.
//! * [`pipeline`] — the staged invariant-guided canonicalization pipeline:
//!   frame-invariant signatures, color-orbit-restricted permutation
//!   enumeration and support-mask flip canonicalization — the one keying
//!   engine behind [`canonical`], the batch dedup keys of `qsp-core` and
//!   the serve layer's in-flight dedup.
//! * [`canonical`] — canonical forms under zero-cost single-qubit gates and
//!   qubit permutation used for state compression and batch deduplication
//!   (Sec. V-B, Table III), built on [`pipeline`].
//! * [`generators`] — workload generators for Dicke, GHZ, W, product and
//!   random dense/sparse states used throughout the paper's evaluation.
//!
//! # Example
//!
//! ```
//! use qsp_state::{BasisIndex, QuantumState, SparseState};
//!
//! # fn main() -> Result<(), qsp_state::StateError> {
//! // The motivating example of the paper: (|000> + |011> + |101> + |110>)/2.
//! let state = SparseState::uniform_superposition(
//!     3,
//!     [0b000u64, 0b011, 0b101, 0b110].iter().map(|&x| BasisIndex::new(x)),
//! )?;
//! assert_eq!(state.cardinality(), 4);
//! assert_eq!(state.num_qubits(), 3);
//! assert!(state.is_normalized(1e-9));
//! // Any backend exposes the same trait surface:
//! let dense = state.as_dense()?;
//! assert_eq!(dense.cardinality(), 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod amplitude;
pub mod backend;
pub mod basis;
pub mod canonical;
pub mod cofactor;
pub mod dense;
pub mod error;
pub mod generators;
pub mod pipeline;
pub mod sparse;

pub use adaptive::{AdaptiveState, StateRepr};
pub use amplitude::Amplitude;
pub use backend::{AmplitudeIter, QuantumState};
pub use basis::BasisIndex;
pub use canonical::{CanonicalForm, CanonicalOptions};
pub use cofactor::{entangled_qubits, is_qubit_separable, Cofactors};
pub use dense::DenseState;
pub use error::StateError;
pub use pipeline::{KeyCoverage, PipelineKey, PipelineOptions};
pub use sparse::SparseState;

/// Numerical tolerance used by default for amplitude comparisons.
pub const DEFAULT_TOLERANCE: f64 = 1e-9;
