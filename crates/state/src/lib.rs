//! # qsp-state
//!
//! Quantum state representation and analysis substrate for CNOT-optimal
//! quantum state preparation (QSP).
//!
//! This crate provides the data structures that the exact CNOT synthesis
//! formulation of Wang et al. (DATE 2024) operates on:
//!
//! * [`BasisIndex`] — a computational basis vector `|x⟩`, `x ∈ {0,1}^n`,
//!   stored as a bit mask.
//! * [`SparseState`] — an `n`-qubit quantum state with real amplitudes stored
//!   sparsely as a map from basis index to amplitude (the "index set"
//!   representation of the paper, Sec. II-A).
//! * [`cofactor`] — cofactor extraction and the entanglement analysis used by
//!   the admissible A* heuristic (Sec. V-A).
//! * [`canonical`] — canonical forms under zero-cost single-qubit gates and
//!   qubit permutation used for state compression (Sec. V-B, Table III).
//! * [`generators`] — workload generators for Dicke, GHZ, W, product and
//!   random dense/sparse states used throughout the paper's evaluation.
//!
//! # Example
//!
//! ```
//! use qsp_state::{BasisIndex, SparseState};
//!
//! # fn main() -> Result<(), qsp_state::StateError> {
//! // The motivating example of the paper: (|000> + |011> + |101> + |110>)/2.
//! let state = SparseState::uniform_superposition(
//!     3,
//!     [0b000u64, 0b011, 0b101, 0b110].iter().map(|&x| BasisIndex::new(x)),
//! )?;
//! assert_eq!(state.cardinality(), 4);
//! assert_eq!(state.num_qubits(), 3);
//! assert!(state.is_normalized(1e-9));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod amplitude;
pub mod basis;
pub mod canonical;
pub mod cofactor;
pub mod dense;
pub mod error;
pub mod generators;
pub mod sparse;

pub use amplitude::Amplitude;
pub use basis::BasisIndex;
pub use canonical::{CanonicalForm, CanonicalOptions};
pub use cofactor::{entangled_qubits, is_qubit_separable, Cofactors};
pub use dense::DenseState;
pub use error::StateError;
pub use sparse::SparseState;

/// Numerical tolerance used by default for amplitude comparisons.
pub const DEFAULT_TOLERANCE: f64 = 1e-9;
