//! An adaptive state backend that switches between sparse and dense storage
//! automatically.
//!
//! [`AdaptiveState`] holds either a [`SparseState`] or a [`DenseState`] and
//! picks the representation from the state's **density** (occupied fraction
//! of the `2^n` basis states): above [`AdaptiveState::DENSITY_THRESHOLD`] the
//! dense vector wins (O(1) amplitude lookup, cache-friendly iteration),
//! below it the sparse map wins (`n × m` memory as in Sec. VI-D of the
//! paper). Promotion and demotion move the underlying storage — no amplitude
//! is copied unless the representation actually changes.

use std::borrow::Cow;
use std::fmt;

use crate::backend::{AmplitudeIter, QuantumState};
use crate::basis::BasisIndex;
use crate::dense::DenseState;
use crate::error::StateError;
use crate::sparse::SparseState;
use crate::DEFAULT_TOLERANCE;

/// Which concrete representation an [`AdaptiveState`] currently uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateRepr {
    /// Backed by a [`SparseState`] (index-set map).
    Sparse,
    /// Backed by a [`DenseState`] (full `2^n` vector).
    Dense,
}

#[derive(Debug, Clone, PartialEq)]
enum Repr {
    Sparse(SparseState),
    Dense(DenseState),
}

/// A quantum state that automatically chooses between sparse and dense
/// storage by density threshold.
///
/// # Example
///
/// ```
/// use qsp_state::{AdaptiveState, BasisIndex, QuantumState, SparseState, StateRepr};
///
/// # fn main() -> Result<(), qsp_state::StateError> {
/// // 2 of 8 basis states occupied: density 0.25 stays sparse.
/// let ghz = SparseState::uniform_superposition(
///     3,
///     [BasisIndex::new(0), BasisIndex::new(7)],
/// )?;
/// let adaptive = AdaptiveState::from_sparse(ghz);
/// assert_eq!(adaptive.repr(), StateRepr::Sparse);
///
/// // All 8 basis states occupied: density 1.0 promotes to dense.
/// let full = SparseState::uniform_superposition(3, (0..8).map(BasisIndex::new))?;
/// let adaptive = AdaptiveState::from_sparse(full);
/// assert_eq!(adaptive.repr(), StateRepr::Dense);
/// assert_eq!(adaptive.cardinality(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveState {
    repr: Repr,
}

impl AdaptiveState {
    /// Density at or above which the dense representation is preferred.
    ///
    /// At density `d` the sparse map stores roughly `2·d·2^n` words (index +
    /// amplitude, ignoring node overhead) against the dense vector's flat
    /// `2^n`, so the break-even sits at `d = 0.5`; the threshold is kept
    /// slightly below to account for the sparse map's per-node overhead.
    pub const DENSITY_THRESHOLD: f64 = 0.4;

    /// Wraps a sparse state, promoting to dense storage when the density
    /// threshold says so (and the register fits a dense vector).
    pub fn from_sparse(state: SparseState) -> Self {
        AdaptiveState {
            repr: Repr::Sparse(state),
        }
        .rebalance()
    }

    /// Wraps a dense state, demoting to sparse storage when the density
    /// threshold says so.
    pub fn from_dense(state: DenseState) -> Self {
        AdaptiveState {
            repr: Repr::Dense(state),
        }
        .rebalance()
    }

    /// The ground state `|0…0⟩`, stored in the threshold-preferred
    /// representation (sparse for every register wider than one qubit).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SparseState::ground_state`].
    pub fn ground_state(num_qubits: usize) -> Result<Self, StateError> {
        Ok(AdaptiveState::from_sparse(SparseState::ground_state(
            num_qubits,
        )?))
    }

    /// The representation currently backing the state.
    pub fn repr(&self) -> StateRepr {
        match self.repr {
            Repr::Sparse(_) => StateRepr::Sparse,
            Repr::Dense(_) => StateRepr::Dense,
        }
    }

    /// Whether the density threshold prefers dense storage for this state.
    fn wants_dense(&self) -> bool {
        self.num_qubits() <= DenseState::MAX_QUBITS && self.density() >= Self::DENSITY_THRESHOLD
    }

    /// Re-applies the density threshold, converting the underlying storage if
    /// (and only if) the preferred representation changed. Conversions move
    /// the existing buffer out; nothing is copied when the representation is
    /// already the preferred one.
    pub fn rebalance(self) -> Self {
        let wants_dense = self.wants_dense();
        match (self.repr, wants_dense) {
            (Repr::Sparse(s), true) => AdaptiveState {
                repr: Repr::Dense(DenseState::from_sparse(&s)),
            },
            (Repr::Dense(d), false) => match d.to_sparse(DEFAULT_TOLERANCE) {
                Ok(s) => AdaptiveState {
                    repr: Repr::Sparse(s),
                },
                // A numerically zero vector has no sparse form; keep it dense.
                Err(_) => AdaptiveState {
                    repr: Repr::Dense(d),
                },
            },
            (repr, _) => AdaptiveState { repr },
        }
    }

    /// Forces dense storage regardless of the threshold.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::TooManyQubits`] when the register does not fit a
    /// dense vector.
    pub fn promote(self) -> Result<Self, StateError> {
        match self.repr {
            Repr::Dense(d) => Ok(AdaptiveState {
                repr: Repr::Dense(d),
            }),
            Repr::Sparse(s) => {
                if s.num_qubits() > DenseState::MAX_QUBITS {
                    return Err(StateError::TooManyQubits {
                        requested: s.num_qubits(),
                        max: DenseState::MAX_QUBITS,
                    });
                }
                Ok(AdaptiveState {
                    repr: Repr::Dense(DenseState::from_sparse(&s)),
                })
            }
        }
    }

    /// Forces sparse storage regardless of the threshold.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::EmptyState`] for a numerically zero dense vector.
    pub fn demote(self) -> Result<Self, StateError> {
        match self.repr {
            Repr::Sparse(s) => Ok(AdaptiveState {
                repr: Repr::Sparse(s),
            }),
            Repr::Dense(d) => Ok(AdaptiveState {
                repr: Repr::Sparse(d.to_sparse(DEFAULT_TOLERANCE)?),
            }),
        }
    }
}

impl QuantumState for AdaptiveState {
    fn num_qubits(&self) -> usize {
        match &self.repr {
            Repr::Sparse(s) => s.num_qubits(),
            Repr::Dense(d) => d.num_qubits(),
        }
    }

    fn cardinality(&self) -> usize {
        match &self.repr {
            Repr::Sparse(s) => s.cardinality(),
            Repr::Dense(d) => d.cardinality(),
        }
    }

    fn amplitude(&self, index: BasisIndex) -> f64 {
        match &self.repr {
            Repr::Sparse(s) => s.amplitude(index),
            Repr::Dense(d) => d.amplitude(index),
        }
    }

    fn amplitudes(&self) -> AmplitudeIter<'_> {
        match &self.repr {
            Repr::Sparse(s) => QuantumState::amplitudes(s),
            Repr::Dense(d) => QuantumState::amplitudes(d),
        }
    }

    fn as_sparse(&self) -> Result<Cow<'_, SparseState>, StateError> {
        match &self.repr {
            Repr::Sparse(s) => Ok(Cow::Borrowed(s)),
            Repr::Dense(d) => d.as_sparse(),
        }
    }

    fn as_dense(&self) -> Result<Cow<'_, DenseState>, StateError> {
        match &self.repr {
            Repr::Sparse(s) => s.as_dense(),
            Repr::Dense(d) => Ok(Cow::Borrowed(d)),
        }
    }

    fn norm_squared(&self) -> f64 {
        match &self.repr {
            Repr::Sparse(s) => s.norm_squared(),
            Repr::Dense(d) => d.norm_squared(),
        }
    }
}

impl fmt::Display for AdaptiveState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Sparse(s) => write!(f, "{s}"),
            Repr::Dense(d) => write!(f, "{d}"),
        }
    }
}

impl From<SparseState> for AdaptiveState {
    fn from(state: SparseState) -> Self {
        AdaptiveState::from_sparse(state)
    }
}

impl From<DenseState> for AdaptiveState {
    fn from(state: DenseState) -> Self {
        AdaptiveState::from_dense(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, indices: impl IntoIterator<Item = u64>) -> SparseState {
        SparseState::uniform_superposition(n, indices.into_iter().map(BasisIndex::new)).unwrap()
    }

    #[test]
    fn threshold_picks_the_representation() {
        // density 0.25 < threshold: sparse.
        let low = AdaptiveState::from_sparse(uniform(3, [0, 7]));
        assert_eq!(low.repr(), StateRepr::Sparse);
        // density 0.75 >= threshold: dense.
        let high = AdaptiveState::from_sparse(uniform(3, 0..6));
        assert_eq!(high.repr(), StateRepr::Dense);
        // The same state arriving densely is demoted when it is sparse enough.
        let demoted = AdaptiveState::from_dense(DenseState::from_sparse(&uniform(3, [0, 7])));
        assert_eq!(demoted.repr(), StateRepr::Sparse);
    }

    #[test]
    fn wide_registers_never_promote() {
        let wide = uniform(40, [0, 1]);
        let adaptive = AdaptiveState::from_sparse(wide);
        assert_eq!(adaptive.repr(), StateRepr::Sparse);
        assert!(adaptive.clone().promote().is_err());
        assert_eq!(adaptive.num_qubits(), 40);
    }

    #[test]
    fn promotion_round_trip_preserves_amplitudes() {
        let original = uniform(4, [1, 6, 9, 14]);
        let adaptive = AdaptiveState::from_sparse(original.clone());
        let promoted = adaptive.promote().unwrap();
        assert_eq!(promoted.repr(), StateRepr::Dense);
        let demoted = promoted.demote().unwrap();
        assert_eq!(demoted.repr(), StateRepr::Sparse);
        assert!(demoted.as_sparse().unwrap().approx_eq(&original, 1e-12));
    }

    #[test]
    fn trait_views_agree_with_the_backing_storage() {
        for state in [
            AdaptiveState::from_sparse(uniform(3, [0, 7])),
            AdaptiveState::from_sparse(uniform(3, 0..8)),
        ] {
            assert_eq!(state.num_qubits(), 3);
            assert!(state.is_normalized(1e-9));
            let via_iter: f64 = state.amplitudes().map(|(_, a)| a * a).sum();
            assert!((via_iter - 1.0).abs() < 1e-9);
            let sparse = state.as_sparse().unwrap().into_owned();
            let dense = state.as_dense().unwrap().into_owned();
            assert!(dense.to_sparse(1e-12).unwrap().approx_eq(&sparse, 1e-12));
        }
    }

    #[test]
    fn rebalance_is_idempotent() {
        let state = AdaptiveState::from_sparse(uniform(4, 0..10));
        let repr = state.repr();
        let rebalanced = state.clone().rebalance();
        assert_eq!(rebalanced.repr(), repr);
        assert_eq!(rebalanced, state);
    }

    #[test]
    fn ground_state_and_conversions() {
        let g = AdaptiveState::ground_state(3).unwrap();
        assert_eq!(g.repr(), StateRepr::Sparse);
        assert_eq!(g.cardinality(), 1);
        let from: AdaptiveState = uniform(2, [0, 3]).into();
        assert_eq!(from.num_qubits(), 2);
        let from_dense: AdaptiveState = DenseState::ground_state(2).unwrap().into();
        assert_eq!(from_dense.cardinality(), 1);
        assert_eq!(from_dense.to_string(), "1.0000|00⟩");
    }
}
