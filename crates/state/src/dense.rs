//! Dense (full state-vector) representation of real-amplitude states.
//!
//! Dense states are used by the verification simulator ([`qsp-sim`]) and by
//! the qubit-reduction baseline, which needs amplitudes for every basis index
//! of a (sub-)register. The synthesis algorithms themselves operate on the
//! sparse representation.
//!
//! [`qsp-sim`]: https://docs.rs/qsp-sim

use std::fmt;

use crate::basis::BasisIndex;
use crate::error::StateError;
use crate::sparse::SparseState;
use crate::DEFAULT_TOLERANCE;

/// A dense real state vector of `2^n` amplitudes.
///
/// # Example
///
/// ```
/// use qsp_state::{BasisIndex, DenseState, SparseState};
///
/// # fn main() -> Result<(), qsp_state::StateError> {
/// let sparse = SparseState::uniform_superposition(
///     2,
///     [BasisIndex::new(0), BasisIndex::new(3)],
/// )?;
/// let dense = DenseState::from_sparse(&sparse);
/// assert_eq!(dense.num_qubits(), 2);
/// assert!((dense.amplitude(BasisIndex::new(3)) - 0.5f64.sqrt()).abs() < 1e-12);
/// assert!(dense.to_sparse(1e-9)?.approx_eq(&sparse, 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseState {
    num_qubits: usize,
    amplitudes: Vec<f64>,
}

impl DenseState {
    /// Maximum register width for which a dense vector is allocated (2^26
    /// doubles = 512 MiB); larger requests are rejected.
    pub const MAX_QUBITS: usize = 26;

    /// Creates the ground state `|0…0⟩` on `num_qubits` qubits.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::TooManyQubits`] when the dense vector would not
    /// fit in memory and [`StateError::InvalidParameter`] for zero qubits.
    pub fn ground_state(num_qubits: usize) -> Result<Self, StateError> {
        if num_qubits == 0 {
            return Err(StateError::InvalidParameter {
                reason: "a state needs at least one qubit".to_string(),
            });
        }
        if num_qubits > Self::MAX_QUBITS {
            return Err(StateError::TooManyQubits {
                requested: num_qubits,
                max: Self::MAX_QUBITS,
            });
        }
        let mut amplitudes = vec![0.0; 1 << num_qubits];
        amplitudes[0] = 1.0;
        Ok(DenseState {
            num_qubits,
            amplitudes,
        })
    }

    /// Creates a dense state from a full amplitude vector (length must be a
    /// power of two).
    ///
    /// # Errors
    ///
    /// Returns [`StateError::InvalidParameter`] if the length is not a power
    /// of two or [`StateError::InvalidAmplitude`] for non-finite entries.
    pub fn from_vec(amplitudes: Vec<f64>) -> Result<Self, StateError> {
        if amplitudes.is_empty() || !amplitudes.len().is_power_of_two() {
            return Err(StateError::InvalidParameter {
                reason: "dense amplitude vector length must be a power of two".to_string(),
            });
        }
        if let Some(&bad) = amplitudes.iter().find(|a| !a.is_finite()) {
            return Err(StateError::InvalidAmplitude { value: bad });
        }
        let num_qubits = amplitudes.len().trailing_zeros().max(1) as usize;
        Ok(DenseState {
            num_qubits,
            amplitudes,
        })
    }

    /// Converts a sparse state into its dense vector.
    pub fn from_sparse(state: &SparseState) -> Self {
        let mut amplitudes = vec![0.0; 1usize << state.num_qubits()];
        for (index, amp) in state.iter() {
            amplitudes[index.value() as usize] = amp;
        }
        DenseState {
            num_qubits: state.num_qubits(),
            amplitudes,
        }
    }

    /// Converts the dense vector back to a sparse state, dropping amplitudes
    /// below `tolerance`.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::EmptyState`] if every amplitude is below tolerance.
    pub fn to_sparse(&self, tolerance: f64) -> Result<SparseState, StateError> {
        SparseState::from_amplitudes(
            self.num_qubits,
            self.amplitudes
                .iter()
                .enumerate()
                .filter(|(_, a)| a.abs() > tolerance)
                .map(|(i, &a)| (BasisIndex::new(i as u64), a)),
        )
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Length of the amplitude vector (`2^n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.amplitudes.len()
    }

    /// Always false: a dense state always stores `2^n ≥ 2` amplitudes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Amplitude of a basis index.
    #[inline]
    pub fn amplitude(&self, index: BasisIndex) -> f64 {
        self.amplitudes[index.value() as usize]
    }

    /// A view of the raw amplitude vector.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.amplitudes
    }

    /// A mutable view of the raw amplitude vector (used by the simulator).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.amplitudes
    }

    /// Sum of squared amplitudes.
    pub fn norm_squared(&self) -> f64 {
        self.amplitudes.iter().map(|a| a * a).sum()
    }

    /// Whether the state is normalized within `tolerance`.
    pub fn is_normalized(&self, tolerance: f64) -> bool {
        (self.norm_squared() - 1.0).abs() <= tolerance
    }

    /// Inner product with another dense state of the same width.
    ///
    /// # Panics
    ///
    /// Panics if the register widths differ.
    pub fn inner_product(&self, other: &DenseState) -> f64 {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "inner product requires equal register widths"
        );
        self.amplitudes
            .iter()
            .zip(&other.amplitudes)
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|²` with another dense state.
    pub fn fidelity(&self, other: &DenseState) -> f64 {
        let ip = self.inner_product(other);
        ip * ip
    }

    /// Cardinality: number of amplitudes with magnitude above the default
    /// tolerance.
    pub fn cardinality(&self) -> usize {
        self.amplitudes
            .iter()
            .filter(|a| a.abs() > DEFAULT_TOLERANCE)
            .count()
    }
}

impl fmt::Display for DenseState {
    /// Renders through the sparse representation so that both state types
    /// print identically.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.to_sparse(DEFAULT_TOLERANCE) {
            Ok(sparse) => write!(f, "{sparse}"),
            Err(_) => write!(f, "(zero state vector on {} qubits)", self.num_qubits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_state_and_bounds() {
        let g = DenseState::ground_state(3).unwrap();
        assert_eq!(g.len(), 8);
        assert!(!g.is_empty());
        assert!(g.is_normalized(1e-12));
        assert!(DenseState::ground_state(0).is_err());
        assert!(DenseState::ground_state(40).is_err());
    }

    #[test]
    fn from_vec_validation() {
        assert!(DenseState::from_vec(vec![]).is_err());
        assert!(DenseState::from_vec(vec![1.0, 0.0, 0.0]).is_err());
        assert!(DenseState::from_vec(vec![1.0, f64::NAN]).is_err());
        let s = DenseState::from_vec(vec![0.0, 1.0]).unwrap();
        assert_eq!(s.num_qubits(), 1);
    }

    #[test]
    fn sparse_round_trip() {
        let sparse = SparseState::uniform_superposition(
            3,
            [BasisIndex::new(1), BasisIndex::new(6), BasisIndex::new(7)],
        )
        .unwrap();
        let dense = DenseState::from_sparse(&sparse);
        assert_eq!(dense.cardinality(), 3);
        let back = dense.to_sparse(1e-9).unwrap();
        assert!(back.approx_eq(&sparse, 1e-12));
    }

    #[test]
    fn fidelity_between_dense_states() {
        let a = DenseState::ground_state(2).unwrap();
        let b = DenseState::from_vec(vec![
            std::f64::consts::FRAC_1_SQRT_2,
            0.0,
            0.0,
            std::f64::consts::FRAC_1_SQRT_2,
        ])
        .unwrap();
        assert!((a.fidelity(&b) - 0.5).abs() < 1e-12);
        assert!((b.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal register widths")]
    fn inner_product_width_mismatch_panics() {
        let a = DenseState::ground_state(2).unwrap();
        let b = DenseState::ground_state(3).unwrap();
        let _ = a.inner_product(&b);
    }
}
