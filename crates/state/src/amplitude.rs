//! Real amplitudes and tolerant comparison helpers.
//!
//! The paper restricts state transitions to the X-Z plane, so every amplitude
//! is a real number (Sec. II-A). [`Amplitude`] wraps an `f64` and provides the
//! tolerant comparisons and merging operations (`c_y = sqrt(c_x1² + c_x2²)`,
//! Sec. IV-B) that the amplitude-preserving formulation relies on.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::error::StateError;
use crate::DEFAULT_TOLERANCE;

/// A real amplitude of a quantum state.
///
/// # Example
///
/// ```
/// use qsp_state::Amplitude;
///
/// let a = Amplitude::new(0.6);
/// let b = Amplitude::new(0.8);
/// // Merging two amplitudes onto the same basis index preserves probability.
/// assert!((a.merge(b).value() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Amplitude(f64);

impl Amplitude {
    /// The zero amplitude.
    pub const ZERO: Amplitude = Amplitude(0.0);

    /// The unit amplitude.
    pub const ONE: Amplitude = Amplitude(1.0);

    /// Creates an amplitude from a real value.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Amplitude(value)
    }

    /// Creates an amplitude, rejecting NaN and infinities.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::InvalidAmplitude`] if `value` is not finite.
    pub fn try_new(value: f64) -> Result<Self, StateError> {
        if value.is_finite() {
            Ok(Amplitude(value))
        } else {
            Err(StateError::InvalidAmplitude { value })
        }
    }

    /// The underlying real value.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The probability `|c|²` associated with this amplitude.
    #[inline]
    pub fn probability(self) -> f64 {
        self.0 * self.0
    }

    /// The absolute value of the amplitude.
    #[inline]
    pub fn abs(self) -> Amplitude {
        Amplitude(self.0.abs())
    }

    /// Merges this amplitude with another one mapping to the same basis
    /// index: `sqrt(a² + b²)` (Sec. IV-B of the paper).
    #[inline]
    pub fn merge(self, other: Amplitude) -> Amplitude {
        Amplitude(self.0.hypot(other.0))
    }

    /// Whether the amplitude is zero within `tolerance`.
    #[inline]
    pub fn is_zero(self, tolerance: f64) -> bool {
        self.0.abs() <= tolerance
    }

    /// Whether two amplitudes are equal within `tolerance`.
    #[inline]
    pub fn approx_eq(self, other: Amplitude, tolerance: f64) -> bool {
        (self.0 - other.0).abs() <= tolerance
    }

    /// Whether two amplitudes are equal within the default tolerance.
    #[inline]
    pub fn approx_eq_default(self, other: Amplitude) -> bool {
        self.approx_eq(other, DEFAULT_TOLERANCE)
    }

    /// The rotation angle `θ = -2·atan2(b, a)` that maps `a|0⟩ + b|1⟩` to
    /// `√(a²+b²)|0⟩` with a Y rotation (Eq. 1 of the paper).
    #[inline]
    pub fn merge_angle(zero_amplitude: Amplitude, one_amplitude: Amplitude) -> f64 {
        -2.0 * one_amplitude.0.atan2(zero_amplitude.0)
    }
}

impl From<f64> for Amplitude {
    fn from(value: f64) -> Self {
        Amplitude(value)
    }
}

impl From<Amplitude> for f64 {
    fn from(value: Amplitude) -> Self {
        value.0
    }
}

impl Add for Amplitude {
    type Output = Amplitude;
    fn add(self, rhs: Self) -> Self::Output {
        Amplitude(self.0 + rhs.0)
    }
}

impl Sub for Amplitude {
    type Output = Amplitude;
    fn sub(self, rhs: Self) -> Self::Output {
        Amplitude(self.0 - rhs.0)
    }
}

impl Mul<f64> for Amplitude {
    type Output = Amplitude;
    fn mul(self, rhs: f64) -> Self::Output {
        Amplitude(self.0 * rhs)
    }
}

impl Neg for Amplitude {
    type Output = Amplitude;
    fn neg(self) -> Self::Output {
        Amplitude(-self.0)
    }
}

impl fmt::Display for Amplitude {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_preserves_probability() {
        let a = Amplitude::new(0.5);
        let b = Amplitude::new(0.5);
        let merged = a.merge(b);
        assert!((merged.probability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_angle_recovers_rotation() {
        // a|0> + b|1> with a = cos(t/2), b = -sin(t/2) is Ry(t)|0>;
        // merge_angle must return a θ such that Ry(θ) maps the pair back to |0>.
        let theta: f64 = 0.73;
        let a = Amplitude::new((theta / 2.0).cos());
        let b = Amplitude::new(-(theta / 2.0).sin());
        let back = Amplitude::merge_angle(a, b);
        // Applying Ry(back) to (a, b): new_one = sin(back/2)*a + cos(back/2)*b must vanish.
        let new_one = (back / 2.0).sin() * a.value() + (back / 2.0).cos() * b.value();
        assert!(new_one.abs() < 1e-12, "residual |1> amplitude {new_one}");
    }

    #[test]
    fn try_new_rejects_non_finite() {
        assert!(Amplitude::try_new(f64::NAN).is_err());
        assert!(Amplitude::try_new(f64::INFINITY).is_err());
        assert!(Amplitude::try_new(0.25).is_ok());
    }

    #[test]
    fn tolerant_comparisons() {
        let a = Amplitude::new(1.0);
        let b = Amplitude::new(1.0 + 1e-12);
        assert!(a.approx_eq_default(b));
        assert!(!a.approx_eq(Amplitude::new(1.1), 1e-3));
        assert!(Amplitude::new(1e-12).is_zero(1e-9));
        assert!(!Amplitude::new(1e-3).is_zero(1e-9));
    }

    #[test]
    fn arithmetic_operators() {
        let a = Amplitude::new(0.25);
        let b = Amplitude::new(0.5);
        assert!((a + b).approx_eq_default(Amplitude::new(0.75)));
        assert!((b - a).approx_eq_default(Amplitude::new(0.25)));
        assert!((a * 2.0).approx_eq_default(b));
        assert!((-a).approx_eq_default(Amplitude::new(-0.25)));
        assert!((-a).abs().approx_eq_default(a));
    }
}
