//! The [`QuantumState`] backend trait: one interface over every state
//! representation.
//!
//! The synthesis stack (cofactor analysis, canonicalization, the exact A*
//! solver, the scalable workflow, the batch engine, verification) is written
//! against this trait rather than against a concrete representation, so
//! [`SparseState`], [`DenseState`] and the auto-switching
//! [`AdaptiveState`](crate::adaptive::AdaptiveState) all flow through the
//! same code paths.
//!
//! Two conversion hooks make this cheap:
//!
//! * [`QuantumState::as_sparse`] / [`QuantumState::as_dense`] return
//!   [`Cow`]s — a backend that *is already* the requested representation
//!   hands out a zero-copy borrow, everything else materializes once.
//! * [`QuantumState::canonical_form`] exposes the Sec. V-B equivalence-class
//!   key used for state compression and batch deduplication.

use std::borrow::Cow;

use crate::basis::BasisIndex;
use crate::canonical::{CanonicalForm, CanonicalOptions};
use crate::dense::DenseState;
use crate::error::StateError;
use crate::sparse::SparseState;
use crate::DEFAULT_TOLERANCE;

/// A boxed iterator over the nonzero `(basis index, amplitude)` entries of a
/// state, in ascending index order.
pub type AmplitudeIter<'a> = Box<dyn Iterator<Item = (BasisIndex, f64)> + 'a>;

/// The common interface of every quantum-state backend.
///
/// Implementations must iterate amplitudes in **ascending basis-index order**
/// and must only yield entries whose magnitude exceeds the representation's
/// tolerance, so that all backends agree on `cardinality` and on derived
/// analyses (cofactors, canonical forms, search-state encodings).
///
/// # Example
///
/// ```
/// use qsp_state::{BasisIndex, DenseState, QuantumState, SparseState};
///
/// fn support_size<S: QuantumState>(state: &S) -> usize {
///     state.amplitudes().count()
/// }
///
/// # fn main() -> Result<(), qsp_state::StateError> {
/// let sparse = SparseState::uniform_superposition(
///     2,
///     [BasisIndex::new(0), BasisIndex::new(3)],
/// )?;
/// let dense = DenseState::from_sparse(&sparse);
/// assert_eq!(support_size(&sparse), 2);
/// assert_eq!(support_size(&dense), 2);
/// # Ok(())
/// # }
/// ```
pub trait QuantumState: Clone + std::fmt::Debug {
    /// Number of qubits of the register.
    fn num_qubits(&self) -> usize;

    /// Cardinality `|S(ψ)|`: the number of basis states with nonzero
    /// amplitude.
    fn cardinality(&self) -> usize;

    /// The amplitude of one basis index (zero if absent).
    fn amplitude(&self, index: BasisIndex) -> f64;

    /// Iterates over the nonzero `(basis index, amplitude)` entries in
    /// ascending index order.
    fn amplitudes(&self) -> AmplitudeIter<'_>;

    /// A borrowed or converted sparse view of the state.
    ///
    /// # Errors
    ///
    /// Returns an error when the state cannot be expressed sparsely (e.g. a
    /// numerically zero dense vector).
    fn as_sparse(&self) -> Result<Cow<'_, SparseState>, StateError>;

    /// A borrowed or converted dense view of the state.
    ///
    /// # Errors
    ///
    /// Returns an error when the register is too wide for a dense vector
    /// ([`DenseState::MAX_QUBITS`]).
    fn as_dense(&self) -> Result<Cow<'_, DenseState>, StateError>;

    /// Sum of squared amplitudes.
    fn norm_squared(&self) -> f64 {
        self.amplitudes().map(|(_, a)| a * a).sum()
    }

    /// Whether the state is normalized within `tolerance`.
    fn is_normalized(&self, tolerance: f64) -> bool {
        (self.norm_squared() - 1.0).abs() <= tolerance
    }

    /// Fraction of the `2^n` basis states carrying nonzero amplitude, in
    /// `[0, 1]`. This is the quantity the adaptive backend thresholds on.
    fn density(&self) -> f64 {
        let n = self.num_qubits();
        if n >= 64 {
            return 0.0;
        }
        self.cardinality() as f64 / (1u64 << n) as f64
    }

    /// Whether the state is *sparse* in the sense of the paper's workflow
    /// (Fig. 5): `n·m < 2^n`.
    fn is_sparse(&self) -> bool {
        let n = self.num_qubits();
        let m = self.cardinality();
        if n >= 63 {
            return true;
        }
        ((n * m) as u128) < (1u128 << n)
    }

    /// The canonical equivalence-class key of the state's support under
    /// zero-cost operations (Sec. V-B) — the hook the batch engine and the
    /// search-layer compression build on.
    fn canonical_form(&self, options: CanonicalOptions) -> CanonicalForm {
        CanonicalForm::of_state(self, options)
    }

    /// Materializes the state as an owned [`SparseState`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuantumState::as_sparse`].
    fn to_sparse_state(&self) -> Result<SparseState, StateError> {
        Ok(self.as_sparse()?.into_owned())
    }

    /// Materializes the state as an owned [`DenseState`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuantumState::as_dense`].
    fn to_dense_state(&self) -> Result<DenseState, StateError> {
        Ok(self.as_dense()?.into_owned())
    }
}

impl QuantumState for SparseState {
    fn num_qubits(&self) -> usize {
        SparseState::num_qubits(self)
    }

    fn cardinality(&self) -> usize {
        SparseState::cardinality(self)
    }

    fn amplitude(&self, index: BasisIndex) -> f64 {
        SparseState::amplitude(self, index)
    }

    fn amplitudes(&self) -> AmplitudeIter<'_> {
        Box::new(self.iter())
    }

    fn as_sparse(&self) -> Result<Cow<'_, SparseState>, StateError> {
        Ok(Cow::Borrowed(self))
    }

    fn as_dense(&self) -> Result<Cow<'_, DenseState>, StateError> {
        if SparseState::num_qubits(self) > DenseState::MAX_QUBITS {
            return Err(StateError::TooManyQubits {
                requested: SparseState::num_qubits(self),
                max: DenseState::MAX_QUBITS,
            });
        }
        Ok(Cow::Owned(DenseState::from_sparse(self)))
    }

    fn norm_squared(&self) -> f64 {
        SparseState::norm_squared(self)
    }

    fn is_sparse(&self) -> bool {
        SparseState::is_sparse(self)
    }
}

impl QuantumState for DenseState {
    fn num_qubits(&self) -> usize {
        DenseState::num_qubits(self)
    }

    fn cardinality(&self) -> usize {
        DenseState::cardinality(self)
    }

    fn amplitude(&self, index: BasisIndex) -> f64 {
        DenseState::amplitude(self, index)
    }

    fn amplitudes(&self) -> AmplitudeIter<'_> {
        Box::new(
            self.as_slice()
                .iter()
                .enumerate()
                .filter(|(_, a)| a.abs() > DEFAULT_TOLERANCE)
                .map(|(i, &a)| (BasisIndex::new(i as u64), a)),
        )
    }

    fn as_sparse(&self) -> Result<Cow<'_, SparseState>, StateError> {
        Ok(Cow::Owned(self.to_sparse(DEFAULT_TOLERANCE)?))
    }

    fn as_dense(&self) -> Result<Cow<'_, DenseState>, StateError> {
        Ok(Cow::Borrowed(self))
    }

    fn norm_squared(&self) -> f64 {
        DenseState::norm_squared(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> SparseState {
        SparseState::uniform_superposition(2, [BasisIndex::new(0), BasisIndex::new(3)]).unwrap()
    }

    #[test]
    fn sparse_and_dense_agree_through_the_trait() {
        let sparse = bell();
        let dense = DenseState::from_sparse(&sparse);
        assert_eq!(
            QuantumState::num_qubits(&sparse),
            QuantumState::num_qubits(&dense)
        );
        assert_eq!(
            QuantumState::cardinality(&sparse),
            QuantumState::cardinality(&dense)
        );
        let a: Vec<_> = sparse.amplitudes().collect();
        let b: Vec<_> = dense.amplitudes().collect();
        assert_eq!(a, b);
        assert!(QuantumState::is_normalized(&sparse, 1e-9));
        assert!(QuantumState::is_normalized(&dense, 1e-9));
        assert!((QuantumState::density(&sparse) - 0.5).abs() < 1e-12);
        assert!((QuantumState::density(&dense) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conversion_hooks_borrow_when_possible() {
        let sparse = bell();
        assert!(matches!(sparse.as_sparse().unwrap(), Cow::Borrowed(_)));
        assert!(matches!(sparse.as_dense().unwrap(), Cow::Owned(_)));
        let dense = DenseState::from_sparse(&sparse);
        assert!(matches!(dense.as_dense().unwrap(), Cow::Borrowed(_)));
        assert!(matches!(dense.as_sparse().unwrap(), Cow::Owned(_)));
    }

    #[test]
    fn round_trips_preserve_the_state() {
        let sparse = bell();
        let back = sparse.as_dense().unwrap().as_sparse().unwrap().into_owned();
        assert!(back.approx_eq(&sparse, 1e-12));
    }

    #[test]
    fn canonical_form_is_representation_independent() {
        let sparse = bell();
        let dense = DenseState::from_sparse(&sparse);
        let options = CanonicalOptions::layout_invariant();
        assert_eq!(
            sparse.canonical_form(options),
            dense.canonical_form(options)
        );
    }

    #[test]
    fn wide_sparse_states_refuse_dense_conversion() {
        let wide =
            SparseState::uniform_superposition(40, [BasisIndex::ZERO, BasisIndex::new(1u64 << 39)])
                .unwrap();
        assert!(wide.as_dense().is_err());
        assert!(wide.as_sparse().is_ok());
    }
}
