//! Randomized property tests for the state substrate: bit-level basis
//! operations, sparse-state algebra, cofactor analysis, canonical forms and
//! the `QuantumState` backend trait.
//!
//! The offline build cannot depend on `proptest`, so each property is checked
//! on a seeded stream of random cases (the deterministic `qsp-rand` shim);
//! failures reproduce exactly.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use qsp_state::canonical::{CanonicalForm, CanonicalOptions};
use qsp_state::cofactor::{entangled_qubits, entanglement_lower_bound, mutual_information};
use qsp_state::{AdaptiveState, BasisIndex, DenseState, QuantumState, SparseState, StateRepr};

const CASES: usize = 64;

/// A random register width together with a non-empty set of in-range basis
/// indices (1 ≤ n ≤ 6, 1 ≤ m ≤ min(2^n, 12)).
fn random_width_and_indices(rng: &mut StdRng) -> (usize, Vec<u64>) {
    let n = rng.gen_range(1usize..=6);
    let limit = 1u64 << n;
    let m = rng.gen_range(1usize..=(limit as usize).min(12));
    let mut all: Vec<u64> = (0..limit).collect();
    all.shuffle(rng);
    all.truncate(m);
    all.sort_unstable();
    (n, all)
}

fn uniform(n: usize, indices: &[u64]) -> SparseState {
    SparseState::uniform_superposition(n, indices.iter().map(|&x| BasisIndex::new(x)))
        .expect("valid uniform state")
}

#[test]
fn basis_remove_insert_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x1001);
    for _ in 0..CASES {
        let value = rng.gen_range(0u64..(1 << 12));
        let qubit = rng.gen_range(0usize..12);
        let index = BasisIndex::new(value);
        let restored = index
            .remove_qubit(qubit)
            .insert_qubit(qubit, index.bit(qubit));
        assert_eq!(restored, index);
    }
}

#[test]
fn cnot_is_an_involution_on_basis_indices() {
    let mut rng = StdRng::seed_from_u64(0x1002);
    for _ in 0..CASES {
        let value = rng.gen_range(0u64..(1 << 10));
        let c = rng.gen_range(0usize..10);
        let t = (c + rng.gen_range(1usize..10)) % 10;
        let index = BasisIndex::new(value);
        let once = index.apply_cnot(c, t);
        assert_eq!(once.bit(c), index.bit(c));
        assert_eq!(once.apply_cnot(c, t), index);
    }
}

#[test]
fn hamming_distance_is_a_metric() {
    let mut rng = StdRng::seed_from_u64(0x1003);
    for _ in 0..CASES {
        let a = BasisIndex::new(rng.gen_range(0u64..1024));
        let b = BasisIndex::new(rng.gen_range(0u64..1024));
        let c = BasisIndex::new(rng.gen_range(0u64..1024));
        assert_eq!(a.hamming_distance(b), b.hamming_distance(a));
        assert_eq!(a.hamming_distance(a), 0);
        assert_eq!(a.hamming_distance(b) == 0, a == b);
        assert!(a.hamming_distance(c) <= a.hamming_distance(b) + b.hamming_distance(c));
    }
}

#[test]
fn uniform_states_are_normalized_and_roundtrip_through_dense() {
    let mut rng = StdRng::seed_from_u64(0x1004);
    for _ in 0..CASES {
        let (n, indices) = random_width_and_indices(&mut rng);
        let state = uniform(n, &indices);
        assert!(state.is_normalized(1e-9));
        assert_eq!(state.cardinality(), indices.len());
        let dense = DenseState::from_sparse(&state);
        assert!((dense.norm_squared() - 1.0).abs() < 1e-9);
        let back = dense.to_sparse(1e-12).expect("non-empty");
        assert!(back.approx_eq(&state, 1e-12));
    }
}

#[test]
fn backend_trait_round_trips_preserve_amplitudes_and_cardinality() {
    // The trait-layer property the batch engine relies on: sparse → dense →
    // sparse round trips through `QuantumState::as_*` preserve every
    // amplitude, the cardinality and the canonical form, on every backend.
    let mut rng = StdRng::seed_from_u64(0x1005);
    for _ in 0..CASES {
        let (n, indices) = random_width_and_indices(&mut rng);
        let sparse = uniform(n, &indices);

        let via_dense = sparse.as_dense().unwrap().into_owned();
        assert_eq!(QuantumState::cardinality(&via_dense), sparse.cardinality());
        let back = via_dense.as_sparse().unwrap().into_owned();
        assert_eq!(back.cardinality(), sparse.cardinality());
        for (index, amplitude) in sparse.iter() {
            assert!((QuantumState::amplitude(&via_dense, index) - amplitude).abs() < 1e-12);
            assert!((back.amplitude(index) - amplitude).abs() < 1e-12);
        }

        let adaptive = AdaptiveState::from_sparse(sparse.clone());
        assert_eq!(adaptive.cardinality(), sparse.cardinality());
        assert_eq!(adaptive.num_qubits(), sparse.num_qubits());
        let entries: Vec<_> = adaptive.amplitudes().collect();
        let reference: Vec<_> = sparse.iter().collect();
        assert_eq!(entries, reference);

        let options = CanonicalOptions::layout_variant();
        assert_eq!(
            sparse.canonical_form(options),
            via_dense.canonical_form(options)
        );
        assert_eq!(
            sparse.canonical_form(options),
            adaptive.canonical_form(options)
        );
    }
}

#[test]
fn adaptive_state_obeys_its_density_threshold() {
    let mut rng = StdRng::seed_from_u64(0x1006);
    for _ in 0..CASES {
        let (n, indices) = random_width_and_indices(&mut rng);
        let state = uniform(n, &indices);
        let density = indices.len() as f64 / (1u64 << n) as f64;
        let adaptive = AdaptiveState::from_sparse(state.clone());
        let expected = if density >= AdaptiveState::DENSITY_THRESHOLD {
            StateRepr::Dense
        } else {
            StateRepr::Sparse
        };
        assert_eq!(adaptive.repr(), expected, "n = {n}, m = {}", indices.len());
        // Rebalancing the other representation converges to the same choice.
        let from_dense = AdaptiveState::from_dense(DenseState::from_sparse(&state));
        assert_eq!(from_dense.repr(), expected);
        assert!(from_dense.as_sparse().unwrap().approx_eq(&state, 1e-12));
    }
}

#[test]
fn permutation_gates_preserve_support_size() {
    let mut rng = StdRng::seed_from_u64(0x1007);
    for _ in 0..CASES {
        let (n, indices) = random_width_and_indices(&mut rng);
        let state = uniform(n, &indices);
        let q = rng.gen_range(0usize..n);
        let flipped = state.apply_x(q).expect("in range");
        assert_eq!(flipped.cardinality(), state.cardinality());
        assert!(flipped.is_normalized(1e-9));
        if n >= 2 {
            let c = rng.gen_range(0usize..n);
            let t = (c + 1) % n;
            let after = state.apply_cnot(c, t).expect("in range");
            assert_eq!(after.cardinality(), state.cardinality());
            assert!(after.is_normalized(1e-9));
            assert!(after
                .apply_cnot(c, t)
                .expect("in range")
                .approx_eq(&state, 1e-12));
        }
    }
}

#[test]
fn ry_preserves_norm_and_inverts() {
    let mut rng = StdRng::seed_from_u64(0x1008);
    for _ in 0..CASES {
        let (n, indices) = random_width_and_indices(&mut rng);
        let state = uniform(n, &indices);
        let q = rng.gen_range(0usize..n);
        let theta = rng.gen_range(-3.0f64..3.0);
        let rotated = state.apply_ry(q, theta).expect("in range");
        assert!(rotated.is_normalized(1e-9));
        let back = rotated.apply_ry(q, -theta).expect("in range");
        assert!(back.approx_eq(&state, 1e-9));
    }
}

#[test]
fn entanglement_bound_is_consistent() {
    let mut rng = StdRng::seed_from_u64(0x1009);
    for _ in 0..CASES {
        let (n, indices) = random_width_and_indices(&mut rng);
        let state = uniform(n, &indices);
        let entangled = entangled_qubits(&state);
        let bound = entanglement_lower_bound(&state);
        assert!(bound <= n.div_ceil(2));
        assert_eq!(bound, entangled.len().div_ceil(2));
        assert!(entangled.iter().all(|&q| q < n));
        // Representation independence of the analysis.
        let dense = DenseState::from_sparse(&state);
        assert_eq!(entangled_qubits(&dense), entangled);
    }
}

#[test]
fn mutual_information_is_symmetric_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0x100A);
    let mut checked = 0usize;
    while checked < CASES {
        let (n, indices) = random_width_and_indices(&mut rng);
        if n < 2 {
            continue;
        }
        let a = rng.gen_range(0usize..n);
        let b = (a + rng.gen_range(1usize..n)) % n;
        let state = uniform(n, &indices);
        let ab = mutual_information(&state, a, b);
        let ba = mutual_information(&state, b, a);
        assert!((ab - ba).abs() < 1e-9);
        assert!(ab >= -1e-12);
        assert!(ab <= 1.0 + 1e-9);
        checked += 1;
    }
}

#[test]
fn canonical_form_is_invariant_under_flips_and_permutations() {
    let mut rng = StdRng::seed_from_u64(0x100B);
    for _ in 0..CASES {
        let (n, indices) = random_width_and_indices(&mut rng);
        let set: BTreeSet<BasisIndex> = indices.iter().map(|&x| BasisIndex::new(x)).collect();
        let mask = rng.gen_range(0u64..64) & ((1u64 << n) - 1);
        let flipped: BTreeSet<BasisIndex> = set
            .iter()
            .map(|i| BasisIndex::new(i.value() ^ mask))
            .collect();
        let options = CanonicalOptions::layout_variant();
        assert_eq!(
            CanonicalForm::of_index_set(&set, n, options),
            CanonicalForm::of_index_set(&flipped, n, options)
        );

        // A cyclic relabelling of the qubits must not change the
        // layout-invariant form.
        let rotation = rng.gen_range(0usize..6) % n;
        let perm: Vec<usize> = (0..n).map(|i| (i + rotation) % n).collect();
        let permuted: BTreeSet<BasisIndex> = set.iter().map(|i| i.permute(&perm)).collect();
        let invariant = CanonicalOptions::layout_invariant();
        assert_eq!(
            CanonicalForm::of_index_set(&set, n, invariant),
            CanonicalForm::of_index_set(&permuted, n, invariant)
        );
    }
}

#[test]
fn fidelity_properties() {
    let mut rng = StdRng::seed_from_u64(0x100C);
    for _ in 0..CASES {
        let (n, indices) = random_width_and_indices(&mut rng);
        let (_, other) = {
            let limit = 1u64 << n;
            let m = rng.gen_range(1usize..=(limit as usize).min(12));
            let mut all: Vec<u64> = (0..limit).collect();
            all.shuffle(&mut rng);
            all.truncate(m);
            all.sort_unstable();
            (n, all)
        };
        let a = uniform(n, &indices);
        let b = uniform(n, &other);
        let ab = a.fidelity(&b);
        assert!((ab - b.fidelity(&a)).abs() < 1e-12);
        assert!(ab <= 1.0 + 1e-9);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-9);
        if indices == other {
            assert!((ab - 1.0).abs() < 1e-9);
        }
    }
}
