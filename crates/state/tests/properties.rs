//! Property-based tests for the state substrate: bit-level basis operations,
//! sparse-state algebra, cofactor analysis and canonical forms.

use std::collections::BTreeSet;

use proptest::prelude::*;

use qsp_state::canonical::{CanonicalForm, CanonicalOptions};
use qsp_state::cofactor::{entangled_qubits, entanglement_lower_bound, mutual_information};
use qsp_state::{BasisIndex, DenseState, SparseState};

/// Strategy: a register width between 1 and 6 qubits.
fn width() -> impl Strategy<Value = usize> {
    1usize..=6
}

/// Strategy: a width together with a non-empty set of in-range basis indices.
fn width_and_indices() -> impl Strategy<Value = (usize, Vec<u64>)> {
    width().prop_flat_map(|n| {
        let limit = 1u64 << n;
        (
            Just(n),
            proptest::collection::btree_set(0..limit, 1..=(limit as usize).min(12))
                .prop_map(|set| set.into_iter().collect::<Vec<_>>()),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// remove/insert of a qubit round-trips a basis index.
    #[test]
    fn basis_remove_insert_roundtrip(value in 0u64..(1 << 12), qubit in 0usize..12) {
        let index = BasisIndex::new(value);
        let restored = index.remove_qubit(qubit).insert_qubit(qubit, index.bit(qubit));
        prop_assert_eq!(restored, index);
    }

    /// A CNOT applied twice is the identity on basis indices, and it never
    /// changes the control bit.
    #[test]
    fn cnot_is_an_involution(value in 0u64..(1 << 10), c in 0usize..10, t in 0usize..10) {
        prop_assume!(c != t);
        let index = BasisIndex::new(value);
        let once = index.apply_cnot(c, t);
        prop_assert_eq!(once.bit(c), index.bit(c));
        prop_assert_eq!(once.apply_cnot(c, t), index);
    }

    /// Hamming distance is a metric on basis indices (symmetry + triangle
    /// inequality + identity of indiscernibles).
    #[test]
    fn hamming_distance_is_a_metric(a in 0u64..1024, b in 0u64..1024, c in 0u64..1024) {
        let (a, b, c) = (BasisIndex::new(a), BasisIndex::new(b), BasisIndex::new(c));
        prop_assert_eq!(a.hamming_distance(b), b.hamming_distance(a));
        prop_assert_eq!(a.hamming_distance(a), 0);
        prop_assert!((a.hamming_distance(b) == 0) == (a == b));
        prop_assert!(a.hamming_distance(c) <= a.hamming_distance(b) + b.hamming_distance(c));
    }

    /// Uniform superpositions are normalized, report the right cardinality and
    /// round-trip through the dense representation.
    #[test]
    fn uniform_states_are_normalized_and_roundtrip((n, indices) in width_and_indices()) {
        let state = SparseState::uniform_superposition(
            n,
            indices.iter().map(|&x| BasisIndex::new(x)),
        ).expect("valid uniform state");
        prop_assert!(state.is_normalized(1e-9));
        prop_assert_eq!(state.cardinality(), indices.len());
        let dense = DenseState::from_sparse(&state);
        prop_assert!((dense.norm_squared() - 1.0).abs() < 1e-9);
        let back = dense.to_sparse(1e-12).expect("non-empty");
        prop_assert!(back.approx_eq(&state, 1e-12));
    }

    /// X and CNOT gates preserve normalization and cardinality (they only
    /// permute the support).
    #[test]
    fn permutation_gates_preserve_support_size((n, indices) in width_and_indices(), q in 0usize..6, c in 0usize..6) {
        let q = q % n;
        let state = SparseState::uniform_superposition(
            n,
            indices.iter().map(|&x| BasisIndex::new(x)),
        ).expect("valid uniform state");
        let flipped = state.apply_x(q).expect("in range");
        prop_assert_eq!(flipped.cardinality(), state.cardinality());
        prop_assert!(flipped.is_normalized(1e-9));
        if n >= 2 {
            let c = c % n;
            let t = (c + 1) % n;
            let after = state.apply_cnot(c, t).expect("in range");
            prop_assert_eq!(after.cardinality(), state.cardinality());
            prop_assert!(after.is_normalized(1e-9));
            prop_assert!(after.apply_cnot(c, t).expect("in range").approx_eq(&state, 1e-12));
        }
    }

    /// Y rotations preserve normalization, and a rotation followed by its
    /// inverse restores the state.
    #[test]
    fn ry_preserves_norm_and_inverts((n, indices) in width_and_indices(), q in 0usize..6, theta in -3.0f64..3.0) {
        let q = q % n;
        let state = SparseState::uniform_superposition(
            n,
            indices.iter().map(|&x| BasisIndex::new(x)),
        ).expect("valid uniform state");
        let rotated = state.apply_ry(q, theta).expect("in range");
        prop_assert!(rotated.is_normalized(1e-9));
        let back = rotated.apply_ry(q, -theta).expect("in range");
        prop_assert!(back.approx_eq(&state, 1e-9));
    }

    /// The entanglement lower bound is at most the number of qubits over two,
    /// and vanishes exactly when no qubit is flagged entangled.
    #[test]
    fn entanglement_bound_is_consistent((n, indices) in width_and_indices()) {
        let state = SparseState::uniform_superposition(
            n,
            indices.iter().map(|&x| BasisIndex::new(x)),
        ).expect("valid uniform state");
        let entangled = entangled_qubits(&state);
        let bound = entanglement_lower_bound(&state);
        prop_assert!(bound <= n.div_ceil(2));
        prop_assert_eq!(bound, entangled.len().div_ceil(2));
        prop_assert!(entangled.iter().all(|&q| q < n));
    }

    /// Mutual information is symmetric, non-negative and bounded by one bit
    /// for measurement outcomes of two qubits.
    #[test]
    fn mutual_information_is_symmetric_and_bounded((n, indices) in width_and_indices(), a in 0usize..6, b in 0usize..6) {
        prop_assume!(n >= 2);
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        let state = SparseState::uniform_superposition(
            n,
            indices.iter().map(|&x| BasisIndex::new(x)),
        ).expect("valid uniform state");
        let ab = mutual_information(&state, a, b);
        let ba = mutual_information(&state, b, a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab >= -1e-12);
        prop_assert!(ab <= 1.0 + 1e-9);
    }

    /// Canonicalization is invariant under X flips and qubit permutations of
    /// the input, and idempotent.
    #[test]
    fn canonical_form_is_invariant((n, indices) in width_and_indices(), mask in 0u64..64, rotation in 0usize..6) {
        let set: BTreeSet<BasisIndex> = indices.iter().map(|&x| BasisIndex::new(x)).collect();
        let mask = mask & ((1u64 << n) - 1);
        let flipped: BTreeSet<BasisIndex> =
            set.iter().map(|i| BasisIndex::new(i.value() ^ mask)).collect();
        let options = CanonicalOptions::layout_variant();
        prop_assert_eq!(
            CanonicalForm::of_index_set(&set, n, options),
            CanonicalForm::of_index_set(&flipped, n, options)
        );

        // A cyclic relabelling of the qubits must not change the
        // layout-invariant form.
        let rotation = rotation % n;
        let perm: Vec<usize> = (0..n).map(|i| (i + rotation) % n).collect();
        let permuted: BTreeSet<BasisIndex> = set.iter().map(|i| i.permute(&perm)).collect();
        let invariant = CanonicalOptions::layout_invariant();
        prop_assert_eq!(
            CanonicalForm::of_index_set(&set, n, invariant),
            CanonicalForm::of_index_set(&permuted, n, invariant)
        );
    }

    /// Fidelity is symmetric, bounded by one and equals one exactly for
    /// identical states.
    #[test]
    fn fidelity_properties((n, indices) in width_and_indices(), (m, other) in width_and_indices()) {
        prop_assume!(n == m);
        let a = SparseState::uniform_superposition(
            n,
            indices.iter().map(|&x| BasisIndex::new(x)),
        ).expect("valid");
        let b = SparseState::uniform_superposition(
            n,
            other.iter().map(|&x| BasisIndex::new(x)),
        ).expect("valid");
        let ab = a.fidelity(&b);
        prop_assert!((ab - b.fidelity(&a)).abs() < 1e-12);
        prop_assert!(ab <= 1.0 + 1e-9);
        prop_assert!((a.fidelity(&a) - 1.0).abs() < 1e-9);
        if indices == other {
            prop_assert!((ab - 1.0).abs() < 1e-9);
        }
    }
}
