//! Quantum gates and their CNOT costs.
//!
//! The paper restricts itself to real-amplitude states, so every single-qubit
//! gate is a Y rotation (Eq. 1) or a Pauli-X, and every multi-qubit operator
//! decomposes into `{CNOT, Ry}`. The [`Gate`] enum models exactly the
//! operator families of Table I plus the multi-controlled X used by the
//! baseline algorithms.

use std::fmt;

/// A control terminal of a controlled gate.
///
/// `polarity == true` is the usual filled-dot control (fires on `|1⟩`);
/// `polarity == false` is a negated (open-dot) control (fires on `|0⟩`).
/// Negative controls have the same CNOT cost as positive ones because they
/// differ only by zero-cost X conjugation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Control {
    /// The controlling qubit.
    pub qubit: usize,
    /// `true` for a positive (`|1⟩`) control, `false` for a negated control.
    pub polarity: bool,
}

impl Control {
    /// A positive control on `qubit`.
    pub const fn positive(qubit: usize) -> Self {
        Control {
            qubit,
            polarity: true,
        }
    }

    /// A negated control on `qubit`.
    pub const fn negative(qubit: usize) -> Self {
        Control {
            qubit,
            polarity: false,
        }
    }
}

impl fmt::Display for Control {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.polarity {
            write!(f, "q{}", self.qubit)
        } else {
            write!(f, "!q{}", self.qubit)
        }
    }
}

/// A quantum gate from the paper's library (Table I).
///
/// # Example
///
/// ```
/// use qsp_circuit::Gate;
///
/// assert_eq!(Gate::ry(0, 1.0).cnot_cost(), 0);
/// assert_eq!(Gate::cnot(0, 1).cnot_cost(), 1);
/// assert_eq!(Gate::cry(0, 1, 1.0).cnot_cost(), 2);
/// assert_eq!(Gate::mcry(&[0, 1, 2], 3, 1.0).cnot_cost(), 8); // 2^3
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// Y rotation `Ry(θ)` on `target` (CNOT cost 0).
    Ry {
        /// The rotated qubit.
        target: usize,
        /// Rotation angle in radians.
        theta: f64,
    },
    /// Pauli-X on `target` (CNOT cost 0).
    X {
        /// The flipped qubit.
        target: usize,
    },
    /// CNOT with a single (possibly negated) control (CNOT cost 1).
    Cnot {
        /// The control terminal.
        control: Control,
        /// The target qubit.
        target: usize,
    },
    /// Multi-controlled Y rotation; one control is the CRy of Table I
    /// (cost 2), `k` controls cost `2^k`.
    Mcry {
        /// The control terminals (possibly empty, which degenerates to `Ry`).
        controls: Vec<Control>,
        /// The rotated qubit.
        target: usize,
        /// Rotation angle in radians.
        theta: f64,
    },
}

impl Gate {
    /// Convenience constructor for a Y rotation.
    pub fn ry(target: usize, theta: f64) -> Self {
        Gate::Ry { target, theta }
    }

    /// Convenience constructor for a Pauli-X.
    pub fn x(target: usize) -> Self {
        Gate::X { target }
    }

    /// Convenience constructor for a positively controlled CNOT.
    pub fn cnot(control: usize, target: usize) -> Self {
        Gate::Cnot {
            control: Control::positive(control),
            target,
        }
    }

    /// Convenience constructor for a CNOT with a negated control.
    pub fn cnot_negated(control: usize, target: usize) -> Self {
        Gate::Cnot {
            control: Control::negative(control),
            target,
        }
    }

    /// Convenience constructor for a singly controlled Y rotation.
    pub fn cry(control: usize, target: usize, theta: f64) -> Self {
        Gate::Mcry {
            controls: vec![Control::positive(control)],
            target,
            theta,
        }
    }

    /// Convenience constructor for a positively multi-controlled Y rotation.
    pub fn mcry(controls: &[usize], target: usize, theta: f64) -> Self {
        Gate::Mcry {
            controls: controls.iter().map(|&q| Control::positive(q)).collect(),
            target,
            theta,
        }
    }

    /// The target qubit of the gate.
    pub fn target(&self) -> usize {
        match *self {
            Gate::Ry { target, .. }
            | Gate::X { target }
            | Gate::Cnot { target, .. }
            | Gate::Mcry { target, .. } => target,
        }
    }

    /// The control terminals of the gate (empty for single-qubit gates).
    pub fn controls(&self) -> Vec<Control> {
        match self {
            Gate::Ry { .. } | Gate::X { .. } => Vec::new(),
            Gate::Cnot { control, .. } => vec![*control],
            Gate::Mcry { controls, .. } => controls.clone(),
        }
    }

    /// All qubits the gate touches (controls then target).
    pub fn qubits(&self) -> Vec<usize> {
        let mut qubits: Vec<usize> = self.controls().iter().map(|c| c.qubit).collect();
        qubits.push(self.target());
        qubits
    }

    /// The CNOT cost of the gate under the paper's cost model (Table I and
    /// the `2^k` assumption for `k`-controlled rotations).
    pub fn cnot_cost(&self) -> usize {
        match self {
            Gate::Ry { .. } | Gate::X { .. } => 0,
            Gate::Cnot { .. } => 1,
            Gate::Mcry { controls, .. } => {
                if controls.is_empty() {
                    0
                } else {
                    1usize << controls.len()
                }
            }
        }
    }

    /// The inverse gate. Self-inverse for X and CNOT; rotations negate
    /// their angle.
    pub fn inverse(&self) -> Gate {
        match self {
            Gate::Ry { target, theta } => Gate::Ry {
                target: *target,
                theta: -theta,
            },
            Gate::Mcry {
                controls,
                target,
                theta,
            } => Gate::Mcry {
                controls: controls.clone(),
                target: *target,
                theta: -theta,
            },
            other => other.clone(),
        }
    }

    /// Whether the gate is a pure basis permutation (X or CNOT): it maps
    /// computational basis states to computational basis states.
    pub fn is_permutation(&self) -> bool {
        matches!(self, Gate::X { .. } | Gate::Cnot { .. })
    }

    /// Whether the gate involves a rotation angle that is numerically zero
    /// (identity up to tolerance).
    pub fn is_identity(&self, tolerance: f64) -> bool {
        match self {
            Gate::Ry { theta, .. } | Gate::Mcry { theta, .. } => theta.abs() <= tolerance,
            _ => false,
        }
    }

    /// A short mnemonic (used by `Display` and reports).
    pub fn name(&self) -> &'static str {
        match self {
            Gate::Ry { .. } => "ry",
            Gate::X { .. } => "x",
            Gate::Cnot { .. } => "cx",
            Gate::Mcry { controls, .. } => {
                if controls.len() <= 1 {
                    "cry"
                } else {
                    "mcry"
                }
            }
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Ry { target, theta } => write!(f, "ry({theta:.4}) q{target}"),
            Gate::X { target } => write!(f, "x q{target}"),
            Gate::Cnot { control, target } => write!(f, "cx {control}, q{target}"),
            Gate::Mcry {
                controls,
                target,
                theta,
            } => {
                write!(f, "{}({theta:.4}) ", self.name())?;
                for c in controls {
                    write!(f, "{c}, ")?;
                }
                write!(f, "q{target}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_matches_table1() {
        assert_eq!(Gate::ry(0, 0.4).cnot_cost(), 0);
        assert_eq!(Gate::x(0).cnot_cost(), 0);
        assert_eq!(Gate::cnot(0, 1).cnot_cost(), 1);
        assert_eq!(Gate::cnot_negated(0, 1).cnot_cost(), 1);
        assert_eq!(Gate::cry(0, 1, 0.4).cnot_cost(), 2);
        assert_eq!(Gate::mcry(&[0, 1], 2, 0.4).cnot_cost(), 4);
        assert_eq!(Gate::mcry(&[0, 1, 2, 3], 4, 0.4).cnot_cost(), 16);
        assert_eq!(Gate::mcry(&[], 4, 0.4).cnot_cost(), 0);
    }

    #[test]
    fn qubit_accessors() {
        let g = Gate::mcry(&[2, 0], 1, 0.5);
        assert_eq!(g.target(), 1);
        assert_eq!(g.qubits(), vec![2, 0, 1]);
        assert_eq!(g.controls().len(), 2);
        assert!(Gate::ry(3, 0.1).controls().is_empty());
        assert_eq!(Gate::cnot(1, 0).qubits(), vec![1, 0]);
    }

    #[test]
    fn inverse_negates_rotations_only() {
        let ry = Gate::ry(0, 0.7);
        match ry.inverse() {
            Gate::Ry { theta, .. } => assert!((theta + 0.7).abs() < 1e-15),
            _ => panic!("inverse of ry must be ry"),
        }
        assert_eq!(Gate::cnot(0, 1).inverse(), Gate::cnot(0, 1));
        assert_eq!(Gate::x(2).inverse(), Gate::x(2));
        match Gate::cry(0, 1, 0.3).inverse() {
            Gate::Mcry { theta, .. } => assert!((theta + 0.3).abs() < 1e-15),
            _ => panic!("inverse of cry must be cry"),
        }
    }

    #[test]
    fn classification_helpers() {
        assert!(Gate::cnot(0, 1).is_permutation());
        assert!(Gate::x(0).is_permutation());
        assert!(!Gate::ry(0, 0.2).is_permutation());
        assert!(Gate::ry(0, 1e-12).is_identity(1e-9));
        assert!(!Gate::ry(0, 0.1).is_identity(1e-9));
        assert!(!Gate::x(0).is_identity(1e-9));
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Gate::cry(0, 1, 0.5).name(), "cry");
        assert_eq!(Gate::mcry(&[0, 1], 2, 0.5).name(), "mcry");
        let s = Gate::cnot_negated(0, 1).to_string();
        assert!(s.contains("!q0"));
        let s = Gate::ry(2, 0.5).to_string();
        assert!(s.starts_with("ry"));
    }
}
