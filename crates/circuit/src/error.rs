//! Error types for circuit construction and transformation.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or transforming circuits.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A gate refers to a qubit outside the circuit register.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: usize,
        /// Width of the circuit register.
        num_qubits: usize,
    },
    /// A gate uses the same qubit as target and control.
    OverlappingQubits {
        /// The qubit that appears in both roles.
        qubit: usize,
    },
    /// A qubit mapping passed to `remap_qubits` is not injective or is too short.
    InvalidMapping {
        /// Human readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => write!(
                f,
                "qubit {qubit} is out of range for a {num_qubits}-qubit circuit"
            ),
            CircuitError::OverlappingQubits { qubit } => write!(
                f,
                "qubit {qubit} cannot be both control and target of the same gate"
            ),
            CircuitError::InvalidMapping { reason } => write!(f, "invalid qubit mapping: {reason}"),
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_useful_messages() {
        let e = CircuitError::QubitOutOfRange {
            qubit: 7,
            num_qubits: 3,
        };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("3-qubit"));
        let e = CircuitError::OverlappingQubits { qubit: 2 };
        assert!(e.to_string().contains("control and target"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<CircuitError>();
    }
}
