//! Application of gates and circuits to sparse states.
//!
//! The synthesis algorithms and the baselines manipulate [`SparseState`]s
//! directly (the `n × m` encoding the paper credits for its scalability,
//! Sec. VI-D). This module gives gate-level semantics to the IR on that
//! representation; the dense verification simulator lives in `qsp-sim`.

use qsp_state::{SparseState, StateError};

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Applies a single gate to a sparse state, returning the new state.
///
/// # Errors
///
/// Propagates [`StateError`] if the gate refers to qubits outside the state's
/// register.
///
/// # Example
///
/// ```
/// use qsp_circuit::{apply_gate, Gate};
/// use qsp_state::SparseState;
///
/// # fn main() -> Result<(), qsp_state::StateError> {
/// let ground = SparseState::ground_state(2)?;
/// let plus = apply_gate(&ground, &Gate::ry(0, -std::f64::consts::FRAC_PI_2))?;
/// let bell = apply_gate(&plus, &Gate::cnot(0, 1))?;
/// assert_eq!(bell.cardinality(), 2);
/// # Ok(())
/// # }
/// ```
pub fn apply_gate(state: &SparseState, gate: &Gate) -> Result<SparseState, StateError> {
    match gate {
        Gate::Ry { target, theta } => state.apply_ry(*target, *theta),
        Gate::X { target } => state.apply_x(*target),
        Gate::Cnot { control, target } => {
            if control.polarity {
                state.apply_cnot(control.qubit, *target)
            } else {
                // A negated control is X-conjugation of a plain CNOT.
                let flipped = state.apply_x(control.qubit)?;
                let applied = flipped.apply_cnot(control.qubit, *target)?;
                applied.apply_x(control.qubit)
            }
        }
        Gate::Mcry {
            controls,
            target,
            theta,
        } => {
            let control_spec: Vec<(usize, bool)> =
                controls.iter().map(|c| (c.qubit, c.polarity)).collect();
            state.apply_controlled_ry(&control_spec, *target, *theta)
        }
    }
}

/// Applies a whole circuit (gates in order) to a sparse state.
///
/// # Errors
///
/// Propagates the first gate-application error.
pub fn apply_circuit(state: &SparseState, circuit: &Circuit) -> Result<SparseState, StateError> {
    let mut current = state.clone();
    for gate in circuit {
        current = apply_gate(&current, gate)?;
    }
    Ok(current)
}

/// Runs a circuit on the ground state `|0…0⟩` of the circuit's register —
/// the quantum state preparation semantics of Sec. II-B.
///
/// # Errors
///
/// Propagates gate-application or ground-state construction errors.
pub fn prepare_from_ground(circuit: &Circuit) -> Result<SparseState, StateError> {
    let ground = SparseState::ground_state(circuit.num_qubits())?;
    apply_circuit(&ground, circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_state::BasisIndex;

    #[test]
    fn bell_preparation() {
        let mut circuit = Circuit::new(2);
        circuit.push(Gate::ry(0, -std::f64::consts::FRAC_PI_2));
        circuit.push(Gate::cnot(0, 1));
        let state = prepare_from_ground(&circuit).unwrap();
        let expected =
            SparseState::uniform_superposition(2, [BasisIndex::new(0b00), BasisIndex::new(0b11)])
                .unwrap();
        assert!(state.approx_eq(&expected, 1e-9), "got {state}");
    }

    #[test]
    fn paper_fig3_prepares_uniform_state_on_two_qubits() {
        // Fig. 3: Ry(π/2) on q1 and q2, CNOT(q2→q3), CNOT(q1→q3) prepares
        // (|000⟩+|011⟩+|101⟩+|110⟩)/2 — in our bit convention qubit 0 and 1
        // rotated, qubit 2 targeted.
        let mut circuit = Circuit::new(3);
        circuit.push(Gate::ry(0, -std::f64::consts::FRAC_PI_2));
        circuit.push(Gate::ry(1, -std::f64::consts::FRAC_PI_2));
        circuit.push(Gate::cnot(1, 2));
        circuit.push(Gate::cnot(0, 2));
        let state = prepare_from_ground(&circuit).unwrap();
        let expected = SparseState::uniform_superposition(
            3,
            [
                BasisIndex::new(0b000),
                BasisIndex::new(0b011),
                BasisIndex::new(0b101),
                BasisIndex::new(0b110),
            ],
        )
        .unwrap();
        assert_eq!(state.cardinality(), 4);
        assert!(state.approx_eq(&expected, 1e-9), "got {state}");
        assert_eq!(circuit.cnot_cost(), 2);
    }

    #[test]
    fn negated_control_fires_on_zero() {
        let ground = SparseState::ground_state(2).unwrap();
        let flipped = apply_gate(&ground, &Gate::cnot_negated(0, 1)).unwrap();
        assert!((flipped.amplitude(BasisIndex::new(0b10)) - 1.0).abs() < 1e-12);
        // A positive control on |0...0> does nothing.
        let unchanged = apply_gate(&ground, &Gate::cnot(0, 1)).unwrap();
        assert!(unchanged.is_ground_state(1e-12));
    }

    #[test]
    fn mcry_with_negative_controls() {
        let ground = SparseState::ground_state(3).unwrap();
        // Controls: q0 negated (fires), q1 negated (fires) -> rotate q2 by π.
        let gate = Gate::Mcry {
            controls: vec![
                crate::gate::Control::negative(0),
                crate::gate::Control::negative(1),
            ],
            target: 2,
            theta: std::f64::consts::PI,
        };
        let state = apply_gate(&ground, &gate).unwrap();
        assert!(state.amplitude(BasisIndex::new(0b100)).abs() > 0.99);
    }

    #[test]
    fn circuit_then_inverse_is_identity() {
        let mut circuit = Circuit::new(3);
        circuit.push(Gate::ry(0, 0.3));
        circuit.push(Gate::cnot(0, 1));
        circuit.push(Gate::cry(1, 2, 1.1));
        circuit.push(Gate::x(2));
        let state = prepare_from_ground(&circuit).unwrap();
        let back = apply_circuit(&state, &circuit.inverse()).unwrap();
        assert!(back.is_ground_state(1e-9));
    }

    #[test]
    fn out_of_range_gate_is_an_error() {
        let ground = SparseState::ground_state(1).unwrap();
        assert!(apply_gate(&ground, &Gate::cnot(0, 1)).is_err());
    }
}
