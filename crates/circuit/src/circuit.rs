//! Quantum circuits: ordered gate lists over a fixed-width register.

use std::fmt;

use crate::cost::CnotCostModel;
use crate::error::CircuitError;
use crate::gate::Gate;

/// An ordered list of gates acting on an `n`-qubit register.
///
/// Gates are applied left to right: the circuit `[U1, U2, …, Ul]` prepares
/// `Ul … U2 U1 |ψ⟩` from `|ψ⟩` (the convention of Sec. II-B).
///
/// # Example
///
/// ```
/// use qsp_circuit::{Circuit, Gate};
///
/// // The 2-CNOT circuit of Fig. 3 in the paper.
/// let mut circuit = Circuit::new(3);
/// circuit.push(Gate::ry(0, std::f64::consts::FRAC_PI_2));
/// circuit.push(Gate::ry(1, std::f64::consts::FRAC_PI_2));
/// circuit.push(Gate::cnot(1, 2));
/// circuit.push(Gate::cnot(0, 2));
/// assert_eq!(circuit.cnot_cost(), 2);
/// assert_eq!(circuit.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Creates a circuit from an existing gate list.
    ///
    /// # Errors
    ///
    /// Returns an error if any gate touches a qubit outside the register or
    /// uses a qubit as both control and target.
    pub fn from_gates<I>(num_qubits: usize, gates: I) -> Result<Self, CircuitError>
    where
        I: IntoIterator<Item = Gate>,
    {
        let mut circuit = Circuit::new(num_qubits);
        for gate in gates {
            circuit.try_push(gate)?;
        }
        Ok(circuit)
    }

    /// Number of qubits of the register.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of gates.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit contains no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in application order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Iterates over the gates in application order.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Appends a gate, validating qubit indices.
    ///
    /// # Errors
    ///
    /// Returns an error if the gate touches a qubit outside the register or
    /// repeats a qubit between control and target.
    pub fn try_push(&mut self, gate: Gate) -> Result<(), CircuitError> {
        let target = gate.target();
        if target >= self.num_qubits {
            return Err(CircuitError::QubitOutOfRange {
                qubit: target,
                num_qubits: self.num_qubits,
            });
        }
        for control in gate.controls() {
            if control.qubit >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: control.qubit,
                    num_qubits: self.num_qubits,
                });
            }
            if control.qubit == target {
                return Err(CircuitError::OverlappingQubits { qubit: target });
            }
        }
        self.gates.push(gate);
        Ok(())
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate is invalid for this register; use
    /// [`Circuit::try_push`] for fallible insertion.
    pub fn push(&mut self, gate: Gate) {
        self.try_push(gate)
            .expect("gate is invalid for this circuit");
    }

    /// Appends all gates of `other` (registers must have equal width).
    ///
    /// # Errors
    ///
    /// Returns an error if the widths differ.
    pub fn append(&mut self, other: &Circuit) -> Result<(), CircuitError> {
        if other.num_qubits != self.num_qubits {
            return Err(CircuitError::InvalidMapping {
                reason: format!(
                    "cannot append a {}-qubit circuit to a {}-qubit circuit",
                    other.num_qubits, self.num_qubits
                ),
            });
        }
        self.gates.extend(other.gates.iter().cloned());
        Ok(())
    }

    /// Total CNOT cost under the paper's cost model.
    pub fn cnot_cost(&self) -> usize {
        self.cnot_cost_with(&CnotCostModel::paper())
    }

    /// Total CNOT cost under a custom cost model.
    pub fn cnot_cost_with(&self, model: &CnotCostModel) -> usize {
        model.circuit_cost(&self.gates)
    }

    /// Number of plain CNOT gates (after lowering this equals
    /// [`Circuit::cnot_cost`]; before lowering multi-controlled rotations are
    /// not counted here).
    pub fn cnot_gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::Cnot { .. }))
            .count()
    }

    /// Number of single-qubit gates (Ry and X).
    pub fn single_qubit_gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::Ry { .. } | Gate::X { .. }))
            .count()
    }

    /// Histogram of gate mnemonics (`ry`, `x`, `cx`, `cry`, `mcry`).
    pub fn gate_counts(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for gate in &self.gates {
            *counts.entry(gate.name()).or_insert(0) += 1;
        }
        counts
    }

    /// The inverse circuit: gates reversed and individually inverted.
    /// Applying `circuit` then `circuit.inverse()` is the identity.
    pub fn inverse(&self) -> Circuit {
        Circuit {
            num_qubits: self.num_qubits,
            gates: self.gates.iter().rev().map(Gate::inverse).collect(),
        }
    }

    /// Remaps qubits: qubit `q` of this circuit becomes `mapping[q]` in the
    /// returned circuit of width `new_width`.
    ///
    /// # Errors
    ///
    /// Returns an error if the mapping is shorter than the register, not
    /// injective, or maps outside `new_width`.
    pub fn remap_qubits(
        &self,
        mapping: &[usize],
        new_width: usize,
    ) -> Result<Circuit, CircuitError> {
        if mapping.len() < self.num_qubits {
            return Err(CircuitError::InvalidMapping {
                reason: format!(
                    "mapping has {} entries but the circuit has {} qubits",
                    mapping.len(),
                    self.num_qubits
                ),
            });
        }
        let used = &mapping[..self.num_qubits];
        let mut seen = std::collections::BTreeSet::new();
        for &dst in used {
            if dst >= new_width {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: dst,
                    num_qubits: new_width,
                });
            }
            if !seen.insert(dst) {
                return Err(CircuitError::InvalidMapping {
                    reason: format!("destination qubit {dst} is used twice"),
                });
            }
        }
        let remap_gate = |gate: &Gate| -> Gate {
            match gate {
                Gate::Ry { target, theta } => Gate::Ry {
                    target: mapping[*target],
                    theta: *theta,
                },
                Gate::X { target } => Gate::X {
                    target: mapping[*target],
                },
                Gate::Cnot { control, target } => Gate::Cnot {
                    control: crate::gate::Control {
                        qubit: mapping[control.qubit],
                        polarity: control.polarity,
                    },
                    target: mapping[*target],
                },
                Gate::Mcry {
                    controls,
                    target,
                    theta,
                } => Gate::Mcry {
                    controls: controls
                        .iter()
                        .map(|c| crate::gate::Control {
                            qubit: mapping[c.qubit],
                            polarity: c.polarity,
                        })
                        .collect(),
                    target: mapping[*target],
                    theta: *theta,
                },
            }
        };
        Ok(Circuit {
            num_qubits: new_width,
            gates: self.gates.iter().map(remap_gate).collect(),
        })
    }

    /// Circuit depth: the number of layers when gates that share no qubit are
    /// executed in parallel.
    pub fn depth(&self) -> usize {
        let mut qubit_level = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for gate in &self.gates {
            let level = gate
                .qubits()
                .iter()
                .map(|&q| qubit_level[q])
                .max()
                .unwrap_or(0)
                + 1;
            for q in gate.qubits() {
                qubit_level[q] = level;
            }
            depth = depth.max(level);
        }
        depth
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit on {} qubits, {} gates, cnot cost {}",
            self.num_qubits,
            self.len(),
            self.cnot_cost()
        )?;
        for gate in &self.gates {
            writeln!(f, "  {gate}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;
    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

impl Extend<Gate> for Circuit {
    /// Extends the circuit with gates.
    ///
    /// # Panics
    ///
    /// Panics on invalid gates; use [`Circuit::try_push`] for validation.
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for gate in iter {
            self.push(gate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::ry(0, std::f64::consts::FRAC_PI_2));
        c.push(Gate::ry(1, std::f64::consts::FRAC_PI_2));
        c.push(Gate::cnot(1, 2));
        c.push(Gate::cnot(0, 2));
        c
    }

    #[test]
    fn construction_and_metrics() {
        let c = fig3_circuit();
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert_eq!(c.cnot_cost(), 2);
        assert_eq!(c.cnot_gate_count(), 2);
        assert_eq!(c.single_qubit_gate_count(), 2);
        assert_eq!(c.gate_counts()["cx"], 2);
        assert_eq!(c.gate_counts()["ry"], 2);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn validation_of_pushed_gates() {
        let mut c = Circuit::new(2);
        assert!(c.try_push(Gate::ry(5, 0.1)).is_err());
        assert!(c.try_push(Gate::cnot(0, 0)).is_err());
        assert!(c.try_push(Gate::mcry(&[0, 3], 1, 0.1)).is_err());
        assert!(c.try_push(Gate::cnot(1, 0)).is_ok());
        assert!(Circuit::from_gates(2, [Gate::cnot(0, 1), Gate::x(1)]).is_ok());
        assert!(Circuit::from_gates(1, [Gate::cnot(0, 1)]).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid for this circuit")]
    fn push_panics_on_invalid_gate() {
        let mut c = Circuit::new(1);
        c.push(Gate::cnot(0, 1));
    }

    #[test]
    fn inverse_reverses_and_negates() {
        let c = fig3_circuit();
        let inv = c.inverse();
        assert_eq!(inv.len(), 4);
        assert_eq!(inv.gates()[0], Gate::cnot(0, 2));
        match &inv.gates()[3] {
            Gate::Ry { target: 0, theta } => assert!(theta + std::f64::consts::FRAC_PI_2 < 1e-12),
            other => panic!("unexpected gate {other:?}"),
        }
        assert_eq!(inv.inverse().cnot_cost(), c.cnot_cost());
    }

    #[test]
    fn append_and_extend() {
        let mut a = fig3_circuit();
        let b = fig3_circuit();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 8);
        assert!(a.append(&Circuit::new(2)).is_err());
        let mut c = Circuit::new(3);
        c.extend(fig3_circuit().gates().to_vec());
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn remap_qubits_relabels_everything() {
        let c = fig3_circuit();
        let remapped = c.remap_qubits(&[2, 1, 0], 3).unwrap();
        assert_eq!(remapped.gates()[2], Gate::cnot(1, 0));
        assert_eq!(remapped.cnot_cost(), 2);
        // Errors: short mapping, duplicate destination, out of range.
        assert!(c.remap_qubits(&[0, 1], 3).is_err());
        assert!(c.remap_qubits(&[0, 0, 1], 3).is_err());
        assert!(c.remap_qubits(&[0, 1, 7], 3).is_err());
        // Embedding into a wider register is allowed.
        let wide = c.remap_qubits(&[4, 2, 0], 5).unwrap();
        assert_eq!(wide.num_qubits(), 5);
    }

    #[test]
    fn display_lists_gates() {
        let c = fig3_circuit();
        let text = c.to_string();
        assert!(text.contains("cnot cost 2"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn iteration() {
        let c = fig3_circuit();
        assert_eq!(c.iter().count(), 4);
        assert_eq!((&c).into_iter().count(), 4);
    }

    #[test]
    fn depth_of_parallel_gates() {
        let mut c = Circuit::new(4);
        c.push(Gate::cnot(0, 1));
        c.push(Gate::cnot(2, 3));
        assert_eq!(c.depth(), 1);
        c.push(Gate::cnot(1, 2));
        assert_eq!(c.depth(), 2);
        assert_eq!(Circuit::new(2).depth(), 0);
    }
}
