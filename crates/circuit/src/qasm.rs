//! OpenQASM 2.0 export.
//!
//! Synthesized circuits can be exported for execution or cross-validation in
//! external toolchains (the paper validates with Qiskit simulators; the QASM
//! output of this module is directly loadable there).

use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::decompose::decompose_gate;
use crate::error::CircuitError;
use crate::gate::Gate;

/// Renders the circuit as an OpenQASM 2.0 program over `qelib1.inc` gates
/// (`ry`, `x`, `cx`).
///
/// Multi-controlled rotations are lowered with [`decompose_gate`] so the
/// emitted program uses only primitive gates; negated CNOT controls are
/// conjugated with `x` gates.
///
/// # Errors
///
/// Propagates decomposition errors for malformed gates.
///
/// # Example
///
/// ```
/// use qsp_circuit::{qasm::to_qasm, Circuit, Gate};
///
/// let mut circuit = Circuit::new(2);
/// circuit.push(Gate::ry(0, 1.0));
/// circuit.push(Gate::cnot(0, 1));
/// let program = to_qasm(&circuit)?;
/// assert!(program.contains("OPENQASM 2.0"));
/// assert!(program.contains("cx q[0], q[1];"));
/// # Ok::<(), qsp_circuit::CircuitError>(())
/// ```
pub fn to_qasm(circuit: &Circuit) -> Result<String, CircuitError> {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    for gate in circuit {
        for primitive in decompose_gate(gate)? {
            emit_primitive(&mut out, &primitive);
        }
    }
    Ok(out)
}

fn emit_primitive(out: &mut String, gate: &Gate) {
    match gate {
        Gate::Ry { target, theta } => {
            let _ = writeln!(out, "ry({theta:.12}) q[{target}];");
        }
        Gate::X { target } => {
            let _ = writeln!(out, "x q[{target}];");
        }
        Gate::Cnot { control, target } => {
            if control.polarity {
                let _ = writeln!(out, "cx q[{}], q[{}];", control.qubit, target);
            } else {
                let _ = writeln!(out, "x q[{}];", control.qubit);
                let _ = writeln!(out, "cx q[{}], q[{}];", control.qubit, target);
                let _ = writeln!(out, "x q[{}];", control.qubit);
            }
        }
        Gate::Mcry { .. } => unreachable!("mcry is lowered before emission"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qasm_header_and_register() {
        let circuit = Circuit::new(3);
        let program = to_qasm(&circuit).unwrap();
        assert!(program.starts_with("OPENQASM 2.0;"));
        assert!(program.contains("qreg q[3];"));
    }

    #[test]
    fn primitive_gates_are_emitted_directly() {
        let mut circuit = Circuit::new(2);
        circuit.push(Gate::ry(0, 0.5));
        circuit.push(Gate::x(1));
        circuit.push(Gate::cnot(1, 0));
        let program = to_qasm(&circuit).unwrap();
        assert!(program.contains("ry(0.500000000000) q[0];"));
        assert!(program.contains("x q[1];"));
        assert!(program.contains("cx q[1], q[0];"));
    }

    #[test]
    fn negated_controls_are_conjugated_with_x() {
        let mut circuit = Circuit::new(2);
        circuit.push(Gate::cnot_negated(0, 1));
        let program = to_qasm(&circuit).unwrap();
        let x_count = program.matches("x q[0];").count();
        assert_eq!(x_count, 2);
        assert!(program.contains("cx q[0], q[1];"));
    }

    #[test]
    fn controlled_rotations_are_lowered() {
        let mut circuit = Circuit::new(3);
        circuit.push(Gate::mcry(&[0, 1], 2, 0.7));
        let program = to_qasm(&circuit).unwrap();
        // 2^2 = 4 CNOTs and 4 Ry gates after lowering.
        assert_eq!(program.matches("cx ").count(), 4);
        assert_eq!(program.matches("ry(").count(), 4);
        assert!(!program.contains("mcry"));
    }
}
