//! # qsp-circuit
//!
//! Gate and circuit intermediate representation for CNOT-optimal quantum
//! state preparation.
//!
//! The crate models the gate set of the paper (Table I): Y rotations,
//! Pauli-X, CNOT, controlled and multi-controlled Y rotations — together with
//! the **CNOT cost model** the whole evaluation is based on
//! (`Ry = 0`, `CNOT = 1`, `CRy = 2`, `MCRy` with `k` controls `= 2^k`).
//!
//! Beyond the IR itself it provides:
//!
//! * [`decompose`] — lowering of multi-controlled rotations to the
//!   `{U(2), CNOT}` basis with the multiplexor (Möttönen) recursion, so that
//!   reported CNOT counts can be validated gate-by-gate.
//! * [`optimizer`] — a peephole pass (CNOT cancellation, rotation merging)
//!   used for ablations.
//! * [`qasm`] — OpenQASM 2.0 export of synthesized circuits.
//!
//! # Example
//!
//! ```
//! use qsp_circuit::{Circuit, Gate};
//!
//! let mut circuit = Circuit::new(3);
//! circuit.push(Gate::ry(0, std::f64::consts::FRAC_PI_2));
//! circuit.push(Gate::cnot(0, 1));
//! circuit.push(Gate::cry(1, 2, 1.0));
//! assert_eq!(circuit.cnot_cost(), 3); // 0 + 1 + 2
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apply;
pub mod circuit;
pub mod cost;
pub mod decompose;
pub mod error;
pub mod gate;
pub mod optimizer;
pub mod qasm;

pub use apply::{apply_circuit, apply_gate, prepare_from_ground};
pub use circuit::Circuit;
pub use cost::CnotCostModel;
pub use error::CircuitError;
pub use gate::{Control, Gate};
