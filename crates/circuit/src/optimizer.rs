//! Peephole circuit optimization.
//!
//! The exact synthesis of the paper produces CNOT-optimal circuits by
//! construction, so this pass exists for two reasons:
//!
//! * to clean up the circuits produced by the *baseline* flows (which often
//!   emit cancelling CNOT pairs or zero-angle rotations), and
//! * to provide an ablation showing that peephole optimization alone cannot
//!   close the gap to exact synthesis.
//!
//! The pass is conservative: it only removes provably redundant gates
//! (identity rotations, adjacent self-cancelling gates, mergeable rotations)
//! and never changes the prepared state.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Numerical tolerance for recognizing zero rotation angles.
const ANGLE_TOLERANCE: f64 = 1e-12;

/// Statistics of one optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizeStats {
    /// Gates removed because they were identity rotations.
    pub identities_removed: usize,
    /// Pairs of adjacent self-inverse gates cancelled.
    pub pairs_cancelled: usize,
    /// Adjacent rotations merged into one.
    pub rotations_merged: usize,
}

impl OptimizeStats {
    /// Total number of removed gates.
    pub fn gates_removed(&self) -> usize {
        self.identities_removed + 2 * self.pairs_cancelled + self.rotations_merged
    }
}

/// Runs the peephole pass until a fixed point and returns the optimized
/// circuit together with statistics.
///
/// The pass performs, per iteration:
/// 1. removal of identity rotations (`|θ| ≤ 1e-12`),
/// 2. cancellation of adjacent identical CNOT / X pairs,
/// 3. merging of adjacent rotations with identical target and controls.
///
/// Two gates are *adjacent* when no gate in between touches any of their
/// qubits.
///
/// # Example
///
/// ```
/// use qsp_circuit::{optimizer::optimize, Circuit, Gate};
///
/// let mut circuit = Circuit::new(2);
/// circuit.push(Gate::cnot(0, 1));
/// circuit.push(Gate::cnot(0, 1));
/// circuit.push(Gate::ry(0, 0.2));
/// circuit.push(Gate::ry(0, -0.2));
/// let (optimized, stats) = optimize(&circuit);
/// assert!(optimized.is_empty());
/// assert!(stats.gates_removed() >= 3);
/// ```
pub fn optimize(circuit: &Circuit) -> (Circuit, OptimizeStats) {
    let mut gates: Vec<Gate> = circuit.gates().to_vec();
    let mut stats = OptimizeStats::default();
    loop {
        let before = gates.len();
        remove_identities(&mut gates, &mut stats);
        cancel_adjacent_pairs(&mut gates, &mut stats);
        merge_adjacent_rotations(&mut gates, &mut stats);
        if gates.len() == before {
            break;
        }
    }
    let optimized = Circuit::from_gates(circuit.num_qubits(), gates)
        .expect("optimization never invents invalid gates");
    (optimized, stats)
}

fn remove_identities(gates: &mut Vec<Gate>, stats: &mut OptimizeStats) {
    let before = gates.len();
    gates.retain(|g| !g.is_identity(ANGLE_TOLERANCE));
    stats.identities_removed += before - gates.len();
}

/// Whether two gate positions are adjacent: no gate strictly between them
/// shares a qubit with the first gate.
fn adjacent(gates: &[Gate], i: usize, j: usize) -> bool {
    let qubits = gates[i].qubits();
    gates[i + 1..j]
        .iter()
        .all(|g| g.qubits().iter().all(|q| !qubits.contains(q)))
}

fn cancel_adjacent_pairs(gates: &mut Vec<Gate>, stats: &mut OptimizeStats) {
    'outer: loop {
        for i in 0..gates.len() {
            if !gates[i].is_permutation() {
                continue;
            }
            for j in (i + 1)..gates.len() {
                if gates[j] == gates[i] && adjacent(gates, i, j) {
                    gates.remove(j);
                    gates.remove(i);
                    stats.pairs_cancelled += 1;
                    continue 'outer;
                }
                // Stop scanning forward once a gate blocks qubit adjacency.
                if gates[j]
                    .qubits()
                    .iter()
                    .any(|q| gates[i].qubits().contains(q))
                {
                    break;
                }
            }
        }
        break;
    }
}

fn merge_adjacent_rotations(gates: &mut Vec<Gate>, stats: &mut OptimizeStats) {
    'outer: loop {
        for i in 0..gates.len() {
            let (target_i, controls_i) = match &gates[i] {
                Gate::Ry { target, .. } => (*target, Vec::new()),
                Gate::Mcry {
                    target, controls, ..
                } => (*target, controls.clone()),
                _ => continue,
            };
            for j in (i + 1)..gates.len() {
                let same_kind = match (&gates[i], &gates[j]) {
                    (Gate::Ry { .. }, Gate::Ry { target, .. }) => *target == target_i,
                    (
                        Gate::Mcry { .. },
                        Gate::Mcry {
                            target, controls, ..
                        },
                    ) => *target == target_i && *controls == controls_i,
                    _ => false,
                };
                if same_kind && adjacent(gates, i, j) {
                    let theta_j = match &gates[j] {
                        Gate::Ry { theta, .. } | Gate::Mcry { theta, .. } => *theta,
                        _ => unreachable!(),
                    };
                    match &mut gates[i] {
                        Gate::Ry { theta, .. } | Gate::Mcry { theta, .. } => *theta += theta_j,
                        _ => unreachable!(),
                    }
                    gates.remove(j);
                    stats.rotations_merged += 1;
                    continue 'outer;
                }
                if gates[j]
                    .qubits()
                    .iter()
                    .any(|q| gates[i].qubits().contains(q))
                {
                    break;
                }
            }
        }
        break;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::prepare_from_ground;

    #[test]
    fn cancels_adjacent_cnot_pairs() {
        let mut circuit = Circuit::new(3);
        circuit.push(Gate::cnot(0, 1));
        circuit.push(Gate::ry(2, 0.5)); // does not block adjacency
        circuit.push(Gate::cnot(0, 1));
        let (optimized, stats) = optimize(&circuit);
        assert_eq!(optimized.cnot_cost(), 0);
        assert_eq!(stats.pairs_cancelled, 1);
        assert_eq!(optimized.len(), 1);
    }

    #[test]
    fn does_not_cancel_across_blocking_gates() {
        let mut circuit = Circuit::new(2);
        circuit.push(Gate::cnot(0, 1));
        circuit.push(Gate::ry(1, 0.5)); // blocks: shares the target qubit
        circuit.push(Gate::cnot(0, 1));
        let (optimized, stats) = optimize(&circuit);
        assert_eq!(optimized.cnot_cost(), 2);
        assert_eq!(stats.pairs_cancelled, 0);
    }

    #[test]
    fn merges_rotations_and_drops_identities() {
        let mut circuit = Circuit::new(2);
        circuit.push(Gate::ry(0, 0.25));
        circuit.push(Gate::ry(0, 0.75));
        circuit.push(Gate::cry(0, 1, 0.0));
        let (optimized, stats) = optimize(&circuit);
        assert_eq!(optimized.len(), 1);
        assert_eq!(stats.rotations_merged, 1);
        assert_eq!(stats.identities_removed, 1);
        match &optimized.gates()[0] {
            Gate::Ry { theta, .. } => assert!((theta - 1.0).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn x_pairs_cancel() {
        let mut circuit = Circuit::new(1);
        circuit.push(Gate::x(0));
        circuit.push(Gate::x(0));
        let (optimized, _) = optimize(&circuit);
        assert!(optimized.is_empty());
    }

    #[test]
    fn optimization_preserves_the_prepared_state() {
        let mut circuit = Circuit::new(3);
        circuit.push(Gate::ry(0, 0.3));
        circuit.push(Gate::ry(0, 0.4));
        circuit.push(Gate::cnot(0, 1));
        circuit.push(Gate::cnot(0, 1));
        circuit.push(Gate::cry(1, 2, 0.9));
        circuit.push(Gate::x(0));
        circuit.push(Gate::x(0));
        circuit.push(Gate::ry(2, 1e-15));
        let (optimized, stats) = optimize(&circuit);
        assert!(stats.gates_removed() > 0);
        let before = prepare_from_ground(&circuit).unwrap();
        let after = prepare_from_ground(&optimized).unwrap();
        assert!(before.approx_eq(&after, 1e-9));
        assert!(optimized.cnot_cost() <= circuit.cnot_cost());
    }

    #[test]
    fn empty_circuit_is_a_fixed_point() {
        let (optimized, stats) = optimize(&Circuit::new(2));
        assert!(optimized.is_empty());
        assert_eq!(stats.gates_removed(), 0);
    }
}
