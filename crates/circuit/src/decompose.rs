//! Lowering of multi-controlled rotations to the `{U(2), CNOT}` basis.
//!
//! The paper assumes that an MCRy with `k` controls costs `2^k` CNOT gates
//! (Sec. II-A, citing Möttönen et al.). This module implements that
//! decomposition — the Gray-code *multiplexor* construction — so the cost
//! model is not an assumption in this codebase but an executable lowering
//! that the simulator can verify gate-by-gate.
//!
//! A `k`-controlled `Ry(θ)` is a special case of a *uniformly controlled*
//! rotation with angle vector `α` that is `θ` on the control pattern that
//! fires and `0` elsewhere. The uniformly controlled rotation decomposes into
//! exactly `2^k` CNOTs and `2^k` single-qubit `Ry` gates.

use crate::circuit::Circuit;
use crate::error::CircuitError;
use crate::gate::Gate;

/// Emits the Gray-code multiplexor for a uniformly controlled Y rotation.
///
/// `angles[x]` is the rotation applied to `target` when the control qubits
/// (in the order given by `controls`, `controls[0]` being the least
/// significant selector bit) carry the basis pattern `x`.
///
/// The returned gate list contains `2^k` `Ry` and `2^k` `CNOT` gates.
///
/// # Errors
///
/// Returns an error if `angles.len() != 2^controls.len()` or the target
/// appears among the controls.
///
/// # Example
///
/// ```
/// use qsp_circuit::decompose::multiplexed_ry;
///
/// // A plain CRy(θ): angle 0 for control = |0⟩, θ for control = |1⟩.
/// let gates = multiplexed_ry(&[0], 1, &[0.0, 1.3])?;
/// assert_eq!(gates.iter().filter(|g| g.cnot_cost() == 1).count(), 2);
/// # Ok::<(), qsp_circuit::CircuitError>(())
/// ```
pub fn multiplexed_ry(
    controls: &[usize],
    target: usize,
    angles: &[f64],
) -> Result<Vec<Gate>, CircuitError> {
    let k = controls.len();
    if angles.len() != (1usize << k) {
        return Err(CircuitError::InvalidMapping {
            reason: format!(
                "a multiplexor over {k} controls needs {} angles, got {}",
                1usize << k,
                angles.len()
            ),
        });
    }
    if controls.contains(&target) {
        return Err(CircuitError::OverlappingQubits { qubit: target });
    }
    if k == 0 {
        return Ok(vec![Gate::ry(target, angles[0])]);
    }

    // Transformed angles: θ_l = (1/2^k) Σ_x (-1)^{popcount(x & gray(l))} α_x.
    let size = 1usize << k;
    let mut thetas = vec![0.0f64; size];
    for (l, theta) in thetas.iter_mut().enumerate() {
        let gray_l = gray_code(l);
        let mut acc = 0.0;
        for (x, &alpha) in angles.iter().enumerate() {
            let sign = if ((x & gray_l).count_ones() & 1) == 1 {
                -1.0
            } else {
                1.0
            };
            acc += sign * alpha;
        }
        *theta = acc / size as f64;
    }

    // Emit Ry(θ_l) followed by a CNOT on the control whose Gray-code bit
    // changes between step l and l+1 (wrapping to the highest control at the
    // end so every control is toggled an even number of times).
    let mut gates = Vec::with_capacity(2 * size);
    for (l, &theta) in thetas.iter().enumerate() {
        gates.push(Gate::ry(target, theta));
        let changing_bit = if l + 1 == size {
            k - 1
        } else {
            let diff = gray_code(l) ^ gray_code(l + 1);
            diff.trailing_zeros() as usize
        };
        gates.push(Gate::cnot(controls[changing_bit], target));
    }
    Ok(gates)
}

/// Gray code of an index: `g(l) = l ⊕ (l >> 1)`.
#[inline]
fn gray_code(l: usize) -> usize {
    l ^ (l >> 1)
}

/// Decomposes a single gate into the `{Ry, X, CNOT}` basis.
///
/// `Ry`, `X` and `CNOT` pass through unchanged; an `MCRy` with `k ≥ 1`
/// controls becomes a Gray-code multiplexor with `2^k` CNOTs (negative
/// controls are folded into the multiplexor's angle pattern at no extra
/// cost).
///
/// # Errors
///
/// Returns an error if the gate's controls overlap its target.
pub fn decompose_gate(gate: &Gate) -> Result<Vec<Gate>, CircuitError> {
    match gate {
        Gate::Ry { .. } | Gate::X { .. } | Gate::Cnot { .. } => Ok(vec![gate.clone()]),
        Gate::Mcry {
            controls,
            target,
            theta,
        } => {
            if controls.is_empty() {
                return Ok(vec![Gate::ry(*target, *theta)]);
            }
            let control_qubits: Vec<usize> = controls.iter().map(|c| c.qubit).collect();
            // The multiplexor fires the angle on the pattern selected by the
            // control polarities.
            let firing_pattern: usize = controls
                .iter()
                .enumerate()
                .filter(|(_, c)| c.polarity)
                .map(|(bit, _)| 1usize << bit)
                .sum();
            let mut angles = vec![0.0; 1usize << controls.len()];
            angles[firing_pattern] = *theta;
            multiplexed_ry(&control_qubits, *target, &angles)
        }
    }
}

/// Decomposes every gate of `circuit` into the `{Ry, X, CNOT}` basis.
///
/// After decomposition [`Circuit::cnot_cost`] equals the number of literal
/// CNOT gates, which is how the paper reports its numbers ("evaluate the
/// number of CNOT gates after mapping the circuit to {U(2), CNOT}",
/// Sec. VI-A).
///
/// # Errors
///
/// Propagates per-gate decomposition errors.
pub fn decompose_circuit(circuit: &Circuit) -> Result<Circuit, CircuitError> {
    let mut lowered = Circuit::new(circuit.num_qubits());
    for gate in circuit {
        for lowered_gate in decompose_gate(gate)? {
            lowered.try_push(lowered_gate)?;
        }
    }
    Ok(lowered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::{apply_circuit, apply_gate};
    use crate::gate::Control;
    use qsp_state::{BasisIndex, SparseState};

    /// Applies a raw gate list to a state (test helper).
    fn apply_gates(state: &SparseState, gates: &[Gate]) -> SparseState {
        let mut current = state.clone();
        for gate in gates {
            current = apply_gate(&current, gate).unwrap();
        }
        current
    }

    /// A fixed set of interesting 3-qubit basis states for semantic checks.
    fn probe_states() -> Vec<SparseState> {
        let mut probes: Vec<SparseState> = (0..8u64)
            .map(|x| SparseState::from_amplitudes(3, [(BasisIndex::new(x), 1.0)]).unwrap())
            .collect();
        probes.push(SparseState::uniform_superposition(3, (0..8).map(BasisIndex::new)).unwrap());
        probes.push(
            SparseState::uniform_superposition(3, [BasisIndex::new(0b001), BasisIndex::new(0b110)])
                .unwrap(),
        );
        probes
    }

    #[test]
    fn cry_decomposition_has_two_cnots_and_matches_semantics() {
        let gate = Gate::cry(0, 2, 0.77);
        let lowered = decompose_gate(&gate).unwrap();
        let cnots = lowered.iter().filter(|g| g.cnot_cost() == 1).count();
        assert_eq!(cnots, 2);
        for probe in probe_states() {
            let direct = apply_gate(&probe, &gate).unwrap();
            let via_lowering = apply_gates(&probe, &lowered);
            assert!(
                direct.approx_eq(&via_lowering, 1e-9),
                "mismatch on probe {probe}: direct {direct} vs lowered {via_lowering}"
            );
        }
    }

    #[test]
    fn mcry_decomposition_has_2_pow_k_cnots_and_matches_semantics() {
        let gate = Gate::mcry(&[0, 1], 2, 1.234);
        let lowered = decompose_gate(&gate).unwrap();
        assert_eq!(
            lowered.iter().filter(|g| g.cnot_cost() == 1).count(),
            4,
            "2 controls must lower to 2^2 = 4 CNOTs"
        );
        for probe in probe_states() {
            let direct = apply_gate(&probe, &gate).unwrap();
            let via_lowering = apply_gates(&probe, &lowered);
            assert!(
                direct.approx_eq(&via_lowering, 1e-9),
                "mismatch on probe {probe}"
            );
        }
    }

    #[test]
    fn negative_controls_are_folded_into_the_multiplexor() {
        let gate = Gate::Mcry {
            controls: vec![Control::negative(0), Control::positive(1)],
            target: 2,
            theta: 0.9,
        };
        let lowered = decompose_gate(&gate).unwrap();
        assert_eq!(lowered.iter().filter(|g| g.cnot_cost() == 1).count(), 4);
        for probe in probe_states() {
            let direct = apply_gate(&probe, &gate).unwrap();
            let via_lowering = apply_gates(&probe, &lowered);
            assert!(direct.approx_eq(&via_lowering, 1e-9));
        }
    }

    #[test]
    fn multiplexor_realizes_arbitrary_angle_vectors() {
        let controls = [0usize, 1usize];
        let angles = [0.3, -0.7, 1.9, 0.25];
        let gates = multiplexed_ry(&controls, 2, &angles).unwrap();
        assert_eq!(gates.len(), 8);
        // For each control basis pattern, the multiplexor must rotate the
        // target by the corresponding angle.
        for pattern in 0..4u64 {
            let index = BasisIndex::new(pattern);
            let input = SparseState::from_amplitudes(3, [(index, 1.0)]).unwrap();
            let output = apply_gates(&input, &gates);
            let expected = input.apply_ry(2, angles[pattern as usize]).unwrap();
            assert!(
                output.approx_eq(&expected, 1e-9),
                "pattern {pattern:#b}: got {output}, expected {expected}"
            );
        }
    }

    #[test]
    fn decompose_circuit_preserves_cost_and_semantics() {
        let mut circuit = Circuit::new(4);
        circuit.push(Gate::ry(0, 0.4));
        circuit.push(Gate::cnot(0, 1));
        circuit.push(Gate::cry(1, 2, -0.8));
        circuit.push(Gate::mcry(&[0, 1, 2], 3, 2.2));
        circuit.push(Gate::x(3));
        let lowered = decompose_circuit(&circuit).unwrap();
        // 0 + 1 + 2 + 8 + 0 = 11 CNOTs, now as literal gates.
        assert_eq!(circuit.cnot_cost(), 11);
        assert_eq!(lowered.cnot_gate_count(), 11);
        assert_eq!(lowered.cnot_cost(), 11);
        let ground = SparseState::ground_state(4).unwrap();
        let direct = apply_circuit(&ground, &circuit).unwrap();
        let via_lowering = apply_circuit(&ground, &lowered).unwrap();
        assert!(direct.approx_eq(&via_lowering, 1e-9));
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(multiplexed_ry(&[0], 0, &[0.0, 1.0]).is_err());
        assert!(multiplexed_ry(&[0], 1, &[0.0]).is_err());
        let zero_controls = Gate::Mcry {
            controls: vec![],
            target: 0,
            theta: 0.5,
        };
        assert_eq!(decompose_gate(&zero_controls).unwrap().len(), 1);
    }

    #[test]
    fn gray_code_changes_one_bit_per_step() {
        for l in 0..63usize {
            let diff = gray_code(l) ^ gray_code(l + 1);
            assert_eq!(diff.count_ones(), 1);
        }
    }
}
