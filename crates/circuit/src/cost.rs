//! The CNOT cost model of the paper.
//!
//! Every algorithm compared in the evaluation is scored by the number of
//! CNOT gates after mapping to `{U(2), CNOT}` (Sec. VI-A). The cost of a
//! multi-controlled rotation depends on the decomposition algorithm and on
//! ancilla availability; the paper fixes the assumption that an MCRy with
//! `n` controls costs `2^n` CNOT gates (Sec. II-A), which is what the
//! multiplexor decomposition in [`crate::decompose`] achieves without
//! ancillas.

use crate::gate::Gate;

/// A configurable CNOT cost model.
///
/// The default model is the paper's (Table I). A custom model can be used
/// for ablations, e.g. to study how a cheaper MCRy decomposition (relative
/// phase Toffolis, ancilla-assisted) would shift the comparison.
///
/// # Example
///
/// ```
/// use qsp_circuit::{CnotCostModel, Gate};
///
/// let model = CnotCostModel::paper();
/// assert_eq!(model.gate_cost(&Gate::cry(0, 1, 0.3)), 2);
/// let linear = CnotCostModel::linear_mcry();
/// assert_eq!(linear.gate_cost(&Gate::mcry(&[0, 1, 2], 3, 0.3)), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CnotCostModel {
    /// Cost of a plain CNOT.
    pub cnot: usize,
    /// How the cost of a `k`-controlled Y rotation scales with `k`.
    pub mcry_scaling: McryScaling,
}

/// Scaling law for multi-controlled Y rotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McryScaling {
    /// `2^k` CNOTs for `k` controls — the paper's assumption (Möttönen
    /// multiplexor without ancillas).
    Exponential,
    /// `2k` CNOTs for `k` controls — an optimistic linear-depth model
    /// (ancilla-assisted), available for ablation studies.
    Linear,
}

impl CnotCostModel {
    /// The cost model used throughout the paper.
    pub const fn paper() -> Self {
        CnotCostModel {
            cnot: 1,
            mcry_scaling: McryScaling::Exponential,
        }
    }

    /// An ablation model where `k`-controlled rotations cost `2k` CNOTs.
    pub const fn linear_mcry() -> Self {
        CnotCostModel {
            cnot: 1,
            mcry_scaling: McryScaling::Linear,
        }
    }

    /// Cost of a `k`-controlled Y rotation under this model.
    pub fn mcry_cost(&self, num_controls: usize) -> usize {
        match (num_controls, self.mcry_scaling) {
            (0, _) => 0,
            (k, McryScaling::Exponential) => 1usize << k,
            (k, McryScaling::Linear) => 2 * k,
        }
    }

    /// Cost of an arbitrary gate under this model.
    pub fn gate_cost(&self, gate: &Gate) -> usize {
        match gate {
            Gate::Ry { .. } | Gate::X { .. } => 0,
            Gate::Cnot { .. } => self.cnot,
            Gate::Mcry { controls, .. } => self.mcry_cost(controls.len()),
        }
    }

    /// Total cost of a sequence of gates.
    pub fn circuit_cost<'a, I: IntoIterator<Item = &'a Gate>>(&self, gates: I) -> usize {
        gates.into_iter().map(|g| self.gate_cost(g)).sum()
    }
}

impl Default for CnotCostModel {
    fn default() -> Self {
        CnotCostModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_matches_gate_costs() {
        let model = CnotCostModel::paper();
        for gate in [
            Gate::ry(0, 0.1),
            Gate::x(1),
            Gate::cnot(0, 1),
            Gate::cry(0, 1, 0.1),
            Gate::mcry(&[0, 1, 2], 3, 0.1),
        ] {
            assert_eq!(model.gate_cost(&gate), gate.cnot_cost());
        }
    }

    #[test]
    fn linear_model_is_cheaper_for_many_controls() {
        let paper = CnotCostModel::paper();
        let linear = CnotCostModel::linear_mcry();
        assert_eq!(paper.mcry_cost(5), 32);
        assert_eq!(linear.mcry_cost(5), 10);
        assert_eq!(linear.mcry_cost(0), 0);
    }

    #[test]
    fn circuit_cost_sums_gates() {
        let model = CnotCostModel::default();
        let gates = vec![Gate::ry(0, 0.5), Gate::cnot(0, 1), Gate::cry(1, 2, 0.3)];
        assert_eq!(model.circuit_cost(&gates), 3);
    }
}
