//! Property-based tests for the circuit IR: cost model consistency, inverse
//! circuits, multiplexor lowering and the peephole optimizer.

use proptest::prelude::*;

use qsp_circuit::apply::{apply_circuit, prepare_from_ground};
use qsp_circuit::decompose::{decompose_circuit, multiplexed_ry};
use qsp_circuit::optimizer::optimize;
use qsp_circuit::{Circuit, CnotCostModel, Gate};
use qsp_state::{BasisIndex, SparseState};

const WIDTH: usize = 4;

/// Strategy: one random gate over a 4-qubit register from the paper's library.
fn gate_strategy() -> impl Strategy<Value = Gate> {
    (0usize..5, 0usize..WIDTH, 0usize..WIDTH, 0usize..WIDTH, -3.0f64..3.0).prop_map(
        |(kind, a, b, c, theta)| {
            let target = a;
            let control = if b == target { (target + 1) % WIDTH } else { b };
            let second = if c == target || c == control {
                (target + 2) % WIDTH
            } else {
                c
            };
            match kind {
                0 => Gate::ry(target, theta),
                1 => Gate::x(target),
                2 => Gate::cnot(control, target),
                3 => Gate::cry(control, target, theta),
                _ => {
                    if second == control || second == target {
                        Gate::cry(control, target, theta)
                    } else {
                        Gate::mcry(&[control, second], target, theta)
                    }
                }
            }
        },
    )
}

/// Strategy: a random circuit of up to 16 gates.
fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(gate_strategy(), 0..16)
        .prop_map(|gates| Circuit::from_gates(WIDTH, gates).expect("gates fit the register"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The circuit cost equals the sum of the per-gate costs and matches the
    /// paper's cost model for every gate in the library.
    #[test]
    fn circuit_cost_is_additive(circuit in circuit_strategy()) {
        let sum: usize = circuit.gates().iter().map(Gate::cnot_cost).sum();
        prop_assert_eq!(circuit.cnot_cost(), sum);
        let model = CnotCostModel::paper();
        prop_assert_eq!(circuit.cnot_cost_with(&model), sum);
    }

    /// A circuit followed by its inverse acts as the identity on every basis
    /// state of the register.
    #[test]
    fn inverse_undoes_the_circuit(circuit in circuit_strategy(), start in 0u64..(1 << WIDTH)) {
        let input = SparseState::from_amplitudes(WIDTH, [(BasisIndex::new(start), 1.0)])
            .expect("basis state");
        let forward = apply_circuit(&input, &circuit).expect("circuit applies");
        let back = apply_circuit(&forward, &circuit.inverse()).expect("inverse applies");
        prop_assert!(back.approx_eq(&input, 1e-7), "got {back}, expected {input}");
    }

    /// Lowering to {Ry, X, CNOT} preserves the prepared state and realizes the
    /// cost model as literal CNOT gates.
    #[test]
    fn lowering_preserves_semantics_and_cost(circuit in circuit_strategy()) {
        let lowered = decompose_circuit(&circuit).expect("lowering succeeds");
        prop_assert_eq!(lowered.cnot_gate_count(), circuit.cnot_cost());
        let only_primitive_gates = lowered
            .gates()
            .iter()
            .all(|g| matches!(g, Gate::Ry { .. } | Gate::X { .. } | Gate::Cnot { .. }));
        prop_assert!(only_primitive_gates);
        let reference = prepare_from_ground(&circuit).expect("circuit applies");
        let via_lowering = prepare_from_ground(&lowered).expect("lowered applies");
        prop_assert!(via_lowering.approx_eq(&reference, 1e-7));
    }

    /// The peephole optimizer never changes the prepared state and never
    /// increases the CNOT cost or the gate count.
    #[test]
    fn optimizer_is_sound(circuit in circuit_strategy()) {
        let (optimized, stats) = optimize(&circuit);
        prop_assert!(optimized.cnot_cost() <= circuit.cnot_cost());
        prop_assert!(optimized.len() + stats.gates_removed() == circuit.len());
        let reference = prepare_from_ground(&circuit).expect("circuit applies");
        let after = prepare_from_ground(&optimized).expect("optimized applies");
        prop_assert!(after.approx_eq(&reference, 1e-7));
    }

    /// The optimizer is idempotent: a second pass finds nothing to remove.
    #[test]
    fn optimizer_is_idempotent(circuit in circuit_strategy()) {
        let (once, _) = optimize(&circuit);
        let (twice, stats) = optimize(&once);
        prop_assert_eq!(stats.gates_removed(), 0);
        prop_assert_eq!(once, twice);
    }

    /// Remapping a circuit onto permuted qubit labels preserves its cost and
    /// commutes with simulation up to the same permutation of the state.
    #[test]
    fn remapping_preserves_cost(circuit in circuit_strategy(), rotation in 0usize..WIDTH) {
        let mapping: Vec<usize> = (0..WIDTH).map(|q| (q + rotation) % WIDTH).collect();
        let remapped = circuit.remap_qubits(&mapping, WIDTH).expect("bijective mapping");
        prop_assert_eq!(remapped.cnot_cost(), circuit.cnot_cost());
        prop_assert_eq!(remapped.len(), circuit.len());
        let direct = prepare_from_ground(&circuit).expect("applies");
        let permuted_direct = direct.permute_qubits(&{
            // permute_qubits expects perm[i] = source qubit for destination i,
            // which is the inverse of `mapping`.
            let mut inverse = vec![0usize; WIDTH];
            for (src, &dst) in mapping.iter().enumerate() {
                inverse[dst] = src;
            }
            inverse
        }).expect("valid permutation");
        let via_remap = prepare_from_ground(&remapped).expect("applies");
        prop_assert!(via_remap.approx_eq(&permuted_direct, 1e-7));
    }

    /// A multiplexed Ry realizes exactly its angle table: for every control
    /// pattern the target is rotated by the corresponding angle.
    #[test]
    fn multiplexor_realizes_its_angle_table(angles in proptest::collection::vec(-3.0f64..3.0, 4), pattern in 0u64..4) {
        let gates = multiplexed_ry(&[0, 1], 2, &angles).expect("valid multiplexor");
        prop_assert_eq!(gates.len(), 8);
        let input = SparseState::from_amplitudes(3, [(BasisIndex::new(pattern), 1.0)])
            .expect("basis state");
        let mut state = input.clone();
        for gate in &gates {
            state = qsp_circuit::apply_gate(&state, gate).expect("gate applies");
        }
        let expected = input.apply_ry(2, angles[pattern as usize]).expect("rotation applies");
        prop_assert!(state.approx_eq(&expected, 1e-7));
    }
}
