//! Randomized property tests for the circuit IR: cost model consistency,
//! inverse circuits, multiplexor lowering and the peephole optimizer.
//!
//! The offline build cannot depend on `proptest`, so each property is checked
//! on a seeded stream of random cases (the deterministic `qsp-rand` shim).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qsp_circuit::apply::{apply_circuit, prepare_from_ground};
use qsp_circuit::decompose::{decompose_circuit, multiplexed_ry};
use qsp_circuit::optimizer::optimize;
use qsp_circuit::{Circuit, CnotCostModel, Gate};
use qsp_state::{BasisIndex, SparseState};

const WIDTH: usize = 4;
const CASES: usize = 48;

/// One random gate over a 4-qubit register from the paper's library.
fn random_gate(rng: &mut StdRng) -> Gate {
    let kind = rng.gen_range(0usize..5);
    let target = rng.gen_range(0usize..WIDTH);
    let b = rng.gen_range(0usize..WIDTH);
    let c = rng.gen_range(0usize..WIDTH);
    let theta = rng.gen_range(-3.0f64..3.0);
    let control = if b == target { (target + 1) % WIDTH } else { b };
    let second = if c == target || c == control {
        (target + 2) % WIDTH
    } else {
        c
    };
    match kind {
        0 => Gate::ry(target, theta),
        1 => Gate::x(target),
        2 => Gate::cnot(control, target),
        3 => Gate::cry(control, target, theta),
        _ => {
            if second == control || second == target {
                Gate::cry(control, target, theta)
            } else {
                Gate::mcry(&[control, second], target, theta)
            }
        }
    }
}

/// A random circuit of up to 16 gates.
fn random_circuit(rng: &mut StdRng) -> Circuit {
    let len = rng.gen_range(0usize..16);
    let gates: Vec<Gate> = (0..len).map(|_| random_gate(rng)).collect();
    Circuit::from_gates(WIDTH, gates).expect("gates fit the register")
}

#[test]
fn circuit_cost_is_additive() {
    let mut rng = StdRng::seed_from_u64(0x2001);
    for _ in 0..CASES {
        let circuit = random_circuit(&mut rng);
        let sum: usize = circuit.gates().iter().map(Gate::cnot_cost).sum();
        assert_eq!(circuit.cnot_cost(), sum);
        let model = CnotCostModel::paper();
        assert_eq!(circuit.cnot_cost_with(&model), sum);
    }
}

#[test]
fn inverse_undoes_the_circuit() {
    let mut rng = StdRng::seed_from_u64(0x2002);
    for _ in 0..CASES {
        let circuit = random_circuit(&mut rng);
        let start = rng.gen_range(0u64..(1 << WIDTH));
        let input = SparseState::from_amplitudes(WIDTH, [(BasisIndex::new(start), 1.0)])
            .expect("basis state");
        let forward = apply_circuit(&input, &circuit).expect("circuit applies");
        let back = apply_circuit(&forward, &circuit.inverse()).expect("inverse applies");
        assert!(back.approx_eq(&input, 1e-7), "got {back}, expected {input}");
    }
}

#[test]
fn lowering_preserves_semantics_and_cost() {
    let mut rng = StdRng::seed_from_u64(0x2003);
    for _ in 0..CASES {
        let circuit = random_circuit(&mut rng);
        let lowered = decompose_circuit(&circuit).expect("lowering succeeds");
        assert_eq!(lowered.cnot_gate_count(), circuit.cnot_cost());
        let only_primitive_gates = lowered
            .gates()
            .iter()
            .all(|g| matches!(g, Gate::Ry { .. } | Gate::X { .. } | Gate::Cnot { .. }));
        assert!(only_primitive_gates);
        let reference = prepare_from_ground(&circuit).expect("circuit applies");
        let via_lowering = prepare_from_ground(&lowered).expect("lowered applies");
        assert!(via_lowering.approx_eq(&reference, 1e-7));
    }
}

#[test]
fn optimizer_is_sound() {
    let mut rng = StdRng::seed_from_u64(0x2004);
    for _ in 0..CASES {
        let circuit = random_circuit(&mut rng);
        let (optimized, stats) = optimize(&circuit);
        assert!(optimized.cnot_cost() <= circuit.cnot_cost());
        assert!(optimized.len() + stats.gates_removed() == circuit.len());
        let reference = prepare_from_ground(&circuit).expect("circuit applies");
        let after = prepare_from_ground(&optimized).expect("optimized applies");
        assert!(after.approx_eq(&reference, 1e-7));
    }
}

#[test]
fn optimizer_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(0x2005);
    for _ in 0..CASES {
        let circuit = random_circuit(&mut rng);
        let (once, _) = optimize(&circuit);
        let (twice, stats) = optimize(&once);
        assert_eq!(stats.gates_removed(), 0);
        assert_eq!(once, twice);
    }
}

#[test]
fn remapping_preserves_cost() {
    let mut rng = StdRng::seed_from_u64(0x2006);
    for _ in 0..CASES {
        let circuit = random_circuit(&mut rng);
        let rotation = rng.gen_range(0usize..WIDTH);
        let mapping: Vec<usize> = (0..WIDTH).map(|q| (q + rotation) % WIDTH).collect();
        let remapped = circuit
            .remap_qubits(&mapping, WIDTH)
            .expect("bijective mapping");
        assert_eq!(remapped.cnot_cost(), circuit.cnot_cost());
        assert_eq!(remapped.len(), circuit.len());
        let direct = prepare_from_ground(&circuit).expect("applies");
        let permuted_direct = direct
            .permute_qubits(&{
                // permute_qubits expects perm[i] = source qubit for destination
                // i, which is the inverse of `mapping`.
                let mut inverse = vec![0usize; WIDTH];
                for (src, &dst) in mapping.iter().enumerate() {
                    inverse[dst] = src;
                }
                inverse
            })
            .expect("valid permutation");
        let via_remap = prepare_from_ground(&remapped).expect("applies");
        assert!(via_remap.approx_eq(&permuted_direct, 1e-7));
    }
}

#[test]
fn multiplexor_realizes_its_angle_table() {
    let mut rng = StdRng::seed_from_u64(0x2007);
    for _ in 0..CASES {
        let angles: Vec<f64> = (0..4).map(|_| rng.gen_range(-3.0f64..3.0)).collect();
        let pattern = rng.gen_range(0u64..4);
        let gates = multiplexed_ry(&[0, 1], 2, &angles).expect("valid multiplexor");
        assert_eq!(gates.len(), 8);
        let input = SparseState::from_amplitudes(3, [(BasisIndex::new(pattern), 1.0)])
            .expect("basis state");
        let mut state = input.clone();
        for gate in &gates {
            state = qsp_circuit::apply_gate(&state, gate).expect("gate applies");
        }
        let expected = input
            .apply_ry(2, angles[pattern as usize])
            .expect("rotation applies");
        assert!(state.approx_eq(&expected, 1e-7));
    }
}
