//! The solver engine: one dispatch point for sequential and portfolio search.
//!
//! [`SolverEngine`] owns the full exact-synthesis pipeline (validation,
//! constant-qubit compaction, the A* reduction, angle replay and register
//! remapping) and schedules the search according to
//! [`SearchStrategy`]:
//!
//! * **Sequential** — one A* run on the target, exactly Algorithm 1.
//! * **Portfolio** — several A* workers race on *canonically equivalent
//!   variants* of the target: states reachable through zero-CNOT-cost qubit
//!   permutations and Pauli-X flips (the Sec. V-B witness transforms). All
//!   variants share the same optimal CNOT cost, so whichever worker settles
//!   first has found the global optimum; it publishes the cost into a shared
//!   atomic incumbent bound and cancels the rest (first-optimal-wins). The
//!   winning variant's circuit is mapped back onto the original target frame
//!   with the zero-cost witness transform, so the reported `cnot_cost` is
//!   **bit-identical** to the sequential solver. The gate-level circuit may
//!   differ between runs (it depends on which variant wins the race) but
//!   always prepares the target at the same optimal cost.
//!
//! [`ExactSynthesizer`](crate::ExactSynthesizer), the workflow and the batch
//! engine all solve through this type, so one [`SearchConfig`] policy decides
//! sequential-vs-portfolio for every entry point.

use std::collections::HashSet;

use qsp_circuit::{Circuit, Gate};
use qsp_state::{BasisIndex, QuantumState, SparseState};

use qsp_obs::SearchProbe;

use crate::error::SynthesisError;
use crate::exact::{ExactSynthesisOutcome, SynthesisStats};
use crate::search::astar::{
    shortest_reduction_probed, SearchCoordination, SearchFailure, SearchOutcome,
};
use crate::search::config::{SearchConfig, SearchStrategy};
use crate::search::op::TransitionOp;
use crate::search::state::SearchState;

/// The abstract reduction recipe of one exact solve: the transition
/// operations the search settled (in the frame of the searched variant), the
/// zero-cost transform from the compact register onto that variant, and the
/// active qubit positions the compact register was built from.
///
/// The ops are angle-free — replaying them on *another* state with the same
/// support pattern re-derives that state's own rotation angles through the
/// angle-replay stage. This is the capture side of the batch layer's
/// support-pattern class templates.
#[derive(Debug, Clone)]
pub(crate) struct ReductionPlan {
    /// The backward reduction, in the searched variant's frame.
    pub(crate) ops: Vec<TransitionOp>,
    /// Zero-cost transform from the compact register onto the searched
    /// variant (identity for sequential solves).
    pub(crate) frame: StateTransform,
    /// Active (non constant-`|0⟩`) qubit positions of the original register.
    pub(crate) active: Vec<usize>,
}

/// A zero-cost transform `t(x) = permute(x, perm) ^ mask` mapping one state
/// of a Sec. V-B equivalence class onto another (index-wise; amplitudes ride
/// along unchanged). Used both as the *witness* recorded by the batch
/// engine's canonical keying and as the variant generator of the portfolio
/// search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateTransform {
    pub(crate) perm: Vec<usize>,
    pub(crate) mask: u64,
}

impl StateTransform {
    /// The identity transform on `num_qubits` qubits.
    pub fn identity(num_qubits: usize) -> Self {
        StateTransform {
            perm: (0..num_qubits).collect(),
            mask: 0,
        }
    }

    /// Whether this is the identity transform.
    pub fn is_identity(&self) -> bool {
        self.mask == 0 && self.perm.iter().enumerate().all(|(i, &p)| i == p)
    }

    /// Applies the transform to a basis index.
    pub fn apply(&self, index: u64) -> u64 {
        BasisIndex::new(index).permute(&self.perm).value() ^ self.mask
    }

    /// The inverse permutation array: `inv[perm[q]] = q`.
    pub(crate) fn inverse_perm(perm: &[usize]) -> Vec<usize> {
        let mut inv = vec![0usize; perm.len()];
        for (q, &p) in perm.iter().enumerate() {
            inv[p] = q;
        }
        inv
    }

    /// Applies the transform to a whole state: the result has amplitude
    /// `a(x)` at index `t(x)` wherever the input has amplitude `a(x)` at `x`.
    pub(crate) fn apply_to_state(
        &self,
        state: &SparseState,
    ) -> Result<SparseState, SynthesisError> {
        let mut out = state.permute_qubits(&self.perm)?;
        for qubit in 0..self.perm.len() {
            if self.mask >> qubit & 1 == 1 {
                out = out.apply_x(qubit)?;
            }
        }
        Ok(out)
    }
}

/// Permutes the bits of a mask: bit `i` of the result is bit `perm[i]` of
/// `mask` (same convention as [`BasisIndex::permute`]).
pub(crate) fn permute_mask(mask: u64, perm: &[usize]) -> u64 {
    BasisIndex::new(mask).permute(perm).value()
}

/// Reconstructs the circuit for a target from the solved circuit of another
/// member of the same canonical class.
///
/// `solved_transform` maps the solved state onto the canonical
/// representative, `target_transform` maps the target onto the same
/// representative. The reconstruction relabels the solved circuit's qubits
/// and appends an X layer — both zero CNOT cost, so the reconstructed
/// circuit's CNOT cost equals the solved one's.
pub(crate) fn reconstruct_circuit(
    solved: &Circuit,
    solved_transform: &StateTransform,
    target_transform: &StateTransform,
) -> Result<Circuit, SynthesisError> {
    let n = target_transform.perm.len();
    // Combined index map from the solved state A to the target B:
    //   i_B = inv(t_B)(t_A(i_A)) = permute(i_A, r) ^ m
    // with r[i] = p_A[inv_B[i]] and m = permute_mask(m_A ^ m_B, inv_B).
    let inv_b = StateTransform::inverse_perm(&target_transform.perm);
    let r: Vec<usize> = (0..n).map(|i| solved_transform.perm[inv_b[i]]).collect();
    let mask = permute_mask(solved_transform.mask ^ target_transform.mask, &inv_b);

    if r.iter().enumerate().all(|(i, &v)| i == v) && mask == 0 {
        return Ok(solved.clone());
    }

    // A circuit remapped by `sigma` prepares the permuted state with
    // bit sigma(q) = bit q of the original; matching `permute(·, r)` needs
    // sigma = r^{-1}.
    let sigma = StateTransform::inverse_perm(&r);
    let mut circuit = solved.remap_qubits(&sigma, n)?;
    for qubit in 0..n {
        if mask & (1u64 << qubit) != 0 {
            circuit.try_push(Gate::x(qubit))?;
        }
    }
    Ok(circuit)
}

/// The exact-synthesis pipeline with strategy dispatch. Cheap to construct;
/// stateless apart from its configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverEngine {
    config: SearchConfig,
}

/// The solved compact problem: the circuit on the active register, the
/// reduction recipe it was replayed from, plus search statistics.
struct CompactSolution {
    circuit: Circuit,
    expanded: usize,
    pushed: usize,
    variants: usize,
    ops: Vec<TransitionOp>,
    frame: StateTransform,
}

impl SolverEngine {
    /// An engine with the given search configuration (strategy included).
    pub fn new(config: SearchConfig) -> Self {
        SolverEngine { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Synthesizes the CNOT-optimal preparation circuit for `target` (any
    /// [`QuantumState`] backend), scheduling the search per the configured
    /// [`SearchStrategy`].
    ///
    /// # Errors
    ///
    /// Returns an error when the target has negative amplitudes, exceeds the
    /// configured limits on active qubits / cardinality, or the search budget
    /// is exhausted.
    pub fn synthesize<S: QuantumState>(
        &self,
        state: &S,
    ) -> Result<ExactSynthesisOutcome, SynthesisError> {
        self.synthesize_probed(state, None)
    }

    /// [`SolverEngine::synthesize`] with an optional flight-recorder probe:
    /// every A* worker of the solve (all racers of a portfolio) reports its
    /// node counters, frontier high-water, incumbent-bound updates and
    /// cancellation cause into the shared probe. Pass `None` (what
    /// `synthesize` does) to skip all per-node probe accounting.
    pub fn synthesize_probed<S: QuantumState>(
        &self,
        state: &S,
        probe: Option<&SearchProbe>,
    ) -> Result<ExactSynthesisOutcome, SynthesisError> {
        let start = std::time::Instant::now();
        let sparse = state.as_sparse()?;
        let target = sparse.as_ref();
        if target.iter().any(|(_, a)| a < 0.0) {
            return Err(SynthesisError::UnsupportedState {
                reason: "exact synthesis requires non-negative real amplitudes".to_string(),
            });
        }
        if target.cardinality() > self.config.max_cardinality {
            return Err(SynthesisError::ProblemTooLarge {
                reason: format!(
                    "cardinality {} exceeds the limit {}",
                    target.cardinality(),
                    self.config.max_cardinality
                ),
            });
        }

        // Compact away constant-|0⟩ qubits: the search runs on the active
        // register, the circuit is remapped back at the end.
        let active: Vec<usize> = (0..target.num_qubits())
            .filter(|&q| target.iter().any(|(index, _)| index.bit(q)))
            .collect();
        if active.len() > self.config.max_qubits {
            return Err(SynthesisError::ProblemTooLarge {
                reason: format!(
                    "{} active qubits exceed the limit {}",
                    active.len(),
                    self.config.max_qubits
                ),
            });
        }
        if active.is_empty() {
            // The target is |0…0⟩ already.
            return Ok(ExactSynthesisOutcome {
                circuit: Circuit::new(target.num_qubits()),
                cnot_cost: 0,
                stats: SynthesisStats {
                    active_qubits: 0,
                    variants: 1,
                    ..SynthesisStats::default()
                },
                elapsed: start.elapsed(),
                plan: None,
            });
        }

        let compact = compact_state(target, &active)?;
        let solution = self.solve_compact(&compact, probe)?;
        let circuit = solution
            .circuit
            .remap_qubits(&active, target.num_qubits())?;

        Ok(ExactSynthesisOutcome {
            cnot_cost: circuit.cnot_cost(),
            circuit,
            stats: SynthesisStats {
                expanded: solution.expanded,
                pushed: solution.pushed,
                active_qubits: active.len(),
                variants: solution.variants,
            },
            elapsed: start.elapsed(),
            plan: Some(ReductionPlan {
                ops: solution.ops,
                frame: solution.frame,
                active,
            }),
        })
    }

    /// Solves the compacted problem per the configured strategy.
    fn solve_compact(
        &self,
        compact: &SparseState,
        probe: Option<&SearchProbe>,
    ) -> Result<CompactSolution, SynthesisError> {
        match self.config.strategy {
            SearchStrategy::Sequential => self.solve_sequential(compact, probe),
            SearchStrategy::Portfolio { .. } => {
                let workers = self.config.strategy.resolved_workers();
                let transforms = portfolio_transforms(compact, workers);
                if transforms.len() <= 1 {
                    self.solve_sequential(compact, probe)
                } else {
                    self.solve_portfolio(compact, transforms, probe)
                }
            }
        }
    }

    fn solve_sequential(
        &self,
        compact: &SparseState,
        probe: Option<&SearchProbe>,
    ) -> Result<CompactSolution, SynthesisError> {
        let search_target = SearchState::from_state(compact);
        let outcome = shortest_reduction_probed(&search_target, &self.config, None, probe)
            .map_err(SearchFailure::into_error)?;
        let reduction = crate::exact::replay_reduction(compact, &outcome.reduction_ops)?;
        Ok(CompactSolution {
            circuit: reduction.inverse(),
            expanded: outcome.expanded,
            pushed: outcome.pushed,
            variants: 1,
            ops: outcome.reduction_ops,
            frame: StateTransform::identity(compact.num_qubits()),
        })
    }

    /// Races one A* worker per canonical variant; the first settled optimum
    /// wins and cancels the rest through the shared [`SearchCoordination`].
    fn solve_portfolio(
        &self,
        compact: &SparseState,
        transforms: Vec<StateTransform>,
        probe: Option<&SearchProbe>,
    ) -> Result<CompactSolution, SynthesisError> {
        type Attempt = Result<(usize, SearchOutcome, SparseState), SearchFailure>;

        let coordination = SearchCoordination::new();
        // Portfolio workers always search with exact distance keys: the
        // approximate PU(2) compression is frame-dependent (different
        // variants can settle different costs), which would both break the
        // bit-identical-cost contract and let foreign-frame incumbents prune
        // unsoundly. The compression knob still applies to sequential runs.
        let config = &SearchConfig {
            permutation_compression: false,
            ..self.config
        };
        let attempts: Vec<Attempt> = std::thread::scope(|scope| {
            let handles: Vec<_> = transforms
                .iter()
                .enumerate()
                .map(|(index, transform)| {
                    let coordination = &coordination;
                    scope.spawn(move || -> Attempt {
                        let variant = transform
                            .apply_to_state(compact)
                            .map_err(SearchFailure::Error)?;
                        let search_target = SearchState::from_state(&variant);
                        let outcome = shortest_reduction_probed(
                            &search_target,
                            config,
                            Some(coordination),
                            probe,
                        )?;
                        Ok((index, outcome, variant))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("portfolio worker panicked"))
                .collect()
        });

        // Deterministic preference among finishers: lowest cost first (every
        // finisher is optimal, so costs tie), then lowest variant index.
        let mut winner: Option<(usize, SearchOutcome, SparseState)> = None;
        let mut first_error: Option<SynthesisError> = None;
        for attempt in attempts {
            match attempt {
                Ok(candidate) => {
                    let better = winner.as_ref().is_none_or(|best| {
                        (candidate.1.cnot_cost, candidate.0) < (best.1.cnot_cost, best.0)
                    });
                    if better {
                        winner = Some(candidate);
                    }
                }
                Err(SearchFailure::Cancelled) => {}
                Err(SearchFailure::Error(e)) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        let Some((index, outcome, variant)) = winner else {
            // No worker finished: every one failed (cancellation requires a
            // finisher), so surface the first real error.
            return Err(
                first_error.unwrap_or(SynthesisError::SearchBudgetExhausted { expanded: 0 })
            );
        };

        // Replay the reduction in the winning variant's frame, then map the
        // circuit back onto the target frame with the zero-cost witness.
        let reduction = crate::exact::replay_reduction(&variant, &outcome.reduction_ops)?;
        let variant_circuit = reduction.inverse();
        let identity = StateTransform::identity(compact.num_qubits());
        let circuit = reconstruct_circuit(&variant_circuit, &identity, &transforms[index])?;
        Ok(CompactSolution {
            circuit,
            expanded: outcome.expanded,
            pushed: outcome.pushed,
            variants: transforms.len(),
            ops: outcome.reduction_ops,
            frame: transforms[index].clone(),
        })
    }
}

impl SearchFailure {
    /// Unwraps the error of an uncoordinated search (which cannot be
    /// cancelled).
    fn into_error(self) -> SynthesisError {
        match self {
            SearchFailure::Cancelled => unreachable!("uncoordinated search cancelled"),
            SearchFailure::Error(e) => e,
        }
    }
}

/// Restricts `target` to the `active` qubits (every other qubit is `|0⟩`).
pub(crate) fn compact_state(
    target: &SparseState,
    active: &[usize],
) -> Result<SparseState, SynthesisError> {
    let entries = target.iter().map(|(index, amplitude)| {
        let mut compact = 0u64;
        for (new_pos, &old_pos) in active.iter().enumerate() {
            if index.bit(old_pos) {
                compact |= 1 << new_pos;
            }
        }
        (BasisIndex::new(compact), amplitude)
    });
    Ok(SparseState::from_amplitudes(active.len(), entries)?)
}

/// Deterministically picks up to `workers` zero-cost variants of `compact`
/// for the portfolio, always starting with the identity. Candidates whose
/// search state coincides with an already chosen variant are skipped (a
/// permutation-symmetric target like GHZ yields fewer distinct variants, and
/// the portfolio shrinks accordingly).
///
/// The primary candidate stream reuses the keying pipeline's **orbit
/// enumeration** ([`qsp_state::pipeline::orbit_variant_transforms`]):
/// orbit-consistent qubit relabellings paired with support flip masks.
/// Unlike blind single-bit flips, each of those candidates moves the target
/// into a genuinely different frame (a different support index lands on
/// `|0…0⟩`, relabellings respect the qubits' invariant structure), so the
/// racers explore structurally diverse search orders. The legacy
/// rotation/flip stream remains as a filler when the orbit stream is
/// shorter than the worker count.
fn portfolio_transforms(compact: &SparseState, workers: usize) -> Vec<StateTransform> {
    let n = compact.num_qubits();
    let identity = StateTransform::identity(n);
    let mut chosen = vec![identity];
    if workers <= 1 || n == 0 {
        return chosen;
    }
    let mut seen: HashSet<SearchState> = HashSet::new();
    seen.insert(SearchState::from_state(compact));

    let entries: Vec<(u64, u64)> = compact
        .iter()
        .map(|(index, amplitude)| (index.value(), amplitude.to_bits()))
        .collect();
    let orbit_candidates =
        qsp_state::pipeline::orbit_variant_transforms(n, &entries, workers.saturating_mul(4))
            .into_iter()
            .map(|(perm, mask)| StateTransform { perm, mask });

    for candidate in orbit_candidates.chain(candidate_transforms(n)) {
        if chosen.len() >= workers {
            break;
        }
        let Ok(variant) = candidate.apply_to_state(compact) else {
            continue;
        };
        if seen.insert(SearchState::from_state(&variant)) {
            chosen.push(candidate);
        }
    }
    chosen
}

/// The deterministic legacy candidate stream filling the portfolio when the
/// orbit stream runs short: single-qubit flips first, then qubit rotations,
/// then rotation × flip combinations, then the remaining flip masks.
fn candidate_transforms(n: usize) -> Vec<StateTransform> {
    let rotation = |r: usize| -> Vec<usize> { (0..n).map(|i| (i + r) % n).collect() };
    let mut candidates = Vec::new();
    for q in 0..n {
        candidates.push(StateTransform {
            perm: (0..n).collect(),
            mask: 1u64 << q,
        });
    }
    for r in 1..n {
        candidates.push(StateTransform {
            perm: rotation(r),
            mask: 0,
        });
    }
    for r in 1..n {
        for q in 0..n {
            candidates.push(StateTransform {
                perm: rotation(r),
                mask: 1u64 << q,
            });
        }
    }
    if n <= 10 {
        for mask in 1..(1u64 << n) {
            if mask.count_ones() > 1 {
                candidates.push(StateTransform {
                    perm: (0..n).collect(),
                    mask,
                });
            }
        }
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_sim::verify_preparation;
    use qsp_state::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn transform_application_matches_index_map() {
        let state = generators::w_state(3).unwrap();
        let t = StateTransform {
            perm: vec![2, 0, 1],
            mask: 0b011,
        };
        let transformed = t.apply_to_state(&state).unwrap();
        for (index, amplitude) in state.iter() {
            let mapped = t.apply(index.value());
            assert!(
                (transformed.amplitude(BasisIndex::new(mapped)) - amplitude).abs() < 1e-12,
                "index {index:?} did not map to {mapped}"
            );
        }
        assert!(StateTransform::identity(3).is_identity());
        assert!(!t.is_identity());
    }

    #[test]
    fn portfolio_variants_are_distinct_and_identity_first() {
        let asym = qsp_state::SparseState::uniform_superposition(
            4,
            [0b0001u64, 0b0011, 0b0111].map(BasisIndex::new),
        )
        .unwrap();
        let transforms = portfolio_transforms(&asym, 6);
        assert_eq!(transforms.len(), 6);
        assert!(transforms[0].is_identity());
        let mut states = HashSet::new();
        for t in &transforms {
            let variant = t.apply_to_state(&asym).unwrap();
            assert!(states.insert(SearchState::from_state(&variant)));
        }
    }

    #[test]
    fn symmetric_targets_shrink_the_portfolio() {
        // GHZ is invariant under every qubit permutation; only flip variants
        // produce distinct search states.
        let ghz = generators::ghz(3).unwrap();
        let transforms = portfolio_transforms(&ghz, 64);
        assert!(transforms.len() > 1);
        assert!(transforms.len() < 64);
    }

    #[test]
    fn portfolio_cost_is_bit_identical_to_sequential() {
        let mut rng = StdRng::seed_from_u64(2024);
        let sequential = SolverEngine::new(SearchConfig::default());
        let portfolio = SolverEngine::new(SearchConfig::portfolio(4));
        let mut targets = vec![
            generators::ghz(4).unwrap(),
            generators::w_state(4).unwrap(),
            generators::dicke(4, 2).unwrap(),
        ];
        for _ in 0..6 {
            targets.push(generators::random_uniform_state(4, 6, &mut rng).unwrap());
        }
        for target in &targets {
            let seq = sequential.synthesize(target).unwrap();
            let par = portfolio.synthesize(target).unwrap();
            assert_eq!(
                seq.cnot_cost, par.cnot_cost,
                "portfolio cost diverged on {target}"
            );
            let report = verify_preparation(&par.circuit, target).unwrap();
            assert!(
                report.is_correct(),
                "portfolio circuit does not prepare the target"
            );
            assert!(par.stats.variants >= 1);
        }
    }

    #[test]
    fn portfolio_handles_trivial_targets() {
        let engine = SolverEngine::new(SearchConfig::portfolio(4));
        let ground = qsp_state::SparseState::ground_state(3).unwrap();
        let outcome = engine.synthesize(&ground).unwrap();
        assert_eq!(outcome.cnot_cost, 0);
        assert_eq!(outcome.stats.variants, 1);
    }
}
