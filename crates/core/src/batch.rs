//! The parallel batch-synthesis engine.
//!
//! A production deployment does not prepare one state at a time: it receives
//! *many* targets, and a large fraction of them are equivalent to each other
//! under the zero-cost operations of Sec. V-B (qubit relabelling and Pauli-X
//! "negation" flips). [`BatchSynthesizer`] exploits both observations:
//!
//! * **Parallelism** — targets are fanned out over a scoped worker pool
//!   (`std::thread`; the offline build has no rayon, so the pool is a small
//!   work-stealing loop over an atomic index).
//! * **Canonical deduplication** — every target is reduced to an
//!   amplitude-aware canonical key together with the *witness transform*
//!   (qubit permutation + X-flip mask) that maps the target onto the
//!   canonical representative. Targets sharing a key are solved **once**;
//!   every other member of the class gets its circuit reconstructed from the
//!   solved one by relabelling qubits and appending zero-CNOT-cost X gates,
//!   so the reconstructed circuit has exactly the same CNOT cost.
//! * **A shared concurrent cache** — solved classes are kept in an
//!   `Arc<Mutex<HashMap>>` that is shared across worker threads *and* across
//!   batches submitted to the same synthesizer, so repeat traffic never
//!   reaches the solver again.
//!
//! Determinism: a target that is solved fresh goes through the exact same
//! [`QspWorkflow`] as a sequential call, so its circuit is bit-identical to a
//! per-target run; a target that hits the cache with the *identical* state
//! reuses the stored circuit unchanged (the witness composition is the
//! identity).
//!
//! # Example
//!
//! ```
//! use qsp_core::batch::{BatchSynthesizer, DedupPolicy};
//! use qsp_state::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let targets = vec![
//!     generators::ghz(4)?,
//!     generators::w_state(4)?,
//!     generators::ghz(4)?, // duplicate: solved once, served from cache
//! ];
//! let engine = BatchSynthesizer::new();
//! let outcome = engine.synthesize_batch(&targets);
//! assert_eq!(outcome.stats.targets, 3);
//! assert_eq!(outcome.stats.solver_runs, 2);
//! assert_eq!(outcome.stats.cache_hits, 1);
//! let ghz_circuit = outcome.results[0].as_ref().unwrap();
//! assert_eq!(ghz_circuit.cnot_cost(), 3);
//! # Ok(())
//! # }
//! ```

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use qsp_circuit::{Circuit, Gate};
use qsp_state::canonical::for_each_permutation;
use qsp_state::{BasisIndex, QuantumState, SparseState};

use crate::error::SynthesisError;
use crate::workflow::{QspWorkflow, WorkflowConfig};

/// Exhaustive enumeration limits for the canonical-key search. Wider
/// registers fall back to the identity permutation and *greedy* flips (one
/// candidate per qubit instead of `2^n` masks) — still deterministic and
/// sound, just compressing less. The limits are deliberately tight: keying
/// must stay far cheaper than the solves it deduplicates, and for sparse
/// workloads the workflow solves an `n`-qubit target in tens of
/// microseconds.
const EXHAUSTIVE_PERMUTATION_QUBITS: usize = 5;
const EXHAUSTIVE_FLIP_QUBITS: usize = 6;

/// How aggressively the batch engine deduplicates targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DedupPolicy {
    /// No deduplication: every target is solved independently (still in
    /// parallel).
    Off,
    /// Deduplicate exactly identical states only.
    Exact,
    /// Deduplicate the Sec. V-B equivalence class: states identical up to
    /// qubit permutation and Pauli-X flips are solved once. Coverage is
    /// width-bounded to keep keying cheap: the full permutation × flip space
    /// is searched up to 5 qubits, flips alone up to 6, and a greedy flip
    /// canonicalization beyond — wider equivalent-but-not-identical targets
    /// may therefore be solved separately (exact duplicates always hit).
    #[default]
    Canonical,
}

/// Tunables of the batch engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOptions {
    /// Worker threads; `0` uses the machine's available parallelism.
    pub threads: usize,
    /// Deduplication policy.
    pub dedup: DedupPolicy,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            threads: 0,
            dedup: DedupPolicy::Canonical,
        }
    }
}

/// Aggregate statistics of one batch run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Number of targets submitted.
    pub targets: usize,
    /// Number of fresh solver (workflow) invocations.
    pub solver_runs: usize,
    /// Number of targets served from the cache (exact or canonical hits,
    /// including duplicates within the batch and hits from earlier batches).
    pub cache_hits: usize,
    /// Number of targets that failed (conversion or synthesis error).
    pub errors: usize,
    /// Wall-clock time of the whole batch call.
    pub elapsed: Duration,
}

/// The result of one batch run: per-target circuits in submission order plus
/// aggregate statistics.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One entry per submitted target, in order.
    pub results: Vec<Result<Circuit, SynthesisError>>,
    /// Aggregate statistics.
    pub stats: BatchStats,
}

/// A keyed target: canonical key, witness transform, and the (possibly
/// borrowed) sparse view the solver runs on.
type KeyedTarget<'a> = Result<(BatchKey, StateTransform, Cow<'a, SparseState>), SynthesisError>;

/// An amplitude-aware state fingerprint: `(index, amplitude bits)` sorted by
/// index, plus the register width.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BatchKey {
    num_qubits: usize,
    entries: Vec<(u64, u64)>,
}

/// A zero-cost transform `t(x) = permute(x, perm) ^ mask` mapping a target
/// state onto its canonical representative (index-wise; amplitudes ride
/// along unchanged).
#[derive(Debug, Clone, PartialEq, Eq)]
struct StateTransform {
    perm: Vec<usize>,
    mask: u64,
}

impl StateTransform {
    fn identity(num_qubits: usize) -> Self {
        StateTransform {
            perm: (0..num_qubits).collect(),
            mask: 0,
        }
    }

    fn apply(&self, index: u64) -> u64 {
        BasisIndex::new(index).permute(&self.perm).value() ^ self.mask
    }

    /// The inverse permutation array: `inv[perm[q]] = q`.
    fn inverse_perm(perm: &[usize]) -> Vec<usize> {
        let mut inv = vec![0usize; perm.len()];
        for (q, &p) in perm.iter().enumerate() {
            inv[p] = q;
        }
        inv
    }
}

/// Permutes the bits of a mask: bit `i` of the result is bit `perm[i]` of
/// `mask` (same convention as [`BasisIndex::permute`]).
fn permute_mask(mask: u64, perm: &[usize]) -> u64 {
    BasisIndex::new(mask).permute(perm).value()
}

/// Builds the raw `(index, amplitude bits)` fingerprint of a sparse state.
fn raw_entries(state: &SparseState) -> Vec<(u64, u64)> {
    state
        .iter()
        .map(|(index, amplitude)| (index.value(), amplitude.to_bits()))
        .collect()
}

fn transformed_entries(base: &[(u64, u64)], transform: &StateTransform) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = base
        .iter()
        .map(|&(index, amp)| (transform.apply(index), amp))
        .collect();
    out.sort_unstable();
    out
}

/// Computes the canonical key of a state together with the witness transform
/// mapping the state onto the key's entries.
fn canonicalize(state: &SparseState, policy: DedupPolicy) -> (BatchKey, StateTransform) {
    let n = state.num_qubits();
    let base = raw_entries(state);
    let identity = StateTransform::identity(n);
    if matches!(policy, DedupPolicy::Off | DedupPolicy::Exact) {
        let mut entries = base;
        entries.sort_unstable();
        return (
            BatchKey {
                num_qubits: n,
                entries,
            },
            identity,
        );
    }

    let mut best_entries = transformed_entries(&base, &identity);
    let mut best_transform = identity;

    fn consider(
        base: &[(u64, u64)],
        transform: StateTransform,
        best_entries: &mut Vec<(u64, u64)>,
        best_transform: &mut StateTransform,
    ) {
        let candidate = transformed_entries(base, &transform);
        if candidate < *best_entries {
            *best_entries = candidate;
            *best_transform = transform;
        }
    }

    if n <= EXHAUSTIVE_PERMUTATION_QUBITS {
        for_each_permutation(n, &mut |perm| {
            for mask in 0u64..(1u64 << n) {
                consider(
                    &base,
                    StateTransform {
                        perm: perm.to_vec(),
                        mask,
                    },
                    &mut best_entries,
                    &mut best_transform,
                );
            }
        });
    } else if n <= EXHAUSTIVE_FLIP_QUBITS {
        for mask in 0u64..(1u64 << n) {
            consider(
                &base,
                StateTransform {
                    perm: (0..n).collect(),
                    mask,
                },
                &mut best_entries,
                &mut best_transform,
            );
        }
    } else {
        // Greedy flips: flip each qubit if it lowers the fingerprint.
        for qubit in 0..n {
            consider(
                &base,
                StateTransform {
                    perm: (0..n).collect(),
                    mask: best_transform.mask ^ (1u64 << qubit),
                },
                &mut best_entries,
                &mut best_transform,
            );
        }
    }

    (
        BatchKey {
            num_qubits: n,
            entries: best_entries,
        },
        best_transform,
    )
}

/// Reconstructs the circuit for a target from the solved circuit of another
/// member of the same canonical class.
///
/// `solved_transform` maps the solved state onto the canonical
/// representative, `target_transform` maps the target onto the same
/// representative. The reconstruction relabels the solved circuit's qubits
/// and appends an X layer — both zero CNOT cost, so the reconstructed
/// circuit's CNOT cost equals the solved one's.
fn reconstruct_circuit(
    solved: &Circuit,
    solved_transform: &StateTransform,
    target_transform: &StateTransform,
) -> Result<Circuit, SynthesisError> {
    let n = target_transform.perm.len();
    // Combined index map from the solved state A to the target B:
    //   i_B = inv(t_B)(t_A(i_A)) = permute(i_A, r) ^ m
    // with r[i] = p_A[inv_B[i]] and m = permute_mask(m_A ^ m_B, inv_B).
    let inv_b = StateTransform::inverse_perm(&target_transform.perm);
    let r: Vec<usize> = (0..n).map(|i| solved_transform.perm[inv_b[i]]).collect();
    let mask = permute_mask(solved_transform.mask ^ target_transform.mask, &inv_b);

    if r.iter().enumerate().all(|(i, &v)| i == v) && mask == 0 {
        return Ok(solved.clone());
    }

    // A circuit remapped by `sigma` prepares the permuted state with
    // bit sigma(q) = bit q of the original; matching `permute(·, r)` needs
    // sigma = r^{-1}.
    let sigma = StateTransform::inverse_perm(&r);
    let mut circuit = solved.remap_qubits(&sigma, n)?;
    for qubit in 0..n {
        if mask & (1u64 << qubit) != 0 {
            circuit.try_push(Gate::x(qubit))?;
        }
    }
    Ok(circuit)
}

/// A minimal scoped-thread parallel map (the offline build has no rayon):
/// workers pull indices from an atomic counter and results are reassembled
/// in input order.
fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in chunks.into_iter().flatten() {
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every index was processed"))
        .collect()
}

/// One solved canonical class: the circuit of the first-seen member and the
/// witness transform of that member.
#[derive(Debug)]
struct CacheEntry {
    circuit: Result<Circuit, SynthesisError>,
    transform: StateTransform,
}

type SharedCache = Arc<Mutex<HashMap<BatchKey, Arc<CacheEntry>>>>;

/// The parallel, deduplicating batch front door to the preparation workflow.
///
/// See the [module docs](self) for the architecture. The synthesizer is
/// cheap to clone; clones share the same cache.
#[derive(Debug, Clone, Default)]
pub struct BatchSynthesizer {
    config: WorkflowConfig,
    options: BatchOptions,
    cache: SharedCache,
}

impl BatchSynthesizer {
    /// Creates a batch synthesizer with the paper's workflow defaults and
    /// canonical deduplication.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a batch synthesizer with custom workflow and batch options.
    pub fn with_options(config: WorkflowConfig, options: BatchOptions) -> Self {
        BatchSynthesizer {
            config,
            options,
            cache: Arc::default(),
        }
    }

    /// The active batch options.
    pub fn options(&self) -> &BatchOptions {
        &self.options
    }

    /// Number of solved canonical classes currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("cache poisoned").len()
    }

    /// Drops every cached solution.
    pub fn clear_cache(&self) {
        self.cache.lock().expect("cache poisoned").clear();
    }

    fn thread_count(&self) -> usize {
        if self.options.threads > 0 {
            self.options.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Synthesizes preparation circuits for every target, in parallel,
    /// solving each canonical equivalence class once.
    ///
    /// Results are returned in submission order; a failing target yields an
    /// `Err` entry without affecting the others.
    pub fn synthesize_batch<S: QuantumState + Sync>(&self, targets: &[S]) -> BatchOutcome {
        let start = std::time::Instant::now();
        let threads = self.thread_count();

        // Phase 1 (parallel): get a sparse view (zero-copy for sparse
        // backends) and compute canonical keys. The closure indexes
        // `targets` directly (rather than using its `&S` argument) so the
        // returned Cow can borrow for the whole batch.
        let keyed: Vec<KeyedTarget<'_>> = par_map(targets, threads, |i, _| {
            let sparse = targets[i].as_sparse()?;
            let (key, transform) = canonicalize(sparse.as_ref(), self.options.dedup);
            Ok((key, transform, sparse))
        });

        // Phase 2 (sequential): plan which targets need a fresh solve. With
        // dedup off, every valid target is solved independently.
        let mut to_solve: Vec<usize> = Vec::new();
        let mut reused = vec![false; targets.len()];
        {
            let cache = self.cache.lock().expect("cache poisoned");
            let mut planned: std::collections::HashSet<&BatchKey> =
                std::collections::HashSet::new();
            for (i, entry) in keyed.iter().enumerate() {
                let Ok((key, _, _)) = entry else { continue };
                if self.options.dedup == DedupPolicy::Off {
                    to_solve.push(i);
                } else if cache.contains_key(key) || planned.contains(key) {
                    reused[i] = true;
                } else {
                    planned.insert(key);
                    to_solve.push(i);
                }
            }
        }

        // Phase 3 (parallel): solve one representative per class and publish
        // it to the shared cache as soon as it is ready.
        let workflow = QspWorkflow::with_config(self.config);
        let solved: Vec<(usize, Arc<CacheEntry>)> = par_map(&to_solve, threads, |_, &i| {
            let (key, transform, sparse) = keyed[i].as_ref().expect("planned targets are valid");
            let entry = Arc::new(CacheEntry {
                circuit: workflow.synthesize(sparse.as_ref()),
                transform: transform.clone(),
            });
            if self.options.dedup != DedupPolicy::Off {
                self.cache
                    .lock()
                    .expect("cache poisoned")
                    .insert(key.clone(), Arc::clone(&entry));
            }
            (i, entry)
        });
        let own_solution: HashMap<usize, Arc<CacheEntry>> = solved.into_iter().collect();

        // Phase 4 (parallel): assemble per-target circuits. Freshly solved
        // targets take their own circuit; cache hits reconstruct through the
        // witness transforms (identity composition ⇒ identical circuit).
        let results: Vec<Result<Circuit, SynthesisError>> =
            par_map(targets, threads, |i, _| match &keyed[i] {
                Err(e) => Err(e.clone()),
                Ok((key, transform, _)) => {
                    let entry = match own_solution.get(&i) {
                        Some(entry) => Arc::clone(entry),
                        None => {
                            let cache = self.cache.lock().expect("cache poisoned");
                            Arc::clone(cache.get(key).expect("planned or cached"))
                        }
                    };
                    match &entry.circuit {
                        Err(e) => Err(e.clone()),
                        Ok(circuit) => reconstruct_circuit(circuit, &entry.transform, transform),
                    }
                }
            });

        let errors = results.iter().filter(|r| r.is_err()).count();
        let stats = BatchStats {
            targets: targets.len(),
            solver_runs: to_solve.len(),
            cache_hits: reused.iter().filter(|&&r| r).count(),
            errors,
            elapsed: start.elapsed(),
        };
        BatchOutcome { results, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_state::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn verify(circuit: &Circuit, target: &SparseState) {
        let report = qsp_sim::verify_preparation(circuit, target).expect("simulates");
        assert!(
            report.is_correct(),
            "batch circuit does not prepare the target (fidelity {})",
            report.fidelity
        );
    }

    #[test]
    fn transform_round_trips_indices() {
        let t = StateTransform {
            perm: vec![2, 0, 1, 3],
            mask: 0b0101,
        };
        let inv = StateTransform::inverse_perm(&t.perm);
        for index in 0u64..16 {
            let forward = t.apply(index);
            let back = BasisIndex::new(forward ^ t.mask).permute(&inv).value();
            assert_eq!(back, index);
        }
    }

    #[test]
    fn canonical_keys_identify_equivalent_states() {
        let ghz = generators::ghz(4).unwrap();
        // A permuted and flipped GHZ: |0101> + |1010>.
        let variant = ghz
            .permute_qubits(&[1, 0, 3, 2])
            .unwrap()
            .apply_x(0)
            .unwrap()
            .apply_x(2)
            .unwrap();
        let (key_a, _) = canonicalize(&ghz, DedupPolicy::Canonical);
        let (key_b, _) = canonicalize(&variant, DedupPolicy::Canonical);
        assert_eq!(key_a, key_b);
        // Exact policy distinguishes them.
        let (exact_a, _) = canonicalize(&ghz, DedupPolicy::Exact);
        let (exact_b, _) = canonicalize(&variant, DedupPolicy::Exact);
        assert_ne!(exact_a, exact_b);
        // A genuinely different state gets a different canonical key.
        let (key_w, _) = canonicalize(&generators::w_state(4).unwrap(), DedupPolicy::Canonical);
        assert_ne!(key_a, key_w);
    }

    #[test]
    fn reconstruction_prepares_the_equivalent_target() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..8 {
            let base = generators::random_uniform_state(4, 5, &mut rng).unwrap();
            let variant = base
                .permute_qubits(&[3, 1, 0, 2])
                .unwrap()
                .apply_x(1)
                .unwrap();
            let (key_a, t_a) = canonicalize(&base, DedupPolicy::Canonical);
            let (key_b, t_b) = canonicalize(&variant, DedupPolicy::Canonical);
            assert_eq!(key_a, key_b);
            let solved = QspWorkflow::new().synthesize(&base).unwrap();
            verify(&solved, &base);
            let reconstructed = reconstruct_circuit(&solved, &t_a, &t_b).unwrap();
            verify(&reconstructed, &variant);
            assert_eq!(reconstructed.cnot_cost(), solved.cnot_cost());
        }
    }

    #[test]
    fn exact_duplicates_reuse_the_identical_circuit() {
        let targets = vec![
            generators::dicke(4, 2).unwrap(),
            generators::ghz(4).unwrap(),
            generators::dicke(4, 2).unwrap(),
        ];
        let engine = BatchSynthesizer::new();
        let outcome = engine.synthesize_batch(&targets);
        assert_eq!(outcome.stats.solver_runs, 2);
        assert_eq!(outcome.stats.cache_hits, 1);
        assert_eq!(outcome.stats.errors, 0);
        let first = outcome.results[0].as_ref().unwrap();
        let third = outcome.results[2].as_ref().unwrap();
        assert_eq!(
            first, third,
            "duplicate targets must get identical circuits"
        );
    }

    #[test]
    fn cache_persists_across_batches() {
        let engine = BatchSynthesizer::new();
        let first = engine.synthesize_batch(&[generators::ghz(3).unwrap()]);
        assert_eq!(first.stats.solver_runs, 1);
        assert_eq!(engine.cache_len(), 1);
        let second = engine.synthesize_batch(&[generators::ghz(3).unwrap()]);
        assert_eq!(second.stats.solver_runs, 0);
        assert_eq!(second.stats.cache_hits, 1);
        assert_eq!(
            first.results[0].as_ref().unwrap(),
            second.results[0].as_ref().unwrap()
        );
        engine.clear_cache();
        assert_eq!(engine.cache_len(), 0);
    }

    #[test]
    fn dedup_off_solves_every_target() {
        let targets = vec![generators::ghz(3).unwrap(), generators::ghz(3).unwrap()];
        let engine = BatchSynthesizer::with_options(
            WorkflowConfig::default(),
            BatchOptions {
                threads: 2,
                dedup: DedupPolicy::Off,
            },
        );
        let outcome = engine.synthesize_batch(&targets);
        assert_eq!(outcome.stats.solver_runs, 2);
        assert_eq!(outcome.stats.cache_hits, 0);
        assert_eq!(engine.cache_len(), 0);
    }

    #[test]
    fn errors_are_per_target() {
        let negative = SparseState::from_amplitudes(
            2,
            [(BasisIndex::new(0), 0.6), (BasisIndex::new(3), -0.8)],
        )
        .unwrap();
        let targets = vec![generators::ghz(2).unwrap(), negative];
        let outcome = BatchSynthesizer::new().synthesize_batch(&targets);
        assert!(outcome.results[0].is_ok());
        assert!(outcome.results[1].is_err());
        assert_eq!(outcome.stats.errors, 1);
    }
}
