//! The parallel batch-synthesis engine.
//!
//! A production deployment does not prepare one state at a time: it receives
//! *many* targets, and a large fraction of them are equivalent to each other
//! under the zero-cost operations of Sec. V-B (qubit relabelling and Pauli-X
//! "negation" flips). [`BatchSynthesizer`] exploits both observations:
//!
//! * **Parallelism** — targets are fanned out over a scoped worker pool
//!   (`std::thread`; the offline build has no rayon, so the pool is a small
//!   work-stealing loop over an atomic index).
//! * **Canonical deduplication, tiered** — every target is reduced to an
//!   amplitude-aware canonical key together with the *witness transform*
//!   (qubit permutation + X-flip mask) that maps the target onto the
//!   canonical representative. Keying runs through the *tiered* fast path
//!   ([`qsp_state::pipeline::key_tiered`]): a per-engine signature interner
//!   resolves targets whose cheap stage-0 signature is either fresh or an
//!   exact repeat without ever enumerating permutations; only genuine
//!   signature collisions pay for full canonicalization. Targets sharing a
//!   key are solved **once**; every other member of the class gets its
//!   circuit reconstructed from the solved one by relabelling qubits and
//!   appending zero-CNOT-cost X gates, so the reconstructed circuit has
//!   exactly the same CNOT cost. The key also folds in the request's
//!   cost-relevant **options fingerprint**
//!   ([`crate::api::cost_fingerprint`]), so per-request solver overrides can
//!   never dedup across different effective configurations.
//! * **Support-pattern class templates** — a fresh solve whose circuit sits
//!   exactly on the entanglement lower bound donates its reduction *recipe*
//!   (gate structure without angles) to a per-support-class template store
//!   in the cache. A later target with the same support pattern but
//!   different amplitudes skips the A* search entirely: the recipe is
//!   replayed against its own amplitudes through the angle-replay stage
//!   (self-validating — a replay that does not reach the ground state falls
//!   back to a fresh solve), and the instantiation is accepted only when it
//!   also sits exactly on the bound, so its CNOT cost is bit-for-bit what a
//!   fresh solve would have produced. Such requests report
//!   [`Provenance::TemplateInstantiated`].
//! * **A sharded, eviction-aware cache** — solved classes live in a
//!   [`ShardedCache`]: N-way sharded by key hash
//!   (no global lock on the hot path), optionally size-bounded with LRU
//!   eviction, shared across worker threads *and* across batches, and
//!   persistable as a JSON warm-start snapshot for cross-process reuse
//!   ([`BatchSynthesizer::save_cache_snapshot`] /
//!   [`BatchSynthesizer::load_cache_snapshot`]). Per-request
//!   [`CachePolicy`] decides whether a request reads and/or publishes.
//!
//! Within one batch, followers of a canonical class resolve through the
//! representative solved *in that batch* rather than through the cache, so
//! eviction between the solve and assembly phases can never lose an entry a
//! result still needs.
//!
//! Determinism: a target that is solved fresh goes through the exact same
//! [`QspWorkflow`] as a sequential call, so its circuit is bit-identical to a
//! per-target run; a target that hits the cache with the *identical* state
//! reuses the stored circuit unchanged (the witness composition is the
//! identity).
//!
//! # Example
//!
//! ```
//! use qsp_core::api::{Provenance, SynthesisRequest};
//! use qsp_core::batch::BatchSynthesizer;
//! use qsp_state::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let requests = vec![
//!     SynthesisRequest::new(generators::ghz(4)?),
//!     SynthesisRequest::new(generators::w_state(4)?),
//!     SynthesisRequest::new(generators::ghz(4)?), // duplicate: solved once
//! ];
//! let engine = BatchSynthesizer::new();
//! let outcome = engine.synthesize_requests(&requests);
//! assert_eq!(outcome.stats.targets, 3);
//! assert_eq!(outcome.stats.solver_runs, 2);
//! assert_eq!(outcome.stats.cache_hits, 1);
//! let ghz = outcome.reports[0].as_ref().unwrap();
//! assert_eq!(ghz.cnot_cost, 3);
//! assert!(matches!(ghz.provenance, Provenance::Solved));
//! let duplicate = outcome.reports[2].as_ref().unwrap();
//! assert_eq!(duplicate.cnot_cost, 3);
//! assert!(matches!(
//!     duplicate.provenance,
//!     Provenance::ReconstructedFromBatchRep { .. }
//! ));
//! # Ok(())
//! # }
//! ```

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qsp_circuit::Circuit;
use qsp_obs::{
    Counter, ObsHub, ObsOptions, RequestTrace, SearchProbe, SolveFlight, SpanKind, TraceId,
};
use qsp_state::pipeline::{self, KeyCoverage, PipelineOptions};
use qsp_state::{QuantumState, SparseState};

use crate::api::{
    CachePolicy, Provenance, RequestOptions, ResolvedConfig, StageTimings, SynthesisReport,
    SynthesisRequest, Synthesizer,
};
use crate::cache::{CacheEntry, CacheStats, CircuitTemplate, ClassKey, EntryOrigin, ShardedCache};
use crate::engine::{compact_state, permute_mask, reconstruct_circuit, StateTransform};
use crate::error::SynthesisError;
use crate::exact::replay_reduction;
use crate::search::config::CacheConfig;
use crate::workflow::{QspWorkflow, WorkflowConfig};

/// How aggressively the batch engine deduplicates targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DedupPolicy {
    /// No deduplication: every target is solved independently (still in
    /// parallel). The cache is bypassed entirely.
    Off,
    /// Deduplicate exactly identical states only.
    Exact,
    /// Deduplicate the Sec. V-B equivalence class: states identical up to
    /// qubit permutation and Pauli-X flips are solved once, through the
    /// staged invariant pipeline of [`qsp_state::pipeline`]. Keying is
    /// *tiered* ([`qsp_state::pipeline::key_tiered`]): the engine interns
    /// stage-0 signatures, so a target whose signature is fresh — or an
    /// exact raw repeat of an interned anchor — keys on the signature alone
    /// ([`BatchStats::keys_sig_fast_path`]) without enumerating any
    /// permutations; only genuine signature collisions run full
    /// canonicalization. The full tier's coverage is bounded by work, not
    /// width: permutations are enumerated within the per-qubit color
    /// *orbits* (`∏ |orbit|!` candidates instead of `n!`) under
    /// [`BatchOptions::orbit_node_budget`] with a lazy branch-and-bound
    /// over orbit blocks, and the optimal flip mask is found exactly among
    /// the `m` support indices (up to
    /// [`qsp_state::pipeline::EXHAUSTIVE_FLIP_CARDINALITY`]). Targets
    /// whose orbit enumeration still exhausts the budget fall back to a
    /// deterministic greedy key — still sound, possibly solving equivalent
    /// wide targets separately (exact duplicates always hit). The
    /// [`BatchStats::keys_greedy`] counter makes that degradation
    /// observable.
    #[default]
    Canonical,
}

/// A target's canonical class as computed by the keying pipeline: the cache
/// key (signature + canonical entries + options fingerprint), the witness
/// transform mapping the target onto the key's entries, and the coverage
/// class of the search that produced it.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct KeyedClass {
    /// The canonical class key (what the cache and in-flight tables index
    /// on).
    pub key: ClassKey,
    /// The witness transform mapping *this target* onto the key's entries.
    pub transform: StateTransform,
    /// Which pipeline path produced the key (exhaustive / orbit-pruned /
    /// greedy) — the dedup-coverage observability signal.
    pub coverage: KeyCoverage,
}

/// Tunables of the batch engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct BatchOptions {
    /// Worker threads; `0` uses the machine's available parallelism.
    pub threads: usize,
    /// Deduplication policy.
    pub dedup: DedupPolicy,
    /// Sharding and eviction policy of the canonical cache.
    pub cache: CacheConfig,
    /// Budget on `(permutation, flip-mask)` candidates the canonical keying
    /// pipeline may enumerate per target before degrading to the greedy key
    /// (see [`DedupPolicy::Canonical`]). Keying must stay far cheaper than
    /// the solves it deduplicates; raise this for workloads dominated by
    /// wide, highly symmetric targets whose solves are expensive.
    pub orbit_node_budget: usize,
    /// Observability options of the engine's [`ObsHub`]: per-request ring
    /// tracing, the solver flight recorder and cache probe/evict timing are
    /// all opt-in here; the metrics registry is always on.
    pub obs: ObsOptions,
}

impl BatchOptions {
    /// Sets the worker-thread count (`0` = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the deduplication policy.
    pub fn with_dedup(mut self, dedup: DedupPolicy) -> Self {
        self.dedup = dedup;
        self
    }

    /// Sets the cache sharding and eviction policy.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the keying pipeline's orbit node budget (`0` is clamped to `1`).
    pub fn with_orbit_node_budget(mut self, budget: usize) -> Self {
        self.orbit_node_budget = budget.max(1);
        self
    }

    /// Sets the observability options (tracing, flight recorder, timing
    /// detail) of the engine's [`ObsHub`].
    pub fn with_obs(mut self, obs: ObsOptions) -> Self {
        self.obs = obs;
        self
    }
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            threads: 0,
            dedup: DedupPolicy::Canonical,
            cache: CacheConfig::default(),
            orbit_node_budget: pipeline::DEFAULT_ORBIT_NODE_BUDGET,
            obs: ObsOptions::default(),
        }
    }
}

/// Aggregate statistics of one batch run.
///
/// These are *per-run* numbers; the same increments also flow into the
/// engine's cumulative [`ObsHub`] metrics registry (`batch.*` counters and
/// the per-width `batch.keying_latency` histograms), so a long-lived engine
/// keeps lifetime totals in [`BatchSynthesizer::obs`] while each run still
/// reports its own slice here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Number of targets submitted.
    pub targets: usize,
    /// Number of fresh solver (workflow) invocations — class
    /// representatives that actually ran the A* search. Representatives
    /// served by template instantiation are counted in
    /// [`BatchStats::template_hits`] instead.
    pub solver_runs: usize,
    /// Class representatives served by replaying a support-pattern class
    /// template with their own amplitudes instead of a fresh A* search.
    pub template_hits: usize,
    /// Number of targets served without a fresh solve (within-batch
    /// canonical duplicates plus hits from earlier batches or a loaded
    /// snapshot).
    pub cache_hits: usize,
    /// Number of targets that failed (conversion or synthesis error).
    pub errors: usize,
    /// Targets keyed over the *full* permutation × flip space (a single
    /// color orbit spanning the register, within budget) — plus every
    /// target keyed under [`DedupPolicy::Exact`]/[`DedupPolicy::Off`],
    /// whose identity keys are trivially exhaustive.
    pub keys_exhaustive: usize,
    /// Targets keyed by the orbit-restricted enumeration (same class
    /// partition as exhaustive, exponentially less work).
    pub keys_orbit_pruned: usize,
    /// Targets that exceeded the orbit node budget (or the exact-flip
    /// cardinality bound) and fell back to the greedy key. A rising share
    /// means dedup coverage — not correctness — is degrading; raise
    /// [`BatchOptions::orbit_node_budget`] if these targets' solves are
    /// expensive.
    pub keys_greedy: usize,
    /// Targets keyed on the stage-0 signature alone by the tiered fast
    /// path: their signature was fresh to the engine's interner (or an
    /// exact raw repeat of an interned anchor), so no permutation
    /// enumeration ran at all. The partition is identical to full
    /// canonicalization — collisions always take the full tier.
    pub keys_sig_fast_path: usize,
    /// Worker threads the batch ran on: the configured (or auto-detected)
    /// pool width, capped at the target count — the parallelism the keying
    /// and assembly phases actually used (the solve phase may use fewer
    /// when deduplication leaves fewer representatives than workers).
    pub threads: usize,
    /// Wall-clock time of the whole batch call.
    pub elapsed: Duration,
    /// Time spent computing canonical keys (parallel phase 1).
    pub keying: Duration,
    /// Time spent planning solves against the cache (sequential phase 2).
    pub planning: Duration,
    /// Time spent in fresh workflow solves (parallel phase 3).
    pub solving: Duration,
    /// Time spent assembling per-target circuits (parallel phase 4).
    pub assembly: Duration,
}

/// The result of one batch run over plain targets: per-target circuits in
/// submission order plus aggregate statistics. Produced by the deprecated
/// [`BatchSynthesizer::synthesize_batch`]; the request path returns the
/// report-carrying [`RequestBatchOutcome`] instead.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One entry per submitted target, in order.
    pub results: Vec<Result<Circuit, SynthesisError>>,
    /// Aggregate statistics.
    pub stats: BatchStats,
}

/// The result of one batch run over typed requests: one provenance-rich
/// [`SynthesisReport`] per request, in submission order, plus aggregate
/// statistics.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RequestBatchOutcome {
    /// One report per submitted request, in order.
    pub reports: Vec<Result<SynthesisReport, SynthesisError>>,
    /// Aggregate statistics.
    pub stats: BatchStats,
}

/// One keyed request: the canonical class (key, witness, coverage), the
/// (possibly borrowed) sparse view the solver runs on, the effective
/// per-request configuration and the keying time.
struct Keyed<'a> {
    class: KeyedClass,
    sparse: Cow<'a, SparseState>,
    resolved: ResolvedConfig,
    keying: Duration,
}

/// How one request's circuit will be produced.
enum Plan {
    /// Solve it fresh (it is its class's representative, dedup is off, or
    /// the request bypasses the cache).
    Fresh,
    /// Reuse the in-batch representative at this index.
    Follow(usize),
    /// Reuse an entry found in the cross-batch cache during planning.
    Cached(Arc<CacheEntry>),
    /// Keying failed; the error is reported from the keyed slot.
    Invalid,
}

/// The outcome of probing the template layer for one class representative.
enum TemplateProbe {
    /// Nothing template-shaped to do: the request is not eligible, or the
    /// class already holds a template that cannot serve this member.
    Ineligible,
    /// Eligible but no template yet: solve fresh, then try to capture one
    /// under this support key and witness.
    Miss {
        skey: ClassKey,
        switness: StateTransform,
    },
    /// A template instantiated successfully — the finished circuit, ready
    /// to use in place of a solver run.
    Hit(Circuit),
}

/// Builds the raw `(index, amplitude bits)` fingerprint of a sparse state.
fn raw_entries(state: &SparseState) -> Vec<(u64, u64)> {
    state
        .iter()
        .map(|(index, amplitude)| (index.value(), amplitude.to_bits()))
        .collect()
}

/// Computes the canonical class of a state — key, witness transform and
/// coverage — through the *tiered* invariant pipeline: `keyer` interns
/// stage-0 signatures so unique-signature traffic keys without enumerating
/// permutations, and only signature collisions run full canonicalization
/// (the class partition is identical either way). `options_fp` is the
/// cost-relevant options fingerprint folded into the key (see
/// [`crate::api::cost_fingerprint`]). Under [`DedupPolicy::Off`] /
/// [`DedupPolicy::Exact`] the key is the identity-sorted entry vector
/// (signature zero), which is trivially exhaustive and never touches the
/// interner.
fn canonicalize(
    state: &SparseState,
    policy: DedupPolicy,
    options_fp: u64,
    orbit_node_budget: usize,
    keyer: &pipeline::SignatureInterner,
) -> KeyedClass {
    let n = state.num_qubits();
    let base = raw_entries(state);
    if matches!(policy, DedupPolicy::Off | DedupPolicy::Exact) {
        let mut entries = base;
        entries.sort_unstable();
        return KeyedClass {
            key: ClassKey::new(0, n, entries, options_fp),
            transform: StateTransform::identity(n),
            coverage: KeyCoverage::Exhaustive,
        };
    }

    let options = PipelineOptions::layout_invariant().with_orbit_node_budget(orbit_node_budget);
    let pipeline_key = pipeline::key_tiered(n, &base, &options, keyer);
    KeyedClass {
        key: ClassKey::new(pipeline_key.signature, n, pipeline_key.entries, options_fp),
        transform: StateTransform {
            perm: pipeline_key.perm,
            mask: pipeline_key.mask,
        },
        coverage: pipeline_key.coverage,
    }
}

/// A minimal scoped-thread parallel map over `0..count` (the offline build
/// has no rayon): workers pull indices from an atomic counter and results
/// are reassembled in index order.
fn par_map<R, F>(count: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.clamp(1, count.max(1));
    if threads == 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });
    let mut results: Vec<Option<R>> = (0..count).map(|_| None).collect();
    for (i, r) in chunks.into_iter().flatten() {
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every index was processed"))
        .collect()
}

/// The parallel, deduplicating batch front door to the preparation workflow.
///
/// See the [module docs](self) for the architecture. The synthesizer is
/// cheap to clone; clones share the same cache.
#[derive(Debug, Clone)]
pub struct BatchSynthesizer {
    config: WorkflowConfig,
    options: BatchOptions,
    cache: Arc<ShardedCache>,
    obs: Arc<ObsHub>,
    /// Stage-0 signature interner of the tiered keying fast path. One
    /// interner per engine is sound because every canonical key the engine
    /// computes uses the same [`PipelineOptions`] (fixed by
    /// [`BatchOptions::orbit_node_budget`]); clones share it, like the
    /// cache, so a warm engine keys repeats on the signature alone.
    keyer: Arc<pipeline::SignatureInterner>,
    /// A *separate* interner for support-pattern (amplitude-blanked) class
    /// keys: blanked entries could collide with genuine basis-state
    /// amplitudes if they shared `keyer`'s buckets, which would split the
    /// canonical partition.
    support_keyer: Arc<pipeline::SignatureInterner>,
    /// Hot-path counter handles, resolved once at construction so the
    /// per-request and per-solve paths skip the registry's key hashing and
    /// shard locking. Handles share the registered atomics, so snapshots
    /// see every increment.
    hot: HotCounters,
}

/// The pre-resolved counter handles of [`BatchSynthesizer`]'s hot paths.
#[derive(Debug, Clone)]
struct HotCounters {
    targets: Counter,
    errors: Counter,
    solver_runs: Counter,
    cache_hits: Counter,
    template_hits: Counter,
}

impl HotCounters {
    fn new(obs: &ObsHub) -> Self {
        let metrics = obs.metrics();
        HotCounters {
            targets: metrics.counter("batch.targets", &[]),
            errors: metrics.counter("batch.errors", &[]),
            solver_runs: metrics.counter("batch.solver_runs", &[]),
            cache_hits: metrics.counter("batch.cache_hits", &[]),
            template_hits: metrics.counter("batch.template_hits", &[]),
        }
    }
}

impl Default for BatchSynthesizer {
    fn default() -> Self {
        Self::with_options(WorkflowConfig::default(), BatchOptions::default())
    }
}

impl BatchSynthesizer {
    /// Creates a batch synthesizer with the paper's workflow defaults and
    /// canonical deduplication.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a batch synthesizer with custom workflow and batch options
    /// (including the cache's sharding and eviction policy).
    pub fn with_options(config: WorkflowConfig, options: BatchOptions) -> Self {
        let obs = Arc::new(ObsHub::new(options.obs));
        let cache = Arc::new(ShardedCache::new(options.cache));
        if options.obs.timing_detail {
            cache.attach_obs(
                obs.metrics().histogram("cache.probe_latency", &[]),
                obs.metrics().histogram("cache.evict_latency", &[]),
            );
        }
        let hot = HotCounters::new(obs.as_ref());
        BatchSynthesizer {
            config,
            options,
            cache,
            obs,
            keyer: Arc::new(pipeline::SignatureInterner::new()),
            support_keyer: Arc::new(pipeline::SignatureInterner::new()),
            hot,
        }
    }

    /// The engine's observability hub, shared by clones of this synthesizer:
    /// the always-on metrics registry, the per-request [`qsp_obs::Tracer`]
    /// and the solver [`qsp_obs::FlightRecorder`]. Dump everything at once
    /// with [`qsp_obs::ObsHub::snapshot`].
    pub fn obs(&self) -> &ObsHub {
        &self.obs
    }

    /// The active batch options.
    pub fn options(&self) -> &BatchOptions {
        &self.options
    }

    /// The base workflow configuration requests are resolved against.
    pub fn config(&self) -> &WorkflowConfig {
        &self.config
    }

    /// The underlying sharded cache (shared by clones of this synthesizer).
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// Number of solved canonical classes currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// A snapshot of the cache's hit/miss/insert/evict counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every cached solution.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Persists the solved classes as a JSON warm-start snapshot. Returns
    /// the number of classes written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_cache_snapshot(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<usize> {
        self.cache.save_snapshot(path.as_ref())
    }

    /// Warm-starts the cache from a snapshot produced by
    /// [`BatchSynthesizer::save_cache_snapshot`] (entries flow through the
    /// normal eviction-aware insert path). Returns the number of classes
    /// loaded.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and rejects malformed snapshots.
    pub fn load_cache_snapshot(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<usize> {
        let loaded = self.cache.load_snapshot(path.as_ref())?;
        self.seed_keyer_from_cache();
        Ok(loaded)
    }

    /// Adopts every canonical cache key as a signature-interner anchor, so
    /// traffic equivalent to snapshot-loaded classes keys on the tiered
    /// fast path (and still lands on the loaded entries: the fast-path key
    /// reproduces the anchor's exact entry vector). Exact (signature-zero)
    /// keys never go through the interner and are skipped.
    fn seed_keyer_from_cache(&self) {
        self.cache.for_each_key(|key| {
            if key.signature != 0 {
                self.keyer
                    .adopt(key.num_qubits, key.signature, &key.entries);
            }
        });
    }

    fn thread_count(&self) -> usize {
        if self.options.threads > 0 {
            self.options.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Resolves per-request options against this engine's base workflow
    /// configuration, stamping the cost-relevant options fingerprint.
    pub fn resolve_options(&self, options: &RequestOptions) -> ResolvedConfig {
        options.resolve(&self.config)
    }

    /// The resolved form of an override-free request.
    fn default_resolved(&self) -> ResolvedConfig {
        self.resolve_options(&RequestOptions::default())
    }

    /// Computes the canonical class of a target under this engine's dedup
    /// policy and *default* options: the class key, the witness transform
    /// mapping the target onto the class fingerprint, and the keying
    /// coverage.
    ///
    /// This is the seam the serving layer's in-flight dedup is built on: two
    /// concurrent requests with equal keys can share one solve, and either
    /// request's circuit reconstructs the other's via
    /// [`BatchSynthesizer::reconstruct_for`]. For per-request overrides, use
    /// [`BatchSynthesizer::canonical_class_with`] — the key then carries the
    /// request's options fingerprint, so classes never mix configurations.
    ///
    /// # Errors
    ///
    /// Propagates the sparse-conversion error of unsupported targets.
    pub fn canonical_class<S: QuantumState>(
        &self,
        target: &S,
    ) -> Result<KeyedClass, SynthesisError> {
        self.canonical_class_with(target, &self.default_resolved())
    }

    /// [`BatchSynthesizer::canonical_class`] under an explicit resolved
    /// per-request configuration: the returned key folds in
    /// `resolved.fingerprint`, which is what makes per-request overrides
    /// dedup-sound.
    ///
    /// # Errors
    ///
    /// Propagates the sparse-conversion error of unsupported targets.
    pub fn canonical_class_with<S: QuantumState>(
        &self,
        target: &S,
        resolved: &ResolvedConfig,
    ) -> Result<KeyedClass, SynthesisError> {
        let sparse = target.as_sparse()?;
        Ok(canonicalize(
            sparse.as_ref(),
            self.options.dedup,
            resolved.fingerprint,
            self.options.orbit_node_budget,
            &self.keyer,
        ))
    }

    /// Looks up a solved class in the cross-batch cache (always `None` when
    /// deduplication is off). Counts a cache hit or miss. The key carries
    /// its options fingerprint, so a hit is always configuration-correct.
    pub fn lookup_class(&self, key: &ClassKey) -> Option<Arc<CacheEntry>> {
        if self.options.dedup == DedupPolicy::Off {
            return None;
        }
        self.cache.lookup(key)
    }

    /// Solves one class representative through the workflow under the
    /// engine's default configuration and publishes it to the cache (unless
    /// deduplication is off). See [`BatchSynthesizer::solve_class_with`].
    pub fn solve_class(
        &self,
        key: &ClassKey,
        transform: &StateTransform,
        target: &SparseState,
    ) -> Arc<CacheEntry> {
        self.solve_class_with(key, transform, target, &self.default_resolved())
    }

    /// Solves one class representative through the workflow under an
    /// explicit resolved configuration. `transform` must be the witness
    /// returned by [`BatchSynthesizer::canonical_class_with`] for `target`
    /// under the same resolved config (the key's fingerprint and the solve's
    /// configuration must agree — that pairing is the dedup-soundness
    /// invariant). The entry is published to the cache only when
    /// deduplication is on *and* the request's [`CachePolicy`] is
    /// [`CachePolicy::Use`]. A synthesis failure is cached too (so repeated
    /// bad requests fail fast) but is never persisted to snapshots.
    pub fn solve_class_with(
        &self,
        key: &ClassKey,
        transform: &StateTransform,
        target: &SparseState,
        resolved: &ResolvedConfig,
    ) -> Arc<CacheEntry> {
        let template_probe = self.probe_template(target, resolved);
        if let TemplateProbe::Hit(circuit) = template_probe {
            self.hot.template_hits.inc();
            let entry = Arc::new(CacheEntry {
                circuit: Ok(circuit),
                transform: transform.clone(),
                origin: EntryOrigin::Template,
            });
            if self.options.dedup != DedupPolicy::Off && resolved.cache == CachePolicy::Use {
                self.cache.insert(key.clone(), Arc::clone(&entry));
            }
            return entry;
        }

        let workflow = QspWorkflow::with_config(resolved.workflow);
        let solved = if self.obs.flight().enabled() {
            // Flight-recorded solve: every A* worker of this class reports
            // into one shared probe, and the finished record is ranked by
            // duration in the recorder.
            let probe = SearchProbe::new();
            let solve_start = Instant::now();
            let solved = workflow.run_with_plan(target, Some(&probe));
            self.obs.flight().record(SolveFlight::from_probe(
                format!("n{}/sig{:016x}", target.num_qubits(), key.signature()),
                &probe,
                solve_start.elapsed(),
                solved.as_ref().ok().map(|(circuit, _)| circuit.cnot_cost()),
                resolved.workflow.search.strategy.resolved_workers(),
            ));
            solved
        } else {
            workflow.run_with_plan(target, None)
        };
        self.hot.solver_runs.inc();
        let (circuit, plan) = match solved {
            Ok((circuit, plan)) => (Ok(circuit), plan),
            Err(e) => (Err(e), None),
        };
        if let TemplateProbe::Miss { skey, switness } = template_probe {
            self.maybe_capture_template(skey, switness, &circuit, plan, target, resolved);
        }
        let entry = Arc::new(CacheEntry {
            circuit,
            transform: transform.clone(),
            origin: EntryOrigin::Fresh,
        });
        if self.options.dedup != DedupPolicy::Off && resolved.cache == CachePolicy::Use {
            self.cache.insert(key.clone(), Arc::clone(&entry));
        }
        entry
    }

    /// Whether a target may interact with the template layer at all:
    /// canonical dedup with a cache-visible policy, an exact-synthesis-shaped
    /// problem (that is what the captured reduction plans cover), and no
    /// negative amplitudes (the workflow rejects those before the solver, so
    /// a replay must never serve them).
    fn template_eligible(&self, target: &SparseState, resolved: &ResolvedConfig) -> bool {
        let active = (0..target.num_qubits())
            .filter(|&q| target.iter().any(|(index, _)| index.bit(q)))
            .count();
        self.options.dedup == DedupPolicy::Canonical
            && resolved.cache != CachePolicy::Bypass
            && target.cardinality() <= resolved.workflow.search.max_cardinality
            && active <= resolved.workflow.search.max_qubits
            && target.iter().all(|(_, amplitude)| amplitude >= 0.0)
    }

    /// The support-pattern class of a target: its entries with every
    /// amplitude blanked to the same bit pattern, keyed through the tiered
    /// pipeline on the dedicated support interner. Two targets share a
    /// support class exactly when a qubit permutation + flip mask maps one
    /// support set onto the other — the condition under which one's
    /// reduction recipe can be replayed with the other's amplitudes.
    fn support_class(
        &self,
        target: &SparseState,
        resolved: &ResolvedConfig,
    ) -> (ClassKey, StateTransform) {
        let n = target.num_qubits();
        let blanked: Vec<(u64, u64)> = target
            .iter()
            .map(|(index, _)| (index.value(), 1.0f64.to_bits()))
            .collect();
        let options = PipelineOptions::layout_invariant()
            .with_orbit_node_budget(self.options.orbit_node_budget);
        let key = pipeline::key_tiered(n, &blanked, &options, &self.support_keyer);
        (
            ClassKey::new(key.signature, n, key.entries, resolved.fingerprint),
            StateTransform {
                perm: key.perm,
                mask: key.mask,
            },
        )
    }

    /// Probes the template layer for one class representative before its
    /// solve: either an instantiated circuit (skip the solver), the support
    /// key to capture under afterwards, or nothing template-shaped to do.
    fn probe_template(&self, target: &SparseState, resolved: &ResolvedConfig) -> TemplateProbe {
        if !self.template_eligible(target, resolved) {
            return TemplateProbe::Ineligible;
        }
        let (skey, switness) = self.support_class(target, resolved);
        match self.cache.lookup_template(&skey) {
            None => TemplateProbe::Miss { skey, switness },
            Some(template) => {
                match Self::instantiate_template(&template, &switness, target, resolved) {
                    Some(circuit) => TemplateProbe::Hit(circuit),
                    // The class already holds a template that cannot serve
                    // this member (replay failed or left the lower bound):
                    // solve fresh, and do not try to capture a second one.
                    None => TemplateProbe::Ineligible,
                }
            }
        }
    }

    /// Captures a support-class template from a fresh solve, gated on
    /// soundness: the request publishes to the cache, the solve produced a
    /// replayable reduction plan, and its circuit sits *exactly* on the
    /// entanglement lower bound — the one regime where a replayed structure
    /// provably costs the same as any member's fresh solve (nothing can beat
    /// the bound, and instantiation re-checks it per member). First capture
    /// wins; later ones are dropped by the store.
    fn maybe_capture_template(
        &self,
        skey: ClassKey,
        switness: StateTransform,
        circuit: &Result<Circuit, SynthesisError>,
        plan: Option<crate::engine::ReductionPlan>,
        target: &SparseState,
        resolved: &ResolvedConfig,
    ) {
        let (Ok(circuit), Some(plan)) = (circuit, plan) else {
            return;
        };
        if resolved.cache != CachePolicy::Use
            || circuit.cnot_cost() != qsp_state::cofactor::entanglement_lower_bound(target)
        {
            return;
        }
        self.cache.insert_template(
            skey,
            Arc::new(CircuitTemplate {
                ops: plan.ops,
                frame: plan.frame,
                active: plan.active,
                witness: switness,
            }),
        );
    }

    /// Instantiates a support-class template for `target`: transports the
    /// target's amplitudes into the capturing member's frame, replays the
    /// captured reduction (the angle-replay stage derives this member's own
    /// rotation angles and *validates* that the replay reaches the ground
    /// state), and maps the circuit back through the zero-cost witnesses.
    /// Returns `None` — caller falls back to a fresh solve — whenever the
    /// replay fails or the result does not sit exactly on the target's
    /// entanglement lower bound.
    fn instantiate_template(
        template: &CircuitTemplate,
        switness: &StateTransform,
        target: &SparseState,
        resolved: &ResolvedConfig,
    ) -> Option<Circuit> {
        let n = target.num_qubits();
        if template.witness.perm.len() != n || switness.perm.len() != n {
            return None;
        }
        // u = w_template⁻¹ ∘ w_target: both witnesses land on the same
        // support fingerprint, so `u` maps this target's support onto the
        // capturing member's register layout.
        let inv = StateTransform::inverse_perm(&template.witness.perm);
        let perm: Vec<usize> = (0..n).map(|j| switness.perm[inv[j]]).collect();
        let mask = permute_mask(switness.mask ^ template.witness.mask, &inv);
        let u = StateTransform { perm, mask };
        let moved = u.apply_to_state(target).ok()?;
        // `compact_state` silently drops bits outside the active register,
        // so refuse any support index that does not fit it.
        let active_mask = template
            .active
            .iter()
            .fold(0u64, |acc, &q| acc | (1u64 << q));
        if moved
            .iter()
            .any(|(index, _)| index.value() & !active_mask != 0)
        {
            return None;
        }
        let compact = compact_state(&moved, &template.active).ok()?;
        let framed = template.frame.apply_to_state(&compact).ok()?;
        let reduction = replay_reduction(&framed, &template.ops).ok()?;
        let variant_circuit = reduction.inverse();
        let identity = StateTransform::identity(compact.num_qubits());
        let compact_circuit =
            reconstruct_circuit(&variant_circuit, &identity, &template.frame).ok()?;
        let moved_circuit = compact_circuit.remap_qubits(&template.active, n).ok()?;
        let mut circuit =
            reconstruct_circuit(&moved_circuit, &StateTransform::identity(n), &u).ok()?;
        if resolved.workflow.optimize {
            let (optimized, _) = qsp_circuit::optimizer::optimize(&circuit);
            circuit = optimized;
        }
        if circuit.cnot_cost() != qsp_state::cofactor::entanglement_lower_bound(target) {
            return None;
        }
        Some(circuit)
    }

    /// Reconstructs the circuit for a target from a solved entry of the same
    /// canonical class: the solved circuit's qubits are relabelled and an X
    /// layer appended (both zero CNOT cost, so the CNOT cost is identical).
    /// `target_transform` must be the target's own witness from
    /// [`BatchSynthesizer::canonical_class`].
    ///
    /// # Errors
    ///
    /// Propagates the representative's synthesis error, if it failed.
    pub fn reconstruct_for(
        entry: &CacheEntry,
        target_transform: &StateTransform,
    ) -> Result<Circuit, SynthesisError> {
        match &entry.circuit {
            Err(e) => Err(e.clone()),
            Ok(circuit) => reconstruct_circuit(circuit, &entry.transform, target_transform),
        }
    }

    /// Synthesizes one typed request through the canonical-class seam:
    /// cache probe (per its [`CachePolicy`]), fresh solve, witness
    /// reconstruction, provenance-rich report.
    ///
    /// # Errors
    ///
    /// Propagates conversion and synthesis errors.
    pub fn synthesize_request<S: QuantumState>(
        &self,
        request: &SynthesisRequest<S>,
    ) -> Result<SynthesisReport, SynthesisError> {
        let result = self.synthesize_request_traced(request);
        self.record_request_outcome(result.is_err());
        result
    }

    /// The body of [`BatchSynthesizer::synthesize_request`]: produces the
    /// report with its [`RequestTrace`] attached and the trace ring fed.
    fn synthesize_request_traced<S: QuantumState>(
        &self,
        request: &SynthesisRequest<S>,
    ) -> Result<SynthesisReport, SynthesisError> {
        let start = Instant::now();
        let trace_id = TraceId::next();
        let resolved = self.resolve_options(&request.options);
        let sparse = request.target.as_sparse()?;
        let class = canonicalize(
            sparse.as_ref(),
            self.options.dedup,
            resolved.fingerprint,
            self.options.orbit_node_budget,
            &self.keyer,
        );
        let keying = start.elapsed();
        self.record_keying(sparse.as_ref().num_qubits(), class.coverage, keying);
        let KeyedClass { key, transform, .. } = class;

        let mut trace = RequestTrace::new(trace_id);
        trace.push(SpanKind::Key, Duration::ZERO, keying);

        if self.options.dedup != DedupPolicy::Off && resolved.cache != CachePolicy::Bypass {
            let probe_start = Instant::now();
            let hit = self.cache.lookup(&key);
            let probing = probe_start.elapsed();
            trace.push(SpanKind::CacheProbe, keying, probing);
            if let Some(entry) = hit {
                self.hot.cache_hits.inc();
                let reconstruct_start = Instant::now();
                let circuit = Self::reconstruct_for(&entry, &transform)?;
                let reconstruction = reconstruct_start.elapsed();
                trace.push(SpanKind::Reconstruct, keying + probing, reconstruction);
                self.obs.tracer().record_trace(&trace);
                return Ok(SynthesisReport::new(
                    circuit,
                    Provenance::CacheHit { witness: transform },
                    StageTimings::new(
                        keying,
                        Duration::ZERO,
                        reconstruction,
                        keying + reconstruction,
                    ),
                    resolved,
                )
                .with_trace(trace));
            }
        }

        let solve_start = Instant::now();
        let entry = self.solve_class_with(&key, &transform, sparse.as_ref(), &resolved);
        let solving = solve_start.elapsed();
        trace.push(SpanKind::Solve, solve_start - start, solving);
        let reconstruct_start = Instant::now();
        let circuit = Self::reconstruct_for(&entry, &transform)?;
        trace.push(
            SpanKind::Reconstruct,
            reconstruct_start - start,
            reconstruct_start.elapsed(),
        );
        self.obs.tracer().record_trace(&trace);
        let provenance = match entry.origin() {
            EntryOrigin::Fresh => Provenance::Solved,
            EntryOrigin::Template => Provenance::TemplateInstantiated {
                witness: transform.clone(),
            },
        };
        Ok(SynthesisReport::new(
            circuit,
            provenance,
            StageTimings::new(keying, solving, Duration::ZERO, keying + solving),
            resolved,
        )
        .with_trace(trace))
    }

    /// Registry bookkeeping shared by every request-shaped entry point: one
    /// target submitted, optionally one error.
    fn record_request_outcome(&self, failed: bool) {
        self.hot.targets.inc();
        if failed {
            self.hot.errors.inc();
        }
    }

    /// Records one keying outcome into the registry: the per-width keying
    /// latency histogram and the coverage counters (greedy fallbacks double
    /// as the orbit-budget exhaustion signal).
    fn record_keying(&self, width: usize, coverage: KeyCoverage, keying: Duration) {
        self.record_keying_group(width, coverage, &[keying]);
    }

    /// [`BatchSynthesizer::record_keying`] for a whole group of same-width,
    /// same-coverage outcomes: one registry resolution per handle (each a
    /// label-keyed hash plus a shard lock) amortized over every sample in
    /// the group, instead of three resolutions per request.
    fn record_keying_group(&self, width: usize, coverage: KeyCoverage, samples: &[Duration]) {
        let metrics = self.obs.metrics();
        let width = width.to_string();
        let latency = metrics.histogram("batch.keying_latency", &[("width", &width)]);
        for &sample in samples {
            latency.record(sample);
        }
        let coverage_counter = match coverage {
            KeyCoverage::Exhaustive => "batch.keys.exhaustive",
            KeyCoverage::OrbitPruned => "batch.keys.orbit_pruned",
            KeyCoverage::Greedy => "batch.keys.orbit_budget_exhausted",
            KeyCoverage::SignatureOnly => "batch.keys.sig_fast_path",
        };
        metrics
            .counter(coverage_counter, &[])
            .add(samples.len() as u64);
        // Per-width tier split: which widths resolve on the signature tier
        // and which pay for full canonicalization.
        let tier = match coverage {
            KeyCoverage::SignatureOnly => "sig",
            _ => "full",
        };
        metrics
            .counter("batch.keys.tier", &[("width", &width), ("tier", tier)])
            .add(samples.len() as u64);
    }

    /// Synthesizes a batch of typed requests, in parallel, solving each
    /// `(canonical class, options fingerprint)` pair once. Reports come back
    /// in submission order; a failing request yields an `Err` entry without
    /// affecting the others.
    pub fn synthesize_requests<S: QuantumState + Sync>(
        &self,
        requests: &[SynthesisRequest<S>],
    ) -> RequestBatchOutcome {
        self.run_requests(requests.len(), |i| {
            (&requests[i].target, &requests[i].options)
        })
    }

    /// Synthesizes preparation circuits for every target, in parallel,
    /// solving each canonical equivalence class once.
    ///
    /// Results are returned in submission order; a failing target yields an
    /// `Err` entry without affecting the others.
    #[deprecated(
        since = "0.3.0",
        note = "build `SynthesisRequest`s and use `synthesize_requests`; each \
                report carries the circuit plus provenance and timings"
    )]
    pub fn synthesize_batch<S: QuantumState + Sync>(&self, targets: &[S]) -> BatchOutcome {
        let default_options = RequestOptions::default();
        let outcome = self.run_requests(targets.len(), |i| (&targets[i], &default_options));
        BatchOutcome {
            results: outcome
                .reports
                .into_iter()
                .map(|r| r.map(|report| report.circuit))
                .collect(),
            stats: outcome.stats,
        }
    }

    /// The four-phase batch pipeline both public batch entry points share.
    /// `get(i)` hands back the `i`-th target and its per-request options
    /// without forcing callers to materialize owned requests.
    fn run_requests<'a, S, F>(&self, count: usize, get: F) -> RequestBatchOutcome
    where
        S: QuantumState + Sync + 'a,
        F: Fn(usize) -> (&'a S, &'a RequestOptions) + Sync,
    {
        let start = Instant::now();
        let threads = self.thread_count().clamp(1, count.max(1));

        // Phase 1 (parallel): resolve per-request options, get a sparse view
        // (zero-copy for sparse backends) and compute fingerprinted
        // canonical keys.
        let keying_start = Instant::now();
        let keyed: Vec<Result<Keyed<'a>, SynthesisError>> = par_map(count, threads, |i| {
            let request_start = Instant::now();
            let (target, options) = get(i);
            let resolved = self.resolve_options(options);
            let sparse = target.as_sparse()?;
            let class = canonicalize(
                sparse.as_ref(),
                self.options.dedup,
                resolved.fingerprint,
                self.options.orbit_node_budget,
                &self.keyer,
            );
            Ok(Keyed {
                class,
                sparse,
                resolved,
                keying: request_start.elapsed(),
            })
        });
        let keying = keying_start.elapsed();

        // Keying-coverage tally: how many targets got exhaustive-quality
        // keys vs. the greedy fallback (the dedup-coverage signal). The
        // registry gets the same tally plus the per-width keying-latency
        // histograms.
        let mut keys_exhaustive = 0usize;
        let mut keys_orbit_pruned = 0usize;
        let mut keys_greedy = 0usize;
        let mut keys_sig_fast_path = 0usize;
        let mut keying_groups: Vec<(usize, KeyCoverage, Vec<Duration>)> = Vec::new();
        for entry in keyed.iter().flatten() {
            let width = entry.sparse.num_qubits();
            let coverage = entry.class.coverage;
            match keying_groups
                .iter_mut()
                .find(|(w, c, _)| *w == width && *c == coverage)
            {
                Some((_, _, samples)) => samples.push(entry.keying),
                None => keying_groups.push((width, coverage, vec![entry.keying])),
            }
            match coverage {
                KeyCoverage::Exhaustive => keys_exhaustive += 1,
                KeyCoverage::OrbitPruned => keys_orbit_pruned += 1,
                KeyCoverage::Greedy => keys_greedy += 1,
                KeyCoverage::SignatureOnly => keys_sig_fast_path += 1,
            }
        }
        for (width, coverage, samples) in keying_groups {
            self.record_keying_group(width, coverage, &samples);
        }

        // Phase 2 (sequential): plan which requests need a fresh solve. With
        // dedup off — or a per-request cache bypass — a request is solved
        // independently and never joins a class. Cross-batch hits pin their
        // entry here, so a bounded cache can evict freely afterwards without
        // losing them. Keys carry the options fingerprint, so two requests
        // only ever share a class when their effective cost-relevant
        // configurations are identical.
        let planning_start = Instant::now();
        let mut to_solve: Vec<usize> = Vec::new();
        let mut cache_hits = 0usize;
        let mut plans: Vec<Plan> = Vec::with_capacity(count);
        // Per-representative publish intent: a class is published if *any*
        // of its members asked for `CachePolicy::Use`, so a `ReadOnly`
        // representative cannot silently swallow a follower's publish.
        let mut publish_intent: HashMap<usize, bool> = HashMap::new();
        {
            let mut planned: HashMap<&ClassKey, usize> = HashMap::new();
            for (i, entry) in keyed.iter().enumerate() {
                let Ok(keyed_request) = entry else {
                    plans.push(Plan::Invalid);
                    continue;
                };
                let wants_publish = keyed_request.resolved.cache == CachePolicy::Use;
                let bypass = self.options.dedup == DedupPolicy::Off
                    || keyed_request.resolved.cache == CachePolicy::Bypass;
                if bypass {
                    to_solve.push(i);
                    plans.push(Plan::Fresh);
                } else if let Some(&representative) = planned.get(&keyed_request.class.key) {
                    cache_hits += 1;
                    if wants_publish {
                        publish_intent.insert(representative, true);
                    }
                    plans.push(Plan::Follow(representative));
                } else if let Some(cached) = self.cache.lookup(&keyed_request.class.key) {
                    cache_hits += 1;
                    plans.push(Plan::Cached(cached));
                } else {
                    planned.insert(&keyed_request.class.key, i);
                    publish_intent.insert(i, wants_publish);
                    to_solve.push(i);
                    plans.push(Plan::Fresh);
                }
            }
        }
        let planning = planning_start.elapsed();

        // Phase 3 (parallel): solve one representative per class through the
        // canonical-class seam, publishing to the shared cache (per the
        // class's merged publish intent) as soon as each is ready. The
        // override only touches the publish decision — the report each
        // request gets back still carries its own resolved config.
        let solving_start = Instant::now();
        let solved: Vec<(usize, Arc<CacheEntry>, Duration)> =
            par_map(to_solve.len(), threads, |j| {
                let i = to_solve[j];
                let keyed_request = keyed[i].as_ref().expect("planned requests are valid");
                let mut solve_resolved = keyed_request.resolved;
                if publish_intent.get(&i).copied().unwrap_or(false) {
                    solve_resolved.cache = CachePolicy::Use;
                }
                let solve_start = Instant::now();
                let entry = self.solve_class_with(
                    &keyed_request.class.key,
                    &keyed_request.class.transform,
                    keyed_request.sparse.as_ref(),
                    &solve_resolved,
                );
                (i, entry, solve_start.elapsed())
            });
        let own_solution: HashMap<usize, (Arc<CacheEntry>, Duration)> = solved
            .into_iter()
            .map(|(i, entry, duration)| (i, (entry, duration)))
            .collect();
        let solving = solving_start.elapsed();
        // Representatives served by template instantiation never ran the
        // solver; the stats keep the two disjoint.
        let template_hits = own_solution
            .values()
            .filter(|(entry, _)| entry.origin() == EntryOrigin::Template)
            .count();
        let solver_runs = to_solve.len() - template_hits;

        // Phase 4 (parallel): assemble per-request reports. Freshly solved
        // requests take their own circuit; followers resolve through their
        // in-batch representative; cross-batch hits use the entry pinned at
        // planning time. No cache locks are taken here, and eviction cannot
        // invalidate any plan.
        let assembly_start = Instant::now();
        let reports: Vec<Result<SynthesisReport, SynthesisError>> =
            par_map(count, threads, |i| match &keyed[i] {
                Err(e) => Err(e.clone()),
                Ok(keyed_request) => {
                    let (entry, provenance, solve_time) = match &plans[i] {
                        Plan::Fresh => {
                            let (entry, duration) =
                                own_solution.get(&i).expect("fresh requests were solved");
                            let provenance = match entry.origin() {
                                EntryOrigin::Fresh => Provenance::Solved,
                                EntryOrigin::Template => Provenance::TemplateInstantiated {
                                    witness: keyed_request.class.transform.clone(),
                                },
                            };
                            (Arc::clone(entry), provenance, *duration)
                        }
                        Plan::Follow(representative) => {
                            let (entry, _) = own_solution
                                .get(representative)
                                .expect("representatives were solved");
                            (
                                Arc::clone(entry),
                                Provenance::ReconstructedFromBatchRep {
                                    witness: keyed_request.class.transform.clone(),
                                },
                                Duration::ZERO,
                            )
                        }
                        Plan::Cached(entry) => (
                            Arc::clone(entry),
                            Provenance::CacheHit {
                                witness: keyed_request.class.transform.clone(),
                            },
                            Duration::ZERO,
                        ),
                        Plan::Invalid => unreachable!("invalid requests are handled above"),
                    };
                    let reconstruct_start = Instant::now();
                    let circuit = Self::reconstruct_for(&entry, &keyed_request.class.transform)?;
                    let reconstruction = reconstruct_start.elapsed();
                    // Batch spans are stage durations laid end to end (the
                    // phases interleave requests, so per-request wall-clock
                    // offsets would overlap across the batch).
                    let mut trace = RequestTrace::new(TraceId::next());
                    trace.push(SpanKind::Key, Duration::ZERO, keyed_request.keying);
                    trace.push(SpanKind::Solve, keyed_request.keying, solve_time);
                    trace.push(
                        SpanKind::Reconstruct,
                        keyed_request.keying + solve_time,
                        reconstruction,
                    );
                    self.obs.tracer().record_trace(&trace);
                    Ok(SynthesisReport::new(
                        circuit,
                        provenance,
                        StageTimings::new(
                            keyed_request.keying,
                            solve_time,
                            reconstruction,
                            keyed_request.keying + solve_time + reconstruction,
                        ),
                        keyed_request.resolved,
                    )
                    .with_trace(trace))
                }
            });
        let assembly = assembly_start.elapsed();

        let errors = reports.iter().filter(|r| r.is_err()).count();
        self.hot.targets.add(count as u64);
        self.hot.cache_hits.add(cache_hits as u64);
        self.hot.errors.add(errors as u64);
        let stats = BatchStats {
            targets: count,
            solver_runs,
            template_hits,
            cache_hits,
            errors,
            keys_exhaustive,
            keys_orbit_pruned,
            keys_greedy,
            keys_sig_fast_path,
            threads,
            elapsed: start.elapsed(),
            keying,
            planning,
            solving,
            assembly,
        };
        RequestBatchOutcome { reports, stats }
    }
}

impl<S: QuantumState + Sync> Synthesizer<S> for BatchSynthesizer {
    fn synthesize(&self, request: &SynthesisRequest<S>) -> Result<SynthesisReport, SynthesisError> {
        self.synthesize_request(request)
    }

    fn synthesize_all(
        &self,
        requests: &[SynthesisRequest<S>],
    ) -> Vec<Result<SynthesisReport, SynthesisError>> {
        self.synthesize_requests(requests).reports
    }
}

#[cfg(test)]
mod tests {
    // The deprecated `synthesize_batch` wrapper stays covered until it is
    // removed; new call sites use `synthesize_requests`.
    #![allow(deprecated)]

    use super::*;
    use qsp_state::{generators, BasisIndex};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FP: u64 = 0xABCD;

    fn verify(circuit: &Circuit, target: &SparseState) {
        let report = qsp_sim::verify_preparation(circuit, target).expect("simulates");
        assert!(
            report.is_correct(),
            "batch circuit does not prepare the target (fidelity {})",
            report.fidelity
        );
    }

    #[test]
    fn transform_round_trips_indices() {
        let t = StateTransform {
            perm: vec![2, 0, 1, 3],
            mask: 0b0101,
        };
        let inv = StateTransform::inverse_perm(&t.perm);
        for index in 0u64..16 {
            let forward = t.apply(index);
            let back = BasisIndex::new(forward ^ t.mask).permute(&inv).value();
            assert_eq!(back, index);
        }
    }

    #[test]
    fn canonical_keys_identify_equivalent_states() {
        let ghz = generators::ghz(4).unwrap();
        // A permuted and flipped GHZ: |0101> + |1010>.
        let variant = ghz
            .permute_qubits(&[1, 0, 3, 2])
            .unwrap()
            .apply_x(0)
            .unwrap()
            .apply_x(2)
            .unwrap();
        let budget = pipeline::DEFAULT_ORBIT_NODE_BUDGET;
        let keyer = pipeline::SignatureInterner::new();
        let key_a = canonicalize(&ghz, DedupPolicy::Canonical, FP, budget, &keyer);
        let key_b = canonicalize(&variant, DedupPolicy::Canonical, FP, budget, &keyer);
        assert_eq!(key_a.key, key_b.key);
        assert_ne!(key_a.coverage, KeyCoverage::Greedy);
        // The first member of a class anchors its fresh signature; the
        // equivalent variant is a genuine collision and takes the full tier.
        assert_eq!(key_a.coverage, KeyCoverage::SignatureOnly);
        assert_ne!(key_b.coverage, KeyCoverage::SignatureOnly);
        // Exact policy distinguishes them.
        let exact_a = canonicalize(&ghz, DedupPolicy::Exact, FP, budget, &keyer);
        let exact_b = canonicalize(&variant, DedupPolicy::Exact, FP, budget, &keyer);
        assert_ne!(exact_a.key, exact_b.key);
        assert_eq!(exact_a.coverage, KeyCoverage::Exhaustive);
        // A genuinely different state gets a different canonical key — and
        // already a different Stage 0 signature, so the keys short-circuit
        // before the entry vectors are compared.
        let key_w = canonicalize(
            &generators::w_state(4).unwrap(),
            DedupPolicy::Canonical,
            FP,
            budget,
            &keyer,
        );
        assert_ne!(key_a.key, key_w.key);
        assert_ne!(key_a.key.signature(), key_w.key.signature());
        // The same state under a different options fingerprint is a
        // different class — the dedup-soundness invariant.
        let key_fp = canonicalize(&ghz, DedupPolicy::Canonical, FP ^ 1, budget, &keyer);
        assert_ne!(key_a.key, key_fp.key);
    }

    #[test]
    fn reconstruction_prepares_the_equivalent_target() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..8 {
            let base = generators::random_uniform_state(4, 5, &mut rng).unwrap();
            let variant = base
                .permute_qubits(&[3, 1, 0, 2])
                .unwrap()
                .apply_x(1)
                .unwrap();
            let budget = pipeline::DEFAULT_ORBIT_NODE_BUDGET;
            let keyer = pipeline::SignatureInterner::new();
            let class_a = canonicalize(&base, DedupPolicy::Canonical, FP, budget, &keyer);
            let class_b = canonicalize(&variant, DedupPolicy::Canonical, FP, budget, &keyer);
            assert_eq!(class_a.key, class_b.key);
            let solved = QspWorkflow::new().run(&base).unwrap();
            verify(&solved, &base);
            let reconstructed =
                reconstruct_circuit(&solved, &class_a.transform, &class_b.transform).unwrap();
            verify(&reconstructed, &variant);
            assert_eq!(reconstructed.cnot_cost(), solved.cnot_cost());
        }
    }

    #[test]
    fn exact_duplicates_reuse_the_identical_circuit() {
        let targets = vec![
            generators::dicke(4, 2).unwrap(),
            generators::ghz(4).unwrap(),
            generators::dicke(4, 2).unwrap(),
        ];
        let engine = BatchSynthesizer::new();
        let outcome = engine.synthesize_batch(&targets);
        assert_eq!(outcome.stats.solver_runs, 2);
        assert_eq!(outcome.stats.cache_hits, 1);
        assert_eq!(outcome.stats.errors, 0);
        assert!(outcome.stats.threads >= 1);
        let first = outcome.results[0].as_ref().unwrap();
        let third = outcome.results[2].as_ref().unwrap();
        assert_eq!(
            first, third,
            "duplicate targets must get identical circuits"
        );
    }

    #[test]
    fn request_reports_carry_provenance_and_config() {
        let requests = vec![
            SynthesisRequest::new(generators::dicke(4, 2).unwrap()),
            SynthesisRequest::new(generators::ghz(4).unwrap()),
            SynthesisRequest::new(generators::dicke(4, 2).unwrap()),
        ];
        let engine = BatchSynthesizer::new();
        let outcome = engine.synthesize_requests(&requests);
        assert_eq!(outcome.stats.solver_runs, 2);
        let first = outcome.reports[0].as_ref().unwrap();
        assert!(matches!(first.provenance, Provenance::Solved));
        assert!(first.timings.solving > Duration::ZERO);
        assert_eq!(first.resolved.workflow, *engine.config());
        let duplicate = outcome.reports[2].as_ref().unwrap();
        assert!(matches!(
            duplicate.provenance,
            Provenance::ReconstructedFromBatchRep { .. }
        ));
        assert_eq!(duplicate.cnot_cost, first.cnot_cost);
        assert_eq!(duplicate.timings.solving, Duration::ZERO);
        // A later batch serves the same request from the cross-batch cache.
        let again = engine.synthesize_requests(&requests[..1]);
        let hit = again.reports[0].as_ref().unwrap();
        assert!(matches!(hit.provenance, Provenance::CacheHit { .. }));
        assert_eq!(hit.cnot_cost, first.cnot_cost);
        // The single-request seam agrees.
        let single = engine.synthesize_request(&requests[1]).unwrap();
        assert!(matches!(single.provenance, Provenance::CacheHit { .. }));
        assert_eq!(single.cnot_cost, 3);
    }

    #[test]
    fn per_request_cache_policies_are_honoured() {
        let ghz = generators::ghz(4).unwrap();
        let engine = BatchSynthesizer::new();

        // ReadOnly solves fresh (cold cache) but never publishes.
        let readonly = SynthesisRequest::new(ghz.clone()).with_cache_policy(CachePolicy::ReadOnly);
        let report = engine.synthesize_request(&readonly).unwrap();
        assert!(report.provenance.is_fresh_solve());
        assert_eq!(engine.cache_len(), 0, "ReadOnly must not publish");

        // Use publishes; a later ReadOnly request may then hit.
        let publish = SynthesisRequest::new(ghz.clone());
        assert!(engine
            .synthesize_request(&publish)
            .unwrap()
            .provenance
            .is_fresh_solve());
        assert_eq!(engine.cache_len(), 1);
        let warm = engine.synthesize_request(&readonly).unwrap();
        assert!(matches!(warm.provenance, Provenance::CacheHit { .. }));

        // Bypass ignores the warm cache entirely and never joins a class.
        let bypass = SynthesisRequest::new(ghz).with_cache_policy(CachePolicy::Bypass);
        let outcome = engine.synthesize_requests(&[bypass.clone(), bypass]);
        assert_eq!(outcome.stats.solver_runs, 2, "bypass must not dedup");
        assert_eq!(outcome.stats.cache_hits, 0);
        assert_eq!(engine.cache_len(), 1, "bypass must not publish");
    }

    #[test]
    fn a_use_follower_publishes_past_a_readonly_representative() {
        // Planning makes the ReadOnly request the class representative, but
        // the Use follower's publish intent must not be dropped: the class
        // publishes once the solve lands.
        let ghz = generators::ghz(4).unwrap();
        let engine = BatchSynthesizer::new();
        let outcome = engine.synthesize_requests(&[
            SynthesisRequest::new(ghz.clone()).with_cache_policy(CachePolicy::ReadOnly),
            SynthesisRequest::new(ghz.clone()),
        ]);
        assert_eq!(outcome.stats.solver_runs, 1);
        assert_eq!(engine.cache_len(), 1, "the Use member's publish must win");
        // The representative's own report still shows its ReadOnly policy.
        assert_eq!(
            outcome.reports[0].as_ref().unwrap().resolved.cache,
            CachePolicy::ReadOnly
        );
        // An all-ReadOnly class still never publishes.
        let readonly_engine = BatchSynthesizer::new();
        let readonly = SynthesisRequest::new(ghz).with_cache_policy(CachePolicy::ReadOnly);
        readonly_engine.synthesize_requests(&[readonly.clone(), readonly]);
        assert_eq!(readonly_engine.cache_len(), 0);
    }

    #[test]
    fn cache_persists_across_batches() {
        let engine = BatchSynthesizer::new();
        let first = engine.synthesize_batch(&[generators::ghz(3).unwrap()]);
        assert_eq!(first.stats.solver_runs, 1);
        assert_eq!(engine.cache_len(), 1);
        let second = engine.synthesize_batch(&[generators::ghz(3).unwrap()]);
        assert_eq!(second.stats.solver_runs, 0);
        assert_eq!(second.stats.cache_hits, 1);
        assert_eq!(
            first.results[0].as_ref().unwrap(),
            second.results[0].as_ref().unwrap()
        );
        // Store-level counters: one planning miss, one planning hit.
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        engine.clear_cache();
        assert_eq!(engine.cache_len(), 0);
    }

    #[test]
    fn dedup_off_solves_every_target() {
        let targets = vec![generators::ghz(3).unwrap(), generators::ghz(3).unwrap()];
        let engine = BatchSynthesizer::with_options(
            WorkflowConfig::default(),
            BatchOptions::default()
                .with_threads(2)
                .with_dedup(DedupPolicy::Off),
        );
        let outcome = engine.synthesize_batch(&targets);
        assert_eq!(outcome.stats.solver_runs, 2);
        assert_eq!(outcome.stats.cache_hits, 0);
        assert_eq!(engine.cache_len(), 0);
    }

    #[test]
    fn errors_are_per_target() {
        let negative = SparseState::from_amplitudes(
            2,
            [(BasisIndex::new(0), 0.6), (BasisIndex::new(3), -0.8)],
        )
        .unwrap();
        let targets = vec![generators::ghz(2).unwrap(), negative];
        let outcome = BatchSynthesizer::new().synthesize_batch(&targets);
        assert!(outcome.results[0].is_ok());
        assert!(outcome.results[1].is_err());
        assert_eq!(outcome.stats.errors, 1);
    }

    #[test]
    fn templates_instantiate_same_support_different_angles() {
        // a|00> + b|11> solves at its entanglement lower bound (one CNOT),
        // so the first solve donates its structure as a template.
        let first =
            SparseState::from_amplitudes(2, [(BasisIndex::new(0), 0.8), (BasisIndex::new(3), 0.6)])
                .unwrap();
        // Same support, different amplitude *multiset*: no permutation/flip
        // maps one onto the other, so canonical dedup cannot serve it — only
        // the template layer shares work here.
        let second = SparseState::from_amplitudes(
            2,
            [
                (BasisIndex::new(0), 0.1f64.sqrt()),
                (BasisIndex::new(3), 0.9f64.sqrt()),
            ],
        )
        .unwrap();
        let engine = BatchSynthesizer::new();
        let captured = engine
            .synthesize_request(&SynthesisRequest::new(first.clone()))
            .unwrap();
        assert!(matches!(captured.provenance, Provenance::Solved));
        assert_eq!(captured.cnot_cost, 1, "a|00> + b|11> sits on the bound");
        assert_eq!(
            engine.cache().template_count(),
            1,
            "a lower-bound solve captures its class template"
        );
        verify(&captured.circuit, &first);

        let outcome = engine.synthesize_requests(&[SynthesisRequest::new(second.clone())]);
        assert_eq!(outcome.stats.template_hits, 1);
        assert_eq!(outcome.stats.solver_runs, 0);
        let report = outcome.reports[0].as_ref().unwrap();
        assert!(matches!(
            report.provenance,
            Provenance::TemplateInstantiated { .. }
        ));
        verify(&report.circuit, &second);
        // Bit-for-bit the cost a fresh solve would report.
        let fresh = QspWorkflow::new().run(&second).unwrap();
        assert_eq!(report.cnot_cost, fresh.cnot_cost());
        // The instantiated class is a normal cache entry: an exact repeat
        // hits without touching the template layer again.
        let repeat = engine
            .synthesize_request(&SynthesisRequest::new(second))
            .unwrap();
        assert!(matches!(repeat.provenance, Provenance::CacheHit { .. }));
        // A negative-amplitude member of the support class must keep
        // failing: the template layer never serves what the workflow
        // rejects.
        let negative = SparseState::from_amplitudes(
            2,
            [(BasisIndex::new(0), 0.6), (BasisIndex::new(3), -0.8)],
        )
        .unwrap();
        assert!(engine
            .synthesize_request(&SynthesisRequest::new(negative))
            .is_err());
    }

    #[test]
    fn template_capture_respects_the_entanglement_gate() {
        // GHZ(4) costs 3 CNOTs against a lower bound of 2, so its solve must
        // NOT capture a template: replaying its structure for another
        // support-class member could not prove cost-identity with a fresh
        // solve.
        let engine = BatchSynthesizer::new();
        let ghz = engine
            .synthesize_request(&SynthesisRequest::new(generators::ghz(4).unwrap()))
            .unwrap();
        assert_eq!(ghz.cnot_cost, 3);
        assert_eq!(engine.cache().template_count(), 0);
        // A same-support skewed state still solves fresh.
        let skewed = SparseState::from_amplitudes(
            4,
            [
                (BasisIndex::new(0), 0.95),
                (BasisIndex::new(0b1111), (1.0 - 0.95f64 * 0.95).sqrt()),
            ],
        )
        .unwrap();
        let outcome = engine.synthesize_requests(&[SynthesisRequest::new(skewed)]);
        assert_eq!(outcome.stats.template_hits, 0);
        assert_eq!(outcome.stats.solver_runs, 1);
        assert!(matches!(
            outcome.reports[0].as_ref().unwrap().provenance,
            Provenance::Solved
        ));
    }

    #[test]
    fn stage_timings_sum_to_less_than_elapsed() {
        let targets = vec![generators::ghz(3).unwrap(), generators::w_state(4).unwrap()];
        let outcome = BatchSynthesizer::new().synthesize_batch(&targets);
        let staged = outcome.stats.keying
            + outcome.stats.planning
            + outcome.stats.solving
            + outcome.stats.assembly;
        assert!(staged <= outcome.stats.elapsed);
        assert!(outcome.stats.solving > Duration::ZERO);
    }

    #[test]
    fn bounded_cache_still_produces_correct_batches() {
        // A cache bounded far below the class count: every batch result must
        // still be correct even though most classes get evicted.
        let engine = BatchSynthesizer::with_options(
            WorkflowConfig::default(),
            BatchOptions::default()
                .with_threads(2)
                .with_cache(CacheConfig::bounded(2).with_shards(2)),
        );
        let mut rng = StdRng::seed_from_u64(33);
        let mut targets = Vec::new();
        for _ in 0..8 {
            targets.push(generators::random_uniform_state(4, 5, &mut rng).unwrap());
        }
        targets.push(targets[0].clone());
        targets.push(targets[3].clone());
        let outcome = engine.synthesize_batch(&targets);
        assert_eq!(outcome.stats.errors, 0);
        assert!(engine.cache_len() <= engine.cache().capacity());
        assert!(engine.cache_stats().evictions > 0);
        for (target, result) in targets.iter().zip(&outcome.results) {
            verify(result.as_ref().unwrap(), target);
        }
    }
}
