//! Error type of the exact synthesis and workflow layers.

use std::error::Error;
use std::fmt;

use qsp_baselines::BaselineError;
use qsp_circuit::CircuitError;
use qsp_state::StateError;

/// Errors produced by the exact synthesizer and the preparation workflow.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// The state exceeds the configured search limits (too many qubits or too
    /// large a cardinality for exact synthesis).
    ProblemTooLarge {
        /// Human readable description of the violated limit.
        reason: String,
    },
    /// The A* search exhausted its node budget without reaching the ground
    /// state (should not happen for valid inputs; indicates a configuration
    /// with a node limit that is too small).
    SearchBudgetExhausted {
        /// Number of expanded nodes when the search gave up.
        expanded: usize,
    },
    /// The target state is not supported (e.g. negative amplitudes).
    UnsupportedState {
        /// Human readable description of the restriction.
        reason: String,
    },
    /// An underlying state operation failed.
    State(StateError),
    /// An underlying circuit operation failed.
    Circuit(CircuitError),
    /// A baseline flow used inside the workflow failed.
    Baseline(BaselineError),
    /// A JSON document (cache snapshot, serialized request or stats dump)
    /// failed to parse.
    Json(crate::json::JsonError),
    /// A cache snapshot carries an unsupported format version. Versions 1–2
    /// predate the invariant-pipeline class keys (v1 also lacks the options
    /// fingerprint) and cannot be mapped onto current keys soundly, so they
    /// are rejected instead of silently mis-keyed.
    SnapshotVersion {
        /// The version field found in the snapshot.
        found: u64,
        /// The version this build reads and writes.
        supported: u64,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::ProblemTooLarge { reason } => {
                write!(f, "problem exceeds exact synthesis limits: {reason}")
            }
            SynthesisError::SearchBudgetExhausted { expanded } => write!(
                f,
                "a* search gave up after expanding {expanded} states without reaching the ground state"
            ),
            SynthesisError::UnsupportedState { reason } => {
                write!(f, "target state not supported: {reason}")
            }
            SynthesisError::State(e) => write!(f, "state error: {e}"),
            SynthesisError::Circuit(e) => write!(f, "circuit error: {e}"),
            SynthesisError::Baseline(e) => write!(f, "baseline error: {e}"),
            SynthesisError::Json(e) => write!(f, "json error: {e}"),
            SynthesisError::SnapshotVersion { found, supported } => write!(
                f,
                "unsupported cache snapshot version {found} (this build reads version \
                 {supported}; older snapshots predate the invariant-pipeline class keys \
                 and cannot be mapped soundly — regenerate the snapshot)"
            ),
        }
    }
}

impl Error for SynthesisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthesisError::State(e) => Some(e),
            SynthesisError::Circuit(e) => Some(e),
            SynthesisError::Baseline(e) => Some(e),
            SynthesisError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StateError> for SynthesisError {
    fn from(value: StateError) -> Self {
        SynthesisError::State(value)
    }
}

impl From<CircuitError> for SynthesisError {
    fn from(value: CircuitError) -> Self {
        SynthesisError::Circuit(value)
    }
}

impl From<BaselineError> for SynthesisError {
    fn from(value: BaselineError) -> Self {
        SynthesisError::Baseline(value)
    }
}

impl From<crate::json::JsonError> for SynthesisError {
    fn from(value: crate::json::JsonError) -> Self {
        SynthesisError::Json(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = SynthesisError::ProblemTooLarge {
            reason: "5 active qubits".to_string(),
        };
        assert!(e.to_string().contains("5 active qubits"));
        assert!(e.source().is_none());
        let e: SynthesisError = StateError::EmptyState.into();
        assert!(e.source().is_some());
        let e: SynthesisError = CircuitError::OverlappingQubits { qubit: 0 }.into();
        assert!(e.source().is_some());
        let e: SynthesisError = BaselineError::UnsupportedState {
            reason: "x".to_string(),
        }
        .into();
        assert!(e.to_string().contains("baseline error"));
        let e = SynthesisError::SearchBudgetExhausted { expanded: 10 };
        assert!(e.to_string().contains("10"));
        let e: SynthesisError = crate::json::parse("[1,").unwrap_err().into();
        assert!(matches!(e, SynthesisError::Json(_)));
        assert!(e.to_string().contains("json error"));
        assert!(e.source().is_some());
    }
}
