//! The sharded, eviction-aware synthesis cache.
//!
//! [`ShardedCache`] maps Sec. V-B canonical class keys to solved circuits
//! (plus the witness transform of the solved representative). It replaces the
//! single `Mutex<HashMap>` of the original batch engine with:
//!
//! * **N-way sharding** — the key hash selects one of `shards` independent
//!   `Mutex<HashMap>` shards (shard count is a power of two, so selection is
//!   a mask), removing the global lock from the batch hot path.
//! * **LRU eviction** — when a [`CacheConfig`] capacity is set, each shard is
//!   bounded to its slice of the capacity and evicts its least-recently-used
//!   class on overflow. Recency is a global atomic tick stamped on every
//!   lookup and insert.
//! * **Atomic hit/miss/insert/evict counters** — cheap relaxed counters that
//!   stay consistent under arbitrary thread interleavings:
//!   `hits + misses == lookups`, and `entries ≤ insertions − evictions`
//!   (strictly below when racing writers re-insert an existing class, which
//!   replaces the slot but still counts as an insertion).
//! * **JSON warm-start snapshots** — [`ShardedCache::save_snapshot`] /
//!   [`ShardedCache::load_snapshot`] persist solved classes (rotation angles
//!   as exact `f64` bit patterns) so a fresh process can start warm, and
//!   [`ShardedCache::merge_snapshot`] folds a snapshot into a *non-empty*
//!   cache, keeping the cheaper circuit when a class is present on both
//!   sides — the building block for fleet-wide cache exchange. The format
//!   rides on the workspace-shared [`crate::json`] reader/writer (the
//!   offline build has no serde).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use qsp_circuit::{Circuit, Control, Gate};
use qsp_obs::Histogram;

use crate::engine::StateTransform;
use crate::error::SynthesisError;
use crate::json::{self, Value};
use crate::search::config::CacheConfig;
use crate::search::op::TransitionOp;

/// An amplitude-aware canonical class fingerprint: the Stage 0
/// **frame-invariant signature** of the invariant pipeline
/// ([`qsp_state::pipeline`]), the `(index, amplitude bits)` entries sorted
/// by index, the register width, **and the cost-relevant options
/// fingerprint** ([`crate::api::cost_fingerprint`]) of the configuration the
/// class is solved under.
///
/// The signature comes first in the struct, so the derived equality
/// short-circuits on the first eight bytes for almost every non-equivalent
/// pair before the entry vectors are even looked at.
///
/// Folding the options fingerprint into the key is what makes per-request
/// solver overrides *dedup-sound*: two requests for the same state under
/// different effective cost-relevant options hash to different classes, so
/// they can never share a cache entry, a batch representative or an
/// in-flight solve — and never contaminate each other's `cnot_cost`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClassKey {
    pub(crate) signature: u64,
    pub(crate) num_qubits: usize,
    pub(crate) entries: Vec<(u64, u64)>,
    pub(crate) options_fp: u64,
}

impl ClassKey {
    /// Builds a key from the pipeline signature, the register width,
    /// `(index, amplitude bits)` entries (sorted by the caller) and the
    /// options fingerprint.
    pub(crate) fn new(
        signature: u64,
        num_qubits: usize,
        entries: Vec<(u64, u64)>,
        options_fp: u64,
    ) -> Self {
        ClassKey {
            signature,
            num_qubits,
            entries,
            options_fp,
        }
    }

    /// The Stage 0 frame-invariant signature of the class (zero for exact,
    /// non-canonical keys).
    pub fn signature(&self) -> u64 {
        self.signature
    }

    /// The cost-relevant options fingerprint this class is keyed under.
    pub fn options_fingerprint(&self) -> u64 {
        self.options_fp
    }
}

/// How a cached class's circuit was produced: a fresh workflow solve, or an
/// instantiation of a support-pattern class template (the captured structure
/// replayed with this class's own amplitudes). Session-local — snapshots do
/// not persist the origin, so loaded entries always read
/// [`EntryOrigin::Fresh`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EntryOrigin {
    /// Solved by a fresh workflow run.
    #[default]
    Fresh,
    /// Instantiated from a support-pattern class template via angle replay.
    Template,
}

/// One solved canonical class: the circuit of the first-seen member and the
/// witness transform of that member.
#[derive(Debug)]
pub struct CacheEntry {
    pub(crate) circuit: Result<Circuit, SynthesisError>,
    pub(crate) transform: StateTransform,
    pub(crate) origin: EntryOrigin,
}

impl CacheEntry {
    /// The solved circuit of the class representative, or the synthesis
    /// error the representative failed with.
    pub fn circuit(&self) -> Result<&Circuit, &SynthesisError> {
        self.circuit.as_ref()
    }

    /// The witness transform mapping the solved representative onto the
    /// canonical class fingerprint.
    pub fn transform(&self) -> &StateTransform {
        &self.transform
    }

    /// The representative's CNOT cost, if its synthesis succeeded.
    pub fn cnot_cost(&self) -> Option<usize> {
        self.circuit.as_ref().ok().map(Circuit::cnot_cost)
    }

    /// How the representative's circuit was produced (fresh solve vs
    /// template instantiation).
    pub fn origin(&self) -> EntryOrigin {
        self.origin
    }
}

/// An angle-free circuit template of one support-pattern class: the exact
/// solver's reduction recipe captured from the first member solved *at the
/// entanglement lower bound*, plus that member's witness onto the class's
/// support fingerprint.
///
/// Another member of the class instantiates the template by transporting its
/// own amplitudes into the captured frame and replaying the ops — the
/// angle-replay stage re-derives the member's rotation angles, so the
/// structure is shared while every instantiation carries its own angles. The
/// lower-bound capture gate is what keeps instantiation cost-identical to a
/// fresh solve (nothing can beat the bound, so both sit exactly on it).
#[derive(Debug, Clone)]
pub(crate) struct CircuitTemplate {
    /// The backward reduction, in the searched variant's frame.
    pub(crate) ops: Vec<TransitionOp>,
    /// Zero-cost transform from the compact register onto the searched
    /// variant.
    pub(crate) frame: StateTransform,
    /// Active qubit positions of the capturing member's register.
    pub(crate) active: Vec<usize>,
    /// The capturing member's witness onto the support fingerprint.
    pub(crate) witness: StateTransform,
}

/// A point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a cached class.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Classes inserted (including snapshot loads).
    pub insertions: u64,
    /// Classes evicted by the size bound.
    pub evictions: u64,
    /// Classes currently cached across all shards.
    pub entries: usize,
}

struct Slot {
    entry: Arc<CacheEntry>,
    last_used: u64,
}

/// Shared registry histograms the cache reports its probe and eviction
/// latencies into once attached (see [`ShardedCache::attach_obs`]).
#[derive(Debug)]
struct CacheTiming {
    probe: Arc<Histogram>,
    evict: Arc<Histogram>,
}

/// One shard of the template map: support-pattern key → cached structure.
type TemplateShard = Mutex<HashMap<ClassKey, Arc<CircuitTemplate>>>;

/// The sharded, size-bounded canonical-class cache. See the [module
/// docs](self).
#[derive(Debug)]
pub struct ShardedCache {
    shards: Box<[Mutex<HashMap<ClassKey, Slot>>]>,
    /// Support-pattern class templates, sharded like the main map but keyed
    /// by the *support* fingerprint (amplitudes blanked). Session-local:
    /// never persisted to snapshots.
    templates: Box<[TemplateShard]>,
    shard_mask: usize,
    per_shard_capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    timing: OnceLock<CacheTiming>,
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slot")
            .field("last_used", &self.last_used)
            .finish_non_exhaustive()
    }
}

impl ShardedCache {
    /// Creates a cache with the given sharding and eviction policy.
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.resolved_shards();
        let per_shard_capacity = if config.capacity == 0 {
            0
        } else {
            config.capacity.div_ceil(shards)
        };
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            templates: (0..shards)
                .map(|_| Mutex::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            shard_mask: shards - 1,
            per_shard_capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            timing: OnceLock::new(),
        }
    }

    /// Attaches registry histograms for probe (lookup) and eviction latency.
    /// Until attached — the default — lookups and evictions take no
    /// timestamps at all; once attached the instrumentation cannot be
    /// removed (a second call is ignored). [`crate::BatchSynthesizer`]
    /// attaches these when its
    /// [`ObsOptions`](qsp_obs::ObsOptions) request `timing_detail`.
    pub fn attach_obs(&self, probe: Arc<Histogram>, evict: Arc<Histogram>) {
        let _ = self.timing.set(CacheTiming { probe, evict });
    }

    /// The number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The effective size bound: the configured capacity rounded up to a
    /// multiple of the shard count (`0` = unbounded). The cache never holds
    /// more classes than this.
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    /// Number of solved canonical classes currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no classes.
    pub fn is_empty(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.lock().expect("cache shard poisoned").is_empty())
    }

    /// Drops every cached class and template (counters are preserved).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().expect("cache shard poisoned").clear();
        }
        for shard in self.templates.iter() {
            shard.lock().expect("cache template shard poisoned").clear();
        }
    }

    /// A consistent-enough snapshot of the counters plus the current entry
    /// count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    fn shard_index(&self, key: &ClassKey) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) & self.shard_mask
    }

    fn shard_of(&self, key: &ClassKey) -> &Mutex<HashMap<ClassKey, Slot>> {
        &self.shards[self.shard_index(key)]
    }

    /// Looks up a circuit template for a support-pattern class key.
    pub(crate) fn lookup_template(&self, key: &ClassKey) -> Option<Arc<CircuitTemplate>> {
        let shard = self.templates[self.shard_index(key)]
            .lock()
            .expect("cache template shard poisoned");
        shard.get(key).cloned()
    }

    /// Registers a template for a support-pattern class. First writer wins:
    /// a key that already holds a template is left untouched so concurrent
    /// captures of the same class stay deterministic. Template shards honour
    /// the same per-shard bound as circuit shards but skip rather than
    /// evict — templates carry no recency and losing one is always safe.
    /// Returns whether the template was stored.
    pub(crate) fn insert_template(&self, key: ClassKey, template: Arc<CircuitTemplate>) -> bool {
        let mut shard = self.templates[self.shard_index(&key)]
            .lock()
            .expect("cache template shard poisoned");
        if shard.contains_key(&key) {
            return false;
        }
        if self.per_shard_capacity > 0 && shard.len() >= self.per_shard_capacity {
            return false;
        }
        shard.insert(key, template);
        true
    }

    /// Number of support-pattern class templates currently held.
    pub fn template_count(&self) -> usize {
        self.templates
            .iter()
            .map(|s| s.lock().expect("cache template shard poisoned").len())
            .sum()
    }

    /// Visits every cached class key under the shard locks. Used to seed the
    /// signature interner after a snapshot load.
    pub(crate) fn for_each_key(&self, mut f: impl FnMut(&ClassKey)) {
        for shard in self.shards.iter() {
            let shard = shard.lock().expect("cache shard poisoned");
            for key in shard.keys() {
                f(key);
            }
        }
    }

    /// Looks up a class, recording a hit or miss and refreshing the entry's
    /// recency on a hit.
    pub fn lookup(&self, key: &ClassKey) -> Option<Arc<CacheEntry>> {
        let timing = self.timing.get();
        let started = timing.map(|_| Instant::now());
        let mut shard = self.shard_of(key).lock().expect("cache shard poisoned");
        let found = match shard.get_mut(key) {
            Some(slot) => {
                slot.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&slot.entry))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        };
        drop(shard);
        if let (Some(timing), Some(started)) = (timing, started) {
            timing.probe.record(started.elapsed());
        }
        found
    }

    /// Inserts (or replaces) a solved class, evicting the shard's
    /// least-recently-used class first when the shard is at its bound.
    pub fn insert(&self, key: ClassKey, entry: Arc<CacheEntry>) {
        let last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_of(&key).lock().expect("cache shard poisoned");
        self.evict_if_full(&mut shard, &key);
        shard.insert(key, Slot { entry, last_used });
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    fn evict_if_full(&self, shard: &mut HashMap<ClassKey, Slot>, incoming: &ClassKey) {
        if self.per_shard_capacity > 0
            && shard.len() >= self.per_shard_capacity
            && !shard.contains_key(incoming)
        {
            let timing = self.timing.get();
            let started = timing.map(|_| Instant::now());
            let victim = shard
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                shard.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            if let (Some(timing), Some(started)) = (timing, started) {
                timing.evict.record(started.elapsed());
            }
        }
    }

    /// Inserts a solved class unless the cache already holds a cheaper (or
    /// equally cheap) successful circuit for the same key. Returns whether
    /// the incoming entry was kept. A successful circuit always beats a
    /// failed one; ties keep the resident entry.
    pub fn merge_entry(&self, key: ClassKey, entry: Arc<CacheEntry>) -> bool {
        let last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_of(&key).lock().expect("cache shard poisoned");
        if let Some(existing) = shard.get(&key) {
            let keep_resident = match (&existing.entry.circuit, &entry.circuit) {
                (Ok(old), Ok(new)) => old.cnot_cost() <= new.cnot_cost(),
                (Ok(_), Err(_)) | (Err(_), Err(_)) => true,
                (Err(_), Ok(_)) => false,
            };
            if keep_resident {
                return false;
            }
        } else {
            self.evict_if_full(&mut shard, &key);
        }
        shard.insert(key, Slot { entry, last_used });
        self.insertions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Serializes every cached class whose synthesis succeeded into the
    /// writer as JSON. Rotation angles are written as `f64` bit patterns, so
    /// a round-trip is lossless.
    pub fn write_snapshot<W: Write>(&self, mut writer: W) -> io::Result<usize> {
        let mut entries = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.lock().expect("cache shard poisoned");
            for (key, slot) in shard.iter() {
                let Ok(circuit) = &slot.entry.circuit else {
                    continue; // errors are session-local; never persisted
                };
                entries.push(entry_value(key, &slot.entry.transform, circuit));
            }
        }
        let written = entries.len();
        let root = Value::Object(vec![
            ("version".to_string(), Value::Num(SNAPSHOT_FORMAT_VERSION)),
            ("entries".to_string(), Value::Array(entries)),
        ]);
        let mut body = root.to_json();
        body.push('\n');
        writer.write_all(body.as_bytes())?;
        Ok(written)
    }

    /// Saves a warm-start snapshot to `path`. Returns the number of classes
    /// written.
    pub fn save_snapshot(&self, path: &std::path::Path) -> io::Result<usize> {
        let file = std::fs::File::create(path)?;
        self.write_snapshot(io::BufWriter::new(file))
    }

    /// Loads classes from a snapshot produced by
    /// [`ShardedCache::write_snapshot`], inserting them through the normal
    /// eviction-aware path (resident entries with the same key are
    /// replaced). Returns the number of classes loaded.
    pub fn read_snapshot<R: Read>(&self, reader: R) -> io::Result<usize> {
        let entries = parse_snapshot(reader)?;
        let loaded = entries.len();
        for (key, cache_entry) in entries {
            self.insert(key, Arc::new(cache_entry));
        }
        Ok(loaded)
    }

    /// Loads a warm-start snapshot from `path`. Returns the number of
    /// classes loaded.
    pub fn load_snapshot(&self, path: &std::path::Path) -> io::Result<usize> {
        let file = std::fs::File::open(path)?;
        self.read_snapshot(io::BufReader::new(file))
    }

    /// Merges a snapshot into this (possibly non-empty) cache: every
    /// snapshot class flows through [`ShardedCache::merge_entry`], so a key
    /// collision keeps whichever circuit is cheaper. Returns the number of
    /// classes actually adopted.
    pub fn merge_from_reader<R: Read>(&self, reader: R) -> io::Result<usize> {
        let mut adopted = 0usize;
        for (key, cache_entry) in parse_snapshot(reader)? {
            if self.merge_entry(key, Arc::new(cache_entry)) {
                adopted += 1;
            }
        }
        Ok(adopted)
    }

    /// Merges a snapshot file into this cache (see
    /// [`ShardedCache::merge_from_reader`]). Returns the number of classes
    /// adopted.
    pub fn merge_snapshot(&self, path: &std::path::Path) -> io::Result<usize> {
        let file = std::fs::File::open(path)?;
        self.merge_from_reader(io::BufReader::new(file))
    }

    /// Merges another in-process cache into this one (cheaper circuit wins,
    /// like [`ShardedCache::merge_from_reader`], but sharing the entries by
    /// `Arc` instead of round-tripping through JSON). Returns the number of
    /// classes adopted.
    pub fn merge_from(&self, other: &ShardedCache) -> usize {
        let mut adopted = 0usize;
        for shard in other.shards.iter() {
            // Collect under the source shard lock, merge outside it, so the
            // two caches' locks are never held together (self == other
            // would deadlock otherwise, and lock order stays trivial).
            let entries: Vec<(ClassKey, Arc<CacheEntry>)> = shard
                .lock()
                .expect("cache shard poisoned")
                .iter()
                .map(|(key, slot)| (key.clone(), Arc::clone(&slot.entry)))
                .collect();
            for (key, entry) in entries {
                if self.merge_entry(key, entry) {
                    adopted += 1;
                }
            }
        }
        adopted
    }
}

/// The cache snapshot format version this build reads and writes.
///
/// * v1 — pre-fingerprint keys (no `fp` field).
/// * v2 — fingerprinted keys, brute-force canonical entries.
/// * v3 — invariant-pipeline keys: entries are the orbit-pipeline canonical
///   vector and every entry carries the Stage 0 signature (`sig`).
///
/// Older versions are *rejected* with the typed
/// [`SynthesisError::SnapshotVersion`]: their canonical entries were chosen
/// by a different search, so loading them would populate keys no current
/// request can ever produce (v1 additionally lacks the options fingerprint).
pub const SNAPSHOT_FORMAT_VERSION: u64 = 3;

fn invalid_data<E: Into<Box<dyn std::error::Error + Send + Sync>>>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Parses and validates a full snapshot document into `(key, entry)` pairs.
fn parse_snapshot<R: Read>(mut reader: R) -> io::Result<Vec<(ClassKey, CacheEntry)>> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    // Syntax errors surface as the typed `SynthesisError::Json` (with its
    // byte offset) wrapped in `io::ErrorKind::InvalidData`.
    let value = json::parse(&text).map_err(|e| invalid_data(SynthesisError::from(e)))?;
    if !matches!(value, Value::Object(_)) {
        return Err(invalid_data("snapshot root must be an object"));
    }
    let version = value
        .get("version")
        .and_then(Value::as_u64)
        .ok_or_else(|| invalid_data("version"))?;
    if version != SNAPSHOT_FORMAT_VERSION {
        return Err(invalid_data(SynthesisError::SnapshotVersion {
            found: version,
            supported: SNAPSHOT_FORMAT_VERSION,
        }));
    }
    value
        .get("entries")
        .and_then(Value::as_array)
        .ok_or_else(|| invalid_data("entries must be an array"))?
        .iter()
        .map(|entry| parse_entry(entry).map_err(invalid_data))
        .collect()
}

fn entry_value(key: &ClassKey, transform: &StateTransform, circuit: &Circuit) -> Value {
    let key_pairs = key
        .entries
        .iter()
        .map(|&(index, bits)| Value::Array(vec![Value::Num(index), Value::Num(bits)]))
        .collect();
    let perm = transform
        .perm
        .iter()
        .map(|&p| Value::Num(p as u64))
        .collect();
    let gates = circuit.iter().map(gate_value).collect();
    Value::Object(vec![
        ("n".to_string(), Value::Num(key.num_qubits as u64)),
        ("sig".to_string(), Value::Num(key.signature)),
        ("fp".to_string(), Value::Num(key.options_fp)),
        ("key".to_string(), Value::Array(key_pairs)),
        ("perm".to_string(), Value::Array(perm)),
        ("mask".to_string(), Value::Num(transform.mask)),
        ("gates".to_string(), Value::Array(gates)),
    ])
}

fn gate_value(gate: &Gate) -> Value {
    let tag = |g: &str| ("g".to_string(), Value::Str(g.to_string()));
    match gate {
        Gate::X { target } => Value::Object(vec![
            tag("x"),
            ("t".to_string(), Value::Num(*target as u64)),
        ]),
        Gate::Ry { target, theta } => Value::Object(vec![
            tag("ry"),
            ("t".to_string(), Value::Num(*target as u64)),
            ("a".to_string(), Value::Num(theta.to_bits())),
        ]),
        Gate::Cnot { control, target } => Value::Object(vec![
            tag("cx"),
            ("c".to_string(), Value::Num(control.qubit as u64)),
            ("p".to_string(), Value::Bool(control.polarity)),
            ("t".to_string(), Value::Num(*target as u64)),
        ]),
        Gate::Mcry {
            controls,
            target,
            theta,
        } => {
            let cs = controls
                .iter()
                .map(|c| Value::Array(vec![Value::Num(c.qubit as u64), Value::Bool(c.polarity)]))
                .collect();
            Value::Object(vec![
                tag("mcry"),
                ("cs".to_string(), Value::Array(cs)),
                ("t".to_string(), Value::Num(*target as u64)),
                ("a".to_string(), Value::Num(theta.to_bits())),
            ])
        }
    }
}

fn parse_entry(value: &json::Value) -> Result<(ClassKey, CacheEntry), String> {
    let object = value.as_object().ok_or("entry must be an object")?;
    let field = |name: &str| -> Result<&json::Value, String> {
        object
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field `{name}`"))
    };
    let n = field("n")?.as_u64().ok_or("n")? as usize;
    let signature = field("sig")?.as_u64().ok_or("sig")?;
    let options_fp = field("fp")?.as_u64().ok_or("fp")?;
    let key_entries = field("key")?
        .as_array()
        .ok_or("key")?
        .iter()
        .map(|pair| {
            let pair = pair.as_array().ok_or("key pair")?;
            match pair {
                [a, b] => Ok((
                    a.as_u64().ok_or("key index")?,
                    b.as_u64().ok_or("key bits")?,
                )),
                _ => Err("key pair arity".to_string()),
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    let perm = field("perm")?
        .as_array()
        .ok_or("perm")?
        .iter()
        .map(|p| {
            p.as_u64()
                .map(|v| v as usize)
                .ok_or_else(|| "perm entry".to_string())
        })
        .collect::<Result<Vec<_>, String>>()?;
    if perm.len() != n {
        return Err("perm length must match the register width".to_string());
    }
    let mut seen = vec![false; n];
    for &p in &perm {
        if p >= n || seen[p] {
            return Err("perm must be a bijection on 0..n".to_string());
        }
        seen[p] = true;
    }
    let mask = field("mask")?.as_u64().ok_or("mask")?;
    let gates = field("gates")?
        .as_array()
        .ok_or("gates")?
        .iter()
        .map(parse_gate)
        .collect::<Result<Vec<_>, String>>()?;
    let circuit = Circuit::from_gates(n, gates).map_err(|e| e.to_string())?;
    Ok((
        ClassKey::new(signature, n, key_entries, options_fp),
        CacheEntry {
            circuit: Ok(circuit),
            transform: StateTransform { perm, mask },
            origin: EntryOrigin::Fresh,
        },
    ))
}

fn parse_gate(value: &json::Value) -> Result<Gate, String> {
    let object = value.as_object().ok_or("gate must be an object")?;
    let field = |name: &str| -> Result<&json::Value, String> {
        object
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing gate field `{name}`"))
    };
    let kind = field("g")?.as_str().ok_or("g")?;
    let target = field("t")?.as_u64().ok_or("t")? as usize;
    match kind {
        "x" => Ok(Gate::X { target }),
        "ry" => Ok(Gate::Ry {
            target,
            theta: f64::from_bits(field("a")?.as_u64().ok_or("a")?),
        }),
        "cx" => Ok(Gate::Cnot {
            control: Control {
                qubit: field("c")?.as_u64().ok_or("c")? as usize,
                polarity: field("p")?.as_bool().ok_or("p")?,
            },
            target,
        }),
        "mcry" => {
            let controls = field("cs")?
                .as_array()
                .ok_or("cs")?
                .iter()
                .map(|pair| {
                    let pair = pair.as_array().ok_or("control pair")?;
                    match pair {
                        [q, p] => Ok(Control {
                            qubit: q.as_u64().ok_or("control qubit")? as usize,
                            polarity: p.as_bool().ok_or("control polarity")?,
                        }),
                        _ => Err("control pair arity".to_string()),
                    }
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Gate::Mcry {
                controls,
                target,
                theta: f64::from_bits(field("a")?.as_u64().ok_or("a")?),
            })
        }
        other => Err(format!("unknown gate kind `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: usize, seed: u64) -> ClassKey {
        ClassKey::new(
            seed.wrapping_mul(0x9E37_79B9),
            n,
            vec![(seed, seed.wrapping_mul(31)), (seed + 7, seed ^ 42)],
            0xF00D,
        )
    }

    fn entry(n: usize) -> Arc<CacheEntry> {
        let mut circuit = Circuit::new(n);
        circuit.push(Gate::cnot(0, 1));
        circuit.push(Gate::ry(0, 0.25));
        Arc::new(CacheEntry {
            circuit: Ok(circuit),
            transform: StateTransform::identity(n),
            origin: EntryOrigin::Fresh,
        })
    }

    #[test]
    fn lookup_and_counters() {
        let cache = ShardedCache::new(CacheConfig {
            shards: 4,
            capacity: 0,
        });
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 0);
        assert!(cache.lookup(&key(3, 1)).is_none());
        cache.insert(key(3, 1), entry(3));
        assert!(cache.lookup(&key(3, 1)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
        cache.clear();
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn eviction_respects_the_bound_and_prefers_stale_entries() {
        let cache = ShardedCache::new(CacheConfig {
            shards: 1,
            capacity: 3,
        });
        assert_eq!(cache.capacity(), 3);
        for seed in 0..3 {
            cache.insert(key(3, seed), entry(3));
        }
        // Touch seeds 1 and 2 so seed 0 is the LRU victim.
        assert!(cache.lookup(&key(3, 1)).is_some());
        assert!(cache.lookup(&key(3, 2)).is_some());
        cache.insert(key(3, 99), entry(3));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 1);
        assert!(
            cache.lookup(&key(3, 0)).is_none(),
            "LRU entry must be evicted"
        );
        assert!(cache.lookup(&key(3, 99)).is_some());
    }

    fn template(n: usize) -> Arc<CircuitTemplate> {
        Arc::new(CircuitTemplate {
            ops: vec![TransitionOp::RyMerge { target: 0 }],
            frame: StateTransform::identity(n),
            active: (0..n).collect(),
            witness: StateTransform::identity(n),
        })
    }

    #[test]
    fn template_store_is_first_wins_and_cleared_with_the_cache() {
        let cache = ShardedCache::new(CacheConfig {
            shards: 2,
            capacity: 0,
        });
        assert!(cache.lookup_template(&key(3, 1)).is_none());
        assert!(cache.insert_template(key(3, 1), template(3)));
        let first = cache.lookup_template(&key(3, 1)).expect("stored");
        // A second capture for the same class is dropped.
        assert!(!cache.insert_template(key(3, 1), template(3)));
        assert!(Arc::ptr_eq(
            &first,
            &cache.lookup_template(&key(3, 1)).unwrap()
        ));
        assert_eq!(cache.template_count(), 1);
        cache.clear();
        assert_eq!(cache.template_count(), 0);
        assert!(cache.lookup_template(&key(3, 1)).is_none());
    }

    #[test]
    fn template_store_skips_inserts_beyond_the_shard_bound() {
        let cache = ShardedCache::new(CacheConfig {
            shards: 1,
            capacity: 2,
        });
        assert!(cache.insert_template(key(3, 1), template(3)));
        assert!(cache.insert_template(key(3, 2), template(3)));
        // Bounded caches drop, rather than evict, excess templates.
        assert!(!cache.insert_template(key(3, 3), template(3)));
        assert_eq!(cache.template_count(), 2);
    }

    #[test]
    fn for_each_key_visits_every_cached_class() {
        let cache = ShardedCache::new(CacheConfig {
            shards: 4,
            capacity: 0,
        });
        for seed in 0..5 {
            cache.insert(key(3, seed), entry(3));
        }
        let mut seen = Vec::new();
        cache.for_each_key(|k| seen.push(k.clone()));
        seen.sort_by_key(|k| k.signature);
        let mut expected: Vec<ClassKey> = (0..5).map(|seed| key(3, seed)).collect();
        expected.sort_by_key(|k| k.signature);
        assert_eq!(seen, expected);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = ShardedCache::new(CacheConfig {
            shards: 1,
            capacity: 2,
        });
        cache.insert(key(3, 1), entry(3));
        cache.insert(key(3, 2), entry(3));
        cache.insert(key(3, 1), entry(3)); // replace, not insert
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn snapshot_round_trips_losslessly() {
        let cache = ShardedCache::new(CacheConfig {
            shards: 2,
            capacity: 0,
        });
        let mut circuit = Circuit::new(3);
        circuit.push(Gate::x(2));
        circuit.push(Gate::cnot_negated(1, 0));
        circuit.push(Gate::ry(1, std::f64::consts::FRAC_PI_3));
        circuit.push(Gate::Mcry {
            controls: vec![Control::positive(0), Control::negative(2)],
            target: 1,
            theta: -1.234567891011e-3,
        });
        let transform = StateTransform {
            perm: vec![2, 0, 1],
            mask: 0b101,
        };
        cache.insert(
            key(3, 5),
            Arc::new(CacheEntry {
                circuit: Ok(circuit.clone()),
                transform: transform.clone(),
                origin: EntryOrigin::Fresh,
            }),
        );
        // Failed classes never reach the snapshot.
        cache.insert(
            key(3, 6),
            Arc::new(CacheEntry {
                circuit: Err(SynthesisError::UnsupportedState {
                    reason: "test".to_string(),
                }),
                transform: StateTransform::identity(3),
                origin: EntryOrigin::Fresh,
            }),
        );

        let mut buffer = Vec::new();
        let written = cache.write_snapshot(&mut buffer).unwrap();
        assert_eq!(written, 1);

        let restored = ShardedCache::new(CacheConfig {
            shards: 8,
            capacity: 0,
        });
        let loaded = restored.read_snapshot(buffer.as_slice()).unwrap();
        assert_eq!(loaded, 1);
        let entry = restored.lookup(&key(3, 5)).expect("loaded class present");
        assert_eq!(entry.circuit.as_ref().unwrap(), &circuit);
        assert_eq!(entry.transform, transform);
        assert!(restored.lookup(&key(3, 6)).is_none());
    }

    /// An entry whose circuit has exactly `cnots` CNOT gates.
    fn entry_with_cost(n: usize, cnots: usize) -> Arc<CacheEntry> {
        let mut circuit = Circuit::new(n);
        for _ in 0..cnots {
            circuit.push(Gate::cnot(0, 1));
        }
        Arc::new(CacheEntry {
            circuit: Ok(circuit),
            transform: StateTransform::identity(n),
            origin: EntryOrigin::Fresh,
        })
    }

    #[test]
    fn merge_entry_keeps_the_cheaper_circuit() {
        let cache = ShardedCache::new(CacheConfig {
            shards: 1,
            capacity: 0,
        });
        cache.insert(key(3, 1), entry_with_cost(3, 5));
        // A cheaper incoming circuit replaces the resident one...
        assert!(cache.merge_entry(key(3, 1), entry_with_cost(3, 2)));
        assert_eq!(cache.lookup(&key(3, 1)).unwrap().cnot_cost(), Some(2));
        // ...a costlier (or equal) one does not.
        assert!(!cache.merge_entry(key(3, 1), entry_with_cost(3, 4)));
        assert!(!cache.merge_entry(key(3, 1), entry_with_cost(3, 2)));
        assert_eq!(cache.lookup(&key(3, 1)).unwrap().cnot_cost(), Some(2));
        // A failed incoming entry never displaces a success; a success
        // always displaces a failure.
        let failed = Arc::new(CacheEntry {
            circuit: Err(SynthesisError::UnsupportedState {
                reason: "test".to_string(),
            }),
            transform: StateTransform::identity(3),
            origin: EntryOrigin::Fresh,
        });
        assert!(!cache.merge_entry(key(3, 1), Arc::clone(&failed)));
        cache.insert(key(3, 2), failed);
        assert!(cache.merge_entry(key(3, 2), entry_with_cost(3, 9)));
        // New keys are simply adopted.
        assert!(cache.merge_entry(key(3, 3), entry_with_cost(3, 1)));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn merge_snapshot_into_nonempty_cache_prefers_cheaper_entries() {
        let warm = ShardedCache::new(CacheConfig {
            shards: 2,
            capacity: 0,
        });
        warm.insert(key(3, 1), entry_with_cost(3, 2)); // cheaper than resident
        warm.insert(key(3, 2), entry_with_cost(3, 7)); // costlier than resident
        warm.insert(key(3, 3), entry_with_cost(3, 4)); // novel
        let mut snapshot = Vec::new();
        assert_eq!(warm.write_snapshot(&mut snapshot).unwrap(), 3);

        let cache = ShardedCache::new(CacheConfig {
            shards: 4,
            capacity: 0,
        });
        cache.insert(key(3, 1), entry_with_cost(3, 6));
        cache.insert(key(3, 2), entry_with_cost(3, 3));
        let adopted = cache.merge_from_reader(snapshot.as_slice()).unwrap();
        assert_eq!(adopted, 2, "the cheaper collision and the novel key");
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.lookup(&key(3, 1)).unwrap().cnot_cost(), Some(2));
        assert_eq!(cache.lookup(&key(3, 2)).unwrap().cnot_cost(), Some(3));
        assert_eq!(cache.lookup(&key(3, 3)).unwrap().cnot_cost(), Some(4));
    }

    #[test]
    fn merge_from_shares_entries_without_serialization() {
        let source = ShardedCache::new(CacheConfig {
            shards: 2,
            capacity: 0,
        });
        source.insert(key(3, 1), entry_with_cost(3, 2));
        source.insert(key(3, 2), entry_with_cost(3, 7));
        let cache = ShardedCache::new(CacheConfig {
            shards: 8,
            capacity: 0,
        });
        cache.insert(key(3, 2), entry_with_cost(3, 3)); // cheaper resident
        assert_eq!(cache.merge_from(&source), 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(&key(3, 1)).unwrap().cnot_cost(), Some(2));
        assert_eq!(cache.lookup(&key(3, 2)).unwrap().cnot_cost(), Some(3));
        // The adopted entry is the same allocation, not a copy.
        assert!(Arc::ptr_eq(
            &cache.lookup(&key(3, 1)).unwrap(),
            &source.lookup(&key(3, 1)).unwrap()
        ));
        // Self-merge must not deadlock (locks are never held together).
        assert_eq!(cache.merge_from(&cache), 0);
    }

    #[test]
    fn merge_respects_the_size_bound() {
        let cache = ShardedCache::new(CacheConfig {
            shards: 1,
            capacity: 2,
        });
        let warm = ShardedCache::new(CacheConfig {
            shards: 1,
            capacity: 0,
        });
        for seed in 0..5 {
            warm.insert(key(3, seed), entry_with_cost(3, seed as usize + 1));
        }
        let mut snapshot = Vec::new();
        warm.write_snapshot(&mut snapshot).unwrap();
        cache.merge_from_reader(snapshot.as_slice()).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn snapshot_rejects_garbage() {
        let cache = ShardedCache::new(CacheConfig::default());
        assert!(cache.read_snapshot("not json".as_bytes()).is_err());
        // A v3 entry without the signature or fingerprint is rejected.
        let no_sig = "{\"version\":3,\"entries\":[{\"n\":2,\"fp\":0,\"key\":[[0,1]],\"perm\":[0,1],\"mask\":0,\"gates\":[]}]}";
        assert!(cache.read_snapshot(no_sig.as_bytes()).is_err());
        let no_fp = "{\"version\":3,\"entries\":[{\"n\":2,\"sig\":0,\"key\":[[0,1]],\"perm\":[0,1],\"mask\":0,\"gates\":[]}]}";
        assert!(cache.read_snapshot(no_fp.as_bytes()).is_err());
        // A perm that is not a bijection is rejected.
        let bad = "{\"version\":3,\"entries\":[{\"n\":2,\"sig\":0,\"fp\":0,\"key\":[[0,1]],\"perm\":[0,0],\"mask\":0,\"gates\":[]}]}";
        assert!(cache.read_snapshot(bad.as_bytes()).is_err());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn outdated_snapshot_versions_are_rejected_with_the_typed_error() {
        let cache = ShardedCache::new(CacheConfig::default());
        // v1 (pre-fingerprint), v2 (pre-pipeline) and unknown future
        // versions all surface `SynthesisError::SnapshotVersion` behind the
        // io::Error, with the found/supported pair intact.
        for version in [1u64, 2, 4] {
            let doc = format!("{{\"version\":{version},\"entries\":[]}}");
            let error = cache.read_snapshot(doc.as_bytes()).unwrap_err();
            assert_eq!(error.kind(), io::ErrorKind::InvalidData);
            let inner = error
                .get_ref()
                .and_then(|e| e.downcast_ref::<SynthesisError>())
                .unwrap_or_else(|| panic!("version {version}: expected a typed error"));
            match inner {
                SynthesisError::SnapshotVersion { found, supported } => {
                    assert_eq!(*found, version);
                    assert_eq!(*supported, SNAPSHOT_FORMAT_VERSION);
                }
                other => panic!("expected SnapshotVersion, got {other:?}"),
            }
            assert!(inner.to_string().contains("snapshot version"));
        }
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn keys_with_different_fingerprints_are_distinct_classes() {
        let cache = ShardedCache::new(CacheConfig::unbounded());
        let entries = vec![(1u64, 2u64)];
        let a = ClassKey::new(0xBEEF, 3, entries.clone(), 10);
        let b = ClassKey::new(0xBEEF, 3, entries, 20);
        assert_ne!(a, b);
        assert_eq!(a.options_fingerprint(), 10);
        assert_eq!(a.signature(), 0xBEEF);
        cache.insert(a.clone(), entry_with_cost(3, 1));
        cache.insert(b.clone(), entry_with_cost(3, 4));
        assert_eq!(cache.len(), 2, "fingerprints must fork the class");
        assert_eq!(cache.lookup(&a).unwrap().cnot_cost(), Some(1));
        assert_eq!(cache.lookup(&b).unwrap().cnot_cost(), Some(4));
        // The fingerprint survives a snapshot round-trip.
        let mut snapshot = Vec::new();
        cache.write_snapshot(&mut snapshot).unwrap();
        let restored = ShardedCache::new(CacheConfig::unbounded());
        assert_eq!(restored.read_snapshot(snapshot.as_slice()).unwrap(), 2);
        assert_eq!(restored.lookup(&a).unwrap().cnot_cost(), Some(1));
        assert_eq!(restored.lookup(&b).unwrap().cnot_cost(), Some(4));
    }

    #[test]
    fn concurrent_counters_stay_consistent() {
        let cache = Arc::new(ShardedCache::new(CacheConfig {
            shards: 4,
            capacity: 0,
        }));
        let threads = 8;
        let per_thread = 200;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let k = key(4, (i % 50) as u64);
                        if cache.lookup(&k).is_none() {
                            cache.insert(k, entry(4));
                        }
                        let _ = t;
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(
            stats.hits + stats.misses,
            (threads * per_thread) as u64,
            "every lookup is counted exactly once"
        );
        assert_eq!(stats.entries, 50);
        assert!(stats.insertions >= 50);
    }
}
