//! The unified request/outcome contract of the synthesis stack.
//!
//! Every front door of the workspace — [`crate::ExactSynthesizer`],
//! [`crate::QspWorkflow`], [`crate::BatchSynthesizer`] and `qsp-serve`'s
//! `SynthesisService` — accepts the same typed [`SynthesisRequest`] and
//! produces the same provenance-rich [`SynthesisReport`]:
//!
//! * [`SynthesisRequest`] pairs a target state with per-request
//!   [`RequestOptions`]: solver strategy, node budget, the controlled-merge
//!   and compression ablations, a [`CachePolicy`], and an optional
//!   deadline/priority consumed by the serve layer. Options are *overrides*
//!   — anything left unset inherits the synthesizer's own configuration.
//! * [`SynthesisReport`] carries the circuit, its CNOT cost, a
//!   [`Provenance`] that says how the answer was produced (fresh solve,
//!   cache hit, batch-representative reconstruction or in-flight dedup
//!   attach — with the witness transform used), per-stage [`StageTimings`],
//!   and the [`ResolvedConfig`] the request was actually solved under.
//! * The [`Synthesizer`] trait is the generic seam: code that only needs
//!   "solve this request" can be written once against it.
//!
//! # Dedup soundness
//!
//! The correctness crux of per-request options: any option that can change
//! `cnot_cost` is folded into an **options fingerprint**
//! ([`ResolvedConfig::fingerprint`], computed by [`cost_fingerprint`]) which
//! becomes part of the canonical [`ClassKey`](crate::ClassKey). Two requests
//! for the same state with different *effective* cost-relevant options
//! therefore never share a cache entry, an in-batch representative or an
//! in-flight solve. Options that provably cannot change the cost — the
//! sequential-vs-portfolio strategy (bit-identical by the portfolio
//! contract), the admissible heuristic, cache policy, deadline and priority
//! — are deliberately excluded, so they keep deduplicating freely.
//!
//! # Example
//!
//! ```
//! use qsp_core::api::{CachePolicy, Provenance, SynthesisRequest, Synthesizer};
//! use qsp_core::{QspWorkflow, SearchStrategy};
//! use qsp_state::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let request = SynthesisRequest::new(generators::ghz(6)?)
//!     .with_strategy(SearchStrategy::Portfolio { workers: 2 })
//!     .with_cache_policy(CachePolicy::Use);
//! let report = QspWorkflow::new().synthesize_request(&request)?;
//! assert_eq!(report.cnot_cost, 5);
//! assert!(matches!(report.provenance, Provenance::Solved));
//! # Ok(())
//! # }
//! ```

use std::time::{Duration, Instant};

use qsp_circuit::Circuit;
use qsp_obs::RequestTrace;
use qsp_state::QuantumState;

use crate::engine::StateTransform;
use crate::error::SynthesisError;
use crate::search::config::SearchStrategy;
use crate::workflow::WorkflowConfig;

/// How a request interacts with the cross-batch synthesis cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CachePolicy {
    /// Normal operation: probe the cache, attach to in-flight solves of the
    /// same class, and publish fresh solves for later requests.
    #[default]
    Use,
    /// Probe the cache (and attach in flight) but never publish: the
    /// request benefits from warm state without mutating it. A `ReadOnly`
    /// class owner does not publish before retiring, so a late joiner may
    /// re-solve the class — always sound, occasionally redundant.
    ReadOnly,
    /// Ignore the cache entirely: no probe, no in-flight attach, no
    /// publish. The request is always a fresh, independent solve.
    Bypass,
}

/// An opaque tenant handle, resolved by the serving layer.
///
/// The serve layer's `TenantPolicy` assigns one id per configured tenant
/// (the id is the tenant's index in the policy); the wire layer resolves a
/// handshake's tenant *name* to an id once per connection and stamps it on
/// every request of that connection. A request without a tenant — or with an
/// id the service's policy does not know — is accounted to the service's
/// built-in default tenant.
///
/// Tenancy is a scheduling and admission concern only: it can never change a
/// request's `cnot_cost`, so it is excluded from the options fingerprint and
/// requests from different tenants deduplicate freely against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(u32);

impl TenantId {
    /// Wraps a raw tenant id (the tenant's index in the serve layer's
    /// policy).
    pub const fn new(raw: u32) -> Self {
        TenantId(raw)
    }

    /// The raw id value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

/// Per-request overrides on top of a synthesizer's base configuration.
///
/// Every field is optional (or has a neutral default): an empty
/// `RequestOptions` resolves to exactly the synthesizer's own configuration,
/// so `SynthesisRequest::new(target)` behaves like the old plain entry
/// points. Cost-relevant overrides fork the request into its own dedup/cache
/// class (see the [module docs](self)).
///
/// # Example
///
/// ```
/// use qsp_core::api::{CachePolicy, RequestOptions};
/// use qsp_core::SearchStrategy;
///
/// let options = RequestOptions::new()
///     .with_strategy(SearchStrategy::Portfolio { workers: 4 })
///     .with_node_budget(500_000)
///     .with_controlled_merges(false)
///     .with_cache_policy(CachePolicy::ReadOnly)
///     .with_priority(7);
/// assert_eq!(options.max_expanded_nodes, Some(500_000));
/// assert_eq!(options.enable_controlled_merges, Some(false));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub struct RequestOptions {
    /// Sequential-vs-portfolio solver scheduling override. Never changes
    /// `cnot_cost` (the portfolio contract), so it does not fork the dedup
    /// class.
    pub strategy: Option<SearchStrategy>,
    /// A* node-budget override (cost-relevant: an exhausted budget changes
    /// the workflow's fallback choices).
    pub max_expanded_nodes: Option<usize>,
    /// Controlled-merge (CRy) ablation override (cost-relevant: restricting
    /// the library can only increase CNOT counts — or fail outright).
    pub enable_controlled_merges: Option<bool>,
    /// Sec. V-B PU(2) distance-compression ablation override (cost-relevant:
    /// the compressed search is approximate and may settle a larger count).
    pub permutation_compression: Option<bool>,
    /// Peephole-optimizer override on the final circuit (cost-relevant: the
    /// optimizer may remove CNOTs).
    pub optimize: Option<bool>,
    /// How this request interacts with the synthesis cache and the serve
    /// layer's in-flight dedup. Not cost-relevant.
    pub cache: CachePolicy,
    /// Deadline consumed by the serve layer: a request still queued past its
    /// deadline completes with a timeout instead of being solved. Ignored by
    /// the in-process synthesizers.
    pub deadline: Option<Instant>,
    /// Scheduling priority consumed by the serve layer: within a drained
    /// micro-batch, deadline order goes first and higher priority breaks
    /// ties. Ignored by the in-process synthesizers.
    pub priority: u8,
    /// The tenant this request is billed to, consumed by the serve layer's
    /// admission control and weighted-fair drain. `None` (and any id the
    /// service's policy does not know) maps to the default tenant. Never
    /// cost-relevant; ignored by the in-process synthesizers.
    pub tenant: Option<TenantId>,
}

impl RequestOptions {
    /// No overrides: resolves to the synthesizer's own configuration.
    pub fn new() -> Self {
        RequestOptions::default()
    }

    /// Overrides the solver scheduling strategy.
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Overrides the A* node budget.
    pub fn with_node_budget(mut self, max_expanded_nodes: usize) -> Self {
        self.max_expanded_nodes = Some(max_expanded_nodes);
        self
    }

    /// Overrides the controlled-merge (CRy) ablation.
    pub fn with_controlled_merges(mut self, enabled: bool) -> Self {
        self.enable_controlled_merges = Some(enabled);
        self
    }

    /// Overrides the PU(2) distance-compression ablation.
    pub fn with_permutation_compression(mut self, enabled: bool) -> Self {
        self.permutation_compression = Some(enabled);
        self
    }

    /// Overrides whether the peephole optimizer runs on the final circuit.
    pub fn with_optimize(mut self, enabled: bool) -> Self {
        self.optimize = Some(enabled);
        self
    }

    /// Sets the cache policy.
    pub fn with_cache_policy(mut self, cache: CachePolicy) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the serve-layer deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the serve-layer scheduling priority (higher is served earlier
    /// among requests with equal deadlines).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the serve-layer tenant the request is billed to.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// Applies the overrides to a base configuration and stamps the
    /// cost-relevant options fingerprint.
    pub fn resolve(&self, base: &WorkflowConfig) -> ResolvedConfig {
        let mut search = base.search;
        if let Some(strategy) = self.strategy {
            search.strategy = strategy;
        }
        if let Some(budget) = self.max_expanded_nodes {
            search.max_expanded_nodes = budget;
        }
        if let Some(merges) = self.enable_controlled_merges {
            search.enable_controlled_merges = merges;
        }
        if let Some(compression) = self.permutation_compression {
            search.permutation_compression = compression;
        }
        let workflow = WorkflowConfig {
            search,
            optimize: self.optimize.unwrap_or(base.optimize),
        };
        ResolvedConfig {
            fingerprint: cost_fingerprint(&workflow),
            workflow,
            cache: self.cache,
        }
    }
}

/// The effective configuration a request was solved under: the base config
/// with the request's overrides applied, plus the cost-relevant fingerprint
/// that keyed its dedup/cache class.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct ResolvedConfig {
    /// The effective workflow configuration (search tunables + optimizer).
    pub workflow: WorkflowConfig,
    /// The request's cache policy.
    pub cache: CachePolicy,
    /// Hash of every cost-relevant option (see [`cost_fingerprint`]); part
    /// of the canonical [`ClassKey`](crate::ClassKey).
    pub fingerprint: u64,
}

impl Default for ResolvedConfig {
    fn default() -> Self {
        RequestOptions::default().resolve(&WorkflowConfig::default())
    }
}

/// Fingerprints the options that can change a request's `cnot_cost`, using
/// a process-independent FNV-1a hash (stable across builds, so warm-start
/// snapshots remain valid between processes).
///
/// Included: the exact-synthesis activation thresholds, the node budget,
/// both ablations (PU(2) compression, controlled merges) and the optimizer
/// flag. Excluded — and therefore free to dedup across — are the solver
/// strategy (bit-identical cost by the portfolio contract) and the
/// admissible heuristic (never changes the result, only the effort).
pub fn cost_fingerprint(config: &WorkflowConfig) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(PRIME);
        }
    };
    mix(config.search.max_qubits as u64);
    mix(config.search.max_cardinality as u64);
    mix(config.search.max_expanded_nodes as u64);
    mix(config.search.permutation_compression as u64);
    mix(config.search.enable_controlled_merges as u64);
    mix(config.optimize as u64);
    hash
}

/// A typed synthesis request: the target state plus per-request options.
///
/// Build one with [`SynthesisRequest::new`] and the `with_*` methods (which
/// delegate to [`RequestOptions`]); hand it to any [`Synthesizer`] — or to
/// `qsp-serve`'s `SynthesisService::submit`, which additionally honours the
/// deadline and priority.
///
/// # Example
///
/// ```
/// use std::time::{Duration, Instant};
/// use qsp_core::api::{CachePolicy, SynthesisRequest};
/// use qsp_state::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let request = SynthesisRequest::new(generators::w_state(4)?)
///     .with_deadline(Instant::now() + Duration::from_secs(5))
///     .with_priority(3)
///     .with_cache_policy(CachePolicy::ReadOnly);
/// assert_eq!(request.options.priority, 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SynthesisRequest<S> {
    /// The target state to prepare.
    pub target: S,
    /// Per-request overrides and serve-layer scheduling hints.
    pub options: RequestOptions,
}

impl<S: QuantumState> SynthesisRequest<S> {
    /// A request with no overrides: solved exactly like a call to the old
    /// plain entry points.
    pub fn new(target: S) -> Self {
        SynthesisRequest {
            target,
            options: RequestOptions::default(),
        }
    }

    /// Replaces the whole options block.
    pub fn with_options(mut self, options: RequestOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the solver scheduling strategy.
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.options.strategy = Some(strategy);
        self
    }

    /// Overrides the A* node budget.
    pub fn with_node_budget(mut self, max_expanded_nodes: usize) -> Self {
        self.options.max_expanded_nodes = Some(max_expanded_nodes);
        self
    }

    /// Overrides the controlled-merge (CRy) ablation.
    pub fn with_controlled_merges(mut self, enabled: bool) -> Self {
        self.options.enable_controlled_merges = Some(enabled);
        self
    }

    /// Overrides the PU(2) distance-compression ablation.
    pub fn with_permutation_compression(mut self, enabled: bool) -> Self {
        self.options.permutation_compression = Some(enabled);
        self
    }

    /// Overrides whether the peephole optimizer runs on the final circuit.
    pub fn with_optimize(mut self, enabled: bool) -> Self {
        self.options.optimize = Some(enabled);
        self
    }

    /// Sets the cache policy.
    pub fn with_cache_policy(mut self, cache: CachePolicy) -> Self {
        self.options.cache = cache;
        self
    }

    /// Sets the serve-layer deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.options.deadline = Some(deadline);
        self
    }

    /// Sets the serve-layer scheduling priority.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.options.priority = priority;
        self
    }

    /// Sets the serve-layer tenant the request is billed to.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.options.tenant = Some(tenant);
        self
    }
}

/// How a report's circuit was produced.
///
/// Reconstruction provenances carry the *witness transform* — the zero-cost
/// qubit permutation + X-flip mask mapping the request's own target onto the
/// canonical class fingerprint — that the circuit was rebuilt through.
/// Reconstruction preserves CNOT cost bit-for-bit, so every provenance
/// reports the same `cnot_cost` the request would get from a fresh solo
/// solve.
///
/// # Example
///
/// ```
/// use qsp_core::api::{Provenance, SynthesisRequest, Synthesizer};
/// use qsp_core::BatchSynthesizer;
/// use qsp_state::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let engine = BatchSynthesizer::new();
/// let request = SynthesisRequest::new(generators::ghz(4)?);
/// let first = engine.synthesize_request(&request)?;
/// assert!(matches!(first.provenance, Provenance::Solved));
/// let second = engine.synthesize_request(&request)?;
/// match &second.provenance {
///     Provenance::CacheHit { witness } => assert!(witness.is_identity()),
///     other => panic!("expected a cache hit, got {other:?}"),
/// }
/// assert_eq!(first.cnot_cost, second.cnot_cost);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Provenance {
    /// A fresh solver run on this request's own target.
    Solved,
    /// Served from the cross-batch synthesis cache: the cached class
    /// representative's circuit, reconstructed through this request's
    /// witness.
    CacheHit {
        /// This request's witness transform onto the class fingerprint.
        witness: StateTransform,
    },
    /// Reconstructed from the representative of the same canonical class
    /// solved earlier *in the same batch call*.
    ReconstructedFromBatchRep {
        /// This request's witness transform onto the class fingerprint.
        witness: StateTransform,
    },
    /// Attached to another request's in-flight solve of the same class
    /// (serve layer) and reconstructed through this request's witness.
    DedupAttach {
        /// This request's witness transform onto the class fingerprint.
        witness: StateTransform,
    },
    /// Instantiated from a cached *structure template* of this request's
    /// support-pattern class: the template's reduction schedule was replayed
    /// against this request's own amplitudes, so only the rotation angles —
    /// never the gate structure — were recomputed. The resulting circuit is
    /// bit-for-bit what a fresh solve would have produced (the capture gate
    /// only admits classes whose library-optimal cost is forced by the
    /// entanglement lower bound).
    TemplateInstantiated {
        /// This request's witness transform onto the class fingerprint
        /// (same convention as the other reuse provenances).
        witness: StateTransform,
    },
}

impl Provenance {
    /// Whether this request triggered its own fresh solver run.
    pub fn is_fresh_solve(&self) -> bool {
        matches!(self, Provenance::Solved)
    }

    /// The witness transform the circuit was reconstructed through, if any.
    pub fn witness(&self) -> Option<&StateTransform> {
        match self {
            Provenance::Solved => None,
            Provenance::CacheHit { witness }
            | Provenance::ReconstructedFromBatchRep { witness }
            | Provenance::DedupAttach { witness }
            | Provenance::TemplateInstantiated { witness } => Some(witness),
        }
    }
}

/// Wall-clock time spent in each stage of serving one request. Stages that
/// did not run for a given provenance are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct StageTimings {
    /// Canonical keying (computing the class fingerprint and witness).
    pub keying: Duration,
    /// Solver time this request itself consumed (zero for cache hits,
    /// batch followers and dedup attaches — their class representative
    /// spent it).
    pub solving: Duration,
    /// Witness reconstruction of the final circuit.
    pub reconstruction: Duration,
    /// End-to-end time for this request (for served requests: submission to
    /// completion, queueing included).
    pub total: Duration,
}

impl StageTimings {
    /// Assembles a timing block (used by the synthesizer implementations;
    /// the struct is non-exhaustive so downstream crates construct it here).
    pub fn new(
        keying: Duration,
        solving: Duration,
        reconstruction: Duration,
        total: Duration,
    ) -> Self {
        StageTimings {
            keying,
            solving,
            reconstruction,
            total,
        }
    }

    /// A block with only the total (and solver) time set: the shape of a
    /// direct, keying-free solve.
    pub fn solved_in(total: Duration) -> Self {
        StageTimings {
            keying: Duration::ZERO,
            solving: total,
            reconstruction: Duration::ZERO,
            total,
        }
    }
}

/// The provenance-rich outcome of one [`SynthesisRequest`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SynthesisReport {
    /// The preparation circuit (maps `|0…0⟩` to the target).
    pub circuit: Circuit,
    /// CNOT cost of the circuit — identical for every provenance of the
    /// same request.
    pub cnot_cost: usize,
    /// How the circuit was produced.
    pub provenance: Provenance,
    /// Per-stage wall-clock timings (the coarse view; [`Self::trace`]
    /// refines it).
    pub timings: StageTimings,
    /// The effective configuration the request was solved under (base
    /// config + request overrides + options fingerprint).
    pub resolved: ResolvedConfig,
    /// The request's trace id and fine-grained span timeline
    /// ([`qsp_obs::SpanKind`] taxonomy), when the producing layer assembled
    /// one (the batch and serve paths always do).
    pub trace: Option<RequestTrace>,
}

impl SynthesisReport {
    /// Assembles a report, deriving `cnot_cost` from the circuit.
    pub fn new(
        circuit: Circuit,
        provenance: Provenance,
        timings: StageTimings,
        resolved: ResolvedConfig,
    ) -> Self {
        SynthesisReport {
            cnot_cost: circuit.cnot_cost(),
            circuit,
            provenance,
            timings,
            resolved,
            trace: None,
        }
    }

    /// Attaches the request's span timeline.
    pub fn with_trace(mut self, trace: RequestTrace) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// The one synthesis seam every layer implements: request in, report out.
///
/// Implemented by [`crate::ExactSynthesizer`], [`crate::QspWorkflow`] and
/// [`crate::BatchSynthesizer`]; `qsp-serve` exposes the same contract
/// asynchronously through `SynthesisService::submit`.
///
/// Note: on types that still carry their deprecated state-based `synthesize`
/// inherent method, call the trait method through the inherent alias
/// `synthesize_request` (or via `Synthesizer::synthesize(&s, &request)`) —
/// Rust's method resolution prefers the inherent name.
pub trait Synthesizer<S: QuantumState> {
    /// Synthesizes one request into a provenance-rich report.
    ///
    /// # Errors
    ///
    /// Returns an error when the (effective) configuration rejects the
    /// target or the solve fails.
    fn synthesize(&self, request: &SynthesisRequest<S>) -> Result<SynthesisReport, SynthesisError>;

    /// Synthesizes a batch of requests, one report per request in order.
    /// The default implementation solves sequentially;
    /// [`crate::BatchSynthesizer`] overrides it with its parallel,
    /// deduplicating engine.
    fn synthesize_all(
        &self,
        requests: &[SynthesisRequest<S>],
    ) -> Vec<Result<SynthesisReport, SynthesisError>> {
        requests.iter().map(|r| self.synthesize(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::config::SearchConfig;

    #[test]
    fn empty_options_resolve_to_the_base_config() {
        let base = WorkflowConfig::default();
        let resolved = RequestOptions::new().resolve(&base);
        assert_eq!(resolved.workflow, base);
        assert_eq!(resolved.cache, CachePolicy::Use);
        assert_eq!(resolved.fingerprint, cost_fingerprint(&base));
        assert_eq!(ResolvedConfig::default(), resolved);
    }

    #[test]
    fn overrides_apply_and_compose() {
        let base = WorkflowConfig::default();
        let resolved = RequestOptions::new()
            .with_strategy(SearchStrategy::Portfolio { workers: 3 })
            .with_node_budget(1234)
            .with_controlled_merges(false)
            .with_permutation_compression(true)
            .with_optimize(true)
            .with_cache_policy(CachePolicy::Bypass)
            .resolve(&base);
        assert_eq!(
            resolved.workflow.search.strategy,
            SearchStrategy::Portfolio { workers: 3 }
        );
        assert_eq!(resolved.workflow.search.max_expanded_nodes, 1234);
        assert!(!resolved.workflow.search.enable_controlled_merges);
        assert!(resolved.workflow.search.permutation_compression);
        assert!(resolved.workflow.optimize);
        assert_eq!(resolved.cache, CachePolicy::Bypass);
        // Untouched fields inherit the base.
        assert_eq!(resolved.workflow.search.max_qubits, base.search.max_qubits);
    }

    #[test]
    fn fingerprint_separates_cost_relevant_options_only() {
        let base = WorkflowConfig::default();
        let default_fp = RequestOptions::new().resolve(&base).fingerprint;
        // Cost-relevant overrides fork the fingerprint...
        for options in [
            RequestOptions::new().with_node_budget(7),
            RequestOptions::new().with_controlled_merges(false),
            RequestOptions::new().with_permutation_compression(true),
            RequestOptions::new().with_optimize(true),
        ] {
            assert_ne!(
                options.resolve(&base).fingerprint,
                default_fp,
                "{options:?} must fork the class"
            );
        }
        // ...cost-neutral ones do not.
        for options in [
            RequestOptions::new().with_strategy(SearchStrategy::Portfolio { workers: 8 }),
            RequestOptions::new().with_cache_policy(CachePolicy::ReadOnly),
            RequestOptions::new().with_cache_policy(CachePolicy::Bypass),
            RequestOptions::new().with_priority(200),
            RequestOptions::new().with_deadline(Instant::now()),
            RequestOptions::new().with_tenant(TenantId::new(7)),
        ] {
            assert_eq!(
                options.resolve(&base).fingerprint,
                default_fp,
                "{options:?} must not fork the class"
            );
        }
        // An explicit override equal to the base value is the same class.
        let explicit = RequestOptions::new()
            .with_node_budget(base.search.max_expanded_nodes)
            .resolve(&base);
        assert_eq!(explicit.fingerprint, default_fp);
        // The fingerprint is a pure function of the effective config, not of
        // which side (base or override) supplied it.
        let via_base = RequestOptions::new().resolve(&WorkflowConfig {
            search: SearchConfig {
                max_expanded_nodes: 7,
                ..SearchConfig::default()
            },
            optimize: false,
        });
        let via_override = RequestOptions::new().with_node_budget(7).resolve(&base);
        assert_eq!(via_base.fingerprint, via_override.fingerprint);
    }

    #[test]
    fn request_builder_delegates_to_options() {
        let target = qsp_state::generators::ghz(3).unwrap();
        let deadline = Instant::now();
        let request = SynthesisRequest::new(target)
            .with_strategy(SearchStrategy::Sequential)
            .with_node_budget(99)
            .with_controlled_merges(true)
            .with_permutation_compression(false)
            .with_optimize(false)
            .with_cache_policy(CachePolicy::ReadOnly)
            .with_deadline(deadline)
            .with_priority(5);
        assert_eq!(request.options.strategy, Some(SearchStrategy::Sequential));
        assert_eq!(request.options.max_expanded_nodes, Some(99));
        assert_eq!(request.options.enable_controlled_merges, Some(true));
        assert_eq!(request.options.permutation_compression, Some(false));
        assert_eq!(request.options.optimize, Some(false));
        assert_eq!(request.options.cache, CachePolicy::ReadOnly);
        assert_eq!(request.options.deadline, Some(deadline));
        assert_eq!(request.options.priority, 5);
        let replaced = request.with_options(RequestOptions::new());
        assert_eq!(replaced.options, RequestOptions::default());
    }

    #[test]
    fn provenance_accessors() {
        use crate::engine::StateTransform;
        let witness = StateTransform::identity(3);
        assert!(Provenance::Solved.is_fresh_solve());
        assert!(Provenance::Solved.witness().is_none());
        for p in [
            Provenance::CacheHit {
                witness: witness.clone(),
            },
            Provenance::ReconstructedFromBatchRep {
                witness: witness.clone(),
            },
            Provenance::DedupAttach {
                witness: witness.clone(),
            },
            Provenance::TemplateInstantiated {
                witness: witness.clone(),
            },
        ] {
            assert!(!p.is_fresh_solve());
            assert_eq!(p.witness(), Some(&witness));
        }
    }

    #[test]
    fn timings_helpers() {
        let t = StageTimings::solved_in(Duration::from_millis(5));
        assert_eq!(t.solving, Duration::from_millis(5));
        assert_eq!(t.total, Duration::from_millis(5));
        assert_eq!(t.keying, Duration::ZERO);
        let explicit = StageTimings::new(
            Duration::from_micros(1),
            Duration::from_micros(2),
            Duration::from_micros(3),
            Duration::from_micros(6),
        );
        assert_eq!(explicit.reconstruction, Duration::from_micros(3));
    }
}
