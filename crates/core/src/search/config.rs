//! Configuration of the exact synthesis search and the engine-wide policies
//! built on top of it: the sequential-vs-portfolio solver strategy and the
//! eviction policy of the sharded synthesis cache.

/// How the exact solver schedules its A* search.
///
/// Every entry point — [`crate::ExactSynthesizer`], [`crate::QspWorkflow`]
/// and [`crate::BatchSynthesizer`] — resolves its solver through this one
/// policy, so switching a whole deployment between sequential and portfolio
/// search is a single-field change on [`SearchConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// One A* search on the target itself (the paper's Algorithm 1).
    #[default]
    Sequential,
    /// Portfolio search: several A* workers race on canonically-equivalent
    /// variants of the target (zero-cost qubit permutations and X-flip
    /// witnesses), sharing an atomic incumbent bound. The first worker to
    /// settle an optimal solution cancels the rest. Because every variant is
    /// reachable through zero-CNOT-cost operations, every worker's optimum
    /// equals the sequential optimum — the returned `cnot_cost` is
    /// bit-identical to [`SearchStrategy::Sequential`] under the default
    /// exact distance keys. Portfolio workers always use exact keys: the
    /// approximate `permutation_compression` is frame-dependent and is
    /// ignored while racing (it still applies to sequential runs).
    Portfolio {
        /// Number of racing workers; `0` uses the machine's available
        /// parallelism. A resolved worker count of 1 degenerates to the
        /// sequential search.
        workers: usize,
    },
}

impl SearchStrategy {
    /// The number of racing A* workers this strategy asks for (`1` for
    /// sequential search, the configured or auto-detected count otherwise).
    pub fn resolved_workers(&self) -> usize {
        match *self {
            SearchStrategy::Sequential => 1,
            SearchStrategy::Portfolio { workers: 0 } => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            SearchStrategy::Portfolio { workers } => workers,
        }
    }
}

/// Sharding and eviction policy of the canonical synthesis cache used by
/// [`crate::BatchSynthesizer`].
///
/// # Example
///
/// ```
/// use qsp_core::CacheConfig;
///
/// let bounded = CacheConfig::bounded(1024).with_shards(4);
/// assert_eq!(bounded.resolved_shards(), 4);
/// let auto = CacheConfig::default();
/// assert_eq!(auto.capacity, 0); // unbounded by default
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheConfig {
    /// Number of independent lock shards; `0` picks a power of two based on
    /// the machine's available parallelism. Values are rounded up to the next
    /// power of two so shard selection is a mask of the key hash.
    pub shards: usize,
    /// Maximum number of cached canonical classes across all shards; `0`
    /// disables eviction (unbounded cache). The bound is distributed evenly
    /// over the shards (rounded up per shard), and each shard evicts its
    /// least-recently-used entry when it would exceed its slice.
    pub capacity: usize,
}

impl CacheConfig {
    /// An unbounded cache with automatic shard selection.
    pub const fn unbounded() -> Self {
        CacheConfig {
            shards: 0,
            capacity: 0,
        }
    }

    /// Sets the shard count (`0` = parallelism-based automatic selection).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the total class capacity (`0` = unbounded, no eviction).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// A size-bounded cache with automatic shard selection.
    pub const fn bounded(capacity: usize) -> Self {
        CacheConfig {
            shards: 0,
            capacity,
        }
    }

    /// The effective shard count: the configured count (or a parallelism
    /// based default for `0`), rounded up to a power of two.
    pub fn resolved_shards(&self) -> usize {
        let raw = if self.shards > 0 {
            self.shards
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get() * 2)
                .unwrap_or(8)
                .max(8)
        };
        raw.next_power_of_two()
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::unbounded()
    }
}

/// Tunables of the A* exact synthesis solver.
///
/// The defaults mirror the thresholds reported in the paper (Sec. VI-C):
/// exact synthesis is activated for states with at most 4 (active) qubits and
/// a cardinality of at most 16.
///
/// # Example
///
/// ```
/// use qsp_core::{SearchConfig, SearchStrategy};
///
/// let config = SearchConfig::default();
/// assert_eq!(config.max_qubits, 4);
/// assert_eq!(config.max_cardinality, 16);
/// assert!(config.use_heuristic);
/// assert_eq!(config.strategy, SearchStrategy::Sequential);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct SearchConfig {
    /// Maximum number of (active) qubits the exact solver accepts.
    pub max_qubits: usize,
    /// Maximum cardinality the exact solver accepts.
    pub max_cardinality: usize,
    /// Upper bound on A* node expansions before giving up.
    pub max_expanded_nodes: usize,
    /// Whether to use the admissible entanglement heuristic (`⌈E/2⌉`).
    /// Disabling it turns A* into Dijkstra — useful for ablations, never
    /// changes the result.
    pub use_heuristic: bool,
    /// Whether to compress the distance map with the paper's layout-invariant
    /// zero-cost equivalence (`V_G / PU(2)`: separable-qubit clearing, X
    /// flips and qubit permutations). **Approximate**: with CRy merges in
    /// the library this equivalence is not an exact graph isomorphism, so
    /// the compressed search may return a slightly suboptimal CNOT count
    /// (see `crate::search::canonical`). Off by default — the default search
    /// keys distances by the concrete state, which is exact and
    /// frame-independent (required for the portfolio's bit-identical-cost
    /// guarantee).
    pub permutation_compression: bool,
    /// Whether singly controlled Y-rotation merges (CRy, cost 2) are part of
    /// the transition library. Disabling restricts the library to
    /// `{Ry, CNOT}` merges — an ablation that can only increase CNOT counts.
    pub enable_controlled_merges: bool,
    /// Sequential or portfolio solver scheduling (see [`SearchStrategy`]).
    pub strategy: SearchStrategy,
}

impl SearchConfig {
    /// The configuration used for the paper's experiments.
    pub const fn paper() -> Self {
        SearchConfig {
            max_qubits: 4,
            max_cardinality: 16,
            max_expanded_nodes: 2_000_000,
            use_heuristic: true,
            permutation_compression: false,
            enable_controlled_merges: true,
            strategy: SearchStrategy::Sequential,
        }
    }

    /// A configuration for slightly larger exact problems (5 qubits, 32
    /// amplitudes) — used by the ablation benchmarks.
    pub const fn extended() -> Self {
        SearchConfig {
            max_qubits: 5,
            max_cardinality: 32,
            max_expanded_nodes: 8_000_000,
            use_heuristic: true,
            permutation_compression: false,
            enable_controlled_merges: true,
            strategy: SearchStrategy::Sequential,
        }
    }

    /// The paper configuration with a portfolio of `workers` racing A*
    /// searches (`0` = available parallelism).
    pub const fn portfolio(workers: usize) -> Self {
        let mut config = SearchConfig::paper();
        config.strategy = SearchStrategy::Portfolio { workers };
        config
    }

    /// Sets the active-qubit threshold for exact synthesis.
    pub fn with_max_qubits(mut self, max_qubits: usize) -> Self {
        self.max_qubits = max_qubits;
        self
    }

    /// Sets the cardinality threshold for exact synthesis.
    pub fn with_max_cardinality(mut self, max_cardinality: usize) -> Self {
        self.max_cardinality = max_cardinality;
        self
    }

    /// Sets the A* node budget.
    pub fn with_node_budget(mut self, max_expanded_nodes: usize) -> Self {
        self.max_expanded_nodes = max_expanded_nodes;
        self
    }

    /// Enables or disables the admissible entanglement heuristic (disabling
    /// turns A* into Dijkstra; never changes the result).
    pub fn with_heuristic(mut self, use_heuristic: bool) -> Self {
        self.use_heuristic = use_heuristic;
        self
    }

    /// Enables or disables the approximate PU(2) distance compression.
    pub fn with_permutation_compression(mut self, enabled: bool) -> Self {
        self.permutation_compression = enabled;
        self
    }

    /// Enables or disables the CRy controlled-merge library entries.
    pub fn with_controlled_merges(mut self, enabled: bool) -> Self {
        self.enable_controlled_merges = enabled;
        self
    }

    /// Sets the sequential-vs-portfolio solver strategy.
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_thresholds() {
        let config = SearchConfig::default();
        assert_eq!(config, SearchConfig::paper());
        assert_eq!(config.max_qubits, 4);
        assert_eq!(config.max_cardinality, 16);
        assert!(config.enable_controlled_merges);
        assert!(!config.permutation_compression);
        assert_eq!(config.strategy, SearchStrategy::Sequential);
    }

    #[test]
    fn extended_configuration_is_larger() {
        let extended = SearchConfig::extended();
        assert!(extended.max_qubits > SearchConfig::paper().max_qubits);
        assert!(extended.max_cardinality > SearchConfig::paper().max_cardinality);
    }

    #[test]
    fn strategy_resolution() {
        assert_eq!(SearchStrategy::Sequential.resolved_workers(), 1);
        assert_eq!(
            SearchStrategy::Portfolio { workers: 3 }.resolved_workers(),
            3
        );
        assert!(SearchStrategy::Portfolio { workers: 0 }.resolved_workers() >= 1);
        let portfolio = SearchConfig::portfolio(4);
        assert_eq!(portfolio.strategy, SearchStrategy::Portfolio { workers: 4 });
        assert_eq!(portfolio.max_qubits, SearchConfig::paper().max_qubits);
    }

    #[test]
    fn cache_config_resolution() {
        assert!(CacheConfig::default().resolved_shards().is_power_of_two());
        assert_eq!(
            CacheConfig {
                shards: 5,
                capacity: 0
            }
            .resolved_shards(),
            8
        );
        assert_eq!(CacheConfig::bounded(64).capacity, 64);
        assert_eq!(CacheConfig::unbounded().capacity, 0);
    }
}
