//! Configuration of the exact synthesis search.

/// Tunables of the A* exact synthesis solver.
///
/// The defaults mirror the thresholds reported in the paper (Sec. VI-C):
/// exact synthesis is activated for states with at most 4 (active) qubits and
/// a cardinality of at most 16.
///
/// # Example
///
/// ```
/// use qsp_core::SearchConfig;
///
/// let config = SearchConfig::default();
/// assert_eq!(config.max_qubits, 4);
/// assert_eq!(config.max_cardinality, 16);
/// assert!(config.use_heuristic);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// Maximum number of (active) qubits the exact solver accepts.
    pub max_qubits: usize,
    /// Maximum cardinality the exact solver accepts.
    pub max_cardinality: usize,
    /// Upper bound on A* node expansions before giving up.
    pub max_expanded_nodes: usize,
    /// Whether to use the admissible entanglement heuristic (`⌈E/2⌉`).
    /// Disabling it turns A* into Dijkstra — useful for ablations, never
    /// changes the result.
    pub use_heuristic: bool,
    /// Whether the zero-cost equivalence used for state compression also
    /// quotients by qubit permutations (`V_G / PU(2)`), which assumes a
    /// symmetric coupling graph as in the paper. X flips and separable-qubit
    /// clearing (`V_G / U(2)`) are always applied.
    pub permutation_compression: bool,
    /// Whether singly controlled Y-rotation merges (CRy, cost 2) are part of
    /// the transition library. Disabling restricts the library to
    /// `{Ry, CNOT}` merges — an ablation that can only increase CNOT counts.
    pub enable_controlled_merges: bool,
}

impl SearchConfig {
    /// The configuration used for the paper's experiments.
    pub const fn paper() -> Self {
        SearchConfig {
            max_qubits: 4,
            max_cardinality: 16,
            max_expanded_nodes: 2_000_000,
            use_heuristic: true,
            permutation_compression: false,
            enable_controlled_merges: true,
        }
    }

    /// A configuration for slightly larger exact problems (5 qubits, 32
    /// amplitudes) — used by the ablation benchmarks.
    pub const fn extended() -> Self {
        SearchConfig {
            max_qubits: 5,
            max_cardinality: 32,
            max_expanded_nodes: 8_000_000,
            use_heuristic: true,
            permutation_compression: false,
            enable_controlled_merges: true,
        }
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_thresholds() {
        let config = SearchConfig::default();
        assert_eq!(config, SearchConfig::paper());
        assert_eq!(config.max_qubits, 4);
        assert_eq!(config.max_cardinality, 16);
        assert!(config.enable_controlled_merges);
        assert!(!config.permutation_compression);
    }

    #[test]
    fn extended_configuration_is_larger() {
        let extended = SearchConfig::extended();
        assert!(extended.max_qubits > SearchConfig::paper().max_qubits);
        assert!(extended.max_cardinality > SearchConfig::paper().max_cardinality);
    }
}
