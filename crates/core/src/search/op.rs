//! The amplitude-preserving transition library `L_QSP` (Sec. IV-B).
//!
//! The search explores the state transition graph *backwards*, from the
//! target state towards the ground state. Every operation below is a
//! single-target amplitude-preserving transition: amplitudes are conserved
//! and only the basis indices change (possibly merging).
//!
//! Pauli-X transitions are not enumerated explicitly: the canonicalization
//! already identifies X-flip-equivalent states (they cost zero), and any
//! optimal operation sequence containing X gates can be rewritten with the
//! X gates commuted to the end, where the circuit builder emits them as part
//! of the zero-cost finishing layer.

use std::fmt;

/// A backward (reduction-direction) transition of the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransitionOp {
    /// A CNOT with the given control polarity: flips `target` on every entry
    /// whose `control` bit equals `polarity`. CNOT cost 1.
    Cnot {
        /// Control qubit.
        control: usize,
        /// Control polarity (`true` fires on `|1⟩`).
        polarity: bool,
        /// Target qubit.
        target: usize,
    },
    /// A Y-rotation merge on `target`: valid when the qubit is separable; all
    /// entries have their `target` bit cleared and duplicates merge. Cost 0.
    RyMerge {
        /// Target qubit.
        target: usize,
    },
    /// A controlled Y-rotation merge: like [`TransitionOp::RyMerge`] but
    /// restricted to entries whose `control` bit equals `polarity`.
    /// CNOT cost 2 (Table I).
    CryMerge {
        /// Control qubit.
        control: usize,
        /// Control polarity (`true` fires on `|1⟩`).
        polarity: bool,
        /// Target qubit.
        target: usize,
    },
}

impl TransitionOp {
    /// The CNOT cost of the transition (the arc distance `d(a)` of the
    /// shortest-path formulation).
    pub fn cnot_cost(&self) -> usize {
        match self {
            TransitionOp::RyMerge { .. } => 0,
            TransitionOp::Cnot { .. } => 1,
            TransitionOp::CryMerge { .. } => 2,
        }
    }

    /// The target qubit of the transition.
    pub fn target(&self) -> usize {
        match *self {
            TransitionOp::Cnot { target, .. }
            | TransitionOp::RyMerge { target }
            | TransitionOp::CryMerge { target, .. } => target,
        }
    }

    /// Enumerates the transition library for a register of `num_qubits`
    /// qubits. `enable_controlled_merges` adds the cost-2 CRy merges.
    pub fn library(num_qubits: usize, enable_controlled_merges: bool) -> Vec<TransitionOp> {
        let mut ops = Vec::new();
        for target in 0..num_qubits {
            ops.push(TransitionOp::RyMerge { target });
        }
        for control in 0..num_qubits {
            for target in 0..num_qubits {
                if control == target {
                    continue;
                }
                for polarity in [true, false] {
                    ops.push(TransitionOp::Cnot {
                        control,
                        polarity,
                        target,
                    });
                    if enable_controlled_merges {
                        ops.push(TransitionOp::CryMerge {
                            control,
                            polarity,
                            target,
                        });
                    }
                }
            }
        }
        ops
    }
}

impl fmt::Display for TransitionOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransitionOp::Cnot {
                control,
                polarity,
                target,
            } => write!(
                f,
                "cnot({}{} -> q{target})",
                if *polarity { "" } else { "!" },
                format_args!("q{control}")
            ),
            TransitionOp::RyMerge { target } => write!(f, "ry-merge(q{target})"),
            TransitionOp::CryMerge {
                control,
                polarity,
                target,
            } => write!(
                f,
                "cry-merge({}{} -> q{target})",
                if *polarity { "" } else { "!" },
                format_args!("q{control}")
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_match_table1() {
        assert_eq!(TransitionOp::RyMerge { target: 0 }.cnot_cost(), 0);
        assert_eq!(
            TransitionOp::Cnot {
                control: 0,
                polarity: true,
                target: 1
            }
            .cnot_cost(),
            1
        );
        assert_eq!(
            TransitionOp::CryMerge {
                control: 0,
                polarity: false,
                target: 1
            }
            .cnot_cost(),
            2
        );
    }

    #[test]
    fn library_size() {
        // n targets for RyMerge + n(n-1) ordered pairs × 2 polarities × {cnot, cry}.
        let n = 3;
        let with_cry = TransitionOp::library(n, true);
        assert_eq!(with_cry.len(), n + n * (n - 1) * 2 * 2);
        let without_cry = TransitionOp::library(n, false);
        assert_eq!(without_cry.len(), n + n * (n - 1) * 2);
    }

    #[test]
    fn display_is_readable() {
        let op = TransitionOp::Cnot {
            control: 0,
            polarity: false,
            target: 2,
        };
        assert_eq!(op.to_string(), "cnot(!q0 -> q2)");
        assert_eq!(
            TransitionOp::RyMerge { target: 1 }.to_string(),
            "ry-merge(q1)"
        );
        assert_eq!(op.target(), 2);
    }
}
