//! The search-state encoding: conserved probabilities over a changing index set.
//!
//! Because every transition of `L_QSP` is amplitude-preserving (Sec. IV-B),
//! the probability multiset of a search state never changes — only the basis
//! indices move (and merge). A search state is therefore the paper's
//! `n × m`-bit encoding: a sorted list of `(index, probability)` entries,
//! with probabilities quantized to a fixed-point grid so states can be hashed
//! and compared exactly.

use std::collections::BTreeMap;

use qsp_state::{BasisIndex, QuantumState};

use super::op::TransitionOp;

/// Fixed-point scale for quantized probabilities (`2^40` steps across `[0,1]`).
const PROB_SCALE: f64 = (1u64 << 40) as f64;

/// Tolerance (in quantized units) for probability-ratio comparisons.
const PROB_SLACK: u128 = 1 << 16;

/// A vertex of the state transition graph: the target's probability mass
/// distributed over a set of basis indices.
///
/// Entries are sorted by index and duplicates are merged (their probabilities
/// add), so two `SearchState`s are equal exactly when they describe the same
/// quantum state up to the sign information that amplitude-preserving
/// transitions cannot change.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SearchState {
    num_qubits: usize,
    entries: Vec<(BasisIndex, u64)>,
}

impl SearchState {
    /// Builds the search state of a target state (any [`QuantumState`]
    /// backend).
    ///
    /// # Panics
    ///
    /// Panics if the state has negative amplitudes (the exact solver rejects
    /// those earlier with a proper error).
    pub fn from_state<S: QuantumState>(state: &S) -> Self {
        let mut entries: BTreeMap<BasisIndex, u64> = BTreeMap::new();
        for (index, amplitude) in state.amplitudes() {
            assert!(
                amplitude >= 0.0,
                "search states require non-negative amplitudes"
            );
            let quantized = (amplitude * amplitude * PROB_SCALE).round() as u64;
            *entries.entry(index).or_insert(0) += quantized;
        }
        SearchState {
            num_qubits: state.num_qubits(),
            entries: entries.into_iter().filter(|&(_, p)| p > 0).collect(),
        }
    }

    /// Builds a search state directly from quantized entries (used by the
    /// canonicalization).
    pub(crate) fn from_entries(num_qubits: usize, raw: Vec<(BasisIndex, u64)>) -> Self {
        let mut entries: BTreeMap<BasisIndex, u64> = BTreeMap::new();
        for (index, prob) in raw {
            *entries.entry(index).or_insert(0) += prob;
        }
        SearchState {
            num_qubits,
            entries: entries.into_iter().filter(|&(_, p)| p > 0).collect(),
        }
    }

    /// Number of qubits of the register.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Cardinality of the (merged) index set.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.entries.len()
    }

    /// The `(index, quantized probability)` entries, sorted by index.
    pub fn entries(&self) -> &[(BasisIndex, u64)] {
        &self.entries
    }

    /// Whether this is exactly the ground state `|0…0⟩`.
    pub fn is_ground(&self) -> bool {
        self.entries.len() == 1 && self.entries[0].0 == BasisIndex::ZERO
    }

    /// Whether every qubit is separable: the state is a tensor product of
    /// single-qubit states and can be finished with zero-cost rotations.
    /// This is the goal condition of the backward search.
    pub fn is_product(&self) -> bool {
        (0..self.num_qubits).all(|q| self.qubit_separation(q).is_some())
    }

    /// The qubits that are certainly entangled: their `|0⟩` / `|1⟩` cofactor
    /// index sets differ and neither is empty (the paper's criterion,
    /// Sec. V-A).
    pub fn entangled_qubits(&self) -> Vec<usize> {
        (0..self.num_qubits)
            .filter(|&q| {
                let mut negative = Vec::new();
                let mut positive = Vec::new();
                for &(index, _) in &self.entries {
                    if index.bit(q) {
                        positive.push(index.with_bit(q, false));
                    } else {
                        negative.push(index);
                    }
                }
                !negative.is_empty() && !positive.is_empty() && negative != positive
            })
            .collect()
    }

    /// The admissible heuristic `⌈E/2⌉` of Sec. V-A.
    pub fn heuristic(&self) -> usize {
        self.entangled_qubits().len().div_ceil(2)
    }

    /// Checks whether `qubit` is separable over the whole state and returns
    /// the quantized probability pair `(P[qubit = 0], P[qubit = 1])` when it
    /// is. Separability requires every rest-group (entries that agree on all
    /// other qubits) to split its probability between the two branches in the
    /// same proportion.
    pub fn qubit_separation(&self, qubit: usize) -> Option<(u64, u64)> {
        self.subset_separation(qubit, None)
    }

    /// Separability of `qubit` restricted to the entries whose `control` bit
    /// equals `polarity` (`None` means the whole state).
    pub fn subset_separation(
        &self,
        qubit: usize,
        control: Option<(usize, bool)>,
    ) -> Option<(u64, u64)> {
        let mut groups: BTreeMap<BasisIndex, (u64, u64)> = BTreeMap::new();
        let mut total = (0u64, 0u64);
        for &(index, prob) in &self.entries {
            if let Some((c, polarity)) = control {
                if index.bit(c) != polarity {
                    continue;
                }
            }
            let rest = index.with_bit(qubit, false);
            let slot = groups.entry(rest).or_insert((0, 0));
            if index.bit(qubit) {
                slot.1 += prob;
                total.1 += prob;
            } else {
                slot.0 += prob;
                total.0 += prob;
            }
        }
        if groups.is_empty() {
            return None;
        }
        // Every group must satisfy p1 * total0 == p0 * total1 (cross-multiplied
        // proportionality), within the quantization slack.
        for &(p0, p1) in groups.values() {
            let lhs = p1 as u128 * total.0 as u128;
            let rhs = p0 as u128 * total.1 as u128;
            let diff = lhs.abs_diff(rhs);
            let scale = (lhs + rhs) >> 20;
            if diff > scale + PROB_SLACK {
                return None;
            }
        }
        Some(total)
    }

    /// Applies a backward transition, returning the successor state or `None`
    /// if the transition is invalid or a no-op.
    pub fn apply(&self, op: &TransitionOp) -> Option<SearchState> {
        match *op {
            TransitionOp::Cnot {
                control,
                polarity,
                target,
            } => {
                if control == target || control >= self.num_qubits || target >= self.num_qubits {
                    return None;
                }
                let raw: Vec<(BasisIndex, u64)> = self
                    .entries
                    .iter()
                    .map(|&(index, prob)| {
                        if index.bit(control) == polarity {
                            (index.flip_bit(target), prob)
                        } else {
                            (index, prob)
                        }
                    })
                    .collect();
                let next = SearchState::from_entries(self.num_qubits, raw);
                if next == *self {
                    None
                } else {
                    Some(next)
                }
            }
            TransitionOp::RyMerge { target } => {
                if target >= self.num_qubits {
                    return None;
                }
                let (_, p1) = self.qubit_separation(target)?;
                if p1 == 0 {
                    return None; // nothing to merge
                }
                Some(self.clear_qubit(target, None))
            }
            TransitionOp::CryMerge {
                control,
                polarity,
                target,
            } => {
                if control == target || control >= self.num_qubits || target >= self.num_qubits {
                    return None;
                }
                let (_, p1) = self.subset_separation(target, Some((control, polarity)))?;
                if p1 == 0 {
                    return None; // nothing to merge in the controlled branch
                }
                // If the whole state merges for free, the zero-cost RyMerge
                // dominates the cost-2 controlled merge; prune the latter.
                if self.qubit_separation(target).is_some() {
                    return None;
                }
                Some(self.clear_qubit(target, Some((control, polarity))))
            }
        }
    }

    /// Clears `qubit` (sets it to `|0⟩`, merging duplicates) on the whole
    /// state or on the controlled subset.
    pub(crate) fn clear_qubit(&self, qubit: usize, control: Option<(usize, bool)>) -> SearchState {
        let raw: Vec<(BasisIndex, u64)> = self
            .entries
            .iter()
            .map(|&(index, prob)| {
                let in_subset = match control {
                    Some((c, polarity)) => index.bit(c) == polarity,
                    None => true,
                };
                if in_subset {
                    (index.with_bit(qubit, false), prob)
                } else {
                    (index, prob)
                }
            })
            .collect();
        SearchState::from_entries(self.num_qubits, raw)
    }

    /// Applies an X flip to `qubit` (used by the canonicalization only — the
    /// search itself never enumerates X transitions).
    pub(crate) fn flip_qubit(&self, qubit: usize) -> SearchState {
        let raw: Vec<(BasisIndex, u64)> = self
            .entries
            .iter()
            .map(|&(index, prob)| (index.flip_bit(qubit), prob))
            .collect();
        SearchState::from_entries(self.num_qubits, raw)
    }

    /// Applies a qubit permutation (canonicalization only).
    pub(crate) fn permute(&self, perm: &[usize]) -> SearchState {
        let raw: Vec<(BasisIndex, u64)> = self
            .entries
            .iter()
            .map(|&(index, prob)| (index.permute(perm), prob))
            .collect();
        SearchState::from_entries(self.num_qubits, raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_state::generators;
    use qsp_state::SparseState;

    fn uniform(num_qubits: usize, indices: &[u64]) -> SearchState {
        let state = SparseState::uniform_superposition(
            num_qubits,
            indices.iter().map(|&x| BasisIndex::new(x)),
        )
        .unwrap();
        SearchState::from_state(&state)
    }

    #[test]
    fn ground_and_product_detection() {
        let ground = uniform(3, &[0]);
        assert!(ground.is_ground());
        assert!(ground.is_product());
        assert_eq!(ground.heuristic(), 0);

        // |+>|+>|0>: product but not ground.
        let plus_plus = uniform(3, &[0b00, 0b01, 0b10, 0b11]);
        assert!(!plus_plus.is_ground());
        assert!(plus_plus.is_product());

        let ghz = uniform(3, &[0b000, 0b111]);
        assert!(!ghz.is_product());
        assert_eq!(ghz.entangled_qubits(), vec![0, 1, 2]);
        assert_eq!(ghz.heuristic(), 2);
    }

    #[test]
    fn ghz4_heuristic_matches_paper_example() {
        let ghz4 = uniform(4, &[0b0000, 0b1111]);
        assert_eq!(ghz4.entangled_qubits().len(), 4);
        assert_eq!(ghz4.heuristic(), 2);
    }

    #[test]
    fn cnot_transition_moves_indices() {
        let ghz = uniform(2, &[0b00, 0b11]);
        let op = TransitionOp::Cnot {
            control: 0,
            polarity: true,
            target: 1,
        };
        let next = ghz.apply(&op).unwrap();
        assert_eq!(
            next.entries()
                .iter()
                .map(|e| e.0.value())
                .collect::<Vec<_>>(),
            vec![0b00, 0b01]
        );
        assert!(next.is_product());
        // A CNOT whose control is never satisfied is a no-op and rejected.
        let noop = TransitionOp::Cnot {
            control: 1,
            polarity: true,
            target: 0,
        };
        assert!(uniform(2, &[0b00, 0b01]).apply(&noop).is_none());
    }

    #[test]
    fn ry_merge_requires_separability() {
        // Qubit 0 separable: |0>(|0>+|1>)/sqrt(2) over qubits (1,0)? indices 0b00,0b01.
        let separable = uniform(2, &[0b00, 0b01]);
        let merged = separable
            .apply(&TransitionOp::RyMerge { target: 0 })
            .unwrap();
        assert!(merged.is_ground());

        // GHZ: no qubit separable, merge invalid.
        let ghz = uniform(2, &[0b00, 0b11]);
        assert!(ghz.apply(&TransitionOp::RyMerge { target: 0 }).is_none());
        // Constant qubit: nothing to merge (p1 == 0).
        assert!(separable
            .apply(&TransitionOp::RyMerge { target: 1 })
            .is_none());
    }

    #[test]
    fn cry_merge_on_controlled_branch() {
        // Paper Fig. 4: ψ7 = (000, 011, 011, 011) → ψ8 via a CRy on the middle
        // qubit controlled by the last qubit. In our bit order: indices with
        // qubit 0 = LSB. Use the state (|000>, |110>) + duplicates concept:
        // 0.25|000> + 0.75|011...>. Build it directly as amplitudes.
        let state = SparseState::from_amplitudes(
            3,
            [
                (BasisIndex::new(0b000), 0.5),
                (BasisIndex::new(0b110), (0.75f64).sqrt()),
            ],
        )
        .unwrap();
        let search = SearchState::from_state(&state);
        // Controlled on qubit 2 (=1), merge qubit 1: the |110> entry becomes |100>.
        let op = TransitionOp::CryMerge {
            control: 2,
            polarity: true,
            target: 1,
        };
        let next = search.apply(&op).unwrap();
        assert_eq!(
            next.entries()
                .iter()
                .map(|e| e.0.value())
                .collect::<Vec<_>>(),
            vec![0b000, 0b100]
        );

        // The same merge without the control is invalid (qubit 1 is not
        // separable over the whole state).
        assert!(search.apply(&TransitionOp::RyMerge { target: 1 }).is_none());
    }

    #[test]
    fn cry_merge_prefers_free_ry_when_whole_state_is_separable() {
        let separable = uniform(2, &[0b00, 0b10]);
        let op = TransitionOp::CryMerge {
            control: 0,
            polarity: false,
            target: 1,
        };
        assert!(separable.apply(&op).is_none());
    }

    #[test]
    fn dicke_state_entanglement() {
        let dicke = SearchState::from_state(&generators::dicke(4, 2).unwrap());
        assert_eq!(dicke.cardinality(), 6);
        assert_eq!(dicke.entangled_qubits().len(), 4);
        assert_eq!(dicke.heuristic(), 2);
        assert!(!dicke.is_product());
    }

    #[test]
    fn probability_is_conserved_by_transitions() {
        let dicke = SearchState::from_state(&generators::dicke(3, 1).unwrap());
        let total: u64 = dicke.entries().iter().map(|e| e.1).sum();
        let after = dicke
            .apply(&TransitionOp::Cnot {
                control: 0,
                polarity: true,
                target: 1,
            })
            .unwrap();
        let total_after: u64 = after.entries().iter().map(|e| e.1).sum();
        assert_eq!(total, total_after);
    }

    #[test]
    fn flips_and_permutations_for_canonicalization() {
        let w = SearchState::from_state(&generators::w_state(3).unwrap());
        let flipped = w.flip_qubit(0);
        assert_ne!(w, flipped);
        assert_eq!(flipped.flip_qubit(0), w);
        let permuted = w.permute(&[1, 2, 0]);
        assert_eq!(permuted.cardinality(), 3);
    }

    #[test]
    #[should_panic(expected = "non-negative amplitudes")]
    fn negative_amplitudes_are_rejected() {
        let state = SparseState::from_amplitudes(
            1,
            [(BasisIndex::new(0), 0.6), (BasisIndex::new(1), -0.8)],
        )
        .unwrap();
        let _ = SearchState::from_state(&state);
    }
}
