//! State compression through zero-cost equivalence (Sec. V-B).
//!
//! Two search states are treated as equivalent when a sequence of *zero-cost*
//! operations maps one to the other:
//!
//! * Pauli-X flips on any qubit,
//! * Y-rotation merges of separable qubits,
//! * optionally a relabelling of the qubits (valid under the symmetric
//!   coupling assumption of the paper).
//!
//! Because every transformation used here genuinely costs zero CNOTs, two
//! states with the same canonical key always have the same optimal CNOT
//! distance to the ground state — storing A* distances per key (line 10–13 of
//! Algorithm 1) therefore compresses the search without losing optimality.

use super::state::SearchState;

/// The canonical key of a search state under the configured equivalence.
pub type CanonicalKey = SearchState;

/// Exhaustive flip minimization is used up to this register width; beyond it
/// a deterministic greedy pass keeps the key sound (still zero-cost
/// reachable) at the price of weaker compression.
const EXHAUSTIVE_FLIP_QUBITS: usize = 10;

/// Permutation minimization enumerates all `n!` orders up to this width.
const EXHAUSTIVE_PERMUTATION_QUBITS: usize = 6;

/// Computes the canonical key of `state`.
///
/// The key is itself a [`SearchState`]: first every separable qubit is
/// cleared with a (zero-cost) rotation merge, then the lexicographically
/// minimal representative over X-flip masks — and over qubit permutations if
/// `permutations` is set — is selected.
pub fn canonical_key(state: &SearchState, permutations: bool) -> CanonicalKey {
    let cleared = clear_separable_qubits(state);
    if permutations {
        minimize_over_permutations(&cleared)
    } else {
        minimize_over_flips(&cleared)
    }
}

/// Clears every separable qubit (they can be rotated to `|0⟩` for free),
/// repeating until a fixed point because one merge can make another qubit
/// separable.
fn clear_separable_qubits(state: &SearchState) -> SearchState {
    let mut current = state.clone();
    loop {
        let mut changed = false;
        for qubit in 0..current.num_qubits() {
            if let Some((_, p1)) = current.qubit_separation(qubit) {
                if p1 > 0 {
                    current = current.clear_qubit(qubit, None);
                    changed = true;
                }
            }
        }
        if !changed {
            return current;
        }
    }
}

fn minimize_over_flips(state: &SearchState) -> SearchState {
    let n = state.num_qubits();
    if n <= EXHAUSTIVE_FLIP_QUBITS {
        let mut best = state.clone();
        for mask in 1u64..(1u64 << n) {
            let mut candidate = state.clone();
            for q in 0..n {
                if (mask >> q) & 1 == 1 {
                    candidate = candidate.flip_qubit(q);
                }
            }
            if candidate < best {
                best = candidate;
            }
        }
        best
    } else {
        let mut best = state.clone();
        for q in 0..n {
            let candidate = best.flip_qubit(q);
            if candidate < best {
                best = candidate;
            }
        }
        best
    }
}

fn minimize_over_permutations(state: &SearchState) -> SearchState {
    let n = state.num_qubits();
    if n > EXHAUSTIVE_PERMUTATION_QUBITS {
        return minimize_over_flips(state);
    }
    let mut best: Option<SearchState> = None;
    let mut perm: Vec<usize> = (0..n).collect();
    permute_recursive(&mut perm, 0, &mut |p| {
        let candidate = minimize_over_flips(&state.permute(p));
        if best.as_ref().is_none_or(|b| candidate < *b) {
            best = Some(candidate);
        }
    });
    best.unwrap_or_else(|| state.clone())
}

fn permute_recursive<F: FnMut(&[usize])>(perm: &mut Vec<usize>, start: usize, visit: &mut F) {
    if start == perm.len() {
        visit(perm);
        return;
    }
    for i in start..perm.len() {
        perm.swap(start, i);
        permute_recursive(perm, start + 1, visit);
        perm.swap(start, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_state::{BasisIndex, SparseState};

    fn uniform(num_qubits: usize, indices: &[u64]) -> SearchState {
        let state = SparseState::uniform_superposition(
            num_qubits,
            indices.iter().map(|&x| BasisIndex::new(x)),
        )
        .unwrap();
        SearchState::from_state(&state)
    }

    #[test]
    fn flip_equivalent_states_share_a_key() {
        // (|100>+|010>)/√2 and (|000>+|110>)/√2 — the paper's ψ1 example.
        let a = uniform(3, &[0b001, 0b010]);
        let b = uniform(3, &[0b000, 0b011]);
        assert_eq!(canonical_key(&a, false), canonical_key(&b, false));
    }

    #[test]
    fn separable_qubits_are_cleared() {
        // (|000>+|001>+|110>+|111>)/2 has its last qubit separable and reduces
        // to the GHZ-like core — the paper's ψ2 example.
        let phi = uniform(3, &[0b001, 0b010]);
        let psi2 = uniform(3, &[0b000, 0b100, 0b011, 0b111]);
        assert_eq!(canonical_key(&phi, false), canonical_key(&psi2, false));
    }

    #[test]
    fn permutation_equivalence_is_optional() {
        // (|100>+|010>)/√2 vs (|100>+|001>)/√2 — the paper's ψ3 example needs
        // a qubit swap.
        let phi = uniform(3, &[0b001, 0b010]);
        let psi3 = uniform(3, &[0b001, 0b100]);
        assert_ne!(canonical_key(&phi, false), canonical_key(&psi3, false));
        assert_eq!(canonical_key(&phi, true), canonical_key(&psi3, true));
    }

    #[test]
    fn fully_separable_states_collapse_to_the_ground_key() {
        let plus = uniform(2, &[0b00, 0b01, 0b10, 0b11]);
        let key = canonical_key(&plus, false);
        assert!(key.is_ground());
    }

    #[test]
    fn key_is_idempotent() {
        let dicke = uniform(4, &[0b0011, 0b0101, 0b0110, 0b1001, 0b1010, 0b1100]);
        let key = canonical_key(&dicke, true);
        assert_eq!(canonical_key(&key, true), key);
    }
}
