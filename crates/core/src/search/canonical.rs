//! State compression through zero-cost equivalence (Sec. V-B).
//!
//! The paper proposes treating two search states as equivalent when a
//! sequence of *zero-cost* operations maps one to the other (Pauli-X flips,
//! Y-rotation merges of separable qubits, optionally qubit relabelling) and
//! storing A* distances per equivalence class.
//!
//! This reproduction applies that compression **only when explicitly
//! requested** (`SearchConfig::permutation_compression`), because with the
//! CRy merges of Table I the equivalence is *approximate*: conjugating a
//! controlled merge by an X flip on its target qubit yields a **partial**
//! flip (only the controlled half of the support flips), which is not an
//! X-flip transform, so two states in the same class are not always
//! connected by a cost-preserving graph isomorphism. Sharing distance
//! entries across such a class can therefore settle a slightly suboptimal
//! reduction — empirically the compressed search returns 7 CNOTs for
//! `|D^2_4⟩` where the exact optimum (and the paper's Table IV) is 6, and
//! the returned cost depends on which X-flip frame of the target is
//! searched.
//!
//! The default key is therefore the **identity** (one distance entry per
//! concrete search state): sound, frame-independent — every X-flip /
//! permutation variant of a target returns the bit-identical optimal cost,
//! which is what the portfolio solver races on — and, because keying is the
//! per-node hot path, also substantially faster than the `2^n` flip
//! minimization the compressed key performs on every expansion.

use super::state::SearchState;

/// The canonical key of a search state under the configured equivalence.
pub type CanonicalKey = SearchState;

/// Exhaustive flip minimization is used up to this register width; beyond it
/// a deterministic greedy pass keeps the key cheap at the price of weaker
/// compression.
const EXHAUSTIVE_FLIP_QUBITS: usize = 10;

/// Permutation minimization enumerates all `n!` orders up to this width.
const EXHAUSTIVE_PERMUTATION_QUBITS: usize = 6;

/// Computes the distance-map key of `state`.
///
/// With `permutations` unset (the default) the key is the state itself —
/// exact, frame-independent search. With `permutations` set, the paper's
/// aggressive layout-invariant compression is applied: separable qubits are
/// cleared with (zero-cost) rotation merges, then the lexicographically
/// minimal representative over X-flip masks and qubit permutations is
/// selected. The compressed search expands fewer states but may return a
/// slightly suboptimal cost (see the [module docs](self)); it is kept for
/// the Sec. V-B ablations.
pub fn canonical_key(state: &SearchState, permutations: bool) -> CanonicalKey {
    if permutations {
        minimize_over_permutations(&clear_separable_qubits(state))
    } else {
        state.clone()
    }
}

/// Clears every separable qubit (they can be rotated to `|0⟩` for free),
/// repeating until a fixed point because one merge can make another qubit
/// separable.
fn clear_separable_qubits(state: &SearchState) -> SearchState {
    let mut current = state.clone();
    loop {
        let mut changed = false;
        for qubit in 0..current.num_qubits() {
            if let Some((_, p1)) = current.qubit_separation(qubit) {
                if p1 > 0 {
                    current = current.clear_qubit(qubit, None);
                    changed = true;
                }
            }
        }
        if !changed {
            return current;
        }
    }
}

fn minimize_over_flips(state: &SearchState) -> SearchState {
    let n = state.num_qubits();
    if n <= EXHAUSTIVE_FLIP_QUBITS {
        let mut best = state.clone();
        for mask in 1u64..(1u64 << n) {
            let mut candidate = state.clone();
            for q in 0..n {
                if (mask >> q) & 1 == 1 {
                    candidate = candidate.flip_qubit(q);
                }
            }
            if candidate < best {
                best = candidate;
            }
        }
        best
    } else {
        let mut best = state.clone();
        for q in 0..n {
            let candidate = best.flip_qubit(q);
            if candidate < best {
                best = candidate;
            }
        }
        best
    }
}

fn minimize_over_permutations(state: &SearchState) -> SearchState {
    let n = state.num_qubits();
    if n > EXHAUSTIVE_PERMUTATION_QUBITS {
        return minimize_over_flips(state);
    }
    let mut best: Option<SearchState> = None;
    let mut perm: Vec<usize> = (0..n).collect();
    permute_recursive(&mut perm, 0, &mut |p| {
        let candidate = minimize_over_flips(&state.permute(p));
        if best.as_ref().is_none_or(|b| candidate < *b) {
            best = Some(candidate);
        }
    });
    best.unwrap_or_else(|| state.clone())
}

fn permute_recursive<F: FnMut(&[usize])>(perm: &mut Vec<usize>, start: usize, visit: &mut F) {
    if start == perm.len() {
        visit(perm);
        return;
    }
    for i in start..perm.len() {
        perm.swap(start, i);
        permute_recursive(perm, start + 1, visit);
        perm.swap(start, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_state::{BasisIndex, SparseState};

    fn uniform(num_qubits: usize, indices: &[u64]) -> SearchState {
        let state = SparseState::uniform_superposition(
            num_qubits,
            indices.iter().map(|&x| BasisIndex::new(x)),
        )
        .unwrap();
        SearchState::from_state(&state)
    }

    #[test]
    fn exact_key_is_the_state_itself() {
        let a = uniform(3, &[0b001, 0b010]);
        assert_eq!(canonical_key(&a, false), a);
        // Distinct states — even zero-cost-equivalent ones — keep distinct
        // exact keys; only the compressed key identifies them.
        let b = uniform(3, &[0b000, 0b011]);
        assert_ne!(canonical_key(&a, false), canonical_key(&b, false));
    }

    #[test]
    fn compressed_key_identifies_flip_equivalent_states() {
        // (|100>+|010>)/√2 and (|000>+|110>)/√2 — the paper's ψ1 example.
        let a = uniform(3, &[0b001, 0b010]);
        let b = uniform(3, &[0b000, 0b011]);
        assert_eq!(canonical_key(&a, true), canonical_key(&b, true));
    }

    #[test]
    fn compressed_key_clears_separable_qubits() {
        // (|000>+|001>+|110>+|111>)/2 has its last qubit separable and reduces
        // to the GHZ-like core — the paper's ψ2 example.
        let phi = uniform(3, &[0b001, 0b010]);
        let psi2 = uniform(3, &[0b000, 0b100, 0b011, 0b111]);
        assert_eq!(canonical_key(&phi, true), canonical_key(&psi2, true));
    }

    #[test]
    fn compressed_key_quotients_by_permutations() {
        // (|100>+|010>)/√2 vs (|100>+|001>)/√2 — the paper's ψ3 example needs
        // a qubit swap.
        let phi = uniform(3, &[0b001, 0b010]);
        let psi3 = uniform(3, &[0b001, 0b100]);
        assert_ne!(canonical_key(&phi, false), canonical_key(&psi3, false));
        assert_eq!(canonical_key(&phi, true), canonical_key(&psi3, true));
    }

    #[test]
    fn fully_separable_states_collapse_to_the_ground_key_when_compressed() {
        let plus = uniform(2, &[0b00, 0b01, 0b10, 0b11]);
        let key = canonical_key(&plus, true);
        assert!(key.is_ground());
        // The exact key leaves the product state intact.
        assert_eq!(canonical_key(&plus, false).cardinality(), 4);
    }

    #[test]
    fn key_is_idempotent() {
        let dicke = uniform(4, &[0b0011, 0b0101, 0b0110, 0b1001, 0b1010, 0b1100]);
        for permutations in [false, true] {
            let key = canonical_key(&dicke, permutations);
            assert_eq!(canonical_key(&key, permutations), key);
        }
    }
}
