//! The shortest-path formulation of quantum state preparation.
//!
//! The modules below implement Sec. IV and V of the paper:
//!
//! * [`config`] — tunables of the solver (limits, compression, heuristic).
//! * [`op`] — the amplitude-preserving transition library `L_QSP`.
//! * [`state`] — the search-state encoding (`n × m` bits plus the conserved
//!   probability of every entry) with transition application, separability
//!   checks and the entanglement-based admissible heuristic.
//! * [`canonical`] — state compression through zero-cost equivalence
//!   (X flips, separable-qubit clearing, optional qubit permutation).
//! * [`astar`] — the A* solver itself (Algorithm 1 of the paper).

pub mod astar;
pub mod canonical;
pub mod config;
pub mod op;
pub mod state;

pub use astar::{
    shortest_reduction, shortest_reduction_coordinated, shortest_reduction_probed,
    SearchCoordination, SearchFailure, SearchOutcome,
};
pub use config::{CacheConfig, SearchConfig, SearchStrategy};
pub use op::TransitionOp;
pub use state::SearchState;
