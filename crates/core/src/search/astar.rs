//! The A* shortest-path solver (Algorithm 1 of the paper).
//!
//! The search runs backwards from the target state and stops at the first
//! *product* state it settles: from there zero-cost single-qubit rotations
//! finish the reduction to `|0…0⟩`. Distances are stored per concrete state
//! by default (or per Sec. V-B equivalence class when the approximate
//! `permutation_compression` ablation is on) and the priority queue is
//! ordered by `g + h` where `h` is the admissible entanglement heuristic of
//! Sec. V-A, so the first settled product state is CNOT-optimal with respect
//! to the transition library.
//!
//! The search can also run as one worker of a *portfolio* (see
//! [`SearchCoordination`]): racing searches on zero-cost variants of the
//! same target share an atomic incumbent bound and a cancellation flag.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrdering};

use qsp_obs::{CancellationCause, SearchProbe};

use crate::error::SynthesisError;

use super::canonical::{canonical_key, CanonicalKey};
use super::config::SearchConfig;
use super::op::TransitionOp;
use super::state::SearchState;

/// Shared coordination state of a portfolio of racing A* searches.
///
/// Workers publish their solution cost into the atomic *incumbent bound* and
/// raise the cancellation flag as soon as one of them settles an optimal
/// solution (first-optimal-wins). Other workers prune queue entries that
/// cannot beat the incumbent and exit at the next poll of the flag.
#[derive(Debug, Default)]
pub struct SearchCoordination {
    best: AtomicUsize,
    cancelled: AtomicBool,
}

impl SearchCoordination {
    /// Fresh coordination state with an infinite incumbent bound.
    pub fn new() -> Self {
        SearchCoordination {
            best: AtomicUsize::new(usize::MAX),
            cancelled: AtomicBool::new(false),
        }
    }

    /// Publishes a settled solution cost and cancels the remaining workers.
    /// Returns whether the cost actually lowered the incumbent bound (the
    /// flight recorder counts these as incumbent updates).
    pub fn record_solution(&self, cost: usize) -> bool {
        let previous = self.best.fetch_min(cost, AtomicOrdering::SeqCst);
        self.cancelled.store(true, AtomicOrdering::SeqCst);
        cost < previous
    }

    /// The current incumbent bound (`usize::MAX` before any solution).
    pub fn bound(&self) -> usize {
        self.best.load(AtomicOrdering::Relaxed)
    }

    /// Whether some worker already settled an optimal solution.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(AtomicOrdering::Relaxed)
    }
}

/// Why a coordinated search returned without a reduction.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchFailure {
    /// Another portfolio worker won the race; this search was cancelled.
    Cancelled,
    /// The search itself failed (budget exhaustion).
    Error(SynthesisError),
}

/// Statistics and result of one A* run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOutcome {
    /// Backward transitions from the target to the settled product state.
    pub reduction_ops: Vec<TransitionOp>,
    /// Total CNOT cost of the reduction (= cost of the preparation circuit).
    pub cnot_cost: usize,
    /// Number of states popped and expanded.
    pub expanded: usize,
    /// Number of states pushed onto the priority queue.
    pub pushed: usize,
}

/// A priority-queue entry ordered by `(f, g, insertion sequence)`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct QueueItem {
    f: usize,
    g: usize,
    seq: u64,
    state: SearchState,
}

impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the smallest f (then g, then
        // oldest insertion) is popped first.
        other
            .f
            .cmp(&self.f)
            .then_with(|| other.g.cmp(&self.g))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs the A* search from `target` (backwards) until a product state is
/// settled and returns the reduction operations together with statistics.
///
/// # Errors
///
/// Returns [`SynthesisError::SearchBudgetExhausted`] if the configured node
/// budget runs out before a product state is reached (which cannot happen
/// for well-formed inputs unless the budget is made artificially small).
pub fn shortest_reduction(
    target: &SearchState,
    config: &SearchConfig,
) -> Result<SearchOutcome, SynthesisError> {
    shortest_reduction_coordinated(target, config, None).map_err(|failure| match failure {
        // Without coordination a search can never be cancelled.
        SearchFailure::Cancelled => unreachable!("uncoordinated search cancelled"),
        SearchFailure::Error(e) => e,
    })
}

/// [`shortest_reduction`] with optional portfolio coordination: the search
/// polls the cancellation flag on every pop and prunes successors whose `f`
/// value already exceeds the shared incumbent bound (such a node can at best
/// *match* the settled optimum, never beat it, so dropping it preserves the
/// first-optimal-wins contract).
pub fn shortest_reduction_coordinated(
    target: &SearchState,
    config: &SearchConfig,
    coordination: Option<&SearchCoordination>,
) -> Result<SearchOutcome, SearchFailure> {
    shortest_reduction_probed(target, config, coordination, None)
}

/// [`shortest_reduction_coordinated`] with an optional flight-recorder
/// probe. When a probe is attached, the search flushes its node counters
/// and frontier high-water into it on exit and reports incumbent-bound
/// improvements and the cancellation cause as they happen; with `None`
/// (the default everywhere the flight recorder is off) no per-node
/// accounting beyond the existing local counters is paid.
pub fn shortest_reduction_probed(
    target: &SearchState,
    config: &SearchConfig,
    coordination: Option<&SearchCoordination>,
    probe: Option<&SearchProbe>,
) -> Result<SearchOutcome, SearchFailure> {
    let flush = |expanded: usize, pushed: usize, frontier: usize| {
        if let Some(probe) = probe {
            probe.add_expanded(expanded as u64);
            probe.add_pushed(pushed as u64);
            probe.update_frontier(frontier as u64);
        }
    };
    let cancelled = |cause: CancellationCause| {
        if let Some(probe) = probe {
            probe.note_cancellation(cause);
        }
    };
    if target.is_product() {
        return Ok(SearchOutcome {
            reduction_ops: Vec::new(),
            cnot_cost: 0,
            expanded: 0,
            pushed: 0,
        });
    }

    let library = TransitionOp::library(target.num_qubits(), config.enable_controlled_merges);
    let heuristic = |state: &SearchState| -> usize {
        if config.use_heuristic {
            state.heuristic()
        } else {
            0
        }
    };

    let mut dist: HashMap<CanonicalKey, usize> = HashMap::new();
    let mut parent: HashMap<SearchState, (SearchState, TransitionOp)> = HashMap::new();
    let mut queue: BinaryHeap<QueueItem> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut expanded = 0usize;
    let mut pushed = 0usize;
    let mut frontier = 1usize; // high-water mark; the initial push is below

    dist.insert(canonical_key(target, config.permutation_compression), 0);
    queue.push(QueueItem {
        f: heuristic(target),
        g: 0,
        seq,
        state: target.clone(),
    });

    // With compression off (the default) the key IS the state, so lookups
    // borrow the state directly and the clone is paid only on inserts.
    let compression = config.permutation_compression;
    let lookup = |dist: &HashMap<CanonicalKey, usize>, state: &SearchState| -> usize {
        let best = if compression {
            dist.get(&canonical_key(state, true))
        } else {
            dist.get(state)
        };
        best.copied().unwrap_or(usize::MAX)
    };

    while let Some(QueueItem { g, state, .. }) = queue.pop() {
        if let Some(coordination) = coordination {
            if coordination.is_cancelled() {
                flush(expanded, pushed, frontier);
                cancelled(CancellationCause::IncumbentRace);
                return Err(SearchFailure::Cancelled);
            }
        }
        if lookup(&dist, &state) < g {
            continue; // stale entry
        }
        if state.is_product() {
            if let Some(coordination) = coordination {
                if coordination.record_solution(g) {
                    if let Some(probe) = probe {
                        probe.note_incumbent_update();
                    }
                }
            }
            let reduction_ops = reconstruct_path(&parent, target, &state);
            flush(expanded, pushed, frontier);
            return Ok(SearchOutcome {
                reduction_ops,
                cnot_cost: g,
                expanded,
                pushed,
            });
        }
        expanded += 1;
        if expanded > config.max_expanded_nodes {
            flush(expanded, pushed, frontier);
            cancelled(CancellationCause::BudgetExhausted);
            return Err(SearchFailure::Error(
                SynthesisError::SearchBudgetExhausted { expanded },
            ));
        }
        let incumbent = coordination.map_or(usize::MAX, SearchCoordination::bound);
        for op in &library {
            let Some(next) = state.apply(op) else {
                continue;
            };
            let tentative = g + op.cnot_cost();
            let next_key: Cow<'_, CanonicalKey> = if compression {
                Cow::Owned(canonical_key(&next, true))
            } else {
                Cow::Borrowed(&next)
            };
            let best = dist.get(next_key.as_ref()).copied().unwrap_or(usize::MAX);
            if tentative < best {
                let f = tentative + heuristic(&next);
                // A node with f > incumbent cannot beat the already settled
                // optimum of an equivalent variant; prune it without touching
                // the distance map so a later, cheaper path stays admissible.
                if f > incumbent {
                    continue;
                }
                dist.insert(next_key.into_owned(), tentative);
                parent.insert(next.clone(), (state.clone(), *op));
                seq += 1;
                pushed += 1;
                queue.push(QueueItem {
                    f,
                    g: tentative,
                    seq,
                    state: next,
                });
            }
        }
        frontier = frontier.max(queue.len());
    }

    flush(expanded, pushed, frontier);
    // A drained queue in coordinated mode means every remaining branch was
    // pruned against the incumbent: the race has a winner, this worker lost.
    if coordination.is_some_and(SearchCoordination::is_cancelled) {
        cancelled(CancellationCause::IncumbentRace);
        return Err(SearchFailure::Cancelled);
    }
    cancelled(CancellationCause::BudgetExhausted);
    Err(SearchFailure::Error(
        SynthesisError::SearchBudgetExhausted { expanded },
    ))
}

/// Walks the parent map from `goal` back to `start` and returns the
/// transitions in application (target-to-product) order.
fn reconstruct_path(
    parent: &HashMap<SearchState, (SearchState, TransitionOp)>,
    start: &SearchState,
    goal: &SearchState,
) -> Vec<TransitionOp> {
    let mut ops = Vec::new();
    let mut current = goal.clone();
    while &current != start {
        let Some((previous, op)) = parent.get(&current) else {
            break;
        };
        ops.push(*op);
        current = previous.clone();
    }
    ops.reverse();
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_state::{generators, BasisIndex, SparseState};

    fn search_state(state: &SparseState) -> SearchState {
        SearchState::from_state(state)
    }

    fn solve(state: &SparseState) -> SearchOutcome {
        shortest_reduction(&search_state(state), &SearchConfig::default()).unwrap()
    }

    #[test]
    fn product_states_need_no_transitions() {
        let plus = SparseState::uniform_superposition(2, (0..4).map(BasisIndex::new)).unwrap();
        let outcome = solve(&plus);
        assert_eq!(outcome.cnot_cost, 0);
        assert!(outcome.reduction_ops.is_empty());
    }

    #[test]
    fn ghz_states_cost_n_minus_1_cnots() {
        for n in 2..5 {
            let outcome = solve(&generators::ghz(n).unwrap());
            assert_eq!(outcome.cnot_cost, n - 1, "ghz({n})");
        }
    }

    #[test]
    fn motivating_example_costs_two_cnots() {
        // Sec. III: (|000> + |011> + |101> + |110>)/2 needs exactly 2 CNOTs.
        let target = SparseState::uniform_superposition(
            3,
            [0b000u64, 0b011, 0b101, 0b110].map(BasisIndex::new),
        )
        .unwrap();
        let outcome = solve(&target);
        assert_eq!(outcome.cnot_cost, 2);
        assert_eq!(
            outcome
                .reduction_ops
                .iter()
                .map(TransitionOp::cnot_cost)
                .sum::<usize>(),
            2
        );
    }

    #[test]
    fn w3_state_costs_at_most_four_cnots() {
        // Table IV row (n=3, k=1): ours = 4.
        let outcome = solve(&generators::w_state(3).unwrap());
        assert!(outcome.cnot_cost <= 4, "cost {}", outcome.cnot_cost);
        assert!(outcome.cnot_cost >= 2);
    }

    #[test]
    fn heuristic_does_not_change_the_optimum_and_compression_never_improves_it() {
        let target = generators::dicke(3, 1).unwrap();
        let base = shortest_reduction(&search_state(&target), &SearchConfig::default()).unwrap();
        let no_heuristic = shortest_reduction(
            &search_state(&target),
            &SearchConfig {
                use_heuristic: false,
                ..SearchConfig::default()
            },
        )
        .unwrap();
        let with_permutations = shortest_reduction(
            &search_state(&target),
            &SearchConfig {
                permutation_compression: true,
                ..SearchConfig::default()
            },
        )
        .unwrap();
        assert_eq!(base.cnot_cost, no_heuristic.cnot_cost);
        // The approximate PU(2) compression reconstructs genuine reduction
        // paths, so it can never report a better-than-optimal cost — only
        // fewer expansions at the risk of a slightly larger one.
        assert!(with_permutations.cnot_cost >= base.cnot_cost);
        // The heuristic can only reduce the number of expansions.
        assert!(base.expanded <= no_heuristic.expanded);
    }

    #[test]
    fn exact_keys_find_the_table4_optimum_in_every_flip_frame() {
        // The Sec. V-B compressed search settles |D^2_4> at 7 CNOTs in some
        // X-flip frames; the exact default must find the paper's 6 in all of
        // them (this is the frame-independence the portfolio relies on).
        let dicke = generators::dicke(4, 2).unwrap();
        for mask in 0u64..16 {
            let mut variant = dicke.clone();
            for q in 0..4 {
                if mask >> q & 1 == 1 {
                    variant = variant.apply_x(q).unwrap();
                }
            }
            let outcome =
                shortest_reduction(&search_state(&variant), &SearchConfig::default()).unwrap();
            assert_eq!(outcome.cnot_cost, 6, "flip frame {mask:04b}");
        }
    }

    #[test]
    fn coordinated_search_is_cancelled_by_a_settled_solution() {
        let coordination = SearchCoordination::new();
        assert!(!coordination.is_cancelled());
        assert_eq!(coordination.bound(), usize::MAX);
        coordination.record_solution(5);
        assert!(coordination.is_cancelled());
        assert_eq!(coordination.bound(), 5);
        let target = search_state(&generators::dicke(4, 2).unwrap());
        let result =
            shortest_reduction_coordinated(&target, &SearchConfig::default(), Some(&coordination));
        assert_eq!(result, Err(SearchFailure::Cancelled));
    }

    #[test]
    fn tiny_node_budget_reports_exhaustion() {
        let config = SearchConfig {
            max_expanded_nodes: 1,
            ..SearchConfig::default()
        };
        let result = shortest_reduction(&search_state(&generators::dicke(4, 2).unwrap()), &config);
        assert!(matches!(
            result,
            Err(SynthesisError::SearchBudgetExhausted { .. })
        ));
    }

    #[test]
    fn disabling_controlled_merges_never_improves_the_cost() {
        // Removing the CRy merges restricts the library: states whose
        // cardinality is not a power of two (like the W state) may become
        // unreachable, and reachable states can only get more expensive.
        let target = generators::w_state(3).unwrap();
        let with_cry = shortest_reduction(&search_state(&target), &SearchConfig::default())
            .unwrap()
            .cnot_cost;
        let restricted = SearchConfig {
            enable_controlled_merges: false,
            ..SearchConfig::default()
        };
        match shortest_reduction(&search_state(&target), &restricted) {
            Ok(outcome) => assert!(outcome.cnot_cost >= with_cry),
            Err(SynthesisError::SearchBudgetExhausted { .. }) => {} // unreachable without CRy
            Err(other) => panic!("unexpected error {other}"),
        }
        // The GHZ state needs no controlled merges and must keep its optimum.
        let ghz = generators::ghz(3).unwrap();
        let restricted_ghz = shortest_reduction(&search_state(&ghz), &restricted).unwrap();
        assert_eq!(restricted_ghz.cnot_cost, 2);
    }
}
