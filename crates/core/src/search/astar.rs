//! The A* shortest-path solver (Algorithm 1 of the paper).
//!
//! The search runs backwards from the target state and stops at the first
//! *product* state it settles: from there zero-cost single-qubit rotations
//! finish the reduction to `|0…0⟩`. Distances are stored per canonical key
//! (state compression, Sec. V-B) and the priority queue is ordered by
//! `g + h` where `h` is the admissible entanglement heuristic of Sec. V-A,
//! so the first settled product state is CNOT-optimal with respect to the
//! transition library.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use crate::error::SynthesisError;

use super::canonical::{canonical_key, CanonicalKey};
use super::config::SearchConfig;
use super::op::TransitionOp;
use super::state::SearchState;

/// Statistics and result of one A* run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOutcome {
    /// Backward transitions from the target to the settled product state.
    pub reduction_ops: Vec<TransitionOp>,
    /// Total CNOT cost of the reduction (= cost of the preparation circuit).
    pub cnot_cost: usize,
    /// Number of states popped and expanded.
    pub expanded: usize,
    /// Number of states pushed onto the priority queue.
    pub pushed: usize,
}

/// A priority-queue entry ordered by `(f, g, insertion sequence)`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct QueueItem {
    f: usize,
    g: usize,
    seq: u64,
    state: SearchState,
}

impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the smallest f (then g, then
        // oldest insertion) is popped first.
        other
            .f
            .cmp(&self.f)
            .then_with(|| other.g.cmp(&self.g))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs the A* search from `target` (backwards) until a product state is
/// settled and returns the reduction operations together with statistics.
///
/// # Errors
///
/// Returns [`SynthesisError::SearchBudgetExhausted`] if the configured node
/// budget runs out before a product state is reached (which cannot happen
/// for well-formed inputs unless the budget is made artificially small).
pub fn shortest_reduction(
    target: &SearchState,
    config: &SearchConfig,
) -> Result<SearchOutcome, SynthesisError> {
    if target.is_product() {
        return Ok(SearchOutcome {
            reduction_ops: Vec::new(),
            cnot_cost: 0,
            expanded: 0,
            pushed: 0,
        });
    }

    let library = TransitionOp::library(target.num_qubits(), config.enable_controlled_merges);
    let heuristic = |state: &SearchState| -> usize {
        if config.use_heuristic {
            state.heuristic()
        } else {
            0
        }
    };

    let mut dist: HashMap<CanonicalKey, usize> = HashMap::new();
    let mut parent: HashMap<SearchState, (SearchState, TransitionOp)> = HashMap::new();
    let mut queue: BinaryHeap<QueueItem> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut expanded = 0usize;
    let mut pushed = 0usize;

    dist.insert(canonical_key(target, config.permutation_compression), 0);
    queue.push(QueueItem {
        f: heuristic(target),
        g: 0,
        seq,
        state: target.clone(),
    });

    while let Some(QueueItem { g, state, .. }) = queue.pop() {
        let key = canonical_key(&state, config.permutation_compression);
        if dist.get(&key).copied().unwrap_or(usize::MAX) < g {
            continue; // stale entry
        }
        if state.is_product() {
            let reduction_ops = reconstruct_path(&parent, target, &state);
            return Ok(SearchOutcome {
                reduction_ops,
                cnot_cost: g,
                expanded,
                pushed,
            });
        }
        expanded += 1;
        if expanded > config.max_expanded_nodes {
            return Err(SynthesisError::SearchBudgetExhausted { expanded });
        }
        for op in &library {
            let Some(next) = state.apply(op) else {
                continue;
            };
            let tentative = g + op.cnot_cost();
            let next_key = canonical_key(&next, config.permutation_compression);
            let best = dist.get(&next_key).copied().unwrap_or(usize::MAX);
            if tentative < best {
                dist.insert(next_key, tentative);
                parent.insert(next.clone(), (state.clone(), *op));
                seq += 1;
                pushed += 1;
                queue.push(QueueItem {
                    f: tentative + heuristic(&next),
                    g: tentative,
                    seq,
                    state: next,
                });
            }
        }
    }

    Err(SynthesisError::SearchBudgetExhausted { expanded })
}

/// Walks the parent map from `goal` back to `start` and returns the
/// transitions in application (target-to-product) order.
fn reconstruct_path(
    parent: &HashMap<SearchState, (SearchState, TransitionOp)>,
    start: &SearchState,
    goal: &SearchState,
) -> Vec<TransitionOp> {
    let mut ops = Vec::new();
    let mut current = goal.clone();
    while &current != start {
        let Some((previous, op)) = parent.get(&current) else {
            break;
        };
        ops.push(*op);
        current = previous.clone();
    }
    ops.reverse();
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_state::{generators, BasisIndex, SparseState};

    fn search_state(state: &SparseState) -> SearchState {
        SearchState::from_state(state)
    }

    fn solve(state: &SparseState) -> SearchOutcome {
        shortest_reduction(&search_state(state), &SearchConfig::default()).unwrap()
    }

    #[test]
    fn product_states_need_no_transitions() {
        let plus = SparseState::uniform_superposition(2, (0..4).map(BasisIndex::new)).unwrap();
        let outcome = solve(&plus);
        assert_eq!(outcome.cnot_cost, 0);
        assert!(outcome.reduction_ops.is_empty());
    }

    #[test]
    fn ghz_states_cost_n_minus_1_cnots() {
        for n in 2..5 {
            let outcome = solve(&generators::ghz(n).unwrap());
            assert_eq!(outcome.cnot_cost, n - 1, "ghz({n})");
        }
    }

    #[test]
    fn motivating_example_costs_two_cnots() {
        // Sec. III: (|000> + |011> + |101> + |110>)/2 needs exactly 2 CNOTs.
        let target = SparseState::uniform_superposition(
            3,
            [0b000u64, 0b011, 0b101, 0b110].map(BasisIndex::new),
        )
        .unwrap();
        let outcome = solve(&target);
        assert_eq!(outcome.cnot_cost, 2);
        assert_eq!(
            outcome
                .reduction_ops
                .iter()
                .map(TransitionOp::cnot_cost)
                .sum::<usize>(),
            2
        );
    }

    #[test]
    fn w3_state_costs_at_most_four_cnots() {
        // Table IV row (n=3, k=1): ours = 4.
        let outcome = solve(&generators::w_state(3).unwrap());
        assert!(outcome.cnot_cost <= 4, "cost {}", outcome.cnot_cost);
        assert!(outcome.cnot_cost >= 2);
    }

    #[test]
    fn heuristic_and_compression_do_not_change_the_optimum() {
        let target = generators::dicke(3, 1).unwrap();
        let base = shortest_reduction(&search_state(&target), &SearchConfig::default()).unwrap();
        let no_heuristic = shortest_reduction(
            &search_state(&target),
            &SearchConfig {
                use_heuristic: false,
                ..SearchConfig::default()
            },
        )
        .unwrap();
        let with_permutations = shortest_reduction(
            &search_state(&target),
            &SearchConfig {
                permutation_compression: true,
                ..SearchConfig::default()
            },
        )
        .unwrap();
        assert_eq!(base.cnot_cost, no_heuristic.cnot_cost);
        assert_eq!(base.cnot_cost, with_permutations.cnot_cost);
        // The heuristic can only reduce the number of expansions.
        assert!(base.expanded <= no_heuristic.expanded);
    }

    #[test]
    fn tiny_node_budget_reports_exhaustion() {
        let config = SearchConfig {
            max_expanded_nodes: 1,
            ..SearchConfig::default()
        };
        let result = shortest_reduction(&search_state(&generators::dicke(4, 2).unwrap()), &config);
        assert!(matches!(
            result,
            Err(SynthesisError::SearchBudgetExhausted { .. })
        ));
    }

    #[test]
    fn disabling_controlled_merges_never_improves_the_cost() {
        // Removing the CRy merges restricts the library: states whose
        // cardinality is not a power of two (like the W state) may become
        // unreachable, and reachable states can only get more expensive.
        let target = generators::w_state(3).unwrap();
        let with_cry = shortest_reduction(&search_state(&target), &SearchConfig::default())
            .unwrap()
            .cnot_cost;
        let restricted = SearchConfig {
            enable_controlled_merges: false,
            ..SearchConfig::default()
        };
        match shortest_reduction(&search_state(&target), &restricted) {
            Ok(outcome) => assert!(outcome.cnot_cost >= with_cry),
            Err(SynthesisError::SearchBudgetExhausted { .. }) => {} // unreachable without CRy
            Err(other) => panic!("unexpected error {other}"),
        }
        // The GHZ state needs no controlled merges and must keep its optimum.
        let ghz = generators::ghz(3).unwrap();
        let restricted_ghz = shortest_reduction(&search_state(&ghz), &restricted).unwrap();
        assert_eq!(restricted_ghz.cnot_cost, 2);
    }
}
