//! The scalable preparation workflow of Fig. 5.
//!
//! Exact synthesis has full visibility of the solution space but exponential
//! worst-case complexity, so the paper embeds it in a divide-and-conquer
//! workflow:
//!
//! * **sparse** states (`n·m < 2^n`) are shrunk with *cardinality reduction*
//!   until the residual state fits the exact solver's thresholds,
//! * **dense** states are shrunk with *qubit reduction* (uniformly controlled
//!   rotations disentangle the top qubits) until only the threshold number of
//!   qubits remains entangled,
//! * the residual problem is solved exactly, and the final circuit is the
//!   exact circuit followed by the inverse of the reduction.

use qsp_baselines::preparator::PreparationOutcome;
use qsp_baselines::{
    BaselineError, CardinalityReduction, HybridPreparator, QubitReduction, StatePreparator,
};
use qsp_circuit::Circuit;
use qsp_obs::SearchProbe;
use qsp_state::{QuantumState, SparseState};

use crate::api::{Provenance, StageTimings, SynthesisReport, SynthesisRequest, Synthesizer};
use crate::engine::{ReductionPlan, SolverEngine};
use crate::error::SynthesisError;
use crate::search::config::SearchConfig;

/// Floor of the adaptive dense-residual node budget: even a tiny residual
/// gets enough nodes that the exact probe is meaningful.
const DENSE_RESIDUAL_MIN_BUDGET: usize = 4_000;

/// Ceiling of the adaptive dense-residual node budget; beyond it the
/// workflow keeps the n-flow tail instead of searching further.
const DENSE_RESIDUAL_MAX_BUDGET: usize = 100_000;

/// Node budget for the exact search on the (non-uniform) residual of a dense
/// qubit reduction, scaled to the residual's actual size instead of a flat
/// constant: the A* frontier grows with both the cardinality `m` and the
/// kept register width, so a small residual probes cheaply while a
/// near-threshold one may spend up to [`DENSE_RESIDUAL_MAX_BUDGET`] before
/// the workflow keeps the n-flow tail.
fn dense_residual_node_budget(cardinality: usize, keep: usize) -> usize {
    cardinality
        .saturating_mul(cardinality)
        .saturating_mul(keep)
        .saturating_mul(32)
        .clamp(DENSE_RESIDUAL_MIN_BUDGET, DENSE_RESIDUAL_MAX_BUDGET)
}

/// Register width up to which the workflow double-checks its result against
/// every baseline flow and keeps the cheapest circuit. The exact library
/// (`{Ry, CNOT, CRy}`) can lose to the multiplexor-based flows on *small
/// dense* states (a 3-qubit dense state costs at most `2^3 − 2 = 6` with the
/// n-flow, which the exact solver cannot always match), and the workflow's
/// contract is to never be worse than the better baseline. The baselines are
/// cheap at these widths; wider targets are already guarded branch-locally.
const BASELINE_GUARD_QUBITS: usize = 6;

/// Configuration of the preparation workflow.
///
/// The defaults activate exact synthesis for residual problems with at most
/// 4 active qubits and cardinality at most 16, matching Sec. VI-C of the
/// paper ("we set fixed thresholds (n ≤ 4 and m ≤ 16) to activate the exact
/// synthesis in our workflow").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct WorkflowConfig {
    /// Search configuration (also provides the activation thresholds and the
    /// sequential-vs-portfolio [`crate::SearchStrategy`] every exact solve
    /// inside the workflow is scheduled with).
    pub search: SearchConfig,
    /// Whether to run the peephole optimizer on the final circuit. Off by
    /// default: the paper reports raw flow outputs.
    pub optimize: bool,
}

impl WorkflowConfig {
    /// The paper's defaults with the given solver scheduling strategy —
    /// the one-line switch that turns a whole workflow (and any
    /// [`crate::BatchSynthesizer`] built on it) into a portfolio deployment.
    pub fn with_strategy(strategy: crate::SearchStrategy) -> Self {
        WorkflowConfig::default().with_search(SearchConfig::default().with_strategy(strategy))
    }

    /// Replaces the search configuration.
    pub fn with_search(mut self, search: SearchConfig) -> Self {
        self.search = search;
        self
    }

    /// Enables or disables the peephole optimizer on the final circuit.
    pub fn with_optimize(mut self, optimize: bool) -> Self {
        self.optimize = optimize;
        self
    }
}

/// The end-to-end preparation workflow (Fig. 5), usable through the same
/// [`StatePreparator`] interface as the baselines.
///
/// # Example
///
/// ```
/// use qsp_baselines::StatePreparator;
/// use qsp_core::QspWorkflow;
/// use qsp_state::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = generators::dicke(4, 2)?;
/// let circuit = QspWorkflow::new().prepare(&target)?;
/// // Table IV / Fig. 6: ours halves the manual design's 12 CNOTs.
/// assert!(circuit.cnot_cost() < 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct QspWorkflow {
    config: WorkflowConfig,
}

impl QspWorkflow {
    /// Creates a workflow with the paper's default thresholds.
    pub fn new() -> Self {
        QspWorkflow {
            config: WorkflowConfig::default(),
        }
    }

    /// Creates a workflow with a custom configuration.
    pub fn with_config(config: WorkflowConfig) -> Self {
        QspWorkflow { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &WorkflowConfig {
        &self.config
    }

    /// Number of qubits of `state` that are not constantly `|0⟩`.
    fn active_qubits(state: &SparseState) -> usize {
        (0..state.num_qubits())
            .filter(|&q| state.iter().any(|(index, _)| index.bit(q)))
            .count()
    }

    /// Whether `state` already fits the exact synthesis thresholds.
    fn fits_exact(&self, state: &SparseState) -> bool {
        state.cardinality() <= self.config.search.max_cardinality
            && Self::active_qubits(state) <= self.config.search.max_qubits
    }

    /// Runs the full workflow on any [`QuantumState`] backend and returns
    /// the circuit. Sparse targets are borrowed zero-copy; dense and adaptive
    /// targets are converted once at the boundary and then follow the exact
    /// same code path.
    ///
    /// # Errors
    ///
    /// Returns an error for unsupported states (negative amplitudes) or when
    /// a reduction stage fails.
    #[deprecated(
        since = "0.3.0",
        note = "build a `SynthesisRequest` and use `synthesize_request` (or the \
                `Synthesizer` trait); the report's `circuit` field is this circuit"
    )]
    pub fn synthesize<S: QuantumState>(&self, state: &S) -> Result<Circuit, SynthesisError> {
        self.run(state)
    }

    /// Synthesizes one typed [`SynthesisRequest`], honouring its per-request
    /// overrides, and reports the circuit with provenance and timings. This
    /// is the [`Synthesizer`] trait entry point under an inherent name (the
    /// deprecated state-based `synthesize` still shadows the trait method).
    ///
    /// # Errors
    ///
    /// Returns an error for unsupported states (negative amplitudes) or when
    /// a reduction stage fails under the effective configuration.
    ///
    /// # Example
    ///
    /// ```
    /// use qsp_core::api::{Provenance, SynthesisRequest};
    /// use qsp_core::QspWorkflow;
    /// use qsp_state::generators;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let request = SynthesisRequest::new(generators::dicke(4, 2)?);
    /// let report = QspWorkflow::new().synthesize_request(&request)?;
    /// assert!(report.cnot_cost < 12); // Table IV: beats the manual design
    /// assert!(matches!(report.provenance, Provenance::Solved));
    /// assert_eq!(report.resolved.workflow, *QspWorkflow::new().config());
    /// # Ok(())
    /// # }
    /// ```
    pub fn synthesize_request<S: QuantumState>(
        &self,
        request: &SynthesisRequest<S>,
    ) -> Result<SynthesisReport, SynthesisError> {
        let start = std::time::Instant::now();
        let resolved = request.options.resolve(&self.config);
        let circuit = QspWorkflow::with_config(resolved.workflow).run(&request.target)?;
        Ok(SynthesisReport::new(
            circuit,
            Provenance::Solved,
            StageTimings::solved_in(start.elapsed()),
            resolved,
        ))
    }

    /// The undeprecated core of the workflow (also what the batch engine and
    /// the request path call).
    pub(crate) fn run<S: QuantumState>(&self, state: &S) -> Result<Circuit, SynthesisError> {
        self.run_probed(state, None)
    }

    /// [`QspWorkflow::run`] with an optional solver flight-recorder probe:
    /// every exact solve the workflow schedules (direct, sparse residual,
    /// dense residual) reports its search effort into the shared probe.
    pub(crate) fn run_probed<S: QuantumState>(
        &self,
        state: &S,
        probe: Option<&SearchProbe>,
    ) -> Result<Circuit, SynthesisError> {
        Ok(self.run_with_plan(state, probe)?.0)
    }

    /// [`QspWorkflow::run_probed`] that additionally surfaces the exact
    /// solver's reduction plan when the target was solved *directly* by the
    /// exact branch and its circuit survived the baseline guard unchanged —
    /// the capture seam of the batch layer's support-pattern class
    /// templates. Targets that went through a reduction flow (or whose
    /// circuit a guard replaced) return `None`: their circuits were not
    /// produced by a replayable recipe.
    pub(crate) fn run_with_plan<S: QuantumState>(
        &self,
        state: &S,
        probe: Option<&SearchProbe>,
    ) -> Result<(Circuit, Option<ReductionPlan>), SynthesisError> {
        let sparse = state.as_sparse()?;
        let target = sparse.as_ref();
        if target.iter().any(|(_, a)| a < 0.0) {
            return Err(SynthesisError::UnsupportedState {
                reason: "the workflow requires non-negative real amplitudes".to_string(),
            });
        }
        let exact = SolverEngine::new(self.config.search);

        let mut plan: Option<ReductionPlan> = None;
        let mut circuit = if self.fits_exact(target) {
            let outcome = exact.synthesize_probed(target, probe)?;
            plan = outcome.plan;
            outcome.circuit
        } else if target.is_sparse() {
            // Sparse branch: cardinality reduction until the residual problem
            // fits the exact solver.
            let thresholds = self.config.search;
            let (reduction, residual) =
                CardinalityReduction::new().reduce_until(target, |state| {
                    state.cardinality() <= thresholds.max_cardinality
                        && Self::active_qubits(state) <= thresholds.max_qubits
                })?;
            // The exact solver handles the residual; if the plain cardinality
            // reduction happens to finish the residual cheaper (its library
            // contains multi-controlled rotations the exact library does
            // not), or the exact search exceeds its node budget, keep the
            // m-flow tail so the workflow is never worse than the m-flow, as
            // in Table V.
            let mflow_tail = CardinalityReduction::new().prepare(&residual)?;
            let mut circuit = match exact.synthesize_probed(&residual, probe) {
                Ok(outcome) if outcome.circuit.cnot_cost() <= mflow_tail.cnot_cost() => {
                    outcome.circuit
                }
                _ => mflow_tail,
            };
            circuit.append(&reduction.inverse())?;
            circuit
        } else {
            // Dense branch: disentangle the top qubits, then solve the
            // residual exactly.
            let keep = self.config.search.max_qubits.min(target.num_qubits());
            let (reduction, residual) = QubitReduction::new().disentangle_top(target, keep)?;
            // Same guard as the sparse branch: never lose to the n-flow's own
            // handling of the residual, which costs 2^keep − 2 CNOTs on the
            // `keep`-qubit sub-register the residual lives on. The residual of
            // a dense reduction has non-uniform amplitudes, for which the
            // exact search can be much slower than for the uniform states it
            // is normally given, so its node budget is capped and the n-flow
            // tail is used whenever the budget runs out.
            let compact_residual = SparseState::from_amplitudes(keep, residual.iter())?;
            let nflow_tail = QubitReduction::new()
                .prepare(&compact_residual)?
                .remap_qubits(&(0..keep).collect::<Vec<_>>(), target.num_qubits())?;
            let capped = SolverEngine::new(
                self.config
                    .search
                    .with_node_budget(self.config.search.max_expanded_nodes.min(
                        dense_residual_node_budget(compact_residual.cardinality(), keep),
                    )),
            );
            let mut circuit = match capped.synthesize_probed(&residual, probe) {
                Ok(outcome) if outcome.circuit.cnot_cost() <= nflow_tail.cnot_cost() => {
                    outcome.circuit
                }
                _ => nflow_tail,
            };
            circuit.append(&reduction.inverse())?;
            circuit
        };

        // The guard is skipped when the circuit already meets the admissible
        // entanglement lower bound (nothing can beat it), and the n-flow —
        // the expensive guard, a full 2^n multiplexor chain — is only
        // synthesized when its closed-form cost of 2^n − 2 would win.
        let n = target.num_qubits();
        let pre_guard_cost = circuit.cnot_cost();
        if n <= BASELINE_GUARD_QUBITS
            && circuit.cnot_cost() > qsp_state::cofactor::entanglement_lower_bound(target)
        {
            let mut guards: Vec<Box<dyn StatePreparator>> = vec![
                Box::new(CardinalityReduction::new()),
                Box::new(HybridPreparator::new()),
            ];
            if (1usize << n) - 2 < circuit.cnot_cost() {
                guards.push(Box::new(QubitReduction::new()));
            }
            for guard in guards {
                if let Ok(candidate) = guard.prepare_sparse(target) {
                    if candidate.cnot_cost() < circuit.cnot_cost() {
                        circuit = candidate;
                    }
                }
            }
        }
        if circuit.cnot_cost() != pre_guard_cost {
            // A baseline flow won the guard: the circuit no longer matches
            // the exact solver's recipe, so there is nothing to capture.
            plan = None;
        }

        if self.config.optimize {
            let (optimized, _) = qsp_circuit::optimizer::optimize(&circuit);
            Ok((optimized, plan))
        } else {
            Ok((circuit, plan))
        }
    }
}

impl<S: QuantumState> Synthesizer<S> for QspWorkflow {
    fn synthesize(&self, request: &SynthesisRequest<S>) -> Result<SynthesisReport, SynthesisError> {
        self.synthesize_request(request)
    }
}

impl StatePreparator for QspWorkflow {
    fn name(&self) -> &str {
        "exact-synthesis"
    }

    fn prepare_sparse(&self, target: &SparseState) -> Result<Circuit, BaselineError> {
        self.run(target).map_err(|e| match e {
            SynthesisError::Baseline(inner) => inner,
            other => BaselineError::UnsupportedState {
                reason: other.to_string(),
            },
        })
    }
}

/// Prepares `target` with the default workflow and reports the circuit, its
/// CNOT cost and the synthesis time.
///
/// # Errors
///
/// Propagates workflow errors (unsupported amplitudes, reduction failures).
///
/// # Example
///
/// ```
/// use qsp_core::prepare_state;
/// use qsp_state::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let outcome = prepare_state(&generators::ghz(8)?)?;
/// assert_eq!(outcome.cnot_cost, 7);
/// # Ok(())
/// # }
/// ```
pub fn prepare_state<S: QuantumState>(target: &S) -> Result<PreparationOutcome, SynthesisError> {
    let start = std::time::Instant::now();
    let circuit = QspWorkflow::new().run(target)?;
    Ok(PreparationOutcome::new(circuit, start.elapsed()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_sim::verify_preparation;
    use qsp_state::{generators, BasisIndex};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn verify(target: &SparseState) -> Circuit {
        let circuit = QspWorkflow::new().prepare(target).unwrap();
        let report = verify_preparation(&circuit, target).unwrap();
        assert!(
            report.is_correct(),
            "workflow circuit does not prepare the target (fidelity {})",
            report.fidelity
        );
        circuit
    }

    #[test]
    fn small_states_go_straight_to_exact_synthesis() {
        let circuit = verify(&generators::dicke(4, 2).unwrap());
        assert!(circuit.cnot_cost() < generators::manual_dicke_cnot_count(4, 2));
    }

    #[test]
    fn ghz_states_of_any_size_are_cheap() {
        // GHZ is sparse for n ≥ 3: the workflow reduces it and solves exactly.
        for n in [3, 6, 10] {
            let circuit = verify(&generators::ghz(n).unwrap());
            assert_eq!(circuit.cnot_cost(), n - 1, "ghz({n})");
        }
    }

    #[test]
    fn sparse_branch_beats_mflow_alone() {
        let mut rng = StdRng::seed_from_u64(11);
        let target = generators::random_sparse_state(9, &mut rng).unwrap();
        let ours = verify(&target).cnot_cost();
        let mflow = CardinalityReduction::new()
            .prepare(&target)
            .unwrap()
            .cnot_cost();
        assert!(
            ours <= mflow,
            "workflow ({ours}) must not be worse than m-flow ({mflow})"
        );
    }

    #[test]
    fn dense_branch_beats_nflow_alone() {
        let mut rng = StdRng::seed_from_u64(13);
        let target = generators::random_dense_state(6, &mut rng).unwrap();
        let ours = verify(&target).cnot_cost();
        let nflow = QubitReduction::new().prepare(&target).unwrap().cnot_cost();
        assert!(
            ours <= nflow,
            "workflow ({ours}) must not be worse than n-flow ({nflow})"
        );
    }

    #[test]
    fn dicke_6_2_stays_below_the_nflow() {
        // |D^2_6> is classified dense by the workflow (n·m = 90 ≥ 2^6), so it
        // goes through qubit reduction plus an exact tail. With the
        // single-control merge library of this reproduction the result does
        // not reach the paper's 22 CNOTs (see EXPERIMENTS.md), but it must
        // stay at or below the plain n-flow's 62 and verify.
        let circuit = verify(&generators::dicke(6, 2).unwrap());
        assert!(circuit.cnot_cost() <= 62, "cost {}", circuit.cnot_cost());
    }

    #[test]
    fn optimized_workflow_is_never_worse() {
        let target = generators::w_state(6).unwrap();
        let plain = QspWorkflow::new().prepare(&target).unwrap();
        let optimized = QspWorkflow::with_config(WorkflowConfig {
            optimize: true,
            ..WorkflowConfig::default()
        })
        .prepare(&target)
        .unwrap();
        assert!(optimized.cnot_cost() <= plain.cnot_cost());
        let report = verify_preparation(&optimized, &target).unwrap();
        assert!(report.is_correct());
    }

    #[test]
    fn negative_amplitudes_are_rejected() {
        let negative = SparseState::from_amplitudes(
            2,
            [(BasisIndex::new(0), 0.6), (BasisIndex::new(3), -0.8)],
        )
        .unwrap();
        assert!(QspWorkflow::new().prepare(&negative).is_err());
        assert!(prepare_state(&negative).is_err());
        assert_eq!(QspWorkflow::new().name(), "exact-synthesis");
    }

    #[test]
    fn dense_residual_budget_scales_and_clamps() {
        // Monotone in both the residual cardinality and the kept width.
        assert!(dense_residual_node_budget(4, 3) <= dense_residual_node_budget(8, 3));
        assert!(dense_residual_node_budget(8, 3) <= dense_residual_node_budget(8, 4));
        // Floored for tiny residuals, capped near the thresholds, and safe
        // against overflow.
        assert_eq!(dense_residual_node_budget(1, 1), DENSE_RESIDUAL_MIN_BUDGET);
        assert_eq!(dense_residual_node_budget(16, 4), 32_768);
        assert_eq!(dense_residual_node_budget(64, 6), DENSE_RESIDUAL_MAX_BUDGET);
        assert_eq!(
            dense_residual_node_budget(usize::MAX, usize::MAX),
            DENSE_RESIDUAL_MAX_BUDGET
        );
    }

    #[test]
    fn prepare_state_reports_cost_and_time() {
        let outcome = prepare_state(&generators::w_state(4).unwrap()).unwrap();
        assert!(outcome.cnot_cost > 0);
        assert_eq!(outcome.circuit.cnot_cost(), outcome.cnot_cost);
    }
}
