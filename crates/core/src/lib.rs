//! # qsp-core
//!
//! Exact CNOT synthesis for quantum state preparation (QSP), reproducing
//! "Quantum State Preparation Using an Exact CNOT Synthesis Formulation"
//! (Wang, Tan, Cong, De Micheli — DATE 2024).
//!
//! The crate implements the paper's contribution end to end and scales it
//! into a batch-serving engine. Every entry point is generic over the
//! [`qsp_state::QuantumState`] backend trait, so sparse, dense and adaptive
//! targets flow through the same code paths:
//!
//! * [`api`] — the **unified request/outcome contract**: one typed
//!   [`SynthesisRequest`] (target plus per-request [`RequestOptions`]
//!   overrides and a [`CachePolicy`]) and one provenance-rich
//!   [`SynthesisReport`] (circuit, `cnot_cost`, [`Provenance`], per-stage
//!   timings, effective resolved config), accepted by every layer through
//!   the [`Synthesizer`] trait. Cost-relevant overrides are fingerprinted
//!   into the canonical [`ClassKey`], so per-request policies are
//!   dedup-sound.
//! * [`search`] — the state transition graph over **amplitude-preserving**
//!   single-target transitions (Sec. IV) together with the A* shortest-path
//!   solver, its admissible entanglement heuristic and the canonicalization
//!   based state compression (Sec. V).
//! * [`engine`] — the [`SolverEngine`]: one dispatch point that schedules
//!   the A* search sequentially or as a *portfolio* race over canonically
//!   equivalent target variants (shared atomic incumbent bound,
//!   first-optimal-wins cancellation), selected by
//!   [`SearchConfig::strategy`]. Every entry point below solves through it.
//! * [`exact`] — the user-facing exact synthesizer: give it a state, get back
//!   the CNOT-optimal circuit (with respect to the paper's gate library) plus
//!   search statistics.
//! * [`workflow`] — the scalable workflow of Fig. 5: sparse states are first
//!   shrunk with cardinality reduction, dense states with qubit reduction,
//!   until the residual problem fits the exact solver's thresholds.
//! * [`cache`] — the sharded, eviction-aware synthesis cache: canonical
//!   classes keyed by hash shard, LRU-bounded by [`CacheConfig`], with JSON
//!   warm-start snapshots (plus cheaper-entry-wins snapshot *merging*) for
//!   cross-process reuse.
//! * [`batch`] — the parallel batch-synthesis engine: many targets at once,
//!   deduplicated under the Sec. V-B canonical key through the sharded
//!   cache, solved on a worker pool, with per-target circuits and aggregate
//!   statistics returned in submission order. Its canonical-class seam
//!   ([`BatchSynthesizer::canonical_class`] / `lookup_class` / `solve_class`
//!   / `reconstruct_for`) is the surface the `qsp-serve` request/response
//!   service builds its in-flight dedup on.
//! * [`json`] — the workspace-shared hand-rolled JSON reader/writer used by
//!   cache snapshots, serving stats dumps and the benchmark reports (the
//!   offline build has no serde). It now lives in `qsp-obs` and is
//!   re-exported here, so `qsp_core::json` paths keep working.
//!
//! Every layer reports into the engine's [`qsp_obs::ObsHub`] (reachable via
//! [`BatchSynthesizer::obs`]): registry counters and histograms are always
//! on (relaxed atomics); per-request [`qsp_obs::RequestTrace`]s ride on
//! every [`SynthesisReport`]; ring tracing, the solver flight recorder and
//! cache probe/evict timing are opt-in through
//! [`BatchOptions::with_obs`](batch::BatchOptions::with_obs).
//!
//! # Quickstart
//!
//! ```
//! use qsp_core::prepare_state;
//! use qsp_state::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // |D^1_3> (the 3-qubit W state): exact synthesis needs at most 4 CNOTs,
//! // matching the "ours" column of Table IV.
//! let target = generators::dicke(3, 1)?;
//! let outcome = prepare_state(&target)?;
//! assert!(outcome.circuit.cnot_cost() <= 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod api;
pub mod batch;
pub mod cache;
pub mod engine;
pub mod error;
pub mod exact;
pub mod search;
pub mod workflow;

pub use api::{
    CachePolicy, Provenance, RequestOptions, ResolvedConfig, StageTimings, SynthesisReport,
    SynthesisRequest, Synthesizer, TenantId,
};
pub use batch::{
    BatchOptions, BatchOutcome, BatchStats, BatchSynthesizer, DedupPolicy, KeyedClass,
    RequestBatchOutcome,
};
pub use cache::{
    CacheEntry, CacheStats, ClassKey, EntryOrigin, ShardedCache, SNAPSHOT_FORMAT_VERSION,
};
pub use engine::{SolverEngine, StateTransform};
pub use error::SynthesisError;
pub use exact::{ExactSynthesisOutcome, ExactSynthesizer, SynthesisStats};
pub use qsp_obs::json;
pub use qsp_obs::json::{JsonError, JsonErrorKind};
// The observability surface engine users touch: the knobs on
// `BatchOptions`, the hub/snapshot behind `BatchSynthesizer::obs`, and the
// trace types riding on every `SynthesisReport`.
pub use qsp_obs::{ObsHub, ObsOptions, ObsSnapshot, RequestTrace, SpanKind, TraceId};
pub use qsp_state::pipeline::KeyCoverage;
pub use search::config::{CacheConfig, SearchConfig, SearchStrategy};
pub use workflow::{prepare_state, QspWorkflow, WorkflowConfig};
