//! The exact CNOT synthesizer: from a target state to a CNOT-optimal circuit.
//!
//! [`ExactSynthesizer`] is the public face of the [`crate::engine::SolverEngine`]
//! pipeline:
//!
//! 1. the target's constant-`|0⟩` qubits are compacted away (the search then
//!    runs on the active register only),
//! 2. the A* solver finds the cheapest backward reduction to a product state
//!    — sequentially or as a portfolio race over canonical variants,
//!    depending on [`SearchConfig::strategy`],
//! 3. the abstract transitions are *replayed* on the concrete state to derive
//!    the exact rotation angles, and a zero-cost single-qubit layer finishes
//!    the reduction to `|0…0⟩`,
//! 4. the preparation circuit is the inverse of that reduction, remapped back
//!    onto the original register.

use std::time::Duration;

use qsp_circuit::{apply_gate, Circuit, Control, Gate};
use qsp_state::{Cofactors, QuantumState, SparseState, DEFAULT_TOLERANCE};

use crate::api::{Provenance, StageTimings, SynthesisReport, SynthesisRequest, Synthesizer};
use crate::engine::SolverEngine;
use crate::error::SynthesisError;
use crate::search::config::SearchConfig;
use crate::search::op::TransitionOp;
use crate::workflow::WorkflowConfig;

/// Statistics of one exact synthesis run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SynthesisStats {
    /// States expanded by the A* search (the winning worker's count under
    /// portfolio search).
    pub expanded: usize,
    /// States pushed onto the priority queue (winning worker under portfolio
    /// search).
    pub pushed: usize,
    /// Number of active (non constant-`|0⟩`) qubits the search ran on.
    pub active_qubits: usize,
    /// Number of canonical variants the solver raced (1 for sequential
    /// search or a degenerate portfolio).
    pub variants: usize,
}

/// The result of an exact synthesis run.
#[derive(Debug, Clone)]
pub struct ExactSynthesisOutcome {
    /// The preparation circuit (maps `|0…0⟩` to the target).
    pub circuit: Circuit,
    /// CNOT cost of the circuit (optimal with respect to the library).
    pub cnot_cost: usize,
    /// Search statistics.
    pub stats: SynthesisStats,
    /// Wall-clock time of the synthesis.
    pub elapsed: Duration,
    /// The angle-free reduction recipe the circuit was replayed from
    /// (`None` when the target was `|0…0⟩` already). The batch layer
    /// captures this as a support-pattern class template.
    pub(crate) plan: Option<crate::engine::ReductionPlan>,
}

/// Exact CNOT synthesis via the shortest-path formulation (Sec. IV–V).
///
/// # Example
///
/// ```
/// use qsp_core::ExactSynthesizer;
/// use qsp_state::{BasisIndex, SparseState};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The motivating example of the paper: exact synthesis finds 2 CNOTs.
/// use qsp_core::api::SynthesisRequest;
/// let target = SparseState::uniform_superposition(
///     3,
///     [0b000u64, 0b011, 0b101, 0b110].map(BasisIndex::new),
/// )?;
/// let report = ExactSynthesizer::new().synthesize_request(&SynthesisRequest::new(target))?;
/// assert_eq!(report.cnot_cost, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactSynthesizer {
    engine: SolverEngine,
}

impl ExactSynthesizer {
    /// Creates a synthesizer with the paper's default configuration.
    pub fn new() -> Self {
        ExactSynthesizer {
            engine: SolverEngine::new(SearchConfig::default()),
        }
    }

    /// Creates a synthesizer with a custom search configuration (including
    /// the sequential-vs-portfolio [`crate::SearchStrategy`]).
    pub fn with_config(config: SearchConfig) -> Self {
        ExactSynthesizer {
            engine: SolverEngine::new(config),
        }
    }

    /// The active search configuration.
    pub fn config(&self) -> &SearchConfig {
        self.engine.config()
    }

    /// The underlying solver engine.
    pub fn engine(&self) -> &SolverEngine {
        &self.engine
    }

    /// Synthesizes the CNOT-optimal preparation circuit for `target` (any
    /// [`QuantumState`] backend).
    ///
    /// # Errors
    ///
    /// Returns an error when the target has negative amplitudes, exceeds the
    /// configured limits on active qubits / cardinality, or the search budget
    /// is exhausted.
    #[deprecated(
        since = "0.3.0",
        note = "build a `SynthesisRequest` and use `synthesize_request` (or the \
                `Synthesizer` trait); search statistics remain available on \
                `engine().synthesize(..)`"
    )]
    pub fn synthesize<S: QuantumState>(
        &self,
        state: &S,
    ) -> Result<ExactSynthesisOutcome, SynthesisError> {
        self.engine.synthesize(state)
    }

    /// Synthesizes one typed [`SynthesisRequest`], honouring its per-request
    /// search overrides (strategy, node budget, ablations). The exact
    /// synthesizer always emits raw circuits, so an `optimize` override is
    /// pinned back to `false` *before* resolution — the report's resolved
    /// config and fingerprint describe what actually ran, and the same
    /// fingerprint can never stand for two different costs across layers.
    /// This is the [`Synthesizer`] trait entry point under an inherent name
    /// (the deprecated state-based `synthesize` still shadows the trait
    /// method).
    ///
    /// # Errors
    ///
    /// Returns an error when the target has negative amplitudes, exceeds the
    /// effective limits on active qubits / cardinality, or the search budget
    /// is exhausted.
    pub fn synthesize_request<S: QuantumState>(
        &self,
        request: &SynthesisRequest<S>,
    ) -> Result<SynthesisReport, SynthesisError> {
        let start = std::time::Instant::now();
        let base = WorkflowConfig::default().with_search(*self.engine.config());
        let mut options = request.options;
        options.optimize = Some(false);
        let resolved = options.resolve(&base);
        let outcome = SolverEngine::new(resolved.workflow.search).synthesize(&request.target)?;
        Ok(SynthesisReport::new(
            outcome.circuit,
            Provenance::Solved,
            StageTimings::solved_in(start.elapsed()),
            resolved,
        ))
    }
}

impl<S: QuantumState> Synthesizer<S> for ExactSynthesizer {
    fn synthesize(&self, request: &SynthesisRequest<S>) -> Result<SynthesisReport, SynthesisError> {
        self.synthesize_request(request)
    }
}

/// Replays the abstract reduction operations on the concrete state, deriving
/// the rotation angles, and appends the zero-cost finishing layer that maps
/// the final product state to `|0…0⟩`. Returns the *reduction* circuit.
pub(crate) fn replay_reduction(
    target: &SparseState,
    ops: &[TransitionOp],
) -> Result<Circuit, SynthesisError> {
    let n = target.num_qubits();
    let mut circuit = Circuit::new(n);
    let mut current = target.clone();
    for op in ops {
        let gate = match *op {
            TransitionOp::Cnot {
                control,
                polarity,
                target,
            } => Gate::Cnot {
                control: Control {
                    qubit: control,
                    polarity,
                },
                target,
            },
            TransitionOp::RyMerge { target: qubit } => {
                let theta = merge_angle(&current, qubit, None)?;
                Gate::ry(qubit, theta)
            }
            TransitionOp::CryMerge {
                control,
                polarity,
                target: qubit,
            } => {
                let theta = merge_angle(&current, qubit, Some((control, polarity)))?;
                Gate::Mcry {
                    controls: vec![Control {
                        qubit: control,
                        polarity,
                    }],
                    target: qubit,
                    theta,
                }
            }
        };
        current = apply_gate(&current, &gate)?;
        circuit.try_push(gate)?;
    }
    // Finishing layer: rotate every remaining separable qubit to |0⟩ and flip
    // constant-|1⟩ qubits (all zero CNOT cost).
    for qubit in 0..n {
        let cofactors = Cofactors::of(&current, qubit);
        let Some((a, b)) = cofactors.separation(DEFAULT_TOLERANCE) else {
            return Err(SynthesisError::UnsupportedState {
                reason: format!(
                    "internal error: qubit {qubit} is not separable after the reduction"
                ),
            });
        };
        if b.abs() > DEFAULT_TOLERANCE {
            let theta = 2.0 * b.atan2(a);
            let gate = Gate::ry(qubit, theta);
            current = apply_gate(&current, &gate)?;
            circuit.try_push(gate)?;
        }
    }
    if !current.is_ground_state(1e-6) {
        return Err(SynthesisError::UnsupportedState {
            reason: "internal error: reduction did not reach the ground state".to_string(),
        });
    }
    Ok(circuit)
}

/// The rotation angle that merges the `|1⟩` branch of `qubit` into the `|0⟩`
/// branch (restricted to the controlled subset when `control` is given).
fn merge_angle(
    state: &SparseState,
    qubit: usize,
    control: Option<(usize, bool)>,
) -> Result<f64, SynthesisError> {
    let mut p0 = 0.0f64;
    let mut p1 = 0.0f64;
    for (index, amplitude) in state.iter() {
        if let Some((c, polarity)) = control {
            if index.bit(c) != polarity {
                continue;
            }
        }
        if index.bit(qubit) {
            p1 += amplitude * amplitude;
        } else {
            p0 += amplitude * amplitude;
        }
    }
    if p0 + p1 <= f64::EPSILON {
        return Err(SynthesisError::UnsupportedState {
            reason: "internal error: merge on an empty branch".to_string(),
        });
    }
    Ok(2.0 * p1.sqrt().atan2(p0.sqrt()))
}

#[cfg(test)]
mod tests {
    // The deprecated state-based entry point stays covered until it is
    // removed; new call sites use `synthesize_request`.
    #![allow(deprecated)]

    use super::*;
    use qsp_sim::verify_preparation;
    use qsp_state::{generators, BasisIndex};

    fn synthesize_and_verify(target: &SparseState) -> ExactSynthesisOutcome {
        let outcome = ExactSynthesizer::new().synthesize(target).unwrap();
        let report = verify_preparation(&outcome.circuit, target).unwrap();
        assert!(
            report.is_correct(),
            "exact circuit does not prepare the target (fidelity {})",
            report.fidelity
        );
        outcome
    }

    #[test]
    fn motivating_example_is_two_cnots() {
        let target = SparseState::uniform_superposition(
            3,
            [0b000u64, 0b011, 0b101, 0b110].map(BasisIndex::new),
        )
        .unwrap();
        let outcome = synthesize_and_verify(&target);
        assert_eq!(outcome.cnot_cost, 2);
    }

    #[test]
    fn ghz_states_are_optimal() {
        for n in 2..5 {
            let outcome = synthesize_and_verify(&generators::ghz(n).unwrap());
            assert_eq!(outcome.cnot_cost, n - 1, "ghz({n})");
        }
    }

    #[test]
    fn dicke_3_1_matches_table4() {
        let outcome = synthesize_and_verify(&generators::dicke(3, 1).unwrap());
        assert!(outcome.cnot_cost <= 4, "cost {}", outcome.cnot_cost);
    }

    #[test]
    fn dicke_4_2_beats_the_manual_design() {
        // Table IV / Fig. 6: the exact synthesis needs at most 6-7 CNOTs for
        // |D^2_4> while the best manual design needs 12.
        let outcome = synthesize_and_verify(&generators::dicke(4, 2).unwrap());
        assert!(
            outcome.cnot_cost < generators::manual_dicke_cnot_count(4, 2),
            "cost {} does not beat the manual 12",
            outcome.cnot_cost
        );
    }

    #[test]
    fn constant_zero_qubits_are_compacted() {
        // A Bell pair embedded in a 10-qubit register: the search must only
        // see 2 active qubits and the result must still verify.
        let target = SparseState::uniform_superposition(
            10,
            [BasisIndex::new(0b0000000000), BasisIndex::new(0b0000100100)],
        )
        .unwrap();
        let outcome = synthesize_and_verify(&target);
        assert_eq!(outcome.stats.active_qubits, 2);
        assert_eq!(outcome.cnot_cost, 1);
    }

    #[test]
    fn ground_state_needs_nothing() {
        let target = SparseState::ground_state(3).unwrap();
        let outcome = synthesize_and_verify(&target);
        assert_eq!(outcome.cnot_cost, 0);
        assert!(outcome.circuit.is_empty());
    }

    #[test]
    fn limits_are_enforced() {
        let too_wide = generators::ghz(6).unwrap();
        assert!(matches!(
            ExactSynthesizer::new().synthesize(&too_wide),
            Err(SynthesisError::ProblemTooLarge { .. })
        ));
        let negative = SparseState::from_amplitudes(
            2,
            [(BasisIndex::new(0), 0.6), (BasisIndex::new(3), -0.8)],
        )
        .unwrap();
        assert!(matches!(
            ExactSynthesizer::new().synthesize(&negative),
            Err(SynthesisError::UnsupportedState { .. })
        ));
        let wide_config = ExactSynthesizer::with_config(SearchConfig::extended());
        assert!(wide_config.synthesize(&generators::ghz(5).unwrap()).is_ok());
        assert_eq!(wide_config.config().max_qubits, 5);
        assert_eq!(wide_config.engine().config().max_qubits, 5);
    }

    #[test]
    fn request_overrides_are_honoured() {
        let target = generators::dicke(4, 2).unwrap();
        let synthesizer = ExactSynthesizer::new();
        let report = synthesizer
            .synthesize_request(&SynthesisRequest::new(target.clone()))
            .unwrap();
        assert_eq!(report.cnot_cost, 6);
        assert!(report.provenance.is_fresh_solve());
        assert_eq!(report.resolved.workflow.search, *synthesizer.config());
        // A starved per-request node budget fails this request only...
        let starved = synthesizer
            .synthesize_request(&SynthesisRequest::new(target.clone()).with_node_budget(1));
        assert!(matches!(
            starved,
            Err(SynthesisError::SearchBudgetExhausted { .. })
        ));
        // ...and the approximate compression may only report a larger count.
        let compressed = synthesizer
            .synthesize_request(
                &SynthesisRequest::new(target.clone()).with_permutation_compression(true),
            )
            .unwrap();
        assert!(compressed.cnot_cost >= report.cnot_cost);
        // An `optimize` override is pinned to false (the exact solver emits
        // raw circuits), so the fingerprint matches the un-overridden one —
        // one fingerprint can never stand for two different costs.
        let optimize_requested = synthesizer
            .synthesize_request(&SynthesisRequest::new(target).with_optimize(true))
            .unwrap();
        assert!(!optimize_requested.resolved.workflow.optimize);
        assert_eq!(
            optimize_requested.resolved.fingerprint,
            report.resolved.fingerprint
        );
    }

    #[test]
    fn random_uniform_states_verify() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let target = generators::random_uniform_state(4, 6, &mut rng).unwrap();
            synthesize_and_verify(&target);
        }
    }
}
