//! Minimal, dependency-free stand-in for the subset of the [`rand` crate]
//! API used by this workspace.
//!
//! The build environment of this repository is fully offline, so the real
//! `rand` crate cannot be fetched from a registry. This shim reimplements the
//! small surface the workspace needs — [`Rng::gen_range`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`] — on top of a
//! [xoshiro256++] generator seeded through SplitMix64.
//!
//! The streams are deterministic for a given seed (what every seeded test in
//! the workspace relies on) but are **not** bit-compatible with the real
//! `rand` crate, and the generator is **not** cryptographically secure.
//!
//! [`rand` crate]: https://docs.rs/rand
//! [xoshiro256++]: https://prng.di.unimi.it/

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniformly samples an integer in `[0, span)` without modulo bias worth
/// caring about here (Lemire's multiply-shift reduction).
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// A range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        start + (end - start) * unit_f64(rng.next_u64())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ seeded
    /// via SplitMix64. API-compatible stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot produce
            // four zero outputs in a row, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{bounded, Rng};

    /// Shuffling for slices (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..16)
            .map(|_| StdRng::seed_from_u64(42).gen_range(0..u64::MAX))
            .collect();
        let other: Vec<u64> = (0..16).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-3.0f64..3.0);
            assert!((-3.0..3.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn all_values_of_a_small_range_appear() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes_and_depends_on_seed() {
        let mut items: Vec<u32> = (0..32).collect();
        let mut rng = StdRng::seed_from_u64(5);
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(items, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn rng_works_through_unsized_references() {
        fn sample(rng: &mut (impl Rng + ?Sized)) -> usize {
            rng.gen_range(0..10usize)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let dynamic: &mut StdRng = &mut rng;
        assert!(sample(dynamic) < 10);
    }
}
