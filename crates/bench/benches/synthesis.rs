//! Micro-benchmarks backing Fig. 7 (runtime scaling) and the per-method
//! synthesis costs of Tables IV/V.
//!
//! The offline build has no `criterion`, so this is a plain `harness = false`
//! benchmark: each case is repeated a fixed number of times and the minimum,
//! mean and maximum wall-clock times are printed as a table.
//!
//! Run with `cargo bench -p qsp-bench`.

use std::time::{Duration, Instant};

use qsp_baselines::{CardinalityReduction, HybridPreparator, QubitReduction, StatePreparator};
use qsp_core::{BatchSynthesizer, ExactSynthesizer, QspWorkflow, SynthesisRequest};
use qsp_state::generators::{self, Workload};
use qsp_state::SparseState;

const SAMPLES: usize = 10;

fn measure<F: FnMut()>(mut f: F) -> (Duration, Duration, Duration) {
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    let mut total = Duration::ZERO;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        f();
        let elapsed = start.elapsed();
        min = min.min(elapsed);
        max = max.max(elapsed);
        total += elapsed;
    }
    (min, total / SAMPLES as u32, max)
}

fn report(group: &str, case: &str, times: (Duration, Duration, Duration)) {
    println!(
        "{group:<28} {case:<16} min {:>10.3?}  mean {:>10.3?}  max {:>10.3?}",
        times.0, times.1, times.2
    );
}

/// Fig. 7b / Table V (sparse): synthesis runtime on random sparse states.
fn bench_sparse_states() {
    for n in [6usize, 8, 10, 12] {
        let target = Workload::RandomSparse { n, seed: 42 }
            .instantiate()
            .expect("workload generation succeeds");
        report(
            "fig7b_sparse_states",
            &format!("m-flow/{n}"),
            measure(|| {
                CardinalityReduction::new()
                    .prepare(&target)
                    .expect("m-flow succeeds");
            }),
        );
        report(
            "fig7b_sparse_states",
            &format!("ours/{n}"),
            measure(|| {
                QspWorkflow::new()
                    .prepare(&target)
                    .expect("workflow succeeds");
            }),
        );
        if n <= 10 {
            report(
                "fig7b_sparse_states",
                &format!("n-flow/{n}"),
                measure(|| {
                    QubitReduction::new()
                        .prepare(&target)
                        .expect("n-flow succeeds");
                }),
            );
        }
    }
}

/// Fig. 7a / Table V (dense): synthesis runtime on random dense states.
fn bench_dense_states() {
    for n in [5usize, 6, 7, 8] {
        let target = Workload::RandomDense { n, seed: 42 }
            .instantiate()
            .expect("workload generation succeeds");
        report(
            "fig7a_dense_states",
            &format!("n-flow/{n}"),
            measure(|| {
                QubitReduction::new()
                    .prepare(&target)
                    .expect("n-flow succeeds");
            }),
        );
        report(
            "fig7a_dense_states",
            &format!("ours/{n}"),
            measure(|| {
                QspWorkflow::new()
                    .prepare(&target)
                    .expect("workflow succeeds");
            }),
        );
        if n <= 7 {
            report(
                "fig7a_dense_states",
                &format!("hybrid/{n}"),
                measure(|| {
                    HybridPreparator::new()
                        .prepare(&target)
                        .expect("hybrid succeeds");
                }),
            );
        }
    }
}

/// Table IV: exact synthesis on the Dicke benchmarks.
fn bench_dicke_states() {
    for (n, k) in [(4usize, 1usize), (4, 2), (5, 1), (5, 2)] {
        let target = generators::dicke(n, k).expect("dicke state");
        report(
            "table4_dicke",
            &format!("exact/{n}_{k}"),
            measure(|| {
                ExactSynthesizer::new()
                    .synthesize_request(&SynthesisRequest::new(target.clone()))
                    .expect("exact succeeds");
            }),
        );
    }
}

/// Batch engine: 32 random sparse targets, sequential workflow vs the
/// parallel deduplicating batch engine.
fn bench_batch_engine() {
    let targets: Vec<SparseState> = (0..32)
        .map(|seed| {
            Workload::RandomSparse { n: 8, seed }
                .instantiate()
                .expect("workload generation succeeds")
        })
        .collect();
    report(
        "batch_engine",
        "sequential/32",
        measure(|| {
            for target in &targets {
                QspWorkflow::new()
                    .prepare(target)
                    .expect("workflow succeeds");
            }
        }),
    );
    let requests: Vec<SynthesisRequest<SparseState>> = targets
        .iter()
        .map(|t| SynthesisRequest::new(t.clone()))
        .collect();
    report(
        "batch_engine",
        "batched/32",
        measure(|| {
            let engine = BatchSynthesizer::new();
            let outcome = engine.synthesize_requests(&requests);
            assert_eq!(outcome.stats.errors, 0);
        }),
    );
}

fn main() {
    println!("qsp-bench micro-benchmarks ({SAMPLES} samples per case)\n");
    bench_sparse_states();
    bench_dense_states();
    bench_dicke_states();
    bench_batch_engine();
}
