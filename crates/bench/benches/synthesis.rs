//! Criterion micro-benchmarks backing Fig. 7 (runtime scaling) and the
//! per-method synthesis costs of Tables IV/V.
//!
//! Run with `cargo bench -p qsp-bench`. Each group sweeps the number of
//! qubits for one workload family and one synthesis method, so the Criterion
//! report reproduces the runtime *series* of Fig. 7 (the paper's absolute
//! numbers are Python; only the shape is comparable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qsp_baselines::{CardinalityReduction, HybridPreparator, QubitReduction, StatePreparator};
use qsp_core::{ExactSynthesizer, QspWorkflow};
use qsp_state::generators::{self, Workload};

/// Fig. 7b / Table V (sparse): synthesis runtime on random sparse states.
fn bench_sparse_states(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7b_sparse_states");
    group.sample_size(10);
    for n in [6usize, 8, 10, 12] {
        let target = Workload::RandomSparse { n, seed: 42 }
            .instantiate()
            .expect("workload generation succeeds");
        group.bench_with_input(BenchmarkId::new("m-flow", n), &target, |b, t| {
            b.iter(|| CardinalityReduction::new().prepare(t).expect("m-flow succeeds"))
        });
        group.bench_with_input(BenchmarkId::new("ours", n), &target, |b, t| {
            b.iter(|| QspWorkflow::new().prepare(t).expect("workflow succeeds"))
        });
        if n <= 10 {
            group.bench_with_input(BenchmarkId::new("n-flow", n), &target, |b, t| {
                b.iter(|| QubitReduction::new().prepare(t).expect("n-flow succeeds"))
            });
        }
    }
    group.finish();
}

/// Fig. 7a / Table V (dense): synthesis runtime on random dense states.
fn bench_dense_states(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7a_dense_states");
    group.sample_size(10);
    for n in [6usize, 8, 10] {
        let target = Workload::RandomDense { n, seed: 42 }
            .instantiate()
            .expect("workload generation succeeds");
        group.bench_with_input(BenchmarkId::new("n-flow", n), &target, |b, t| {
            b.iter(|| QubitReduction::new().prepare(t).expect("n-flow succeeds"))
        });
        group.bench_with_input(BenchmarkId::new("ours", n), &target, |b, t| {
            b.iter(|| QspWorkflow::new().prepare(t).expect("workflow succeeds"))
        });
        if n <= 8 {
            group.bench_with_input(BenchmarkId::new("m-flow", n), &target, |b, t| {
                b.iter(|| CardinalityReduction::new().prepare(t).expect("m-flow succeeds"))
            });
            group.bench_with_input(BenchmarkId::new("hybrid", n), &target, |b, t| {
                b.iter(|| HybridPreparator::new().prepare(t).expect("hybrid succeeds"))
            });
        }
    }
    group.finish();
}

/// Table IV: Dicke-state synthesis (the exact solver is exercised directly).
fn bench_dicke_states(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_dicke_states");
    group.sample_size(10);
    for (n, k) in [(4usize, 1usize), (4, 2), (5, 2), (6, 2)] {
        let target = generators::dicke(n, k).expect("valid Dicke parameters");
        group.bench_with_input(
            BenchmarkId::new("ours", format!("d{n}_{k}")),
            &target,
            |b, t| b.iter(|| QspWorkflow::new().prepare(t).expect("workflow succeeds")),
        );
        group.bench_with_input(
            BenchmarkId::new("m-flow", format!("d{n}_{k}")),
            &target,
            |b, t| b.iter(|| CardinalityReduction::new().prepare(t).expect("m-flow succeeds")),
        );
    }
    group.finish();
}

/// Ablation: A* with and without the admissible heuristic and with and
/// without permutation compression (Sec. V-A/V-B design choices).
fn bench_ablations(c: &mut Criterion) {
    use qsp_core::SearchConfig;
    let mut group = c.benchmark_group("ablation_exact_search");
    group.sample_size(10);
    let target = generators::dicke(4, 2).expect("valid Dicke parameters");
    let configurations = [
        ("astar_heuristic", SearchConfig::default()),
        (
            "dijkstra_no_heuristic",
            SearchConfig {
                use_heuristic: false,
                ..SearchConfig::default()
            },
        ),
        (
            "astar_permutation_compression",
            SearchConfig {
                permutation_compression: true,
                ..SearchConfig::default()
            },
        ),
    ];
    for (label, config) in configurations {
        group.bench_with_input(BenchmarkId::new(label, "d4_2"), &target, |b, t| {
            b.iter(|| {
                ExactSynthesizer::with_config(config)
                    .synthesize(t)
                    .expect("exact synthesis succeeds")
            })
        });
    }
    // Removing the CRy merges makes |D^2_4> unreachable, so the restricted
    // library is benchmarked on the GHZ state instead.
    let ghz = generators::ghz(4).expect("valid GHZ state");
    group.bench_with_input(
        BenchmarkId::new("astar_no_controlled_merges", "ghz4"),
        &ghz,
        |b, t| {
            b.iter(|| {
                ExactSynthesizer::with_config(SearchConfig {
                    enable_controlled_merges: false,
                    ..SearchConfig::default()
                })
                .synthesize(t)
                .expect("exact synthesis succeeds")
            })
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_sparse_states,
    bench_dense_states,
    bench_dicke_states,
    bench_ablations
);
criterion_main!(benches);
