//! Reproduces **Fig. 7**: CPU-time scaling of the flows on dense (7a) and
//! sparse (7b) random states as the number of qubits grows.
//!
//! The output is a CSV-like series (one line per `(regime, n, method)`), the
//! same data the paper plots on a log scale. Absolute times are much smaller
//! than the paper's (Rust vs Python), but the *shape* — m-flow blowing up on
//! dense states, n-flow blowing up on sparse states, ours tracking the better
//! baseline in each regime — is what the figure demonstrates.
//!
//! Usage: `cargo run --release -p qsp-bench --bin fig7 -- [--max-n 14] [--samples 3]`

use qsp_bench::harness::{run_method, Method};
use qsp_bench::report::parse_flag;
use qsp_state::generators::Workload;

fn measure(regime: &str, n: usize, samples: usize, method: Method) -> Option<f64> {
    // The same blow-up guards as table5 (the paper's one-hour TLE cells).
    if regime == "dense"
        && ((method == Method::MFlow && n > 12) || (method == Method::Hybrid && n > 11))
    {
        return None;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for sample in 0..samples {
        let workload = match regime {
            "dense" => Workload::RandomDense {
                n,
                seed: 3000 + sample as u64,
            },
            _ => Workload::RandomSparse {
                n,
                seed: 4000 + sample as u64,
            },
        };
        let target = workload.instantiate().ok()?;
        let row = run_method(method, &target, 0);
        row.cnot_cost?;
        total += row.elapsed.as_secs_f64();
        count += 1;
    }
    if count == 0 {
        None
    } else {
        Some(total / count as f64)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_n = parse_flag(&args, "--max-n", 14);
    let samples = parse_flag(&args, "--samples", 3);
    let methods = [Method::MFlow, Method::NFlow, Method::Ours];

    println!("regime,n,method,avg_runtime_seconds");
    for regime in ["dense", "sparse"] {
        for n in (6..=max_n).step_by(2) {
            for method in methods {
                match measure(regime, n, samples, method) {
                    Some(seconds) => {
                        println!("{regime},{n},{},{seconds:.6}", method.label());
                    }
                    None => println!("{regime},{n},{},TLE", method.label()),
                }
            }
        }
    }
    eprintln!(
        "\nfig7: plot runtime (log scale) against n per regime; the paper's Fig. 7 shows\n\
         the m-flow curve exploding on dense states and the n-flow curve exploding on\n\
         sparse states while ours stays close to the better baseline."
    );
}
