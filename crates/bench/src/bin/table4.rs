//! Reproduces **Table IV** (and Fig. 6): CNOT counts for Dicke-state
//! preparation `|D^k_n⟩` — the manual design, the three baselines and the
//! exact-synthesis workflow — plus geometric means and the improvement over
//! the manual design.
//!
//! Run with `cargo run --release -p qsp-bench --bin table4 [-- --show-circuit]`.

use qsp_baselines::dicke::{manual_cnot_count, TABLE4_CASES};
use qsp_baselines::StatePreparator;
use qsp_bench::harness::{run_method, Method};
use qsp_bench::report::{format_markdown_table, geometric_mean, has_switch};
use qsp_core::QspWorkflow;
use qsp_state::generators;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let show_circuit = has_switch(&args, "--show-circuit");

    println!("Table IV — CNOT counts for Dicke state preparation |D^k_n>\n");
    let headers = [
        "n",
        "k",
        "manual [7]",
        "m-flow",
        "n-flow",
        "hybrid",
        "ours",
        "verified",
    ];
    let mut rows = Vec::new();
    let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); Method::ALL.len()];
    let mut manual_counts = Vec::new();

    for &(n, k) in TABLE4_CASES.iter() {
        let target = generators::dicke(n, k).expect("valid Dicke parameters");
        let manual = manual_cnot_count(n, k);
        manual_counts.push(manual as f64);
        let mut cells = vec![n.to_string(), k.to_string(), manual.to_string()];
        let mut verified = true;
        for (i, method) in Method::ALL.iter().enumerate() {
            let row = run_method(*method, &target, 12);
            match row.cnot_cost {
                Some(cost) => {
                    per_method[i].push(cost as f64);
                    cells.push(cost.to_string());
                }
                None => cells.push("—".to_string()),
            }
            if row.verified == Some(false) {
                verified = false;
            }
        }
        cells.push(if verified {
            "yes".to_string()
        } else {
            "NO".to_string()
        });
        rows.push(cells);
    }

    // Geometric means and improvement vs the manual design (as in the paper).
    let manual_geo = geometric_mean(manual_counts.iter().copied());
    let mut geo_cells = vec![
        "geo. mean".to_string(),
        String::new(),
        format!("{manual_geo:.1}"),
    ];
    let mut improvement_cells = vec![
        "impr. vs manual".to_string(),
        String::new(),
        "-".to_string(),
    ];
    for values in &per_method {
        let geo = geometric_mean(values.iter().copied());
        geo_cells.push(format!("{geo:.1}"));
        let improvement = 100.0 * (1.0 - geo / manual_geo);
        improvement_cells.push(format!("{improvement:.0}%"));
    }
    geo_cells.push(String::new());
    improvement_cells.push(String::new());
    rows.push(geo_cells);
    rows.push(improvement_cells);

    println!("{}", format_markdown_table(&headers, &rows));
    println!(
        "paper reference (geo. mean): manual 13.0, m-flow 28.5, n-flow 26.6, hybrid 251.1, ours 10.9 (17% better than manual)"
    );

    if show_circuit {
        // Fig. 6: the circuit found for |D^2_4>.
        let target = generators::dicke(4, 2).expect("valid Dicke parameters");
        let circuit = QspWorkflow::new()
            .prepare(&target)
            .expect("synthesis succeeds");
        println!(
            "\nFig. 6 — circuit prepared for |D^2_4> ({} CNOTs):",
            circuit.cnot_cost()
        );
        println!("{circuit}");
    }
}
