//! Ablation study of the exact solver's design choices (Sec. V of the paper):
//! the admissible heuristic, the canonicalization-based state compression,
//! the CRy merges of the transition library, and the portfolio scheduling of
//! the solver engine.
//!
//! For each workload the binary reports the CNOT count together with the
//! number of A* node expansions under five solver configurations. All
//! exact-keyed full-library configurations (default, Dijkstra, portfolio)
//! must agree on the optimum bit for bit; the PU(2)-compressed column trades
//! exactness for fewer expansions and may report a slightly larger count
//! (see `qsp_core::search::canonical`), and removing the CRy merges
//! restricts the library itself.
//!
//! Run with `cargo run --release -p qsp-bench --bin ablation`.

use qsp_bench::report::format_markdown_table;
use qsp_core::{SearchConfig, SolverEngine};
use qsp_state::generators::Workload;
use qsp_state::SparseState;

/// Whether a configuration searches the full library with exact (sound)
/// distance keys — those must all report the identical optimum.
fn is_exact(config: &SearchConfig) -> bool {
    config.enable_controlled_merges && !config.permutation_compression
}

fn configurations() -> Vec<(&'static str, SearchConfig)> {
    vec![
        ("A* (default, exact keys)", SearchConfig::default()),
        (
            "Dijkstra (no heuristic)",
            SearchConfig::default().with_heuristic(false),
        ),
        ("A* portfolio (4 workers)", SearchConfig::portfolio(4)),
        (
            "A* + PU(2) compression (approx)",
            SearchConfig::default().with_permutation_compression(true),
        ),
        (
            "A* without CRy merges",
            SearchConfig::default().with_controlled_merges(false),
        ),
    ]
}

fn workloads() -> Vec<(String, SparseState)> {
    let mut list = vec![
        (
            "motivating example".to_string(),
            SparseState::uniform_superposition(
                3,
                [0b000u64, 0b011, 0b101, 0b110].map(qsp_state::BasisIndex::new),
            )
            .expect("valid state"),
        ),
        (
            "dicke(3,1)".to_string(),
            Workload::Dicke { n: 3, k: 1 }.instantiate().unwrap(),
        ),
        (
            "dicke(4,1)".to_string(),
            Workload::Dicke { n: 4, k: 1 }.instantiate().unwrap(),
        ),
        (
            "dicke(4,2)".to_string(),
            Workload::Dicke { n: 4, k: 2 }.instantiate().unwrap(),
        ),
        (
            "ghz(4)".to_string(),
            Workload::Ghz { n: 4 }.instantiate().unwrap(),
        ),
    ];
    for seed in 0..3u64 {
        list.push((
            format!("random(4, m=6, seed={seed})"),
            Workload::RandomSparse { n: 4, seed }.instantiate().unwrap(),
        ));
    }
    list
}

fn main() {
    println!("Ablation — exact solver design choices (CNOT count | expanded states)\n");
    let configs = configurations();
    let mut headers: Vec<&str> = vec!["workload"];
    for (label, _) in &configs {
        headers.push(label);
    }
    let mut rows = Vec::new();
    for (name, target) in workloads() {
        let mut cells = vec![name.clone()];
        let mut exact_costs = Vec::new();
        let mut compressed_cost = None;
        for (_, config) in &configs {
            // The engine seam keeps the per-run search statistics (expanded
            // node counts) the ablation reports alongside the CNOT cost.
            match SolverEngine::new(*config).synthesize(&target) {
                Ok(outcome) => {
                    if is_exact(config) {
                        exact_costs.push(outcome.cnot_cost);
                    } else if config.permutation_compression {
                        compressed_cost = Some(outcome.cnot_cost);
                    }
                    cells.push(format!(
                        "{} | {}",
                        outcome.cnot_cost, outcome.stats.expanded
                    ));
                }
                Err(e) => cells.push(format!("error: {e}")),
            }
        }
        // Exactness check: every exact-keyed full-library configuration —
        // including the portfolio — must report the bit-identical optimum;
        // the approximate compression may only ever be worse, never better.
        if let Some(first) = exact_costs.first() {
            assert!(
                exact_costs.iter().all(|c| c == first),
                "{name}: exact configurations disagree on the optimal CNOT count: {exact_costs:?}"
            );
            if let Some(compressed) = compressed_cost {
                assert!(
                    compressed >= *first,
                    "{name}: compressed search reported an impossible cost {compressed} < {first}"
                );
            }
        }
        rows.push(cells);
    }
    println!("{}", format_markdown_table(&headers, &rows));
    println!(
        "cells are `CNOTs | A* expansions`; the heuristic and the portfolio change the\n\
         search effort but never the optimum, the PU(2) compression trades exactness\n\
         for fewer expansions (its count may exceed the optimum), and removing the CRy\n\
         merges (last column) restricts the library and may increase the CNOT count."
    );
}
