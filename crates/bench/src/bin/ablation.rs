//! Ablation study of the exact solver's design choices (Sec. V of the paper):
//! the admissible heuristic, the canonicalization-based state compression and
//! the CRy merges of the transition library.
//!
//! For each workload the binary reports the optimal CNOT count together with
//! the number of A* node expansions under four solver configurations. The
//! CNOT count never changes (all configurations are exact); the search effort
//! does, which is exactly the argument of Table III / Sec. V-B.
//!
//! Run with `cargo run --release -p qsp-bench --bin ablation`.

use qsp_bench::report::format_markdown_table;
use qsp_core::{ExactSynthesizer, SearchConfig};
use qsp_state::generators::Workload;
use qsp_state::SparseState;

fn configurations() -> Vec<(&'static str, SearchConfig)> {
    vec![
        ("A* + U(2) compression (default)", SearchConfig::default()),
        (
            "Dijkstra (no heuristic)",
            SearchConfig {
                use_heuristic: false,
                ..SearchConfig::default()
            },
        ),
        (
            "A* + PU(2) compression",
            SearchConfig {
                permutation_compression: true,
                ..SearchConfig::default()
            },
        ),
        (
            "A* without CRy merges",
            SearchConfig {
                enable_controlled_merges: false,
                ..SearchConfig::default()
            },
        ),
    ]
}

fn workloads() -> Vec<(String, SparseState)> {
    let mut list = vec![
        (
            "motivating example".to_string(),
            SparseState::uniform_superposition(
                3,
                [0b000u64, 0b011, 0b101, 0b110].map(qsp_state::BasisIndex::new),
            )
            .expect("valid state"),
        ),
        (
            "dicke(3,1)".to_string(),
            Workload::Dicke { n: 3, k: 1 }.instantiate().unwrap(),
        ),
        (
            "dicke(4,1)".to_string(),
            Workload::Dicke { n: 4, k: 1 }.instantiate().unwrap(),
        ),
        (
            "dicke(4,2)".to_string(),
            Workload::Dicke { n: 4, k: 2 }.instantiate().unwrap(),
        ),
        (
            "ghz(4)".to_string(),
            Workload::Ghz { n: 4 }.instantiate().unwrap(),
        ),
    ];
    for seed in 0..3u64 {
        list.push((
            format!("random(4, m=6, seed={seed})"),
            Workload::RandomSparse { n: 4, seed }.instantiate().unwrap(),
        ));
    }
    list
}

fn main() {
    println!("Ablation — exact solver design choices (CNOT count | expanded states)\n");
    let configs = configurations();
    let mut headers: Vec<&str> = vec!["workload"];
    for (label, _) in &configs {
        headers.push(label);
    }
    let mut rows = Vec::new();
    for (name, target) in workloads() {
        let mut cells = vec![name.clone()];
        let mut full_library_costs = Vec::new();
        for (_, config) in &configs {
            match ExactSynthesizer::with_config(*config).synthesize(&target) {
                Ok(outcome) => {
                    if config.enable_controlled_merges {
                        full_library_costs.push(outcome.cnot_cost);
                    }
                    cells.push(format!(
                        "{} | {}",
                        outcome.cnot_cost, outcome.stats.expanded
                    ));
                }
                Err(e) => cells.push(format!("error: {e}")),
            }
        }
        // Exactness check: every configuration that searches the full library
        // must report the same optimum (the ablations trade effort, not
        // quality); only the restricted-library column may differ.
        if let Some(first) = full_library_costs.first() {
            assert!(
                full_library_costs.iter().all(|c| c == first),
                "{name}: ablations disagree on the optimal CNOT count: {full_library_costs:?}"
            );
        }
        rows.push(cells);
    }
    println!("{}", format_markdown_table(&headers, &rows));
    println!(
        "cells are `optimal CNOTs | A* expansions`; the heuristic and the compression\n\
         reduce expansions without changing the optimum, while removing the CRy merges\n\
         (last column) restricts the library and may increase the CNOT count."
    );
}
