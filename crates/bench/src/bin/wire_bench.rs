//! Benchmarks the `qsp-wire` loopback path under multi-tenant contention
//! and emits a machine-readable `BENCH_wire.json`.
//!
//! Two phases against real TCP loopback connections:
//!
//! * `solo` — the well-behaved tenant (`steady`, fair-share weight 10)
//!   runs its request list closed-loop on an idle service; client-side
//!   end-to-end latency per request gives the solo p50/p95 baseline.
//! * `contended` — a fresh service, same `steady` list, but an aggressive
//!   tenant (`aggressive`, weight 1, token-bucket limited) floods ~10× as
//!   many pipelined requests from a second connection, a slice of them
//!   with zero deadline budget. Deficit-round-robin across the tenant
//!   sub-queues must keep `steady`'s p95 within `2×` of its solo p95 (with
//!   a small absolute floor so micro-latency noise can't fail the gate).
//!
//! Every report received over the wire is checked CNOT-for-CNOT against a
//! sequential `QspWorkflow` solve of the same target, and the per-tenant
//! fleet invariant `completed + throttled + expired + rejected + failed +
//! cancelled == submitted` is asserted from the drained service stats,
//! with registry/stats parity on the labelled tenant counters.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p qsp-bench --bin wire_bench -- \
//!     [--workers 2] [--smoke] [--out BENCH_wire.json]
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qsp_bench::report::{has_switch, parse_flag, parse_path};
use qsp_core::json::Value;
use qsp_core::{QspWorkflow, SynthesisRequest};
use qsp_obs::MetricValue;
use qsp_serve::{
    SchedulerConfig, ServiceConfig, Shutdown, SynthesisService, TenantConfig, TenantPolicy,
    TenantStats,
};
use qsp_state::generators::Workload;
use qsp_state::SparseState;
use qsp_wire::{ServerFrame, WireClient, WireConfig, WireServer};

/// An exact state fingerprint (basis index + amplitude bit pattern).
type Fingerprint = (usize, Vec<(u64, u64)>);

fn fingerprint(state: &SparseState) -> Fingerprint {
    let mut entries: Vec<(u64, u64)> = state
        .iter()
        .map(|(index, amplitude)| (index.value(), amplitude.to_bits()))
        .collect();
    entries.sort_unstable();
    (state.num_qubits(), entries)
}

/// The well-behaved tenant's request list: named states plus fresh sparse
/// targets, all cheap enough that latency is queueing-dominated.
fn steady_targets(count: usize) -> Vec<SparseState> {
    let named = [
        Workload::Ghz { n: 5 },
        Workload::W { n: 4 },
        Workload::Dicke { n: 4, k: 2 },
    ];
    (0..count)
        .map(|i| {
            if i % 2 == 0 {
                named[(i / 2) % named.len()].clone()
            } else {
                Workload::RandomSparse {
                    n: 6,
                    seed: 9_100 + i as u64,
                }
            }
            .instantiate()
            .expect("steady workload generates")
        })
        .collect()
}

/// The flood pool: a handful of repeated states, so the aggressive flood
/// is queue pressure (cache hits after the first solves), not solver
/// saturation.
fn aggressive_pool() -> Vec<SparseState> {
    [
        Workload::Ghz { n: 6 },
        Workload::Dicke { n: 4, k: 1 },
        Workload::RandomSparse { n: 7, seed: 4_400 },
        Workload::RandomSparse { n: 7, seed: 4_401 },
    ]
    .into_iter()
    .map(|w| w.instantiate().expect("flood workload generates"))
    .collect()
}

fn percentile_ms(latencies: &[f64], p: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Closed-loop run of the steady tenant's list over one connection;
/// returns per-request client-side latencies in milliseconds.
fn run_steady_closed_loop(
    addr: std::net::SocketAddr,
    targets: &[SparseState],
    cost_map: &HashMap<Fingerprint, usize>,
    costs_identical: &mut bool,
) -> Vec<f64> {
    let mut client = WireClient::connect(addr, Some("steady")).expect("steady connects");
    assert_eq!(client.handshake().tenant, "steady");
    let mut latencies = Vec::with_capacity(targets.len());
    for target in targets {
        let start = Instant::now();
        let frame = client.call(target, None, None).expect("steady call");
        latencies.push(start.elapsed().as_secs_f64() * 1e3);
        match frame {
            ServerFrame::Report { cnot_cost, .. } => {
                let expected = cost_map[&fingerprint(target)];
                if cnot_cost as usize != expected {
                    *costs_identical = false;
                    eprintln!("steady cost diverged: {cnot_cost} vs sequential {expected}");
                }
            }
            other => panic!("steady tenant must complete, got {other:?}"),
        }
    }
    latencies
}

/// What the aggressive flood observed from its side of the wire.
#[derive(Debug, Default)]
struct FloodOutcome {
    completed: u64,
    throttled: u64,
    expired: u64,
    rejected_other: u64,
}

/// Pipelines the whole flood, then drains the responses.
fn run_flood(
    addr: std::net::SocketAddr,
    pool: &[SparseState],
    flood: usize,
    cost_map: &HashMap<Fingerprint, usize>,
) -> (FloodOutcome, bool) {
    let mut client = WireClient::connect(addr, Some("aggressive")).expect("aggressive connects");
    let mut ids = HashMap::new();
    for i in 0..flood {
        let target = &pool[i % pool.len()];
        // Every 8th request carries zero deadline budget: if admitted, it
        // expires in queue and exercises the per-tenant `expired` leg.
        let deadline = if i % 8 == 7 { Some(0) } else { None };
        let id = client
            .send_request(target, deadline, None)
            .expect("flood send");
        ids.insert(id, i % pool.len());
    }
    let mut outcome = FloodOutcome::default();
    let mut costs_identical = true;
    for _ in 0..flood {
        match client.recv().expect("flood recv") {
            ServerFrame::Report { id, cnot_cost, .. } => {
                outcome.completed += 1;
                let expected = cost_map[&fingerprint(&pool[ids[&id]])];
                if cnot_cost as usize != expected {
                    costs_identical = false;
                    eprintln!("flood cost diverged: {cnot_cost} vs sequential {expected}");
                }
            }
            ServerFrame::Rejected { reason, .. } if reason == "throttled" => {
                outcome.throttled += 1;
            }
            ServerFrame::Rejected { .. } => outcome.rejected_other += 1,
            ServerFrame::Timeout { .. } => outcome.expired += 1,
            other => panic!("unexpected flood frame: {other:?}"),
        }
    }
    (outcome, costs_identical)
}

fn tenant_policy(flood_burst: f64) -> TenantPolicy {
    TenantPolicy::new()
        .with_tenant(TenantConfig::new("steady").with_weight(10))
        .with_tenant(
            TenantConfig::new("aggressive")
                .with_weight(1)
                // Admission trims the flood: the burst allowance covers
                // most of it, the 20/s refill is negligible at flood
                // timescales, so a visible slice is throttled.
                .with_rate(20.0, flood_burst),
        )
}

fn start_service(
    workers: usize,
    queue_capacity: usize,
    policy: TenantPolicy,
) -> Arc<SynthesisService> {
    Arc::new(SynthesisService::start(
        ServiceConfig::default()
            .with_queue_capacity(queue_capacity)
            .with_scheduler(
                SchedulerConfig::default()
                    .with_max_batch(4)
                    .with_max_wait(Duration::from_millis(1))
                    .with_workers(workers),
            )
            .with_tenants(policy),
    ))
}

/// The labelled counter value for one tenant from the service registry.
fn registry_counter(service: &SynthesisService, name: &str, tenant: &str) -> u64 {
    let snapshot = service.obs_snapshot();
    let sample = snapshot
        .metrics
        .samples
        .iter()
        .find(|s| s.name == name && s.labels.iter().any(|(k, v)| k == "tenant" && v == tenant))
        .unwrap_or_else(|| panic!("{name}{{tenant={tenant}}} must be registered"));
    match &sample.value {
        MetricValue::Counter(c) => *c,
        other => panic!("{name}: expected a counter, got {other:?}"),
    }
}

fn tenant_json(stats: &TenantStats) -> Value {
    Value::Object(vec![
        ("name".to_string(), Value::Str(stats.name.clone())),
        ("submitted".to_string(), Value::Num(stats.submitted)),
        ("completed".to_string(), Value::Num(stats.completed)),
        ("throttled".to_string(), Value::Num(stats.throttled)),
        ("rejected".to_string(), Value::Num(stats.rejected)),
        ("expired".to_string(), Value::Num(stats.expired)),
        ("failed".to_string(), Value::Num(stats.failed)),
        ("cancelled".to_string(), Value::Num(stats.cancelled)),
        ("conserved".to_string(), Value::Bool(stats.is_conserved())),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = has_switch(&args, "--smoke");
    let workers = parse_flag(&args, "--workers", 2).max(1);
    let out_path = parse_path(&args, "--out").unwrap_or_else(|| "BENCH_wire.json".to_string());

    let steady_count = if smoke { 10 } else { 16 };
    let flood = steady_count * 10;
    let flood_burst = (flood as f64 * 0.7).floor();

    let steady = steady_targets(steady_count);
    let pool = aggressive_pool();

    // Sequential reference costs for the cost-parity check.
    eprintln!("solving sequential reference costs...");
    let workflow = QspWorkflow::new();
    let mut cost_map: HashMap<Fingerprint, usize> = HashMap::new();
    for target in steady.iter().chain(&pool) {
        if let std::collections::hash_map::Entry::Vacant(slot) = cost_map.entry(fingerprint(target))
        {
            let report = workflow
                .synthesize_request(&SynthesisRequest::new(target.clone()))
                .expect("workload target solves");
            slot.insert(report.cnot_cost);
        }
    }
    let mut costs_identical = true;

    // --- Phase 1: steady tenant solo -------------------------------------
    eprintln!("phase solo: {steady_count} closed-loop requests...");
    let service = start_service(workers, flood + 32, tenant_policy(flood_burst));
    let mut server =
        WireServer::bind("127.0.0.1:0", Arc::clone(&service), WireConfig::new()).expect("bind");
    let solo_latencies = run_steady_closed_loop(
        server.local_addr(),
        &steady,
        &cost_map,
        &mut costs_identical,
    );
    server.shutdown();
    service.shutdown(Shutdown::Drain);
    let p95_solo = percentile_ms(&solo_latencies, 0.95);

    // --- Phase 2: the same list under an aggressive flood ----------------
    eprintln!("phase contended: {steady_count} closed-loop vs {flood} flooded...");
    let service = start_service(workers, flood + 32, tenant_policy(flood_burst));
    let mut server =
        WireServer::bind("127.0.0.1:0", Arc::clone(&service), WireConfig::new()).expect("bind");
    let addr = server.local_addr();
    let flood_thread = {
        let pool = pool.clone();
        let cost_map = cost_map.clone();
        std::thread::spawn(move || run_flood(addr, &pool, flood, &cost_map))
    };
    // Give the flood a head start so the steady tenant really contends
    // with a built-up backlog.
    std::thread::sleep(Duration::from_millis(30));
    let contended_latencies =
        run_steady_closed_loop(addr, &steady, &cost_map, &mut costs_identical);
    let (flood_outcome, flood_costs_ok) = flood_thread.join().expect("flood thread");
    costs_identical &= flood_costs_ok;

    server.shutdown();
    let stats = service.shutdown(Shutdown::Drain);
    let p95_contended = percentile_ms(&contended_latencies, 0.95);

    // --- Invariants -------------------------------------------------------
    let tenant = |name: &str| -> &TenantStats {
        stats
            .tenants
            .iter()
            .find(|t| t.name == name)
            .unwrap_or_else(|| panic!("tenant {name} must have a stats slice"))
    };
    let aggressive_stats = tenant("aggressive");
    let steady_stats = tenant("steady");
    assert!(
        aggressive_stats.is_conserved() && steady_stats.is_conserved(),
        "per-tenant fleet conservation must hold: {aggressive_stats:?} {steady_stats:?}"
    );
    assert_eq!(steady_stats.completed, steady_count as u64);
    assert_eq!(aggressive_stats.submitted, flood as u64);
    assert!(
        aggressive_stats.throttled > 0,
        "the flood must overrun its token bucket"
    );
    assert!(
        aggressive_stats.expired > 0,
        "zero-budget flood requests must expire"
    );
    // The wire client's view agrees with the service's books.
    assert_eq!(aggressive_stats.completed, flood_outcome.completed);
    assert_eq!(aggressive_stats.throttled, flood_outcome.throttled);
    assert_eq!(aggressive_stats.expired, flood_outcome.expired);
    // Registry/stats parity on the labelled counters.
    for name in ["steady", "aggressive"] {
        let t = tenant(name);
        assert_eq!(
            registry_counter(&service, "serve.tenant.submitted", name),
            t.submitted
        );
        assert_eq!(
            registry_counter(&service, "serve.tenant.throttled", name),
            t.throttled
        );
        assert_eq!(
            registry_counter(&service, "serve.tenant.completed", name),
            t.completed
        );
    }

    // --- The fairness gate -------------------------------------------------
    // An absolute floor keeps micro-latency noise (sub-15 ms solo p95)
    // from tripping the relative bound.
    let floor_ms = 15.0;
    let bound = 2.0 * p95_solo.max(floor_ms);
    let pass = p95_contended <= bound;
    eprintln!(
        "fairness: solo p95 {p95_solo:.2} ms, contended p95 {p95_contended:.2} ms (bound {bound:.2} ms)"
    );
    assert!(
        pass,
        "weighted-fair drain failed to protect the steady tenant: \
         contended p95 {p95_contended:.2} ms > bound {bound:.2} ms"
    );
    assert!(costs_identical, "wire-served CNOT costs diverged");

    // --- Report ------------------------------------------------------------
    let latency_json = |lat: &[f64]| {
        Value::Object(vec![
            ("requests".to_string(), Value::Num(lat.len() as u64)),
            ("p50_ms".to_string(), Value::Float(percentile_ms(lat, 0.50))),
            ("p95_ms".to_string(), Value::Float(percentile_ms(lat, 0.95))),
        ])
    };
    let report = Value::Object(vec![
        (
            "benchmark".to_string(),
            Value::Str("wire_loopback_tenancy".to_string()),
        ),
        ("smoke".to_string(), Value::Bool(smoke)),
        ("workers".to_string(), Value::Num(workers as u64)),
        ("flood_requests".to_string(), Value::Num(flood as u64)),
        ("costs_identical".to_string(), Value::Bool(costs_identical)),
        ("solo".to_string(), latency_json(&solo_latencies)),
        ("contended".to_string(), latency_json(&contended_latencies)),
        (
            "fairness".to_string(),
            Value::Object(vec![
                ("p95_solo_ms".to_string(), Value::Float(p95_solo)),
                ("p95_contended_ms".to_string(), Value::Float(p95_contended)),
                ("floor_ms".to_string(), Value::Float(floor_ms)),
                ("bound_ms".to_string(), Value::Float(bound)),
                ("threshold".to_string(), Value::Float(2.0)),
                ("pass".to_string(), Value::Bool(pass)),
            ]),
        ),
        (
            "tenants".to_string(),
            Value::Array(stats.tenants.iter().map(tenant_json).collect()),
        ),
    ]);
    let json = report.to_json_pretty();
    std::fs::write(&out_path, &json).expect("write BENCH_wire.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
