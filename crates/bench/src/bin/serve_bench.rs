//! Benchmarks the `qsp-serve` synthesis service under replayed open-loop
//! arrival workloads and emits a machine-readable `BENCH_serve.json`.
//!
//! Three offered-load phases:
//!
//! * `burst_skewed` — the whole skewed request mix submitted closed-loop
//!   (as fast as the queue accepts). This is the apples-to-apples capacity
//!   comparison against one direct `synthesize_batch` call on the same
//!   request set with the same thread count: the service must stay within
//!   `0.9x` of the batch engine's throughput.
//! * `open_loop_steady` — Poisson-ish arrivals (exponential inter-arrival
//!   gaps from `qsp-rand`) at a rate the service keeps up with, generous
//!   deadlines: measures p50/p95/p99 latency at steady state.
//! * `stress_overload` — a burst of duplicate slow dense targets (driving
//!   per-class in-flight dedup) plus a high-rate arrival tail in which a
//!   slice of requests carries zero deadline budget: demonstrates > 0
//!   deduped and > 0 expired requests, and measures the rejection rate of
//!   the bounded queue under overload.
//!
//! Every completed response is checked CNOT-for-CNOT against a sequential
//! `QspWorkflow` solve of the same target (the bit-identical-cost
//! guarantee); the binary aborts if any response diverges.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p qsp-bench --bin serve_bench -- \
//!     [--workers 4] [--requests 160] [--max-batch 8] [--smoke] \
//!     [--out BENCH_serve.json] [--stats-json obs.json]
//! ```

use std::collections::HashMap;
use std::time::{Duration, Instant};

use qsp_bench::report::{has_switch, parse_flag, parse_path};
use qsp_core::json::Value;
use qsp_core::{BatchOptions, BatchSynthesizer, QspWorkflow, SynthesisRequest};
use qsp_serve::{
    ObsOptions, ObsSnapshot, Response, SchedulerConfig, ServiceConfig, Shutdown, SynthesisService,
};
use qsp_state::generators::Workload;
use qsp_state::SparseState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One request of a replayed workload.
struct ArrivalRequest {
    target: SparseState,
    /// Offset of the arrival from the phase start.
    offset: Duration,
    /// Deadline budget granted at submission (`None` = no deadline).
    budget: Option<Duration>,
}

/// An exact state fingerprint: the parity-check map key.
type Fingerprint = (usize, Vec<(u64, u64)>);

fn fingerprint(state: &SparseState) -> Fingerprint {
    let mut entries: Vec<(u64, u64)> = state
        .iter()
        .map(|(index, amplitude)| (index.value(), amplitude.to_bits()))
        .collect();
    entries.sort_unstable();
    (state.num_qubits(), entries)
}

/// The popular pool of the skewed mix: named states real traffic repeats.
fn popular_pool(smoke: bool) -> Vec<SparseState> {
    let mut named = vec![
        Workload::Dicke { n: 4, k: 1 },
        Workload::Dicke { n: 4, k: 2 },
        Workload::Ghz { n: 6 },
        Workload::W { n: 4 },
        Workload::RandomSparse { n: 7, seed: 71 },
        Workload::RandomSparse { n: 8, seed: 72 },
    ];
    if !smoke {
        named.push(Workload::Dicke { n: 5, k: 2 });
        named.push(Workload::Ghz { n: 8 });
        named.push(Workload::RandomSparse { n: 10, seed: 73 });
    }
    named
        .into_iter()
        .map(|w| w.instantiate().expect("pool workload generates"))
        .collect()
}

/// A skewed request mix: popular states repeat zipf-ishly (exercising
/// dedup), the tail is fresh random sparse states, and a pinch of dense
/// targets keeps the solver's heavy path in the loop.
fn skewed_mix(total: usize, seed: u64, smoke: bool, rng: &mut StdRng) -> Vec<SparseState> {
    let pool = popular_pool(smoke);
    let dense_every = if smoke { 40 } else { 24 };
    (0..total)
        .map(|i| {
            if i % dense_every == dense_every - 1 {
                let n = if smoke { 4 } else { 4 + (i / dense_every) % 2 };
                Workload::RandomDense {
                    n,
                    seed: seed + i as u64,
                }
                .instantiate()
                .expect("dense workload generates")
            } else if rng.gen_bool(0.6) {
                // Zipf-ish pool pick: repeated halving skews toward index 0.
                let mut idx = 0usize;
                while idx + 1 < pool.len() && rng.gen_bool(0.5) {
                    idx += 1;
                }
                pool[idx].clone()
            } else {
                let n = rng.gen_range(if smoke { 6..=8 } else { 6..=11 });
                Workload::RandomSparse {
                    n,
                    seed: seed + 1000 + i as u64,
                }
                .instantiate()
                .expect("sparse workload generates")
            }
        })
        .collect()
}

/// Poisson-ish arrival offsets: exponential inter-arrival gaps at `rate`
/// requests/second.
fn poisson_offsets(count: usize, rate: f64, rng: &mut StdRng) -> Vec<Duration> {
    let mut offsets = Vec::with_capacity(count);
    let mut t = 0.0f64;
    for _ in 0..count {
        let u = rng.gen_range(0.0f64..1.0);
        t += -(1.0 - u).ln() / rate;
        offsets.push(Duration::from_secs_f64(t));
    }
    offsets
}

struct PhaseOutcome {
    name: &'static str,
    requests: usize,
    duplicates: usize,
    offered_rps: Option<f64>,
    wall_ms: f64,
    throughput_rps: f64,
    stats: qsp_serve::ServiceStats,
    timeouts_observed: u64,
    costs_identical: bool,
    /// The service's full observability dump at shutdown (metrics, sampled
    /// trace-ring spans, flight records).
    obs: ObsSnapshot,
}

/// Replays one phase against a fresh service and checks every completed
/// response against the sequential cost map.
fn run_phase(
    name: &'static str,
    requests: Vec<ArrivalRequest>,
    workers: usize,
    max_batch: usize,
    queue_capacity: usize,
    offered_rps: Option<f64>,
    cost_map: &HashMap<Fingerprint, usize>,
) -> PhaseOutcome {
    let total = requests.len();
    let duplicates = {
        let mut seen = std::collections::HashSet::new();
        requests
            .iter()
            .filter(|r| !seen.insert(fingerprint(&r.target)))
            .count()
    };
    eprintln!("phase {name}: {total} requests (~{duplicates} duplicates)...");
    let service = SynthesisService::start(
        ServiceConfig::default()
            .with_queue_capacity(queue_capacity)
            .with_scheduler(
                SchedulerConfig::default()
                    .with_max_batch(max_batch)
                    .with_max_wait(Duration::from_millis(1))
                    .with_workers(workers),
            )
            // Full observability for the benchmark report: ring tracing of
            // every request (sized to hold the whole phase) plus the solver
            // flight recorder and cache timing.
            .with_batch(
                BatchOptions::default().with_obs(
                    ObsOptions::default()
                        .with_tracing(true)
                        .with_ring_capacity(4096)
                        .with_flight(true)
                        .with_flight_capacity(512)
                        .with_timing_detail(true),
                ),
            ),
    );

    let start = Instant::now();
    let mut handles = Vec::with_capacity(total);
    for request in &requests {
        let due = start + request.offset;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let mut typed = SynthesisRequest::new(request.target.clone());
        if let Some(budget) = request.budget {
            typed = typed.with_deadline(Instant::now() + budget);
        }
        handles.push(service.submit(typed).handle());
    }
    let stats = service.shutdown(Shutdown::Drain);
    let wall = start.elapsed();
    let obs = service.obs_snapshot();

    let mut timeouts = 0u64;
    let mut costs_identical = true;
    for (request, handle) in requests.iter().zip(&handles) {
        let Some(handle) = handle else {
            continue; // rejected by backpressure; counted by the service
        };
        match handle.wait() {
            Response::Completed(report) => {
                let expected = cost_map
                    .get(&fingerprint(&request.target))
                    .expect("every workload target has a sequential cost");
                if report.cnot_cost != *expected {
                    costs_identical = false;
                    eprintln!(
                        "phase {name}: cost diverged ({} vs sequential {expected})",
                        report.cnot_cost
                    );
                }
            }
            Response::Timeout => timeouts += 1,
            Response::Failed(error) => panic!("phase {name}: request failed: {error}"),
            Response::Cancelled => panic!("phase {name}: drained shutdown cancelled a request"),
        }
    }
    assert!(costs_identical, "phase {name}: service CNOT costs diverged");
    assert_eq!(
        timeouts, stats.expired,
        "timeout responses must match the expired counter"
    );

    PhaseOutcome {
        name,
        requests: total,
        duplicates,
        offered_rps,
        wall_ms: wall.as_secs_f64() * 1e3,
        throughput_rps: stats.completed as f64 / wall.as_secs_f64().max(1e-9),
        stats,
        timeouts_observed: timeouts,
        costs_identical,
        obs,
    }
}

fn phase_json(outcome: &PhaseOutcome) -> Value {
    let stats = &outcome.stats;
    let served = stats.completed.max(1) as f64;
    let attempted = (stats.submitted + stats.rejected).max(1) as f64;
    let percentile_ms = |p: f64| Value::Float(stats.end_to_end.percentile(p).as_secs_f64() * 1e3);
    Value::Object(vec![
        ("name".to_string(), Value::Str(outcome.name.to_string())),
        ("requests".to_string(), Value::Num(outcome.requests as u64)),
        (
            "duplicate_targets".to_string(),
            Value::Num(outcome.duplicates as u64),
        ),
        (
            "offered_rps".to_string(),
            outcome.offered_rps.map_or(Value::Null, Value::Float),
        ),
        ("wall_ms".to_string(), Value::Float(outcome.wall_ms)),
        (
            "throughput_rps".to_string(),
            Value::Float(outcome.throughput_rps),
        ),
        ("p50_ms".to_string(), percentile_ms(0.50)),
        ("p95_ms".to_string(), percentile_ms(0.95)),
        ("p99_ms".to_string(), percentile_ms(0.99)),
        ("completed".to_string(), Value::Num(stats.completed)),
        ("rejected".to_string(), Value::Num(stats.rejected)),
        ("expired".to_string(), Value::Num(stats.expired)),
        ("deduped".to_string(), Value::Num(stats.deduped)),
        ("cache_hits".to_string(), Value::Num(stats.cache_hits)),
        ("solver_runs".to_string(), Value::Num(stats.solver_runs)),
        (
            "dedup_hit_rate".to_string(),
            Value::Float((stats.deduped + stats.cache_hits) as f64 / served),
        ),
        (
            "rejection_rate".to_string(),
            Value::Float(stats.rejected as f64 / attempted),
        ),
        (
            "queue_high_water".to_string(),
            Value::Num(stats.queue_high_water as u64),
        ),
        (
            "timeouts_observed".to_string(),
            Value::Num(outcome.timeouts_observed),
        ),
        (
            "costs_identical".to_string(),
            Value::Bool(outcome.costs_identical),
        ),
        ("obs".to_string(), outcome.obs.to_json()),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = has_switch(&args, "--smoke");
    let workers = parse_flag(&args, "--workers", 4).max(1);
    let max_batch = parse_flag(&args, "--max-batch", 8).max(1);
    let total = parse_flag(&args, "--requests", if smoke { 90 } else { 160 }).max(30);
    let out_path = parse_path(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let stats_json = parse_path(&args, "--stats-json");
    let mut rng = StdRng::seed_from_u64(0xD1CE);

    // --- Workloads -------------------------------------------------------
    let burst_targets = skewed_mix(total, 500, smoke, &mut rng);
    let steady_targets = skewed_mix(total / 2, 9000, smoke, &mut rng);
    // The stress phase opens with a burst of duplicates of one *slow* dense
    // class: the first request owns the ~1 s solve, the rest arrive while it
    // runs and must attach in flight.
    let slow_dense = Workload::RandomDense { n: 5, seed: 777 }
        .instantiate()
        .expect("dense workload generates");
    let stress_tail = skewed_mix(total / 3, 42_000, smoke, &mut rng);

    // --- Sequential reference costs (and the parity map) -----------------
    eprintln!("solving sequential reference costs...");
    let workflow = QspWorkflow::new();
    let mut cost_map: HashMap<Fingerprint, usize> = HashMap::new();
    for target in burst_targets
        .iter()
        .chain(&steady_targets)
        .chain(std::iter::once(&slow_dense))
        .chain(&stress_tail)
    {
        if let std::collections::hash_map::Entry::Vacant(slot) = cost_map.entry(fingerprint(target))
        {
            let report = workflow
                .synthesize_request(&SynthesisRequest::new(target.clone()))
                .expect("workload target solves");
            slot.insert(report.cnot_cost);
        }
    }

    // --- Direct batch arm (the throughput baseline) ----------------------
    eprintln!("running direct synthesize_requests baseline...");
    let batch_engine = BatchSynthesizer::with_options(
        Default::default(),
        BatchOptions::default().with_threads(workers),
    );
    let burst_requests: Vec<SynthesisRequest<SparseState>> = burst_targets
        .iter()
        .map(|t| SynthesisRequest::new(t.clone()))
        .collect();
    let batch_start = Instant::now();
    let batch_outcome = batch_engine.synthesize_requests(&burst_requests);
    let batch_wall = batch_start.elapsed();
    assert_eq!(
        batch_outcome.stats.errors, 0,
        "batch baseline must not fail"
    );

    // --- Phase 1: closed-loop burst of the same request set --------------
    let burst = run_phase(
        "burst_skewed",
        burst_targets
            .iter()
            .map(|target| ArrivalRequest {
                target: target.clone(),
                offset: Duration::ZERO,
                budget: None,
            })
            .collect(),
        workers,
        max_batch,
        total,
        None,
        &cost_map,
    );
    let batch_ms = batch_wall.as_secs_f64() * 1e3;
    let throughput_ratio = batch_ms / burst.wall_ms.max(1e-9);
    assert!(
        burst.stats.rejected == 0,
        "burst phase sized its queue to its request count"
    );

    // --- Phase 2: steady open-loop arrivals ------------------------------
    let steady_rate = if smoke { 150.0 } else { 250.0 };
    let steady_offsets = poisson_offsets(steady_targets.len(), steady_rate, &mut rng);
    let steady = run_phase(
        "open_loop_steady",
        steady_targets
            .iter()
            .zip(&steady_offsets)
            .map(|(target, &offset)| ArrivalRequest {
                target: target.clone(),
                offset,
                budget: Some(Duration::from_secs(30)),
            })
            .collect(),
        workers,
        max_batch,
        steady_targets.len(),
        Some(steady_rate),
        &cost_map,
    );

    // --- Phase 3: overload stress ----------------------------------------
    // Duplicate slow-dense burst (in-flight dedup) + high-rate tail where
    // every fourth request has *zero* deadline budget (guaranteed expiry).
    let stress_rate = if smoke { 400.0 } else { 800.0 };
    let dense_copies = (workers * 2).max(6);
    let mut stress_requests: Vec<ArrivalRequest> = (0..dense_copies)
        .map(|i| ArrivalRequest {
            target: slow_dense.clone(),
            offset: Duration::from_millis(4 * i as u64),
            budget: None,
        })
        .collect();
    let tail_offsets = poisson_offsets(stress_tail.len(), stress_rate, &mut rng);
    let tail_start = Duration::from_millis(4 * dense_copies as u64);
    for (i, (target, &offset)) in stress_tail.iter().zip(&tail_offsets).enumerate() {
        stress_requests.push(ArrivalRequest {
            target: target.clone(),
            offset: tail_start + offset,
            budget: if i % 4 == 0 {
                Some(Duration::ZERO)
            } else {
                Some(Duration::from_secs(30))
            },
        });
    }
    let stress_capacity = if smoke {
        stress_requests.len() // smoke load never rejects
    } else {
        (stress_requests.len() / 2).max(32)
    };
    let stress = run_phase(
        "stress_overload",
        stress_requests,
        workers,
        max_batch.min(2), // small drains keep duplicate classes concurrent
        stress_capacity,
        Some(stress_rate),
        &cost_map,
    );
    assert!(
        stress.stats.deduped > 0,
        "stress burst must attach duplicate in-flight classes"
    );
    assert!(
        stress.stats.expired > 0,
        "stress tail must expire zero-budget requests"
    );

    // --- Report ----------------------------------------------------------
    let service_vs_batch = Value::Object(vec![
        ("batch_ms".to_string(), Value::Float(batch_ms)),
        ("service_ms".to_string(), Value::Float(burst.wall_ms)),
        (
            "throughput_ratio".to_string(),
            Value::Float(throughput_ratio),
        ),
        ("threshold".to_string(), Value::Float(0.9)),
        ("pass".to_string(), Value::Bool(throughput_ratio >= 0.9)),
        (
            "batch_solver_runs".to_string(),
            Value::Num(batch_outcome.stats.solver_runs as u64),
        ),
        (
            "service_solver_runs".to_string(),
            Value::Num(burst.stats.solver_runs),
        ),
    ]);
    let phases = [&burst, &steady, &stress];
    let report = Value::Object(vec![
        (
            "benchmark".to_string(),
            Value::Str("serve_micro_batching".to_string()),
        ),
        ("smoke".to_string(), Value::Bool(smoke)),
        ("workers".to_string(), Value::Num(workers as u64)),
        ("max_batch".to_string(), Value::Num(max_batch as u64)),
        (
            "costs_identical".to_string(),
            Value::Bool(phases.iter().all(|p| p.costs_identical)),
        ),
        ("service_vs_batch".to_string(), service_vs_batch),
        (
            "phases".to_string(),
            Value::Array(phases.iter().map(|p| phase_json(p)).collect()),
        ),
    ]);
    assert!(
        throughput_ratio >= 0.9,
        "service throughput fell below 0.9x of synthesize_batch ({throughput_ratio:.3})"
    );

    let json = report.to_json_pretty();
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    if let Some(path) = &stats_json {
        let dump = Value::Object(vec![(
            "phases".to_string(),
            Value::Object(
                phases
                    .iter()
                    .map(|p| (p.name.to_string(), p.obs.to_json()))
                    .collect(),
            ),
        )]);
        std::fs::write(path, dump.to_json_pretty()).expect("write --stats-json dump");
        eprintln!("wrote obs snapshot to {path}");
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
}
