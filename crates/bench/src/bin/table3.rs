//! Reproduces **Table III**: the number of canonical 4-qubit uniform states
//! under no equivalence, layout-variant equivalence (`V_G/U(2)`) and
//! layout-invariant equivalence (`V_G/PU(2)`), for cardinalities 1..=8.
//!
//! Run with `cargo run --release -p qsp-bench --bin table3`.

use qsp_bench::report::format_markdown_table;
use qsp_state::canonical::{count_canonical_states, CanonicalOptions};

/// Paper values of Table III for reference (m = 1..=8).
const PAPER_U2: [usize; 8] = [1, 11, 35, 118, 273, 525, 715, 828];
const PAPER_PU2: [usize; 8] = [1, 3, 6, 16, 27, 47, 56, 68];

fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let mut result = 1usize;
    for i in 0..k {
        result = result * (n - i) / (i + 1);
    }
    result
}

fn main() {
    let num_qubits = 4;
    println!("Table III — canonical {num_qubits}-qubit uniform states\n");
    let headers = [
        "m",
        "|V_G|",
        "|V_G/U(2)| (ours)",
        "paper",
        "|V_G/PU(2)| (ours)",
        "paper",
    ];
    let mut rows = Vec::new();
    for m in 1..=8usize {
        let total = binomial(1 << num_qubits, m);
        let layout_variant =
            count_canonical_states(num_qubits, m, CanonicalOptions::layout_variant());
        let layout_invariant =
            count_canonical_states(num_qubits, m, CanonicalOptions::layout_invariant());
        rows.push(vec![
            m.to_string(),
            total.to_string(),
            layout_variant.to_string(),
            PAPER_U2[m - 1].to_string(),
            layout_invariant.to_string(),
            PAPER_PU2[m - 1].to_string(),
        ]);
    }
    println!("{}", format_markdown_table(&headers, &rows));
    println!(
        "note: the paper's |V_G/U(2)| and |V_G/PU(2)| columns are reproduced by the\n\
         canonicalization of qsp-state; small deviations indicate a different\n\
         tie-breaking of equivalence classes that span several cardinalities."
    );
}
