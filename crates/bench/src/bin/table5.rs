//! Reproduces **Table V**: average CNOT counts for random *dense*
//! (`m = 2^(n-1)`) and *sparse* (`m = n`) uniform states, comparing m-flow,
//! n-flow, the hybrid method and the exact-synthesis workflow, with the
//! improvement over the stronger baseline of each regime.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p qsp-bench --bin table5 -- dense  [--max-n 12] [--samples 5]
//! cargo run --release -p qsp-bench --bin table5 -- sparse [--max-n 20] [--samples 5]
//! ```
//!
//! The paper uses 100 samples per point and n up to 18 (dense) / 20 (sparse);
//! the defaults here are smaller so the binary finishes in minutes. Methods
//! that cannot handle a configuration (the paper's "TLE" entries, our node
//! budgets) are reported as "—".

use qsp_bench::harness::{run_method, Method};
use qsp_bench::report::{format_markdown_table, geometric_mean, parse_flag};
use qsp_state::generators::Workload;

fn average_costs(regime: &str, n: usize, samples: usize, methods: &[Method]) -> Vec<Option<f64>> {
    let mut sums = vec![0.0f64; methods.len()];
    let mut counts = vec![0usize; methods.len()];
    for sample in 0..samples {
        let workload = match regime {
            "dense" => Workload::RandomDense {
                n,
                seed: 1000 + sample as u64,
            },
            _ => Workload::RandomSparse {
                n,
                seed: 2000 + sample as u64,
            },
        };
        let target = workload
            .instantiate()
            .expect("workload generation succeeds");
        for (i, method) in methods.iter().enumerate() {
            // Skip methods that are known to blow up well beyond the paper's
            // own time limit in this regime (m-flow and hybrid on large dense
            // states); they are reported as "—", mirroring the "TLE" cells.
            let skip = regime == "dense"
                && ((*method == Method::MFlow && n > 12) || (*method == Method::Hybrid && n > 11));
            if skip {
                continue;
            }
            if let Some(cost) = run_method(*method, &target, 12).cnot_cost {
                sums[i] += cost as f64;
                counts[i] += 1;
            }
        }
    }
    sums.iter()
        .zip(counts)
        .map(|(sum, count)| {
            if count == 0 {
                None
            } else {
                Some(sum / count as f64)
            }
        })
        .collect()
}

fn run_regime(regime: &str, max_n: usize, samples: usize) {
    let reference = if regime == "dense" {
        Method::NFlow
    } else {
        Method::MFlow
    };
    println!(
        "Table V ({regime} states, m = {}) — average CNOT count over {samples} samples\n",
        if regime == "dense" { "2^(n-1)" } else { "n" }
    );
    let headers = [
        "n",
        "m",
        "m-flow",
        "n-flow",
        "hybrid",
        "ours",
        "impr% vs best baseline",
    ];
    let mut rows = Vec::new();
    let mut ours_geo = Vec::new();
    let mut reference_geo = Vec::new();
    for n in 3..=max_n {
        let m = if regime == "dense" {
            1usize << (n - 1)
        } else {
            n
        };
        let averages = average_costs(regime, n, samples, &Method::ALL);
        let mut cells = vec![n.to_string(), m.to_string()];
        for avg in &averages {
            cells.push(match avg {
                Some(value) => format!("{value:.1}"),
                None => "—".to_string(),
            });
        }
        let reference_index = Method::ALL
            .iter()
            .position(|m| *m == reference)
            .expect("present");
        let ours_index = Method::ALL
            .iter()
            .position(|m| *m == Method::Ours)
            .expect("present");
        let improvement = match (averages[reference_index], averages[ours_index]) {
            (Some(baseline), Some(ours)) if baseline > 0.0 => {
                ours_geo.push(ours);
                reference_geo.push(baseline);
                format!("{:.0}%", 100.0 * (1.0 - ours / baseline))
            }
            _ => "—".to_string(),
        };
        cells.push(improvement);
        rows.push(cells);
    }
    let geo_ours = geometric_mean(ours_geo.iter().copied());
    let geo_reference = geometric_mean(reference_geo.iter().copied());
    rows.push(vec![
        "geo. mean".to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        format!("{geo_ours:.1}"),
        format!(
            "{:.0}%",
            100.0 * (1.0 - geo_ours / geo_reference.max(f64::MIN_POSITIVE))
        ),
    ]);
    println!("{}", format_markdown_table(&headers, &rows));
    if regime == "dense" {
        println!("paper reference: ours improves on the n-flow by 9% on average (geo. mean 1274.7 vs 1399.3)\n");
    } else {
        println!("paper reference: ours improves on the m-flow by 32% on average (geo. mean 44 vs 64.3)\n");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let regime = args
        .iter()
        .find(|a| a.as_str() == "dense" || a.as_str() == "sparse")
        .cloned();
    let samples = parse_flag(&args, "--samples", 5);
    match regime.as_deref() {
        Some("dense") => run_regime("dense", parse_flag(&args, "--max-n", 12), samples),
        Some("sparse") => run_regime("sparse", parse_flag(&args, "--max-n", 16), samples),
        _ => {
            run_regime("dense", parse_flag(&args, "--max-n", 10), samples);
            run_regime("sparse", parse_flag(&args, "--max-n", 14), samples);
        }
    }
}
