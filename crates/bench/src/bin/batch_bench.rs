//! Compares sequential vs. batched synthesis wall-time on random sparse
//! targets and emits a machine-readable `BENCH_batch.json`.
//!
//! The workload is ≥100 random sparse uniform states (`m = n`, the Table V
//! bottom-half regime) across several register widths, plus a slice of
//! repeated targets so the canonical cache has something to deduplicate —
//! the shape production traffic actually has.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p qsp-bench --bin batch_bench -- \
//!     [--targets 120] [--min-n 8] [--max-n 12] [--repeat-every 6] [--out BENCH_batch.json]
//! ```

use std::time::Instant;

use qsp_baselines::StatePreparator;
use qsp_bench::report::parse_flag;
use qsp_core::{BatchSynthesizer, QspWorkflow};
use qsp_state::generators::Workload;
use qsp_state::SparseState;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let total = parse_flag(&args, "--targets", 120).max(100);
    let min_n = parse_flag(&args, "--min-n", 8);
    let max_n = parse_flag(&args, "--max-n", 12).max(min_n);
    let repeat_every = parse_flag(&args, "--repeat-every", 6).max(2);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_batch.json".to_string());

    // Workload: every `repeat_every`-th target repeats an earlier one, the
    // rest are fresh random sparse states sweeping the register widths.
    let mut targets: Vec<SparseState> = Vec::with_capacity(total);
    let widths = max_n - min_n + 1;
    for i in 0..total {
        if i % repeat_every == repeat_every - 1 && i > 0 {
            targets.push(targets[i / 2].clone());
        } else {
            let n = min_n + (i % widths);
            let workload = Workload::RandomSparse {
                n,
                seed: 10_000 + i as u64,
            };
            targets.push(
                workload
                    .instantiate()
                    .expect("workload generation succeeds"),
            );
        }
    }
    let expected_duplicates = targets.len()
        - targets
            .iter()
            .map(|t| format!("{t}"))
            .collect::<std::collections::BTreeSet<_>>()
            .len();

    eprintln!(
        "benchmarking {} targets (n = {min_n}..={max_n}, ~{expected_duplicates} duplicates)...",
        targets.len()
    );

    // Sequential: one QspWorkflow call per target.
    let workflow = QspWorkflow::new();
    let sequential_start = Instant::now();
    let sequential: Vec<_> = targets
        .iter()
        .map(|t| workflow.prepare(t).expect("sequential synthesis succeeds"))
        .collect();
    let sequential_elapsed = sequential_start.elapsed();

    // Batched: one synthesize_batch call over the whole workload.
    let engine = BatchSynthesizer::new();
    let batch_start = Instant::now();
    let outcome = engine.synthesize_batch(&targets);
    let batch_elapsed = batch_start.elapsed();
    assert_eq!(outcome.stats.errors, 0, "batched synthesis must not fail");

    // The batch must match the per-target runs CNOT for CNOT.
    let mut total_cnot_sequential = 0usize;
    let mut total_cnot_batch = 0usize;
    for (i, (seq, bat)) in sequential.iter().zip(&outcome.results).enumerate() {
        let bat = bat.as_ref().expect("no per-target errors");
        assert_eq!(
            seq.cnot_cost(),
            bat.cnot_cost(),
            "target {i}: batch CNOT cost diverged from the sequential workflow"
        );
        total_cnot_sequential += seq.cnot_cost();
        total_cnot_batch += bat.cnot_cost();
    }

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sequential_ms = sequential_elapsed.as_secs_f64() * 1e3;
    let batch_ms = batch_elapsed.as_secs_f64() * 1e3;
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"batch_vs_sequential_synthesis\",\n",
            "  \"workload\": \"random_sparse_uniform\",\n",
            "  \"targets\": {},\n",
            "  \"min_qubits\": {},\n",
            "  \"max_qubits\": {},\n",
            "  \"duplicate_targets\": {},\n",
            "  \"threads\": {},\n",
            "  \"sequential_ms\": {:.3},\n",
            "  \"batch_ms\": {:.3},\n",
            "  \"speedup\": {:.3},\n",
            "  \"solver_runs\": {},\n",
            "  \"cache_hits\": {},\n",
            "  \"total_cnot_sequential\": {},\n",
            "  \"total_cnot_batch\": {},\n",
            "  \"costs_identical\": true\n",
            "}}\n"
        ),
        targets.len(),
        min_n,
        max_n,
        expected_duplicates,
        threads,
        sequential_ms,
        batch_ms,
        sequential_ms / batch_ms.max(1e-9),
        outcome.stats.solver_runs,
        outcome.stats.cache_hits,
        total_cnot_sequential,
        total_cnot_batch,
    );

    std::fs::write(&out_path, &json).expect("write BENCH_batch.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
