//! Compares sequential vs. batched synthesis wall-time across three workload
//! families and emits a machine-readable `BENCH_batch.json`.
//!
//! Families (per the paper's evaluation regimes):
//!
//! * `random_sparse_uniform` — random sparse uniform states (`m = n`, the
//!   Table V bottom-half regime) across several register widths,
//! * `random_dense` — random dense states (the Table V top-half regime),
//! * `dicke_families` — the named Dicke/GHZ/W workloads of Table IV, cycled
//!   so the canonical cache sees the high-duplication shape named-state
//!   traffic actually has,
//! * `skewed_repeats` — Bell-pair-product states whose optimal circuits sit
//!   exactly on the entanglement lower bound, replayed over several rounds
//!   with fresh angles per round: the first round captures one class
//!   template per support layout, every later round instantiates it through
//!   the angle-replay stage instead of searching (`template_hits`).
//!
//! Every family mixes in repeated targets so deduplication has something to
//! do. The sequential arm drives the workflow through
//! [`StatePreparator::prepare_many`]; the batch arm is one
//! `synthesize_batch` call. Per-stage timings (keying / planning / solving /
//! assembly) come from [`BatchStats`].
//!
//! Both arms run `--reps` times and report the *minimum* wall time — the
//! standard microbenchmark estimator for the noise-free cost, which matters
//! on shared CI hosts where the fast sparse families finish in a few
//! milliseconds and scheduler interference would otherwise dominate the
//! ratio. Each batch rep gets a fresh engine so every rep keys and solves
//! the same cold-cache problem; counters and reports come from the first
//! rep.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p qsp-bench --bin batch_bench -- \
//!     [--threads 0] [--targets 120] [--min-n 8] [--max-n 12] \
//!     [--repeat-every 6] [--shards 0] [--capacity 0] [--smoke] \
//!     [--reps 3] [--warm-start warm.json] [--save-cache warm.json] \
//!     [--out BENCH_batch.json] [--stats-json obs.json]
//! ```
//!
//! `--threads 0` (the default) uses the machine's available parallelism.
//! `--smoke` shrinks every family for CI smoke runs. `--warm-start` merges a
//! cache snapshot into every family's engine before it runs (cheaper entry
//! wins on collision); `--save-cache` writes the merged union of all family
//! caches back out — together they are the cross-process warm-start loop of
//! the distributed-cache roadmap item.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use qsp_baselines::StatePreparator;
use qsp_bench::report::{has_switch, parse_flag, parse_path};
use qsp_core::json::Value;
use qsp_core::{
    BatchOptions, BatchStats, BatchSynthesizer, CacheConfig, QspWorkflow, ShardedCache,
    SynthesisRequest,
};
use qsp_obs::MetricValue;
use qsp_obs::{ObsHub, ObsOptions, RequestTrace, SpanKind, TraceId};
use qsp_state::generators::Workload;
use qsp_state::{BasisIndex, SparseState};

struct FamilyReport {
    name: &'static str,
    targets: usize,
    duplicates: usize,
    min_qubits: usize,
    max_qubits: usize,
    sequential_ms: f64,
    batch_ms: f64,
    stats: BatchStats,
    total_cnot_sequential: usize,
    total_cnot_batch: usize,
    costs_identical: bool,
    per_width: Vec<WidthReport>,
}

/// Per-register-width keying report: how expensive keying is (center and
/// tail), how the tiered pipeline split between the signature fast path and
/// the full collision tier, and how much of the family's traffic
/// deduplicated at that width.
#[derive(Clone, Default)]
struct WidthReport {
    qubits: usize,
    targets: usize,
    /// Targets at this width that triggered their own fresh solve.
    fresh_solves: usize,
    /// Per-request keying times at this width, in nanoseconds.
    keying_ns: Vec<f64>,
    /// Targets keyed on the stage-0 signature alone (tiered fast path).
    keys_sig_tier: usize,
    /// Targets that collided and ran the full orbit/flip canonicalization.
    keys_full_tier: usize,
}

/// Nearest-rank percentile of an unsorted sample set.
fn percentile_ns(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[((sorted.len() - 1) as f64 * q).floor() as usize]
}

impl WidthReport {
    fn dedup_rate(&self) -> f64 {
        if self.targets == 0 {
            0.0
        } else {
            1.0 - self.fresh_solves as f64 / self.targets as f64
        }
    }

    fn keying_ns_per_target(&self) -> f64 {
        if self.targets == 0 {
            0.0
        } else {
            self.keying_ns.iter().sum::<f64>() / self.targets as f64
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{ \"qubits\": {}, \"targets\": {}, \"fresh_solves\": {}, \
             \"dedup_rate\": {:.4}, \"keying_ns_per_target\": {:.0}, \
             \"keying_ns_p50\": {:.0}, \"keying_ns_p95\": {:.0}, \
             \"keys\": {{ \"sig_tier\": {}, \"full_tier\": {} }} }}",
            self.qubits,
            self.targets,
            self.fresh_solves,
            self.dedup_rate(),
            self.keying_ns_per_target(),
            percentile_ns(&self.keying_ns, 0.50),
            percentile_ns(&self.keying_ns, 0.95),
            self.keys_sig_tier,
            self.keys_full_tier,
        )
    }
}

/// Folds per-request provenance and keying timings into per-width rows,
/// sorted by width.
fn per_width_report(
    targets: &[SparseState],
    reports: &[Result<qsp_core::SynthesisReport, qsp_core::SynthesisError>],
) -> Vec<WidthReport> {
    let mut by_width: std::collections::BTreeMap<usize, WidthReport> =
        std::collections::BTreeMap::new();
    for (target, report) in targets.iter().zip(reports) {
        let report = report.as_ref().expect("no per-target errors");
        let row = by_width
            .entry(target.num_qubits())
            .or_insert_with(|| WidthReport {
                qubits: target.num_qubits(),
                ..WidthReport::default()
            });
        row.targets += 1;
        if report.provenance.is_fresh_solve() {
            row.fresh_solves += 1;
        }
        row.keying_ns
            .push(report.timings.keying.as_secs_f64() * 1e9);
    }
    by_width.into_values().collect()
}

/// Copies the engine's width-labelled `batch.keys.tier` counters into the
/// matching per-width rows (the keying phase labels every key it computes
/// with its register width and the tier that produced it).
fn fold_tier_counters(snapshot: &qsp_obs::ObsSnapshot, rows: &mut [WidthReport]) {
    for sample in &snapshot.metrics.samples {
        if sample.name != "batch.keys.tier" {
            continue;
        }
        let MetricValue::Counter(count) = sample.value else {
            continue;
        };
        let label = |key: &str| {
            sample
                .labels
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
        };
        let Some(width) = label("width").and_then(|w| w.parse::<usize>().ok()) else {
            continue;
        };
        let Some(row) = rows.iter_mut().find(|row| row.qubits == width) else {
            continue;
        };
        match label("tier") {
            Some("sig") => row.keys_sig_tier += count as usize,
            Some("full") => row.keys_full_tier += count as usize,
            _ => {}
        }
    }
}

/// Merges per-width rows across families (same-width rows accumulate).
fn merge_widths(families: &[FamilyReport]) -> Vec<WidthReport> {
    let mut by_width: std::collections::BTreeMap<usize, WidthReport> =
        std::collections::BTreeMap::new();
    for family in families {
        for row in &family.per_width {
            let merged = by_width.entry(row.qubits).or_insert_with(|| WidthReport {
                qubits: row.qubits,
                ..WidthReport::default()
            });
            merged.targets += row.targets;
            merged.fresh_solves += row.fresh_solves;
            merged.keying_ns.extend_from_slice(&row.keying_ns);
            merged.keys_sig_tier += row.keys_sig_tier;
            merged.keys_full_tier += row.keys_full_tier;
        }
    }
    by_width.into_values().collect()
}

/// Measures the per-request cost of the observability hot path with ring
/// tracing *disabled* (the production default): the counter bumps, one
/// histogram record and the early-out `record_trace` check a request pays
/// whether or not anyone is watching. The CI smoke gate holds this under the
/// `obs_overhead_ns_per_request_ceiling` of the baseline file.
fn measure_obs_overhead_ns() -> f64 {
    let hub = ObsHub::default();
    assert!(!hub.tracer().enabled(), "default hub must have tracing off");
    let counter = hub.metrics().counter("bench.obs_overhead.requests", &[]);
    let histogram = hub.metrics().histogram("bench.obs_overhead.latency", &[]);
    let mut trace = RequestTrace::new(TraceId::from_raw(1));
    for (i, kind) in SpanKind::ALL.into_iter().enumerate() {
        trace.push(
            kind,
            Duration::from_nanos(i as u64 * 100),
            Duration::from_nanos(100),
        );
    }
    const ITERS: u64 = 1_000_000;
    let start = Instant::now();
    for _ in 0..ITERS {
        // The per-request obs footprint on the disabled path: one outcome
        // counter, one latency record, one rejected trace offer.
        counter.inc();
        histogram.record(std::hint::black_box(Duration::from_nanos(250)));
        std::hint::black_box(hub.tracer().record_trace(std::hint::black_box(&trace)));
    }
    start.elapsed().as_secs_f64() * 1e9 / ITERS as f64
}

fn count_duplicates(targets: &[SparseState]) -> usize {
    targets.len()
        - targets
            .iter()
            .map(|t| format!("{t}"))
            .collect::<std::collections::BTreeSet<_>>()
            .len()
}

fn qubit_range(targets: &[SparseState]) -> (usize, usize) {
    let min = targets
        .iter()
        .map(SparseState::num_qubits)
        .min()
        .unwrap_or(0);
    let max = targets
        .iter()
        .map(SparseState::num_qubits)
        .max()
        .unwrap_or(0);
    (min, max)
}

/// Random states sweeping `min_n..=max_n` (built by `make` from a width and
/// seed), with every `repeat_every`-th target repeating an earlier one.
fn random_family(
    total: usize,
    min_n: usize,
    max_n: usize,
    repeat_every: usize,
    make: impl Fn(usize, u64) -> Workload,
) -> Vec<SparseState> {
    let widths = max_n - min_n + 1;
    let mut targets: Vec<SparseState> = Vec::with_capacity(total);
    for i in 0..total {
        if i % repeat_every == repeat_every - 1 && i > 0 {
            // Rotate the copied index across the width cycle: with a fixed
            // source (e.g. `i / 2`) and `repeat_every` a multiple of the
            // cycle length, every duplicate aliases onto one width and the
            // other widths never dedup — an artifact, not traffic shape.
            let rotation = (i / repeat_every) % widths;
            targets.push(targets[(i / 2 + rotation) % i].clone());
        } else {
            let n = min_n + (i % widths);
            targets.push(
                make(n, i as u64)
                    .instantiate()
                    .expect("random workload generates"),
            );
        }
    }
    targets
}

/// The named Table IV workloads cycled to `total` targets: the
/// high-duplication shape of named-state traffic.
fn dicke_family(total: usize) -> Vec<SparseState> {
    let named = [
        Workload::Dicke { n: 3, k: 1 },
        Workload::Dicke { n: 4, k: 1 },
        Workload::Dicke { n: 4, k: 2 },
        Workload::Dicke { n: 5, k: 1 },
        Workload::Dicke { n: 5, k: 2 },
        Workload::Dicke { n: 6, k: 2 },
        Workload::Dicke { n: 6, k: 3 },
        Workload::Ghz { n: 8 },
        Workload::W { n: 6 },
    ];
    (0..total)
        .map(|i| {
            named[i % named.len()]
                .instantiate()
                .expect("dicke workload generates")
        })
        .collect()
}

/// Accumulates one round's [`BatchStats`] into a family-wide total.
fn merge_stats(total: &mut BatchStats, round: &BatchStats) {
    total.targets += round.targets;
    total.solver_runs += round.solver_runs;
    total.template_hits += round.template_hits;
    total.cache_hits += round.cache_hits;
    total.errors += round.errors;
    total.keys_exhaustive += round.keys_exhaustive;
    total.keys_orbit_pruned += round.keys_orbit_pruned;
    total.keys_greedy += round.keys_greedy;
    total.keys_sig_fast_path += round.keys_sig_fast_path;
    total.threads = total.threads.max(round.threads);
    total.elapsed += round.elapsed;
    total.keying += round.keying;
    total.planning += round.planning;
    total.solving += round.solving;
    total.assembly += round.assembly;
}

/// Runs one family as a sequence of batch calls against a shared engine.
/// Single-round families measure pure in-batch dedup; the multi-round
/// `skewed_repeats` family measures cross-batch template capture and
/// replay (round 1 captures, later rounds instantiate).
/// A product of disjoint `cos θ|00⟩ + sin θ|11⟩` Bell pairs on an `n`-qubit
/// register (unpaired qubits stay |0⟩). Its optimal circuit costs one CNOT
/// per pair — exactly the entanglement lower bound — which is the capture
/// gate of the template cache: the first solve of each support layout
/// records a class template, and every later target with the same support
/// but fresh angles replays it through the angle stage instead of
/// searching.
fn bell_pair_product(n: usize, pairs: &[(usize, usize)], thetas: &[f64]) -> SparseState {
    let mut entries: Vec<(u64, f64)> = vec![(0, 1.0)];
    for (&(a, b), &theta) in pairs.iter().zip(thetas) {
        let mut next = Vec::with_capacity(entries.len() * 2);
        for &(index, amplitude) in &entries {
            next.push((index, amplitude * theta.cos()));
            next.push((index | (1 << a) | (1 << b), amplitude * theta.sin()));
        }
        entries = next;
    }
    SparseState::from_amplitudes(
        n,
        entries
            .into_iter()
            .map(|(index, amplitude)| (BasisIndex::new(index), amplitude)),
    )
    .expect("bell-pair product state is normalized")
}

/// The skewed-repeat template workload: six fixed two-pair support layouts
/// across 6–8 qubit registers, re-requested every round with fresh angles.
/// Every round is a separate batch against the same engine, so round 1
/// captures one template per layout and rounds 2+ are pure template
/// traffic (new canonical classes — the angles differ — but known
/// structure).
fn skewed_repeat_rounds(rounds: usize) -> Vec<Vec<SparseState>> {
    let layouts: [(usize, [(usize, usize); 2]); 6] = [
        (6, [(0, 1), (2, 3)]),
        (6, [(1, 4), (2, 5)]),
        (7, [(0, 3), (5, 6)]),
        (7, [(1, 2), (4, 5)]),
        (8, [(0, 7), (3, 4)]),
        (8, [(2, 5), (1, 6)]),
    ];
    (0..rounds)
        .map(|round| {
            layouts
                .iter()
                .enumerate()
                .map(|(i, &(n, ref pairs))| {
                    // Distinct angles per (layout, round), all in (0, π/2)
                    // so every amplitude stays positive.
                    let thetas = [
                        0.2 + 0.11 * round as f64 + 0.05 * i as f64,
                        0.3 + 0.07 * round as f64 + 0.03 * i as f64,
                    ];
                    bell_pair_product(n, pairs, &thetas)
                })
                .collect()
        })
        .collect()
}

fn run_family(
    name: &'static str,
    rounds: Vec<Vec<SparseState>>,
    reps: usize,
    make_engine: &dyn Fn() -> BatchSynthesizer,
) -> (FamilyReport, BatchSynthesizer) {
    let targets: Vec<SparseState> = rounds.iter().flatten().cloned().collect();
    let duplicates = count_duplicates(&targets);
    let (min_qubits, max_qubits) = qubit_range(&targets);
    eprintln!(
        "family {name}: {} targets (n = {min_qubits}..={max_qubits}, ~{duplicates} duplicates, {} rounds, min of {reps} reps)...",
        targets.len(),
        rounds.len()
    );

    // Both arms, interleaved per rep so slow drift of the host (thermal,
    // co-tenant load) hits them evenly; each arm keeps its minimum wall
    // time. Families that finish a rep in well under the measurement floor
    // keep repeating (up to 8x the requested reps) so their minima are
    // taken over enough samples to be stable — millisecond-scale families
    // are where scheduler jitter is largest relative to the signal.
    // The sequential workflow is deterministic and every batch rep
    // gets a fresh engine (the same cold-cache problem), so the first
    // rep's circuits, stats, reports and engine (for the obs snapshot and
    // cache merge) are the ones reported.
    const MEASUREMENT_FLOOR: Duration = Duration::from_millis(150);
    let workflow = QspWorkflow::new();
    let mut sequential = None;
    let mut sequential_elapsed = Duration::MAX;
    let mut batch_elapsed = Duration::MAX;
    let mut kept = None;
    let mut measured = Duration::ZERO;
    let mut rep = 0usize;
    while rep < reps.max(1) || (measured < MEASUREMENT_FLOOR && rep < reps.max(1) * 8) {
        let rep_start = Instant::now();
        let run = workflow.prepare_many(&targets);
        let seq_wall = rep_start.elapsed();
        sequential_elapsed = sequential_elapsed.min(seq_wall);
        sequential.get_or_insert(run);

        // Requests are assembled outside the timed region: the sequential
        // arm borrows `&targets` without cloning, so the clone cost of
        // materializing owned requests is harness work, not batch work.
        let rep_engine = make_engine();
        let request_rounds: Vec<Vec<SynthesisRequest<SparseState>>> = rounds
            .iter()
            .map(|round| {
                round
                    .iter()
                    .map(|t| SynthesisRequest::new(t.clone()))
                    .collect()
            })
            .collect();
        let rep_start = Instant::now();
        let mut rep_stats = BatchStats::default();
        let mut rep_reports = Vec::with_capacity(targets.len());
        for requests in &request_rounds {
            let outcome = rep_engine.synthesize_requests(requests);
            merge_stats(&mut rep_stats, &outcome.stats);
            rep_reports.extend(outcome.reports);
        }
        let batch_wall = rep_start.elapsed();
        batch_elapsed = batch_elapsed.min(batch_wall);
        kept.get_or_insert((rep_stats, rep_reports, rep_engine));
        measured += seq_wall + batch_wall;
        rep += 1;
    }
    let sequential = sequential.expect("at least one sequential rep");
    let (stats, reports, engine) = kept.expect("at least one batch rep");
    assert_eq!(stats.errors, 0, "batched synthesis must not fail");

    // The batch must match the per-target runs CNOT for CNOT. The flag is
    // computed (and emitted into the JSON) before the hard assert so the
    // report can never claim an identity the data does not show.
    let mut total_cnot_sequential = 0usize;
    let mut total_cnot_batch = 0usize;
    let mut costs_identical = true;
    for (i, (seq, bat)) in sequential.iter().zip(&reports).enumerate() {
        let seq = seq.as_ref().expect("sequential synthesis succeeds");
        let bat = bat.as_ref().expect("no per-target errors");
        if seq.cnot_cost() != bat.cnot_cost {
            costs_identical = false;
            eprintln!("{name} target {i}: batch CNOT cost diverged from the sequential workflow");
        }
        total_cnot_sequential += seq.cnot_cost();
        total_cnot_batch += bat.cnot_cost;
    }
    assert!(costs_identical, "{name}: batch CNOT costs diverged");

    let mut per_width = per_width_report(&targets, &reports);
    fold_tier_counters(&engine.obs().snapshot(), &mut per_width);
    let report = FamilyReport {
        name,
        targets: targets.len(),
        duplicates,
        min_qubits,
        max_qubits,
        sequential_ms: sequential_elapsed.as_secs_f64() * 1e3,
        batch_ms: batch_elapsed.as_secs_f64() * 1e3,
        stats,
        total_cnot_sequential,
        total_cnot_batch,
        costs_identical,
        per_width,
    };
    (report, engine)
}

fn family_json(report: &FamilyReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        concat!(
            "    {{\n",
            "      \"workload\": \"{}\",\n",
            "      \"targets\": {},\n",
            "      \"min_qubits\": {},\n",
            "      \"max_qubits\": {},\n",
            "      \"duplicate_targets\": {},\n",
            "      \"sequential_ms\": {:.3},\n",
            "      \"batch_ms\": {:.3},\n",
            "      \"speedup\": {:.3},\n",
            "      \"solver_runs\": {},\n",
            "      \"template_hits\": {},\n",
            "      \"cache_hits\": {},\n",
            "      \"keys\": {{ \"exhaustive\": {}, \"orbit_pruned\": {}, \"greedy\": {}, \"sig_fast_path\": {} }},\n",
            "      \"stage_ms\": {{ \"keying\": {:.3}, \"planning\": {:.3}, \"solving\": {:.3}, \"assembly\": {:.3} }},\n",
            "      \"total_cnot_sequential\": {},\n",
            "      \"total_cnot_batch\": {},\n",
            "      \"costs_identical\": {},\n",
            "      \"per_width\": [\n{}\n      ]\n",
            "    }}"
        ),
        report.name,
        report.targets,
        report.min_qubits,
        report.max_qubits,
        report.duplicates,
        report.sequential_ms,
        report.batch_ms,
        report.sequential_ms / report.batch_ms.max(1e-9),
        report.stats.solver_runs,
        report.stats.template_hits,
        report.stats.cache_hits,
        report.stats.keys_exhaustive,
        report.stats.keys_orbit_pruned,
        report.stats.keys_greedy,
        report.stats.keys_sig_fast_path,
        report.stats.keying.as_secs_f64() * 1e3,
        report.stats.planning.as_secs_f64() * 1e3,
        report.stats.solving.as_secs_f64() * 1e3,
        report.stats.assembly.as_secs_f64() * 1e3,
        report.total_cnot_sequential,
        report.total_cnot_batch,
        report.costs_identical,
        width_rows_json(&report.per_width, "        "),
    );
    out
}

fn width_rows_json(rows: &[WidthReport], indent: &str) -> String {
    rows.iter()
        .map(|row| format!("{indent}{}", row.to_json()))
        .collect::<Vec<_>>()
        .join(",\n")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = has_switch(&args, "--smoke");
    let threads = parse_flag(&args, "--threads", 0);
    let default_targets = if smoke { 60 } else { 120 };
    let total = parse_flag(&args, "--targets", default_targets).max(if smoke { 20 } else { 100 });
    let min_n = parse_flag(&args, "--min-n", if smoke { 6 } else { 8 });
    let max_n = parse_flag(&args, "--max-n", if smoke { 8 } else { 12 }).max(min_n);
    let repeat_every = parse_flag(&args, "--repeat-every", 6).max(2);
    // Min-of-reps timing: smoke families are milliseconds-fast, so noise
    // rejection matters there; full runs are long enough that one rep does.
    let reps = parse_flag(&args, "--reps", if smoke { 3 } else { 1 }).max(1);
    let shards = parse_flag(&args, "--shards", 0);
    let capacity = parse_flag(&args, "--capacity", 0);
    let out_path = parse_path(&args, "--out").unwrap_or_else(|| "BENCH_batch.json".to_string());
    let warm_start = parse_path(&args, "--warm-start");
    let save_cache = parse_path(&args, "--save-cache");
    let stats_json = parse_path(&args, "--stats-json");

    // The benchmark runs with the full observability surface on: ring
    // tracing (every request, ring sized to hold a whole family), the solver
    // flight recorder and cache probe/evict timing — so the emitted report
    // carries a complete ObsSnapshot per family.
    let obs = ObsOptions::default()
        .with_tracing(true)
        .with_ring_capacity(4096)
        .with_flight(true)
        .with_flight_capacity(512)
        .with_timing_detail(true);
    let options = BatchOptions::default()
        .with_threads(threads)
        .with_cache(
            CacheConfig::default()
                .with_shards(shards)
                .with_capacity(capacity),
        )
        .with_obs(obs);

    // Dense solves are orders of magnitude heavier than sparse ones (the
    // capped residual search dominates), so the dense family is kept small
    // enough that the benchmark finishes in tens of seconds.
    let dense_total = if smoke { 6 } else { (total / 6).max(12) };
    let dicke_total = total / 2;
    let (dense_min, dense_max) = if smoke { (4, 4) } else { (4, 6) };

    let template_rounds = if smoke { 4 } else { 6 };
    let families = [
        (
            "random_sparse_uniform",
            vec![random_family(total, min_n, max_n, repeat_every, |n, i| {
                Workload::RandomSparse {
                    n,
                    seed: 10_000 + i,
                }
            })],
        ),
        (
            "random_dense",
            vec![random_family(
                dense_total,
                dense_min,
                dense_max,
                repeat_every,
                |n, i| Workload::RandomDense {
                    n,
                    seed: 20_000 + i,
                },
            )],
        ),
        ("dicke_families", vec![dicke_family(dicke_total)]),
        ("skewed_repeats", skewed_repeat_rounds(template_rounds)),
    ];

    // The merged union of every family's solved classes (cheaper entry wins)
    // when `--save-cache` asks for a warm-start snapshot to be written.
    let merged = ShardedCache::new(CacheConfig::unbounded());
    let mut reports = Vec::new();
    let mut obs_snapshots: Vec<(&'static str, qsp_obs::ObsSnapshot)> = Vec::new();
    for (name, targets) in families {
        // A fresh engine per family (and per timing rep): cross-batch warm
        // hits are measured by the snapshot tests, not the benchmark.
        let make_engine = || {
            let engine = BatchSynthesizer::with_options(Default::default(), options);
            if let Some(path) = &warm_start {
                let adopted = engine
                    .cache()
                    .merge_snapshot(std::path::Path::new(path))
                    .expect("merge --warm-start snapshot");
                eprintln!("family {name}: warm-started {adopted} classes from {path}");
            }
            engine
        };
        let (report, engine) = run_family(name, targets, reps, &make_engine);
        reports.push(report);
        obs_snapshots.push((name, engine.obs().snapshot()));
        if save_cache.is_some() {
            merged.merge_from(engine.cache());
        }
    }
    if let Some(path) = &save_cache {
        let written = merged
            .save_snapshot(std::path::Path::new(path))
            .expect("write --save-cache snapshot");
        eprintln!("saved {written} merged classes to {path}");
    }

    let sequential_ms: f64 = reports.iter().map(|r| r.sequential_ms).sum();
    let batch_ms: f64 = reports.iter().map(|r| r.batch_ms).sum();
    let total_targets: usize = reports.iter().map(|r| r.targets).sum();
    let solver_runs: usize = reports.iter().map(|r| r.stats.solver_runs).sum();
    let cache_hits: usize = reports.iter().map(|r| r.stats.cache_hits).sum();
    let cnot_sequential: usize = reports.iter().map(|r| r.total_cnot_sequential).sum();
    let cnot_batch: usize = reports.iter().map(|r| r.total_cnot_batch).sum();
    let all_costs_identical = reports.iter().all(|r| r.costs_identical);
    let keys_exhaustive: usize = reports.iter().map(|r| r.stats.keys_exhaustive).sum();
    let keys_orbit_pruned: usize = reports.iter().map(|r| r.stats.keys_orbit_pruned).sum();
    let keys_greedy: usize = reports.iter().map(|r| r.stats.keys_greedy).sum();
    let keys_sig_fast_path: usize = reports.iter().map(|r| r.stats.keys_sig_fast_path).sum();
    let template_hits: usize = reports.iter().map(|r| r.stats.template_hits).sum();
    let skewed_repeat_hits = reports
        .iter()
        .find(|r| r.name == "skewed_repeats")
        .map(|r| r.stats.template_hits)
        .unwrap_or(0);
    let merged_widths = merge_widths(&reports);
    // The engine reports the pool width it actually ran (configured or
    // auto-detected, capped at the family size); the widest family is the
    // benchmark's effective parallelism.
    let resolved_threads = reports.iter().map(|r| r.stats.threads).max().unwrap_or(1);

    let mut json = String::new();
    let _ = write!(
        json,
        concat!(
            "{{\n",
            "  \"benchmark\": \"batch_vs_sequential_synthesis\",\n",
            "  \"smoke\": {},\n",
            "  \"threads\": {},\n",
            "  \"cache_shards\": {},\n",
            "  \"cache_capacity\": {},\n",
            "  \"targets\": {},\n",
            "  \"sequential_ms\": {:.3},\n",
            "  \"batch_ms\": {:.3},\n",
            "  \"speedup\": {:.3},\n",
            "  \"solver_runs\": {},\n",
            "  \"cache_hits\": {},\n",
            "  \"keys\": {{ \"exhaustive\": {}, \"orbit_pruned\": {}, \"greedy\": {}, \"sig_fast_path\": {} }},\n",
            "  \"templates\": {{ \"hits\": {}, \"skewed_repeat_hits\": {} }},\n",
            "  \"total_cnot_sequential\": {},\n",
            "  \"total_cnot_batch\": {},\n",
            "  \"costs_identical\": {},\n",
            "  \"per_width\": [\n{}\n  ],\n",
        ),
        smoke,
        resolved_threads,
        options.cache.resolved_shards(),
        capacity,
        total_targets,
        sequential_ms,
        batch_ms,
        sequential_ms / batch_ms.max(1e-9),
        solver_runs,
        cache_hits,
        keys_exhaustive,
        keys_orbit_pruned,
        keys_greedy,
        keys_sig_fast_path,
        template_hits,
        skewed_repeat_hits,
        cnot_sequential,
        cnot_batch,
        all_costs_identical,
        width_rows_json(&merged_widths, "    "),
    );

    // The observability slice of the report: the disabled-path overhead
    // measurement plus each family engine's full ObsSnapshot (metrics, ring
    // spans, flight records).
    eprintln!("measuring disabled-tracing obs overhead...");
    let obs_overhead_ns = measure_obs_overhead_ns();
    let obs_value = Value::Object(vec![
        (
            "overhead_ns_per_request".to_string(),
            Value::Float(obs_overhead_ns),
        ),
        (
            "families".to_string(),
            Value::Object(
                obs_snapshots
                    .iter()
                    .map(|(name, snapshot)| (name.to_string(), snapshot.to_json()))
                    .collect(),
            ),
        ),
    ]);
    let _ = write!(
        json,
        "  \"obs\": {},\n  \"families\": [\n",
        obs_value.to_json()
    );
    for (i, report) in reports.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&family_json(report));
    }
    json.push_str("\n  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_batch.json");
    if let Some(path) = &stats_json {
        std::fs::write(path, obs_value.to_json_pretty()).expect("write --stats-json dump");
        eprintln!("wrote obs snapshot to {path}");
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
}
