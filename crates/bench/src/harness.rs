//! Shared driver that runs every preparation method on a workload.

use std::time::Duration;

use qsp_baselines::{CardinalityReduction, HybridPreparator, QubitReduction, StatePreparator};
use qsp_core::QspWorkflow;
use qsp_sim::verify_preparation;
use qsp_state::QuantumState;

/// The methods compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Cardinality reduction (ref. \[15\]).
    MFlow,
    /// Qubit reduction (ref. \[13\]).
    NFlow,
    /// Decision-diagram hybrid (ref. \[16\], re-implemented without ancilla).
    Hybrid,
    /// The paper's exact CNOT synthesis workflow ("ours").
    Ours,
}

impl Method {
    /// All methods in the column order used by the paper's tables.
    pub const ALL: [Method; 4] = [Method::MFlow, Method::NFlow, Method::Hybrid, Method::Ours];

    /// Column label.
    pub fn label(&self) -> &'static str {
        match self {
            Method::MFlow => "m-flow",
            Method::NFlow => "n-flow",
            Method::Hybrid => "hybrid",
            Method::Ours => "ours",
        }
    }
}

/// One measurement: a method applied to one target state.
#[derive(Debug, Clone)]
pub struct BenchmarkRow {
    /// The measured method.
    pub method: Method,
    /// CNOT cost of the synthesized circuit (`None` when the method could not
    /// handle the workload, reported as "—" in the tables).
    pub cnot_cost: Option<usize>,
    /// Synthesis wall-clock time.
    pub elapsed: Duration,
    /// Whether the circuit was verified against the target with the dense
    /// simulator (only attempted for registers the simulator can hold).
    pub verified: Option<bool>,
}

/// Runs one method on one target, optionally verifying the circuit.
///
/// Verification is skipped for registers wider than `verify_up_to` qubits
/// (the dense simulator needs `2^n` amplitudes); synthesis failures are
/// reported as `cnot_cost: None` rather than panicking so the harness can
/// keep filling the remaining table cells, as the paper does with its "TLE"
/// entries.
pub fn run_method<S: QuantumState>(
    method: Method,
    target: &S,
    verify_up_to: usize,
) -> BenchmarkRow {
    let preparator: Box<dyn StatePreparator> = match method {
        Method::MFlow => Box::new(CardinalityReduction::new()),
        Method::NFlow => Box::new(QubitReduction::new()),
        Method::Hybrid => Box::new(HybridPreparator::new()),
        Method::Ours => Box::new(QspWorkflow::new()),
    };
    let start = std::time::Instant::now();
    let sparse = match target.as_sparse() {
        Ok(sparse) => sparse,
        Err(_) => {
            return BenchmarkRow {
                method,
                cnot_cost: None,
                elapsed: start.elapsed(),
                verified: None,
            }
        }
    };
    match preparator.prepare_sparse(sparse.as_ref()) {
        Ok(circuit) => {
            let elapsed = start.elapsed();
            let verified = if target.num_qubits() <= verify_up_to {
                verify_preparation(&circuit, target)
                    .ok()
                    .map(|report| report.is_correct())
            } else {
                None
            };
            BenchmarkRow {
                method,
                cnot_cost: Some(circuit.cnot_cost()),
                elapsed,
                verified,
            }
        }
        Err(_) => BenchmarkRow {
            method,
            cnot_cost: None,
            elapsed: start.elapsed(),
            verified: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_state::generators;

    #[test]
    fn all_methods_handle_a_small_sparse_state() {
        let target = generators::w_state(4).unwrap();
        for method in Method::ALL {
            let row = run_method(method, &target, 10);
            assert!(row.cnot_cost.is_some(), "{} failed", method.label());
            assert_eq!(row.verified, Some(true), "{} not verified", method.label());
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Method::MFlow.label(), "m-flow");
        assert_eq!(Method::NFlow.label(), "n-flow");
        assert_eq!(Method::Hybrid.label(), "hybrid");
        assert_eq!(Method::Ours.label(), "ours");
    }

    #[test]
    fn verification_is_skipped_for_wide_registers() {
        let target = generators::ghz(5).unwrap();
        let row = run_method(Method::MFlow, &target, 3);
        assert!(row.cnot_cost.is_some());
        assert_eq!(row.verified, None);
    }
}
