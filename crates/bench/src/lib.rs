//! # qsp-bench
//!
//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation (Sec. VI):
//!
//! | Paper artifact | Binary | What it prints |
//! |----------------|--------|----------------|
//! | Table III      | `table3` | canonical 4-qubit uniform state counts |
//! | Table IV / Fig. 6 | `table4` | Dicke-state CNOT counts for every method |
//! | Table V        | `table5` | random dense / sparse CNOT counts |
//! | Fig. 7         | `fig7`   | CPU-time scaling of the flows |
//!
//! Criterion micro-benchmarks for the same workloads live in `benches/`.
//!
//! The binaries accept `--max-n <N>` and `--samples <S>` so the full paper
//! ranges (up to 20 qubits, 100 samples per point) can be requested
//! explicitly while the default settings finish in minutes on a laptop.

#![warn(missing_docs)]

pub mod harness;
pub mod report;

pub use harness::{run_method, BenchmarkRow, Method};
pub use report::{format_markdown_table, geometric_mean, parse_flag};
