//! Small reporting helpers shared by the table binaries.

/// Geometric mean of a sequence of positive numbers (0.0 for an empty input).
///
/// The paper reports geometric means at the bottom of Tables IV and V.
pub fn geometric_mean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for value in values {
        if value <= 0.0 {
            continue;
        }
        log_sum += value.ln();
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        (log_sum / count as f64).exp()
    }
}

/// Formats rows as a GitHub-flavoured markdown table.
pub fn format_markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Parses `--flag value` style integer options from the command line, falling
/// back to `default` when the flag is absent or malformed.
pub fn parse_flag(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Whether a bare switch (e.g. `--show-circuit`) is present.
pub fn has_switch(args: &[String], switch: &str) -> bool {
    args.iter().any(|a| a == switch)
}

/// Parses a `--flag value` style string option (e.g. a file path), `None`
/// when the flag is absent.
pub fn parse_path(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_matches_hand_computation() {
        let mean = geometric_mean([2.0, 8.0]);
        assert!((mean - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(std::iter::empty()), 0.0);
        // Zeros and negatives are skipped rather than poisoning the mean.
        assert!((geometric_mean([0.0, 4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn markdown_table_shape() {
        let table =
            format_markdown_table(&["n", "ours"], &[vec!["3".to_string(), "5".to_string()]]);
        assert!(table.contains("| n | ours |"));
        assert!(table.contains("| 3 | 5 |"));
        assert_eq!(table.lines().count(), 3);
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--max-n", "12", "--show-circuit"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_flag(&args, "--max-n", 8), 12);
        assert_eq!(parse_flag(&args, "--samples", 5), 5);
        assert!(has_switch(&args, "--show-circuit"));
        assert!(!has_switch(&args, "--verbose"));
    }
}
