//! In-place dense state-vector simulation of `{Ry, X, CNOT, MCRy}` circuits.

use qsp_circuit::{Circuit, Control, Gate};
use qsp_state::{DenseState, QuantumState};

use crate::error::SimulatorError;

/// A dense state-vector simulator for real-amplitude circuits.
///
/// The simulator owns no state; each [`StateVectorSimulator::run`] call
/// allocates a fresh `2^n` vector, applies the circuit gate by gate and
/// returns the final state. Gate application is in place and costs
/// `O(2^n)` per gate.
///
/// # Example
///
/// ```
/// use qsp_circuit::{Circuit, Gate};
/// use qsp_sim::StateVectorSimulator;
///
/// # fn main() -> Result<(), qsp_sim::SimulatorError> {
/// let mut ghz = Circuit::new(3);
/// ghz.push(Gate::ry(0, -std::f64::consts::FRAC_PI_2));
/// ghz.push(Gate::cnot(0, 1));
/// ghz.push(Gate::cnot(1, 2));
/// let state = StateVectorSimulator::new().run(&ghz)?;
/// assert_eq!(state.cardinality(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct StateVectorSimulator {
    _private: (),
}

impl StateVectorSimulator {
    /// Creates a simulator.
    pub fn new() -> Self {
        StateVectorSimulator { _private: () }
    }

    /// Runs `circuit` on the ground state `|0…0⟩` and returns the final
    /// dense state.
    ///
    /// # Errors
    ///
    /// Returns an error if the register is too wide for dense simulation or a
    /// gate refers to a qubit outside the register.
    pub fn run(&self, circuit: &Circuit) -> Result<DenseState, SimulatorError> {
        let initial = DenseState::ground_state(circuit.num_qubits()).map_err(|_| {
            SimulatorError::RegisterTooWide {
                requested: circuit.num_qubits(),
                max: DenseState::MAX_QUBITS,
            }
        })?;
        self.run_from(initial, circuit)
    }

    /// Runs `circuit` on an arbitrary initial dense state.
    ///
    /// # Errors
    ///
    /// Returns an error if a gate refers to a qubit outside the register.
    pub fn run_from(
        &self,
        mut state: DenseState,
        circuit: &Circuit,
    ) -> Result<DenseState, SimulatorError> {
        for gate in circuit {
            self.apply_gate(&mut state, gate)?;
        }
        Ok(state)
    }

    /// Runs `circuit` on the ground state of a template state's register
    /// (any backend) after comparing widths; convenience for verification
    /// flows.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StateVectorSimulator::run`].
    pub fn run_on_register_of<S: QuantumState>(
        &self,
        template: &S,
        circuit: &Circuit,
    ) -> Result<DenseState, SimulatorError> {
        if circuit.num_qubits() != template.num_qubits() {
            return Err(SimulatorError::QubitOutOfRange {
                qubit: circuit.num_qubits().max(template.num_qubits()) - 1,
                num_qubits: circuit.num_qubits().min(template.num_qubits()),
            });
        }
        self.run(circuit)
    }

    /// Applies one gate to a dense state in place.
    ///
    /// # Errors
    ///
    /// Returns an error if the gate touches a qubit outside the register.
    pub fn apply_gate(&self, state: &mut DenseState, gate: &Gate) -> Result<(), SimulatorError> {
        let n = state.num_qubits();
        for qubit in gate.qubits() {
            if qubit >= n {
                return Err(SimulatorError::QubitOutOfRange {
                    qubit,
                    num_qubits: n,
                });
            }
        }
        match gate {
            Gate::Ry { target, theta } => {
                apply_controlled_ry(state, &[], *target, *theta);
            }
            Gate::X { target } => apply_x(state, *target),
            Gate::Cnot { control, target } => apply_cnot(state, *control, *target),
            Gate::Mcry {
                controls,
                target,
                theta,
            } => apply_controlled_ry(state, controls, *target, *theta),
        }
        Ok(())
    }
}

/// Whether basis index `index` satisfies every control.
#[inline]
fn controls_satisfied(index: usize, controls: &[Control]) -> bool {
    controls
        .iter()
        .all(|c| ((index >> c.qubit) & 1 == 1) == c.polarity)
}

fn apply_x(state: &mut DenseState, target: usize) {
    let bit = 1usize << target;
    let amplitudes = state.as_mut_slice();
    for index in 0..amplitudes.len() {
        if index & bit == 0 {
            amplitudes.swap(index, index | bit);
        }
    }
}

fn apply_cnot(state: &mut DenseState, control: Control, target: usize) {
    let bit = 1usize << target;
    let amplitudes = state.as_mut_slice();
    for index in 0..amplitudes.len() {
        if index & bit == 0 && controls_satisfied(index, &[control]) {
            amplitudes.swap(index, index | bit);
        }
    }
}

/// Applies `Ry(θ)` (Eq. 1 of the paper) to `target` on the subspace where all
/// controls are satisfied.
fn apply_controlled_ry(state: &mut DenseState, controls: &[Control], target: usize, theta: f64) {
    let cos = (theta / 2.0).cos();
    let sin = (theta / 2.0).sin();
    let bit = 1usize << target;
    let amplitudes = state.as_mut_slice();
    for index in 0..amplitudes.len() {
        if index & bit != 0 {
            continue;
        }
        // Controls must be evaluated on the pattern excluding the target bit
        // (identical for both paired indices since no control is the target).
        if !controls_satisfied(index, controls) {
            continue;
        }
        let zero_amp = amplitudes[index];
        let one_amp = amplitudes[index | bit];
        amplitudes[index] = cos * zero_amp + sin * one_amp;
        amplitudes[index | bit] = -sin * zero_amp + cos * one_amp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_circuit::apply::prepare_from_ground;
    use qsp_state::{BasisIndex, SparseState};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn simulator() -> StateVectorSimulator {
        StateVectorSimulator::new()
    }

    #[test]
    fn ground_state_run_of_empty_circuit() {
        let state = simulator().run(&Circuit::new(3)).unwrap();
        assert!((state.amplitude(BasisIndex::ZERO) - 1.0).abs() < 1e-12);
        assert_eq!(state.cardinality(), 1);
    }

    #[test]
    fn x_and_cnot_permute_basis_states() {
        let mut circuit = Circuit::new(3);
        circuit.push(Gate::x(0));
        circuit.push(Gate::cnot(0, 2));
        let state = simulator().run(&circuit).unwrap();
        assert!((state.amplitude(BasisIndex::new(0b101)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ry_produces_expected_superposition() {
        let mut circuit = Circuit::new(1);
        circuit.push(Gate::ry(0, -std::f64::consts::FRAC_PI_2));
        let state = simulator().run(&circuit).unwrap();
        assert!(
            (state.amplitude(BasisIndex::new(0)) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12
        );
        assert!(
            (state.amplitude(BasisIndex::new(1)) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12
        );
    }

    #[test]
    fn dense_and_sparse_gate_semantics_agree_on_random_circuits() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.gen_range(2..5usize);
            let mut circuit = Circuit::new(n);
            for _ in 0..12 {
                let target = rng.gen_range(0..n);
                match rng.gen_range(0..4) {
                    0 => circuit.push(Gate::ry(target, rng.gen_range(-3.0..3.0))),
                    1 => circuit.push(Gate::x(target)),
                    2 => {
                        let control = (target + rng.gen_range(1..n)) % n;
                        circuit.push(Gate::cnot(control, target));
                    }
                    _ => {
                        let control = (target + rng.gen_range(1..n)) % n;
                        circuit.push(Gate::cry(control, target, rng.gen_range(-3.0..3.0)));
                    }
                }
            }
            let dense = simulator().run(&circuit).unwrap();
            let sparse = prepare_from_ground(&circuit).unwrap();
            let dense_as_sparse = dense.to_sparse(1e-12).unwrap();
            assert!(
                dense_as_sparse.approx_eq(&sparse, 1e-9),
                "dense and sparse semantics disagree:\n dense {dense_as_sparse}\n sparse {sparse}"
            );
        }
    }

    #[test]
    fn negative_controls_in_dense_simulation() {
        let mut circuit = Circuit::new(2);
        circuit.push(Gate::cnot_negated(0, 1));
        let state = simulator().run(&circuit).unwrap();
        assert!((state.amplitude(BasisIndex::new(0b10)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mcry_rotation_only_in_control_subspace() {
        let mut circuit = Circuit::new(3);
        circuit.push(Gate::x(0));
        circuit.push(Gate::x(1));
        circuit.push(Gate::mcry(&[0, 1], 2, std::f64::consts::PI));
        let state = simulator().run(&circuit).unwrap();
        // |110⟩ rotated to |111⟩ (up to sign convention the |1⟩ branch gains -sin).
        assert!(state.amplitude(BasisIndex::new(0b111)).abs() > 0.999);
    }

    #[test]
    fn run_from_a_prepared_state() {
        let mut first = Circuit::new(2);
        first.push(Gate::x(0));
        let intermediate = simulator().run(&first).unwrap();
        let mut second = Circuit::new(2);
        second.push(Gate::cnot(0, 1));
        let final_state = simulator().run_from(intermediate, &second).unwrap();
        assert!((final_state.amplitude(BasisIndex::new(0b11)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn register_width_errors() {
        let circuit = Circuit::new(DenseState::MAX_QUBITS + 1);
        assert!(matches!(
            simulator().run(&circuit),
            Err(SimulatorError::RegisterTooWide { .. })
        ));
        let template = SparseState::ground_state(3).unwrap();
        let mismatched = Circuit::new(2);
        assert!(simulator()
            .run_on_register_of(&template, &mismatched)
            .is_err());
        let matched = Circuit::new(3);
        assert!(simulator().run_on_register_of(&template, &matched).is_ok());
    }
}
