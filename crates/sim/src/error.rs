//! Error type of the simulator.

use std::error::Error;
use std::fmt;

use qsp_state::StateError;

/// Errors produced by the state-vector simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimulatorError {
    /// The register is too wide for a dense simulation.
    RegisterTooWide {
        /// Requested width.
        requested: usize,
        /// Maximum supported width.
        max: usize,
    },
    /// A gate refers to a qubit outside the simulated register.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: usize,
        /// Width of the simulated register.
        num_qubits: usize,
    },
    /// An underlying state operation failed.
    State(StateError),
}

impl fmt::Display for SimulatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulatorError::RegisterTooWide { requested, max } => write!(
                f,
                "cannot simulate {requested} qubits densely (maximum is {max})"
            ),
            SimulatorError::QubitOutOfRange { qubit, num_qubits } => write!(
                f,
                "qubit {qubit} is out of range for a {num_qubits}-qubit simulation"
            ),
            SimulatorError::State(e) => write!(f, "state error during simulation: {e}"),
        }
    }
}

impl Error for SimulatorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimulatorError::State(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StateError> for SimulatorError {
    fn from(value: StateError) -> Self {
        SimulatorError::State(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimulatorError::RegisterTooWide {
            requested: 40,
            max: 26,
        };
        assert!(e.to_string().contains("40"));
        assert!(e.source().is_none());
        let wrapped = SimulatorError::from(StateError::EmptyState);
        assert!(wrapped.source().is_some());
        assert!(wrapped.to_string().contains("state error"));
    }
}
