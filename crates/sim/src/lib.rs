//! # qsp-sim
//!
//! Dense state-vector simulation for verifying quantum state preparation
//! circuits.
//!
//! The paper verifies every synthesized circuit with Qiskit simulators
//! (Sec. VI-A); this crate plays that role for the Rust reproduction. It
//! applies circuits from [`qsp-circuit`] to a full `2^n` real state vector
//! in place and reports the fidelity against the requested target state.
//!
//! The simulator is intentionally simple (real amplitudes, no noise): its job
//! is correctness checking of preparation circuits, not performance
//! benchmarking — benchmark timings measure the synthesis algorithms, never
//! the simulator.
//!
//! # Example
//!
//! ```
//! use qsp_circuit::{Circuit, Gate};
//! use qsp_sim::StateVectorSimulator;
//!
//! # fn main() -> Result<(), qsp_sim::SimulatorError> {
//! let mut circuit = Circuit::new(2);
//! circuit.push(Gate::ry(0, -std::f64::consts::FRAC_PI_2));
//! circuit.push(Gate::cnot(0, 1));
//! let simulator = StateVectorSimulator::new();
//! let state = simulator.run(&circuit)?;
//! assert!((state.amplitude(qsp_state::BasisIndex::new(0b11)) - 0.5f64.sqrt()).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```
//!
//! [`qsp-circuit`]: qsp_circuit

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod simulator;
pub mod verify;

pub use error::SimulatorError;
pub use simulator::StateVectorSimulator;
pub use verify::{verify_preparation, VerificationReport};
