//! Verification of preparation circuits against target states (any
//! [`QuantumState`] backend).
//!
//! This is the Rust stand-in for the Qiskit-based verification step of the
//! paper's workflow (Fig. 5, "verify the correctness of the circuits
//! returned by the QSP solver").

use qsp_circuit::Circuit;
use qsp_state::QuantumState;

use crate::error::SimulatorError;
use crate::simulator::StateVectorSimulator;

/// Default fidelity threshold above which a preparation is accepted.
pub const DEFAULT_FIDELITY_THRESHOLD: f64 = 1.0 - 1e-6;

/// The result of verifying one preparation circuit against its target state.
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationReport {
    /// Fidelity `|⟨target|prepared⟩|²`.
    pub fidelity: f64,
    /// CNOT cost of the verified circuit under the paper's cost model.
    pub cnot_cost: usize,
    /// Number of gates in the verified circuit.
    pub gate_count: usize,
    /// Whether the fidelity reached the acceptance threshold.
    pub accepted: bool,
}

impl VerificationReport {
    /// Whether the circuit prepares the target (alias of `accepted`).
    pub fn is_correct(&self) -> bool {
        self.accepted
    }
}

/// Simulates `circuit` from `|0…0⟩` and compares the result against `target`.
///
/// The comparison is the fidelity `|⟨target|prepared⟩|²`, which is invariant
/// under the global sign ambiguity of real-amplitude circuits.
///
/// # Errors
///
/// Returns an error if the circuit register does not match the target
/// register or the dense simulation fails.
///
/// # Example
///
/// ```
/// use qsp_circuit::{Circuit, Gate};
/// use qsp_sim::verify_preparation;
/// use qsp_state::{BasisIndex, SparseState};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = SparseState::uniform_superposition(
///     2,
///     [BasisIndex::new(0b00), BasisIndex::new(0b11)],
/// )?;
/// let mut circuit = Circuit::new(2);
/// circuit.push(Gate::ry(0, -std::f64::consts::FRAC_PI_2));
/// circuit.push(Gate::cnot(0, 1));
/// let report = verify_preparation(&circuit, &target)?;
/// assert!(report.is_correct());
/// # Ok(())
/// # }
/// ```
pub fn verify_preparation<S: QuantumState>(
    circuit: &Circuit,
    target: &S,
) -> Result<VerificationReport, SimulatorError> {
    verify_preparation_with_threshold(circuit, target, DEFAULT_FIDELITY_THRESHOLD)
}

/// Like [`verify_preparation`] with an explicit acceptance threshold.
///
/// # Errors
///
/// Same conditions as [`verify_preparation`].
pub fn verify_preparation_with_threshold<S: QuantumState>(
    circuit: &Circuit,
    target: &S,
    threshold: f64,
) -> Result<VerificationReport, SimulatorError> {
    if circuit.num_qubits() != target.num_qubits() {
        return Err(SimulatorError::QubitOutOfRange {
            qubit: circuit.num_qubits().max(target.num_qubits()) - 1,
            num_qubits: circuit.num_qubits().min(target.num_qubits()),
        });
    }
    let prepared = StateVectorSimulator::new().run(circuit)?;
    let target_dense = target
        .as_dense()
        .map_err(|_| SimulatorError::RegisterTooWide {
            requested: target.num_qubits(),
            max: qsp_state::DenseState::MAX_QUBITS,
        })?;
    let fidelity = prepared.fidelity(target_dense.as_ref());
    Ok(VerificationReport {
        fidelity,
        cnot_cost: circuit.cnot_cost(),
        gate_count: circuit.len(),
        accepted: fidelity >= threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_circuit::Gate;
    use qsp_state::{BasisIndex, SparseState};

    fn bell_target() -> SparseState {
        SparseState::uniform_superposition(2, [BasisIndex::new(0), BasisIndex::new(3)]).unwrap()
    }

    #[test]
    fn correct_circuit_is_accepted() {
        let mut circuit = Circuit::new(2);
        circuit.push(Gate::ry(0, -std::f64::consts::FRAC_PI_2));
        circuit.push(Gate::cnot(0, 1));
        let report = verify_preparation(&circuit, &bell_target()).unwrap();
        assert!(report.is_correct());
        assert!((report.fidelity - 1.0).abs() < 1e-9);
        assert_eq!(report.cnot_cost, 1);
        assert_eq!(report.gate_count, 2);
    }

    #[test]
    fn wrong_circuit_is_rejected() {
        let mut circuit = Circuit::new(2);
        circuit.push(Gate::x(0));
        let report = verify_preparation(&circuit, &bell_target()).unwrap();
        assert!(!report.is_correct());
        assert!(report.fidelity < 0.6);
    }

    #[test]
    fn global_sign_does_not_affect_acceptance() {
        // The circuit prepares (|00⟩+|11⟩)/√2; the target carries a global
        // minus sign. Fidelity |⟨target|prepared⟩|² is sign-invariant.
        let negated_target =
            SparseState::from_amplitudes(2, bell_target().iter().map(|(i, a)| (i, -a))).unwrap();
        let mut circuit = Circuit::new(2);
        circuit.push(Gate::ry(0, -std::f64::consts::FRAC_PI_2));
        circuit.push(Gate::cnot(0, 1));
        let report = verify_preparation(&circuit, &negated_target).unwrap();
        assert!(report.is_correct(), "fidelity {}", report.fidelity);
    }

    #[test]
    fn register_mismatch_is_an_error() {
        let circuit = Circuit::new(3);
        assert!(verify_preparation(&circuit, &bell_target()).is_err());
    }

    #[test]
    fn threshold_is_configurable() {
        let circuit = Circuit::new(2); // prepares |00⟩, fidelity 0.5 against Bell
        let strict = verify_preparation(&circuit, &bell_target()).unwrap();
        assert!(!strict.accepted);
        let lax = verify_preparation_with_threshold(&circuit, &bell_target(), 0.4).unwrap();
        assert!(lax.accepted);
    }
}
