//! # qsp-baselines
//!
//! Re-implementations of the baseline quantum state preparation algorithms
//! the paper compares against (Sec. VI):
//!
//! * [`nflow`] — *qubit reduction* (Mozafari, Soeken, De Micheli, IWLS 2019,
//!   ref. \[13\]): prepare qubit by qubit with uniformly controlled Y
//!   rotations; CNOT count `2^n − 2` regardless of sparsity.
//! * [`mflow`] — *cardinality reduction* (Gleinig & Hoefler, DAC 2021,
//!   ref. \[15\]): iteratively merge two basis states until only `|0…0⟩`
//!   remains; CNOT count `O(nm)`, excellent for sparse states.
//! * [`hybrid`] — a decision-diagram, path-wise preparation in the spirit of
//!   Mozafari et al., PRA 2022 (ref. \[16\]). See the module docs for the
//!   substitutions made relative to the original (no ancilla qubit).
//! * [`dicke`] — the manual Dicke-state designs (Mukherjee et al., ref. \[7\])
//!   used as the hand-crafted reference in Table IV.
//!
//! All algorithms produce [`qsp_circuit::Circuit`]s whose correctness can be
//! checked with `qsp-sim`, and are scored with the same CNOT cost model as
//! the exact synthesis, so the comparison tables of the paper can be
//! regenerated end to end.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dicke;
pub mod error;
pub mod hybrid;
pub mod mflow;
pub mod nflow;
pub mod preparator;

pub use error::BaselineError;
pub use hybrid::HybridPreparator;
pub use mflow::CardinalityReduction;
pub use nflow::QubitReduction;
pub use preparator::{PreparationOutcome, StatePreparator};
