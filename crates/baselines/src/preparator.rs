//! The common interface implemented by every preparation algorithm.
//!
//! [`StatePreparator`] is generic over the [`QuantumState`] backend trait:
//! algorithms implement [`StatePreparator::prepare_sparse`] against the
//! sparse representation they all operate on internally, and callers hand in
//! *any* backend (sparse, dense, adaptive) through the blanket
//! [`StatePreparator::prepare`] front door, which converts zero-copy when the
//! target is already sparse.

use std::time::Duration;

use qsp_circuit::Circuit;
use qsp_state::{QuantumState, SparseState};

use crate::error::BaselineError;

/// The result of running one preparation algorithm on one target state.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparationOutcome {
    /// The synthesized circuit (maps `|0…0⟩` to the target).
    pub circuit: Circuit,
    /// CNOT cost of the circuit under the paper's cost model.
    pub cnot_cost: usize,
    /// Wall-clock time spent by the synthesis algorithm.
    pub elapsed: Duration,
}

impl PreparationOutcome {
    /// Bundles a circuit with its cost and the measured synthesis time.
    pub fn new(circuit: Circuit, elapsed: Duration) -> Self {
        let cnot_cost = circuit.cnot_cost();
        PreparationOutcome {
            circuit,
            cnot_cost,
            elapsed,
        }
    }
}

/// A quantum state preparation algorithm.
///
/// Implemented by the three baselines of this crate and by the exact CNOT
/// synthesis workflow in `qsp-core`, so the benchmark harness can drive all
/// of them uniformly.
pub trait StatePreparator {
    /// A short name used in benchmark tables (e.g. `"m-flow"`).
    fn name(&self) -> &str;

    /// Synthesizes a circuit preparing the sparse `target` from the ground
    /// state. This is the method algorithms implement; most callers go
    /// through the backend-generic [`StatePreparator::prepare`] instead.
    ///
    /// # Errors
    ///
    /// Returns an error when the algorithm cannot handle the target state
    /// (unsupported amplitudes, register too wide, internal failure).
    fn prepare_sparse(&self, target: &SparseState) -> Result<Circuit, BaselineError>;

    /// Synthesizes a circuit preparing `target` — any [`QuantumState`]
    /// backend — from the ground state. Sparse targets are borrowed without
    /// copying; other backends are converted once.
    ///
    /// # Errors
    ///
    /// Propagates conversion failures and the errors of
    /// [`StatePreparator::prepare_sparse`].
    fn prepare<S: QuantumState>(&self, target: &S) -> Result<Circuit, BaselineError>
    where
        Self: Sized,
    {
        let sparse = target.as_sparse()?;
        self.prepare_sparse(sparse.as_ref())
    }

    /// Runs [`StatePreparator::prepare`] and measures elapsed wall-clock time.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`StatePreparator::prepare`].
    fn prepare_timed<S: QuantumState>(
        &self,
        target: &S,
    ) -> Result<PreparationOutcome, BaselineError>
    where
        Self: Sized,
    {
        let start = std::time::Instant::now();
        let circuit = self.prepare(target)?;
        Ok(PreparationOutcome::new(circuit, start.elapsed()))
    }

    /// Prepares every target one after another, returning per-target results
    /// in submission order. This is the sequential reference the batch
    /// engine (and the batch benchmark) compares against; engines with a
    /// real batch fast path override it.
    fn prepare_many(&self, targets: &[SparseState]) -> Vec<Result<Circuit, BaselineError>> {
        targets.iter().map(|t| self.prepare_sparse(t)).collect()
    }
}

/// Rejects states with negative amplitudes, which the flows derived from
/// uniform-state algorithms do not handle (the paper evaluates uniform
/// states only; see Sec. VI-A).
pub(crate) fn require_nonnegative_amplitudes(
    target: &SparseState,
    algorithm: &str,
) -> Result<(), BaselineError> {
    if target.iter().any(|(_, a)| a < 0.0) {
        Err(BaselineError::UnsupportedState {
            reason: format!("{algorithm} only supports states with non-negative real amplitudes"),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_state::BasisIndex;

    struct Identity;

    impl StatePreparator for Identity {
        fn name(&self) -> &str {
            "identity"
        }
        fn prepare_sparse(&self, target: &SparseState) -> Result<Circuit, BaselineError> {
            Ok(Circuit::new(target.num_qubits()))
        }
    }

    #[test]
    fn prepare_timed_reports_cost_and_duration() {
        let target = SparseState::ground_state(2).unwrap();
        let outcome = Identity.prepare_timed(&target).unwrap();
        assert_eq!(outcome.cnot_cost, 0);
        assert!(outcome.circuit.is_empty());
        assert_eq!(Identity.name(), "identity");
    }

    #[test]
    fn prepare_many_preserves_submission_order() {
        let targets = vec![
            SparseState::ground_state(1).unwrap(),
            SparseState::ground_state(2).unwrap(),
            SparseState::ground_state(3).unwrap(),
        ];
        let results = Identity.prepare_many(&targets);
        assert_eq!(results.len(), 3);
        for (target, result) in targets.iter().zip(&results) {
            assert_eq!(result.as_ref().unwrap().num_qubits(), target.num_qubits());
        }
    }

    #[test]
    fn nonnegative_check() {
        let positive = SparseState::ground_state(1).unwrap();
        assert!(require_nonnegative_amplitudes(&positive, "test").is_ok());
        let negative = SparseState::from_amplitudes(
            1,
            [(BasisIndex::new(0), -0.6), (BasisIndex::new(1), 0.8)],
        )
        .unwrap();
        let err = require_nonnegative_amplitudes(&negative, "test").unwrap_err();
        assert!(err.to_string().contains("non-negative"));
    }
}
