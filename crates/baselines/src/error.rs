//! Error type shared by the baseline preparation algorithms.

use std::error::Error;
use std::fmt;

use qsp_circuit::CircuitError;
use qsp_state::StateError;

/// Errors produced by the baseline state preparation algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// The target state is not supported by this algorithm (e.g. negative
    /// amplitudes for a flow that only handles non-negative ones).
    UnsupportedState {
        /// Human readable description of the restriction.
        reason: String,
    },
    /// The register is too wide for this algorithm's complexity.
    RegisterTooWide {
        /// Requested width.
        requested: usize,
        /// Maximum supported width.
        max: usize,
    },
    /// An underlying state operation failed.
    State(StateError),
    /// An underlying circuit operation failed.
    Circuit(CircuitError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::UnsupportedState { reason } => {
                write!(f, "target state not supported: {reason}")
            }
            BaselineError::RegisterTooWide { requested, max } => {
                write!(
                    f,
                    "register of {requested} qubits exceeds the supported maximum {max}"
                )
            }
            BaselineError::State(e) => write!(f, "state error: {e}"),
            BaselineError::Circuit(e) => write!(f, "circuit error: {e}"),
        }
    }
}

impl Error for BaselineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BaselineError::State(e) => Some(e),
            BaselineError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StateError> for BaselineError {
    fn from(value: StateError) -> Self {
        BaselineError::State(value)
    }
}

impl From<CircuitError> for BaselineError {
    fn from(value: CircuitError) -> Self {
        BaselineError::Circuit(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: BaselineError = StateError::EmptyState.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("state error"));
        let e: BaselineError = CircuitError::OverlappingQubits { qubit: 1 }.into();
        assert!(e.to_string().contains("circuit error"));
        let e = BaselineError::UnsupportedState {
            reason: "negative amplitudes".to_string(),
        };
        assert!(e.to_string().contains("negative amplitudes"));
        assert!(e.source().is_none());
    }
}
