//! Qubit reduction ("n-flow") baseline.
//!
//! Re-implementation of the qubit-by-qubit preparation of Mozafari, Soeken
//! and De Micheli (IWLS 2019, ref. \[13\] of the paper). Each qubit `t` is
//! brought to its correct conditional amplitude distribution with a
//! *uniformly controlled* Y rotation selected by the already-prepared qubits
//! `0..t`. Each such multiplexor costs `2^t` CNOTs after lowering, for a
//! total of `2^n − 2` — the exact column reported for the n-flow in Table V
//! of the paper, independent of the state's sparsity.
//!
//! The algorithm handles any state with non-negative real amplitudes; the
//! paper's benchmarks are uniform states, a special case.

use qsp_circuit::decompose::multiplexed_ry;
use qsp_circuit::Circuit;
use qsp_state::SparseState;

use crate::error::BaselineError;
use crate::preparator::{require_nonnegative_amplitudes, StatePreparator};

/// Maximum register width accepted by the qubit reduction flow: the final
/// multiplexor alone needs `2^(n-1)` gates, so this bound keeps memory and
/// runtime sane (the paper also stops at 20 qubits).
pub const MAX_QUBITS: usize = 24;

/// The qubit reduction ("n-flow") preparation algorithm.
///
/// # Example
///
/// ```
/// use qsp_baselines::{QubitReduction, StatePreparator};
/// use qsp_state::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = generators::ghz(4)?;
/// let circuit = QubitReduction::new().prepare(&target)?;
/// // The n-flow always spends 2^n − 2 CNOTs.
/// assert_eq!(circuit.cnot_cost(), 14);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct QubitReduction {
    _private: (),
}

impl QubitReduction {
    /// Creates a qubit reduction preparator.
    pub fn new() -> Self {
        QubitReduction { _private: () }
    }

    /// Conditional rotation angles for qubit `t` given every prefix pattern
    /// of qubits `0..t`.
    fn angles_for_qubit(target: &SparseState, t: usize) -> Vec<f64> {
        let prefix_count = 1usize << t;
        // prob[prefix][bit of qubit t]
        let mut prob = vec![[0.0f64; 2]; prefix_count];
        let prefix_mask = (1u64 << t) - 1;
        for (index, amplitude) in target.iter() {
            let prefix = (index.value() & prefix_mask) as usize;
            let bit = index.bit(t) as usize;
            prob[prefix][bit] += amplitude * amplitude;
        }
        prob.iter()
            .map(|p| {
                if p[0] + p[1] <= f64::EPSILON {
                    0.0
                } else {
                    // Ry(θ)|0⟩ = cos(θ/2)|0⟩ − sin(θ/2)|1⟩, so a negative angle
                    // produces non-negative amplitudes on both branches.
                    -2.0 * p[1].sqrt().atan2(p[0].sqrt())
                }
            })
            .collect()
    }
}

impl QubitReduction {
    /// Disentangles the top qubits `keep..n` of `target` with uniformly
    /// controlled rotations (reduction direction), leaving a state supported
    /// on qubits `0..keep` only. Returns the *reduction* circuit — mapping the
    /// target towards that residual state — and the residual state itself.
    ///
    /// This is the dense branch of the paper's workflow (Fig. 5): qubit
    /// reduction shrinks the problem until exact synthesis can take over on
    /// the remaining `keep` qubits. The reduction of qubit `t` costs `2^t`
    /// CNOTs, so stopping at `keep` saves `2^keep − 2` CNOTs compared to the
    /// full n-flow, minus whatever the exact solver spends on the residual.
    ///
    /// # Errors
    ///
    /// Returns an error for negative amplitudes or registers wider than
    /// [`MAX_QUBITS`].
    pub fn disentangle_top(
        &self,
        target: &SparseState,
        keep: usize,
    ) -> Result<(Circuit, SparseState), BaselineError> {
        require_nonnegative_amplitudes(target, "qubit reduction")?;
        let n = target.num_qubits();
        if n > MAX_QUBITS {
            return Err(BaselineError::RegisterTooWide {
                requested: n,
                max: MAX_QUBITS,
            });
        }
        let keep = keep.max(1);
        let mut reduction = Circuit::new(n);
        let mut current = target.clone();
        for t in (keep..n).rev() {
            // Angles that merge the |1⟩ branch of qubit t into the |0⟩ branch,
            // conditioned on the (still entangled) qubits 0..t.
            let prefix_count = 1usize << t;
            let prefix_mask = (1u64 << t) - 1;
            let mut prob = vec![[0.0f64; 2]; prefix_count];
            for (index, amplitude) in current.iter() {
                let prefix = (index.value() & prefix_mask) as usize;
                prob[prefix][index.bit(t) as usize] += amplitude * amplitude;
            }
            let angles: Vec<f64> = prob
                .iter()
                .map(|p| {
                    if p[1] <= f64::EPSILON {
                        0.0
                    } else {
                        2.0 * p[1].sqrt().atan2(p[0].sqrt())
                    }
                })
                .collect();
            let controls: Vec<usize> = (0..t).collect();
            for gate in multiplexed_ry(&controls, t, &angles)? {
                current = qsp_circuit::apply_gate(&current, &gate)?;
                reduction.try_push(gate)?;
            }
        }
        Ok((reduction, current))
    }
}

impl StatePreparator for QubitReduction {
    fn name(&self) -> &str {
        "n-flow"
    }

    fn prepare_sparse(&self, target: &SparseState) -> Result<Circuit, BaselineError> {
        require_nonnegative_amplitudes(target, "qubit reduction")?;
        let n = target.num_qubits();
        if n > MAX_QUBITS {
            return Err(BaselineError::RegisterTooWide {
                requested: n,
                max: MAX_QUBITS,
            });
        }
        let mut circuit = Circuit::new(n);
        for t in 0..n {
            let angles = Self::angles_for_qubit(target, t);
            let controls: Vec<usize> = (0..t).collect();
            for gate in multiplexed_ry(&controls, t, &angles)? {
                circuit.try_push(gate)?;
            }
        }
        Ok(circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_circuit::apply::prepare_from_ground;
    use qsp_state::{generators, BasisIndex};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn verify(target: &SparseState) -> Circuit {
        let circuit = QubitReduction::new().prepare(target).unwrap();
        let prepared = prepare_from_ground(&circuit).unwrap();
        assert!(
            prepared.approx_eq(target, 1e-9),
            "n-flow prepared {prepared} instead of {target}"
        );
        circuit
    }

    #[test]
    fn prepares_ghz_w_and_dicke_states() {
        verify(&generators::ghz(3).unwrap());
        verify(&generators::w_state(4).unwrap());
        verify(&generators::dicke(4, 2).unwrap());
    }

    #[test]
    fn cost_is_2_pow_n_minus_2() {
        for n in 2..7 {
            let target = generators::ghz(n).unwrap();
            let circuit = QubitReduction::new().prepare(&target).unwrap();
            assert_eq!(circuit.cnot_cost(), (1 << n) - 2, "n = {n}");
        }
    }

    #[test]
    fn prepares_random_dense_and_sparse_states() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in 3..7 {
            verify(&generators::random_dense_state(n, &mut rng).unwrap());
            verify(&generators::random_sparse_state(n, &mut rng).unwrap());
        }
    }

    #[test]
    fn prepares_non_uniform_amplitudes() {
        let target = SparseState::from_amplitudes(
            3,
            [
                (BasisIndex::new(0b000), 0.5),
                (BasisIndex::new(0b011), 0.5),
                (BasisIndex::new(0b101), (0.5f64).sqrt()),
            ],
        )
        .unwrap();
        verify(&target);
    }

    #[test]
    fn rejects_negative_amplitudes_and_wide_registers() {
        let negative = SparseState::from_amplitudes(
            1,
            [(BasisIndex::new(0), 0.6), (BasisIndex::new(1), -0.8)],
        )
        .unwrap();
        assert!(QubitReduction::new().prepare(&negative).is_err());
        assert_eq!(QubitReduction::new().name(), "n-flow");
    }

    #[test]
    fn ground_state_needs_no_cnots() {
        let target = SparseState::ground_state(4).unwrap();
        let circuit = QubitReduction::new().prepare(&target).unwrap();
        let prepared = prepare_from_ground(&circuit).unwrap();
        assert!(prepared.is_ground_state(1e-9));
        // The gates are emitted but all angles are zero; cost is still 2^n − 2
        // because the oblivious flow does not prune.
        assert_eq!(circuit.cnot_cost(), 14);
    }
}
