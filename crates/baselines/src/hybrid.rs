//! Decision-diagram, path-wise preparation ("hybrid") baseline.
//!
//! Stand-in for the hybrid method of Mozafari et al., PRA 2022 (ref. \[16\]
//! of the paper), which combines qubit- and cardinality-reduction on a
//! decision diagram and uses one ancilla qubit.
//!
//! ## Substitution notes (see DESIGN.md)
//!
//! The original implementation relies on the CUDD decision-diagram package
//! and an ancilla qubit to linearize the cost of its controlled rotations.
//! This re-implementation walks the same kind of ordered decision tree over
//! the target's support, emitting one multi-controlled Y rotation per branch
//! node, but without an ancilla: the controls of each rotation are a greedy
//! minimal set of path qubits distinguishing the node from every other
//! active path. The resulting CNOT counts reproduce the *qualitative*
//! behaviour of Table IV/V — clearly worse than the better specialized flow
//! on both dense and sparse benchmarks — without claiming to match the
//! original gate-for-gate.

use qsp_circuit::{Circuit, Control, Gate};
use qsp_state::{BasisIndex, SparseState};

use crate::error::BaselineError;
use crate::preparator::{require_nonnegative_amplitudes, StatePreparator};

/// Upper bound on the number of decision-tree nodes the hybrid flow will
/// expand; beyond this the preparation is rejected (the original would need
/// its ancilla-based machinery to stay practical).
pub const MAX_TREE_NODES: usize = 1 << 12;

/// The decision-diagram path-wise preparation algorithm.
///
/// # Example
///
/// ```
/// use qsp_baselines::{HybridPreparator, StatePreparator};
/// use qsp_state::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = generators::ghz(3)?;
/// let circuit = HybridPreparator::new().prepare(&target)?;
/// assert!(circuit.cnot_cost() >= 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct HybridPreparator {
    _private: (),
}

/// A node of the ordered decision tree: a partial assignment ("path") to the
/// first `depth` qubits that is consistent with at least one support index.
#[derive(Debug, Clone)]
struct PathNode {
    depth: usize,
    prefix: u64,
}

impl HybridPreparator {
    /// Creates a hybrid preparator.
    pub fn new() -> Self {
        HybridPreparator { _private: () }
    }

    /// Probability mass per active prefix at `depth`, split by the value of
    /// qubit `depth`: one pass over the support builds the whole level.
    fn level_probabilities(
        target: &SparseState,
        depth: usize,
    ) -> std::collections::BTreeMap<u64, [f64; 2]> {
        let mask = (1u64 << depth) - 1;
        let mut probs: std::collections::BTreeMap<u64, [f64; 2]> =
            std::collections::BTreeMap::new();
        for (index, amplitude) in target.iter() {
            let prefix = index.value() & mask;
            let entry = probs.entry(prefix).or_insert([0.0, 0.0]);
            entry[index.bit(depth) as usize] += amplitude * amplitude;
        }
        probs
    }

    /// Greedy minimal control set distinguishing `node` from every other
    /// active path at the same depth.
    fn distinguishing_controls(node: &PathNode, peers: &[PathNode]) -> Vec<Control> {
        let reference = BasisIndex::new(node.prefix);
        let mut remaining: Vec<&PathNode> =
            peers.iter().filter(|p| p.prefix != node.prefix).collect();
        let mut controls = Vec::new();
        let mut used = vec![false; node.depth];
        while !remaining.is_empty() {
            let mut best_qubit = None;
            let mut best_eliminated = 0usize;
            for (q, &used_q) in used.iter().enumerate() {
                if used_q {
                    continue;
                }
                let eliminated = remaining
                    .iter()
                    .filter(|p| BasisIndex::new(p.prefix).bit(q) != reference.bit(q))
                    .count();
                if eliminated > best_eliminated {
                    best_eliminated = eliminated;
                    best_qubit = Some(q);
                }
            }
            let q = best_qubit.expect("distinct prefixes admit a distinguishing qubit");
            used[q] = true;
            controls.push(Control {
                qubit: q,
                polarity: reference.bit(q),
            });
            remaining.retain(|p| BasisIndex::new(p.prefix).bit(q) == reference.bit(q));
        }
        controls
    }
}

impl StatePreparator for HybridPreparator {
    fn name(&self) -> &str {
        "hybrid"
    }

    fn prepare_sparse(&self, target: &SparseState) -> Result<Circuit, BaselineError> {
        require_nonnegative_amplitudes(target, "hybrid preparation")?;
        let n = target.num_qubits();
        let mut circuit = Circuit::new(n);
        let mut level: Vec<PathNode> = vec![PathNode {
            depth: 0,
            prefix: 0,
        }];
        let mut expanded_nodes = 0usize;

        for depth in 0..n {
            let probs = Self::level_probabilities(target, depth);
            let mut next_level = Vec::new();
            let snapshot = level.clone();
            for node in &snapshot {
                expanded_nodes += 1;
                if expanded_nodes > MAX_TREE_NODES {
                    return Err(BaselineError::UnsupportedState {
                        reason: format!(
                            "decision tree exceeds {MAX_TREE_NODES} nodes; the ancilla-based original is required at this scale"
                        ),
                    });
                }
                let [p0, p1] = probs.get(&node.prefix).copied().unwrap_or([0.0, 0.0]);
                if p0 <= f64::EPSILON && p1 <= f64::EPSILON {
                    continue;
                }
                if p1 > f64::EPSILON {
                    // A rotation is needed (deterministic flip when p0 == 0).
                    let theta = -2.0 * p1.sqrt().atan2(p0.sqrt());
                    let controls = Self::distinguishing_controls(node, &snapshot);
                    let gate = if controls.is_empty() {
                        Gate::ry(depth, theta)
                    } else {
                        Gate::Mcry {
                            controls,
                            target: depth,
                            theta,
                        }
                    };
                    circuit.try_push(gate)?;
                }
                if p0 > f64::EPSILON {
                    next_level.push(PathNode {
                        depth: depth + 1,
                        prefix: node.prefix,
                    });
                }
                if p1 > f64::EPSILON {
                    next_level.push(PathNode {
                        depth: depth + 1,
                        prefix: node.prefix | (1u64 << depth),
                    });
                }
            }
            level = next_level;
        }
        Ok(circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_circuit::apply::prepare_from_ground;
    use qsp_state::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn verify(target: &SparseState) -> Circuit {
        let circuit = HybridPreparator::new().prepare(target).unwrap();
        let prepared = prepare_from_ground(&circuit).unwrap();
        assert!(
            prepared.approx_eq(target, 1e-9),
            "hybrid prepared {prepared} instead of {target}"
        );
        circuit
    }

    #[test]
    fn prepares_basic_states() {
        verify(&generators::ghz(3).unwrap());
        verify(&generators::ghz(5).unwrap());
        verify(&generators::w_state(4).unwrap());
        verify(&generators::dicke(4, 2).unwrap());
        verify(&generators::dicke(6, 3).unwrap());
    }

    #[test]
    fn prepares_random_states() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in 3..7 {
            verify(&generators::random_sparse_state(n, &mut rng).unwrap());
            verify(&generators::random_dense_state(n, &mut rng).unwrap());
        }
    }

    #[test]
    fn costs_more_than_the_specialized_flows_on_their_home_turf() {
        use crate::mflow::CardinalityReduction;
        let mut rng = StdRng::seed_from_u64(9);
        let sparse = generators::random_sparse_state(8, &mut rng).unwrap();
        let hybrid_cost = HybridPreparator::new()
            .prepare(&sparse)
            .unwrap()
            .cnot_cost();
        let mflow_cost = CardinalityReduction::new()
            .prepare(&sparse)
            .unwrap()
            .cnot_cost();
        // The qualitative relation of Table V (sparse rows): hybrid uses more
        // CNOTs than the cardinality reduction flow.
        assert!(
            hybrid_cost >= mflow_cost,
            "hybrid {hybrid_cost} unexpectedly beats m-flow {mflow_cost}"
        );
    }

    #[test]
    fn rejects_negative_amplitudes() {
        let negative = SparseState::from_amplitudes(
            2,
            [(BasisIndex::new(0), 0.6), (BasisIndex::new(3), -0.8)],
        )
        .unwrap();
        assert!(HybridPreparator::new().prepare(&negative).is_err());
        assert_eq!(HybridPreparator::new().name(), "hybrid");
    }

    #[test]
    fn node_budget_is_enforced() {
        // A dense state on 14 qubits exceeds the 2^12 node budget; the flow
        // must reject it instead of expanding an enormous decision tree (the
        // ancilla-based original of ref. [16] is required at that scale).
        let mut rng = StdRng::seed_from_u64(1);
        let target = generators::random_uniform_state(14, 1 << 13, &mut rng).unwrap();
        let result = HybridPreparator::new().prepare(&target);
        assert!(matches!(
            result,
            Err(BaselineError::UnsupportedState { .. })
        ));
    }
}
