//! Manual Dicke-state designs (the hand-crafted reference of Table IV).
//!
//! The paper compares every automated flow against the best published manual
//! construction for Dicke states `|D^k_n⟩`, which needs `5nk − 5k² − 2n`
//! CNOT gates (Mukherjee et al., IEEE TQE 2020, ref. \[7\]). The closed-form
//! count is what Table IV tabulates; this module exposes it as a
//! [`StatePreparator`]-compatible reference so the benchmark harness can
//! treat "manual" like any other column.
//!
//! A gate-by-gate reconstruction of the manual circuit is not required to
//! reproduce the table (only its CNOT count enters), so
//! [`ManualDicke::prepare`] returns the circuit produced by the cardinality
//! reduction flow while [`ManualDicke::reference_cnot_count`] reports the
//! published manual count. The benchmark binaries always use the published
//! count for the "manual" column, as the paper does.

use qsp_circuit::Circuit;
use qsp_state::{generators, SparseState};

use crate::error::BaselineError;
use crate::mflow::CardinalityReduction;
use crate::preparator::StatePreparator;

/// The published CNOT count of the best manual design for `|D^k_n⟩`:
/// `5nk − 5k² − 2n` (ref. \[7\], quoted in Sec. VI-B of the paper).
///
/// # Example
///
/// ```
/// use qsp_baselines::dicke::manual_cnot_count;
///
/// assert_eq!(manual_cnot_count(4, 2), 12);
/// assert_eq!(manual_cnot_count(6, 3), 33);
/// ```
pub fn manual_cnot_count(n: usize, k: usize) -> usize {
    generators::manual_dicke_cnot_count(n, k)
}

/// The Dicke-state parameters `(n, k)` used in Table IV of the paper.
pub const TABLE4_CASES: [(usize, usize); 8] = [
    (3, 1),
    (4, 1),
    (4, 2),
    (5, 1),
    (5, 2),
    (6, 1),
    (6, 2),
    (6, 3),
];

/// Manual Dicke-state reference.
#[derive(Debug, Clone, Copy)]
pub struct ManualDicke {
    n: usize,
    k: usize,
}

impl ManualDicke {
    /// Creates the manual reference for `|D^k_n⟩`.
    ///
    /// # Errors
    ///
    /// Returns an error when `k` is zero or exceeds `n`.
    pub fn new(n: usize, k: usize) -> Result<Self, BaselineError> {
        if n == 0 || k == 0 || k > n {
            return Err(BaselineError::UnsupportedState {
                reason: format!("|D^{k}_{n}> is not a valid Dicke state"),
            });
        }
        Ok(ManualDicke { n, k })
    }

    /// The Dicke state this reference prepares.
    ///
    /// # Errors
    ///
    /// Propagates generator errors.
    pub fn target(&self) -> Result<SparseState, BaselineError> {
        Ok(generators::dicke(self.n, self.k)?)
    }

    /// The published CNOT count of the manual design.
    pub fn reference_cnot_count(&self) -> usize {
        manual_cnot_count(self.n, self.k)
    }
}

impl StatePreparator for ManualDicke {
    fn name(&self) -> &str {
        "manual"
    }

    /// Produces *a* correct Dicke preparation circuit (via cardinality
    /// reduction). The CNOT count reported in Table IV for the manual design
    /// is [`ManualDicke::reference_cnot_count`], not this circuit's cost.
    fn prepare_sparse(&self, target: &SparseState) -> Result<Circuit, BaselineError> {
        CardinalityReduction::new().prepare(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_manual_column() {
        let expected = [4, 7, 12, 10, 20, 13, 28, 33];
        for ((n, k), want) in TABLE4_CASES.iter().zip(expected) {
            assert_eq!(manual_cnot_count(*n, *k), want, "D^{k}_{n}");
        }
    }

    #[test]
    fn manual_reference_validates_parameters() {
        assert!(ManualDicke::new(4, 0).is_err());
        assert!(ManualDicke::new(3, 4).is_err());
        let reference = ManualDicke::new(4, 2).unwrap();
        assert_eq!(reference.reference_cnot_count(), 12);
        assert_eq!(reference.target().unwrap().cardinality(), 6);
        assert_eq!(reference.name(), "manual");
    }

    #[test]
    fn prepare_produces_a_correct_circuit() {
        use qsp_circuit::apply::prepare_from_ground;
        let reference = ManualDicke::new(4, 2).unwrap();
        let target = reference.target().unwrap();
        let circuit = reference.prepare(&target).unwrap();
        let prepared = prepare_from_ground(&circuit).unwrap();
        assert!(prepared.approx_eq(&target, 1e-9));
    }
}
