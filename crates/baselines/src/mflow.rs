//! Cardinality reduction ("m-flow") baseline.
//!
//! Re-implementation of the sparse state preparation algorithm of Gleinig &
//! Hoefler (DAC 2021, ref. \[15\] of the paper). The algorithm works
//! backwards: starting from the target support it repeatedly *merges* two
//! basis states into one — CNOTs first align the pair to Hamming distance
//! one, then a (multi-)controlled Y rotation folds the pair's probability
//! onto a single index — until only one basis state remains, which X gates
//! map to `|0…0⟩`. The preparation circuit is the inverse of that reduction.
//!
//! The CNOT count grows as `O(nm)` for sparse states, which is why the
//! paper's workflow picks this flow when `n·m < 2^n` (Fig. 5), and degrades
//! badly on dense states (Table V, top) — both behaviours are reproduced by
//! this implementation.

use qsp_circuit::{Circuit, Control, Gate};
use qsp_state::{BasisIndex, SparseState};

use crate::error::BaselineError;
use crate::preparator::{require_nonnegative_amplitudes, StatePreparator};

/// Maximum register width accepted by the cardinality reduction flow.
pub const MAX_QUBITS: usize = 40;

/// Above this cardinality the pair selection switches from exhaustive
/// (all pairs) to a first-element heuristic to keep the flow `O(n·m²)`.
const EXHAUSTIVE_PAIR_LIMIT: usize = 128;

/// The cardinality reduction ("m-flow") preparation algorithm.
///
/// # Example
///
/// ```
/// use qsp_baselines::{CardinalityReduction, StatePreparator};
/// use qsp_state::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = generators::w_state(4)?;
/// let circuit = CardinalityReduction::new().prepare(&target)?;
/// assert!(circuit.cnot_cost() < 16); // far below the n-flow's 2^4 − 2 on sparse states
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CardinalityReduction {
    _private: (),
}

/// One support entry during the backward reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    index: BasisIndex,
    amplitude: f64,
}

impl CardinalityReduction {
    /// Creates a cardinality reduction preparator.
    pub fn new() -> Self {
        CardinalityReduction { _private: () }
    }

    /// Selects the pair of entries to merge next: the pair with minimal
    /// Hamming distance (exhaustive for small supports, first-element
    /// heuristic for large ones). Returns indices into `entries`.
    fn select_pair(entries: &[Entry], num_qubits: usize) -> (usize, usize) {
        debug_assert!(entries.len() >= 2);
        let distance =
            |a: usize, b: usize| -> u32 { entries[a].index.hamming_distance(entries[b].index) };
        if entries.len() <= EXHAUSTIVE_PAIR_LIMIT {
            let mut best = (0, 1);
            let mut best_distance = u32::MAX;
            for i in 0..entries.len() {
                for j in (i + 1)..entries.len() {
                    let d = distance(i, j);
                    if d < best_distance {
                        best_distance = d;
                        best = (i, j);
                        if best_distance == 1 {
                            return best;
                        }
                    }
                }
            }
            best
        } else {
            let mut best = 1;
            let mut best_distance = u32::MAX;
            for j in 1..entries.len() {
                let d = distance(0, j);
                if d < best_distance {
                    best_distance = d;
                    best = j;
                    if d == 1 {
                        break;
                    }
                }
            }
            let _ = num_qubits;
            (0, best)
        }
    }

    /// Greedy minimal set of control qubits (with polarities taken from the
    /// merged pair) that distinguishes the pair from every other entry.
    fn distinguishing_controls(
        entries: &[Entry],
        pair: (usize, usize),
        target_qubit: usize,
        num_qubits: usize,
    ) -> Vec<Control> {
        let reference = entries[pair.0].index;
        let mut remaining: Vec<usize> = (0..entries.len())
            .filter(|&i| i != pair.0 && i != pair.1)
            .collect();
        let mut controls = Vec::new();
        let mut used = vec![false; num_qubits];
        used[target_qubit] = true;
        while !remaining.is_empty() {
            // Pick the position that disagrees with the reference for the
            // largest number of remaining entries.
            let mut best_qubit = None;
            let mut best_eliminated = 0usize;
            for (q, &used_q) in used.iter().enumerate() {
                if used_q {
                    continue;
                }
                let eliminated = remaining
                    .iter()
                    .filter(|&&i| entries[i].index.bit(q) != reference.bit(q))
                    .count();
                if eliminated > best_eliminated {
                    best_eliminated = eliminated;
                    best_qubit = Some(q);
                }
            }
            let q = best_qubit.expect("distinct entries always admit a distinguishing qubit");
            used[q] = true;
            controls.push(Control {
                qubit: q,
                polarity: reference.bit(q),
            });
            remaining.retain(|&i| entries[i].index.bit(q) == reference.bit(q));
        }
        controls
    }

    /// Applies a basis permutation gate (X or CNOT) to every entry.
    fn apply_permutation(entries: &mut [Entry], gate: &Gate) {
        for entry in entries.iter_mut() {
            entry.index = match gate {
                Gate::X { target } => entry.index.flip_bit(*target),
                Gate::Cnot { control, target } => {
                    if entry.index.bit(control.qubit) == control.polarity {
                        entry.index.flip_bit(*target)
                    } else {
                        entry.index
                    }
                }
                _ => unreachable!("only permutation gates are applied to the support"),
            };
        }
    }
}

impl CardinalityReduction {
    /// Runs merge steps until `stop` returns `true` for the partially reduced
    /// state (or the cardinality reaches one), and returns the *reduction*
    /// circuit — mapping the target towards `|0…0⟩` — together with the state
    /// it reduces the target to.
    ///
    /// This is the entry point the paper's workflow (Fig. 5) uses for sparse
    /// states: reduce the cardinality "until the complexity is acceptable for
    /// exact CNOT synthesis", then hand the rest to the exact solver.
    /// [`CardinalityReduction::prepare`] is the special case that never stops
    /// early and finishes with X gates.
    ///
    /// # Errors
    ///
    /// Returns an error for negative amplitudes or registers wider than
    /// [`MAX_QUBITS`].
    pub fn reduce_until<F>(
        &self,
        target: &SparseState,
        stop: F,
    ) -> Result<(Circuit, SparseState), BaselineError>
    where
        F: Fn(&SparseState) -> bool,
    {
        require_nonnegative_amplitudes(target, "cardinality reduction")?;
        let n = target.num_qubits();
        if n > MAX_QUBITS {
            return Err(BaselineError::RegisterTooWide {
                requested: n,
                max: MAX_QUBITS,
            });
        }
        let mut entries: Vec<Entry> = target
            .iter()
            .map(|(index, amplitude)| Entry { index, amplitude })
            .collect();
        // The reduction circuit maps the target state towards |0…0⟩.
        let mut reduction = Circuit::new(n);

        while entries.len() > 1 {
            let current =
                SparseState::from_amplitudes(n, entries.iter().map(|e| (e.index, e.amplitude)))?;
            if stop(&current) {
                return Ok((reduction, current));
            }
            let (i, j) = Self::select_pair(&entries, n);
            // 1. Align the pair to Hamming distance one with CNOTs.
            let diff = entries[i].index.differing_qubits(entries[j].index, n);
            let target_qubit = diff[0];
            for &p in &diff[1..] {
                let gate = Gate::cnot(target_qubit, p);
                Self::apply_permutation(&mut entries, &gate);
                reduction.try_push(gate)?;
            }
            // 2. Pick controls that shield every other entry from the merge.
            let controls = Self::distinguishing_controls(&entries, (i, j), target_qubit, n);
            // 3. Rotate the pair's probability onto the |0⟩ branch of the
            //    target qubit.
            let (zero_idx, one_idx) = if entries[i].index.bit(target_qubit) {
                (j, i)
            } else {
                (i, j)
            };
            let a0 = entries[zero_idx].amplitude;
            let a1 = entries[one_idx].amplitude;
            let theta = 2.0 * a1.atan2(a0);
            let gate = if controls.is_empty() {
                Gate::ry(target_qubit, theta)
            } else {
                Gate::Mcry {
                    controls,
                    target: target_qubit,
                    theta,
                }
            };
            reduction.try_push(gate)?;
            // 4. Update the support: the pair collapses onto the |0⟩ index.
            let merged = Entry {
                index: entries[zero_idx].index,
                amplitude: a0.hypot(a1),
            };
            let (first, second) = (zero_idx.min(one_idx), zero_idx.max(one_idx));
            entries.remove(second);
            entries[first] = merged;
        }

        let reduced =
            SparseState::from_amplitudes(n, entries.iter().map(|e| (e.index, e.amplitude)))?;
        Ok((reduction, reduced))
    }
}

impl StatePreparator for CardinalityReduction {
    fn name(&self) -> &str {
        "m-flow"
    }

    fn prepare_sparse(&self, target: &SparseState) -> Result<Circuit, BaselineError> {
        let (mut reduction, reduced) = self.reduce_until(target, |_| false)?;
        // Map the last remaining basis state to |0…0⟩ with X gates.
        let last = reduced
            .support()
            .first()
            .copied()
            .unwrap_or(BasisIndex::ZERO);
        for q in last.ones(target.num_qubits()) {
            reduction.try_push(Gate::x(q))?;
        }
        Ok(reduction.inverse())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_circuit::apply::prepare_from_ground;
    use qsp_state::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn verify(target: &SparseState) -> Circuit {
        let circuit = CardinalityReduction::new().prepare(target).unwrap();
        let prepared = prepare_from_ground(&circuit).unwrap();
        assert!(
            prepared.approx_eq(target, 1e-9),
            "m-flow prepared {prepared} instead of {target}"
        );
        circuit
    }

    #[test]
    fn prepares_basic_entangled_states() {
        verify(&generators::ghz(3).unwrap());
        verify(&generators::ghz(6).unwrap());
        verify(&generators::w_state(5).unwrap());
        verify(&generators::dicke(4, 2).unwrap());
        verify(&generators::dicke(5, 2).unwrap());
    }

    #[test]
    fn prepares_single_basis_states_with_x_gates_only() {
        let target = generators::basis_state(4, BasisIndex::new(0b1010)).unwrap();
        let circuit = verify(&target);
        assert_eq!(circuit.cnot_cost(), 0);
        assert_eq!(circuit.len(), 2);
    }

    #[test]
    fn prepares_random_sparse_states_cheaply() {
        let mut rng = StdRng::seed_from_u64(17);
        for n in 4..9 {
            let target = generators::random_sparse_state(n, &mut rng).unwrap();
            let circuit = verify(&target);
            // O(n·m) shape: far below the n-flow's 2^n − 2 for sparse states.
            assert!(
                circuit.cnot_cost() < (1 << n) - 2 || n <= 4,
                "n = {n}: m-flow cost {} is not below 2^n - 2",
                circuit.cnot_cost()
            );
        }
    }

    #[test]
    fn prepares_random_dense_states_correctly_if_expensively() {
        let mut rng = StdRng::seed_from_u64(23);
        for n in 3..6 {
            verify(&generators::random_dense_state(n, &mut rng).unwrap());
        }
    }

    #[test]
    fn prepares_non_uniform_amplitudes() {
        let target = SparseState::from_amplitudes(
            4,
            [
                (BasisIndex::new(0b0001), 0.3),
                (BasisIndex::new(0b0110), 0.5),
                (BasisIndex::new(0b1110), 0.4),
                (
                    BasisIndex::new(0b1000),
                    (1.0f64 - 0.09 - 0.25 - 0.16).sqrt(),
                ),
            ],
        )
        .unwrap();
        verify(&target);
    }

    #[test]
    fn rejects_negative_amplitudes() {
        let negative = SparseState::from_amplitudes(
            2,
            [(BasisIndex::new(0), 0.6), (BasisIndex::new(3), -0.8)],
        )
        .unwrap();
        assert!(CardinalityReduction::new().prepare(&negative).is_err());
        assert_eq!(CardinalityReduction::new().name(), "m-flow");
    }

    #[test]
    fn motivating_example_costs_single_digit_cnots() {
        // The paper's Sec. III example: cardinality reduction finds a 7-CNOT
        // circuit (Fig. 2). Our greedy variant should land in the same
        // ballpark (an exact match is not required — only the shape).
        let target = SparseState::uniform_superposition(
            3,
            [
                BasisIndex::new(0b000),
                BasisIndex::new(0b011),
                BasisIndex::new(0b101),
                BasisIndex::new(0b110),
            ],
        )
        .unwrap();
        let circuit = verify(&target);
        assert!(circuit.cnot_cost() <= 10, "cost {}", circuit.cnot_cost());
    }
}
