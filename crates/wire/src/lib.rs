//! Networked serving for the synthesis service.
//!
//! `qsp-wire` puts [`qsp_serve::SynthesisService`] on a TCP socket behind a
//! small, dependency-free framed protocol:
//!
//! - **[`codec`]** — length-prefixed frames (4-byte big-endian length +
//!   UTF-8 JSON payload) with an incremental decoder that survives torn
//!   reads and rejects oversized frames *before* buffering them.
//! - **[`proto`]** — the typed frame model: a versioned `hello`/`hello_ack`
//!   handshake carrying the connection's tenant, pipelined `request`
//!   frames, and per-request `report`/`rejected`/`timeout`/`cancelled`/
//!   `failed` replies correlated by client-chosen ids. Amplitudes travel as
//!   exact `f64` bit patterns, so served costs are identical to in-process
//!   solves of the same targets.
//! - **[`server`]** — [`WireServer`]: an acceptor plus per-connection
//!   protocol loops; each in-flight request settles on its own waiter
//!   thread so slow solves never head-of-line-block the decode path.
//!   Tenancy is connection-scoped: the hello's tenant name routes every
//!   request on the connection through that tenant's admission bucket and
//!   weighted-fair sub-queue in the serve layer.
//! - **[`client`]** — [`WireClient`]: a blocking client with pipelined
//!   sends and a one-shot [`call`](WireClient::call) path.
//!
//! Frame-level misbehaviour (malformed JSON — with the byte offset of the
//! offending byte, oversized frames, version mismatches, protocol-order
//! violations) is answered with a terminal typed `error` frame; the server
//! closes the connection after sending it. The server also registers a
//! `wire.*` metric slice (connections, frames in/out, errors) in the
//! service's metrics registry, so one observability snapshot covers the
//! socket and the solver.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod codec;
pub mod error;
pub mod proto;
pub mod server;

pub use client::{Handshake, WireClient};
pub use codec::{FrameDecoder, DEFAULT_MAX_FRAME, LENGTH_PREFIX_BYTES};
pub use error::WireError;
pub use proto::{ClientFrame, ServerFrame, PROTOCOL_VERSION};
pub use server::{WireConfig, WireServer};
