//! The wire server: TCP acceptor + per-connection protocol loops in front
//! of a shared [`SynthesisService`].
//!
//! Each accepted connection runs the handshake, then decodes pipelined
//! request frames and submits them to the service. Responses are written as
//! each request settles — a waiter thread per in-flight request shares the
//! connection's write half through a mutex, so a slow solve never blocks
//! the decode loop and responses may legally overtake each other on the
//! wire (the request `id` correlates them).
//!
//! Tenancy is connection-scoped: the hello's tenant name is resolved
//! against the service's [`TenantPolicy`](qsp_serve::TenantPolicy) once,
//! and every request on the connection bills to that tenant's admission
//! bucket and fair-share queue. An unknown or absent tenant name falls
//! back to the default tenant (the ack names which one was resolved).

use std::io::Read;
use std::net::{Shutdown as SocketShutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use qsp_core::api::{RequestOptions, SynthesisReport, SynthesisRequest};
use qsp_core::{Provenance, SynthesisError};
use qsp_obs::metrics::Counter;
use qsp_serve::{RejectReason, Response, Submit, SynthesisService, DEFAULT_TENANT_NAME};

use crate::codec::{self, FrameDecoder, DEFAULT_MAX_FRAME};
use crate::error::WireError;
use crate::proto::{ClientFrame, ServerFrame, PROTOCOL_VERSION};

/// Wire server configuration.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct WireConfig {
    /// Maximum frame payload size in bytes (both directions). Defaults to
    /// [`DEFAULT_MAX_FRAME`].
    pub max_frame: usize,
}

impl WireConfig {
    /// The default configuration.
    pub fn new() -> Self {
        WireConfig {
            max_frame: DEFAULT_MAX_FRAME,
        }
    }

    /// Overrides the maximum frame payload size.
    pub fn with_max_frame(mut self, max_frame: usize) -> Self {
        self.max_frame = max_frame;
        self
    }
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig::new()
    }
}

/// The `wire.*` metric slice, registered in the service's metrics registry
/// so one snapshot covers both layers.
#[derive(Debug, Clone)]
struct WireCounters {
    connections: Counter,
    frames_in: Counter,
    frames_out: Counter,
    errors: Counter,
}

impl WireCounters {
    fn new(service: &SynthesisService) -> Self {
        let metrics = service.engine().obs().metrics();
        WireCounters {
            connections: metrics.counter("wire.connections", &[]),
            frames_in: metrics.counter("wire.frames_in", &[]),
            frames_out: metrics.counter("wire.frames_out", &[]),
            errors: metrics.counter("wire.errors", &[]),
        }
    }
}

/// A TCP server exposing a [`SynthesisService`] over the framed protocol.
///
/// Dropping the server without calling [`WireServer::shutdown`] leaks the
/// acceptor thread until the process exits; call `shutdown` for a clean
/// teardown (it stops accepting, closes live connections and joins every
/// spawned thread). The underlying service is *not* shut down — it is
/// shared and may outlive the listener.
#[derive(Debug)]
pub struct WireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl WireServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts accepting
    /// connections against `service`.
    pub fn bind(
        addr: &str,
        service: Arc<SynthesisService>,
        config: WireConfig,
    ) -> Result<WireServer, WireError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let counters = WireCounters::new(&service);
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            thread::spawn(move || {
                accept_loop(listener, service, config, counters, stop, conns);
            })
        };
        Ok(WireServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            conns,
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes live connections and joins all server
    /// threads. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor: `accept()` has no timeout, so poke it with
        // a throwaway connection that it will see `stop` on.
        let _ = TcpStream::connect(self.addr);
        // Close live connections so their decode loops see EOF.
        if let Ok(conns) = self.conns.lock() {
            for conn in conns.iter() {
                let _ = conn.shutdown(SocketShutdown::Both);
            }
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<SynthesisService>,
    config: WireConfig,
    counters: WireCounters,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    for incoming in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match incoming {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        counters.connections.inc();
        if let Ok(tracked) = stream.try_clone() {
            if let Ok(mut conns) = conns.lock() {
                conns.push(tracked);
            }
        }
        let service = Arc::clone(&service);
        let counters = counters.clone();
        let max_frame = config.max_frame;
        workers.push(thread::spawn(move || {
            serve_connection(stream, service, max_frame, counters);
        }));
    }
    for worker in workers {
        let _ = worker.join();
    }
}

/// The shared write half of a connection. Responses from concurrent waiter
/// threads interleave frame-atomically through the mutex.
#[derive(Debug, Clone)]
struct ConnectionWriter {
    stream: Arc<Mutex<TcpStream>>,
    max_frame: usize,
    frames_out: Counter,
}

impl ConnectionWriter {
    fn send(&self, frame: &ServerFrame) -> Result<(), WireError> {
        let payload = frame.to_payload();
        let mut stream = self
            .stream
            .lock()
            .map_err(|_| WireError::Protocol("connection writer poisoned".to_string()))?;
        codec::write_frame(&mut *stream, &payload, self.max_frame)?;
        self.frames_out.inc();
        Ok(())
    }
}

fn serve_connection(
    stream: TcpStream,
    service: Arc<SynthesisService>,
    max_frame: usize,
    counters: WireCounters,
) {
    let reader = match stream.try_clone() {
        Ok(reader) => reader,
        Err(_) => return,
    };
    let writer = ConnectionWriter {
        stream: Arc::new(Mutex::new(stream)),
        max_frame,
        frames_out: counters.frames_out.clone(),
    };
    if let Err(error) = connection_loop(reader, &writer, &service, max_frame, &counters) {
        counters.errors.inc();
        // Best-effort terminal error frame; the peer may already be gone.
        let _ = writer.send(&error_frame(&error));
    }
    // Shut the socket down explicitly: the acceptor's tracked clone holds
    // another fd on it, so a plain drop would leave the connection open and
    // the peer would never see EOF.
    if let Ok(stream) = writer.stream.lock() {
        let _ = stream.shutdown(SocketShutdown::Both);
    };
}

fn error_frame(error: &WireError) -> ServerFrame {
    let (code, byte_offset) = match error {
        WireError::FrameTooLarge { .. } => ("frame_too_large", None),
        WireError::Json(e) => ("bad_json", Some(e.byte_offset as u64)),
        WireError::VersionMismatch { .. } => ("version_mismatch", None),
        _ => ("protocol", None),
    };
    ServerFrame::Error {
        code: code.to_string(),
        message: error.to_string(),
        byte_offset,
    }
}

fn provenance_label(provenance: &Provenance) -> &'static str {
    match provenance {
        Provenance::Solved => "solved",
        Provenance::CacheHit { .. } => "cache_hit",
        Provenance::ReconstructedFromBatchRep { .. } => "batch_rep",
        Provenance::DedupAttach { .. } => "dedup_attach",
        _ => "unknown",
    }
}

fn report_frame(id: u64, report: &SynthesisReport) -> ServerFrame {
    let qasm = qsp_circuit::qasm::to_qasm(&report.circuit)
        .unwrap_or_else(|e| format!("// qasm rendering failed: {e}"));
    ServerFrame::Report {
        id,
        cnot_cost: report.cnot_cost as u64,
        provenance: provenance_label(&report.provenance).to_string(),
        total_ms: report.timings.total.as_secs_f64() * 1e3,
        qasm,
    }
}

fn response_frame(id: u64, response: &Response) -> ServerFrame {
    match response {
        Response::Completed(report) => report_frame(id, report),
        Response::Failed(error) => {
            let byte_offset = match error {
                SynthesisError::Json(e) => Some(e.byte_offset as u64),
                _ => None,
            };
            ServerFrame::Failed {
                id,
                message: error.to_string(),
                byte_offset,
            }
        }
        Response::Timeout => ServerFrame::Timeout { id },
        Response::Cancelled => ServerFrame::Cancelled { id },
    }
}

fn reject_reason_label(reason: RejectReason) -> &'static str {
    match reason {
        RejectReason::Throttled => "throttled",
        RejectReason::QueueFull => "queue_full",
        RejectReason::Shutdown => "shutdown",
        _ => "rejected",
    }
}

fn connection_loop(
    mut reader: TcpStream,
    writer: &ConnectionWriter,
    service: &SynthesisService,
    max_frame: usize,
    counters: &WireCounters,
) -> Result<(), WireError> {
    let mut decoder = FrameDecoder::new(max_frame);
    let mut buf = [0u8; 4096];
    let mut handshaken = false;
    let mut tenant = None;
    let mut waiters: Vec<JoinHandle<()>> = Vec::new();
    'read: loop {
        let n = match reader.read(&mut buf) {
            Ok(0) => break 'read,
            Ok(n) => n,
            // The shutdown path closes the socket under us; treat any read
            // error as end-of-connection rather than a protocol fault.
            Err(_) => break 'read,
        };
        decoder.feed(&buf[..n]);
        while let Some(payload) = decoder.next_frame()? {
            counters.frames_in.inc();
            let frame = ClientFrame::parse(&payload)?;
            match frame {
                ClientFrame::Hello {
                    version,
                    tenant: name,
                } => {
                    if handshaken {
                        return Err(WireError::Protocol(
                            "duplicate hello after handshake".to_string(),
                        ));
                    }
                    if version != PROTOCOL_VERSION {
                        return Err(WireError::VersionMismatch {
                            client: version,
                            server: PROTOCOL_VERSION,
                        });
                    }
                    tenant = name.as_deref().and_then(|n| service.resolve_tenant(n));
                    let resolved = tenant
                        .and_then(|id| {
                            service
                                .tenant_policy()
                                .tenants
                                .get(id.raw() as usize)
                                .cloned()
                        })
                        .map(|t| t.name)
                        .unwrap_or_else(|| DEFAULT_TENANT_NAME.to_string());
                    handshaken = true;
                    writer.send(&ServerFrame::HelloAck {
                        version: PROTOCOL_VERSION,
                        tenant: resolved,
                        max_frame: max_frame as u64,
                    })?;
                }
                ClientFrame::Request {
                    id,
                    target,
                    deadline_ms,
                    priority,
                } => {
                    if !handshaken {
                        return Err(WireError::Protocol(
                            "request before hello handshake".to_string(),
                        ));
                    }
                    let mut options = RequestOptions::new();
                    if let Some(tenant) = tenant {
                        options = options.with_tenant(tenant);
                    }
                    if let Some(ms) = deadline_ms {
                        options = options.with_deadline(Instant::now() + Duration::from_millis(ms));
                    }
                    if let Some(priority) = priority {
                        options = options.with_priority(priority);
                    }
                    let request = SynthesisRequest::new(target).with_options(options);
                    match service.submit(request) {
                        Submit::Accepted(handle) => {
                            let writer = writer.clone();
                            waiters.push(thread::spawn(move || {
                                let response = handle.wait();
                                let _ = writer.send(&response_frame(id, &response));
                            }));
                        }
                        Submit::Rejected { reason } => {
                            writer.send(&ServerFrame::Rejected {
                                id,
                                reason: reject_reason_label(reason).to_string(),
                            })?;
                        }
                    }
                }
            }
        }
    }
    for waiter in waiters {
        let _ = waiter.join();
    }
    Ok(())
}
