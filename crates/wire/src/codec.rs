//! The length-prefixed frame codec.
//!
//! Every frame on the wire is a 4-byte big-endian payload length followed
//! by that many bytes of UTF-8 JSON:
//!
//! ```text
//! ┌──────────────┬──────────────────────────────┐
//! │ len: u32 BE  │ payload: len bytes of JSON   │
//! └──────────────┴──────────────────────────────┘
//! ```
//!
//! The decoder is *incremental*: [`FrameDecoder::feed`] accepts bytes in
//! whatever chunks the socket delivers (torn reads, frames split across
//! reads, several frames per read) and [`FrameDecoder::next_frame`] yields
//! complete payloads as they become available. A length prefix larger than
//! the configured maximum is rejected with [`WireError::FrameTooLarge`]
//! *before* the payload is buffered, bounding the receiver's memory.

use std::io::{Read, Write};

use crate::error::WireError;

/// Bytes of the length prefix.
pub const LENGTH_PREFIX_BYTES: usize = 4;

/// Default maximum frame payload size (1 MiB) — comfortably above any
/// realistic request or report, far below an allocation attack.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Encodes one payload as a length-prefixed frame.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] if the payload exceeds `max_frame` — the
/// sender enforces the same bound the receiver does, so an oversized local
/// payload fails fast instead of poisoning the connection.
pub fn encode_frame(payload: &str, max_frame: usize) -> Result<Vec<u8>, WireError> {
    let bytes = payload.as_bytes();
    if bytes.len() > max_frame {
        return Err(WireError::FrameTooLarge {
            size: bytes.len(),
            max_frame,
        });
    }
    let mut frame = Vec::with_capacity(LENGTH_PREFIX_BYTES + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    frame.extend_from_slice(bytes);
    Ok(frame)
}

/// Writes one frame to `writer` (length prefix + payload, single
/// `write_all`).
pub fn write_frame(
    writer: &mut impl Write,
    payload: &str,
    max_frame: usize,
) -> Result<(), WireError> {
    let frame = encode_frame(payload, max_frame)?;
    writer.write_all(&frame)?;
    writer.flush()?;
    Ok(())
}

/// Reads exactly one frame from `reader`, blocking until it is complete.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary;
/// [`WireError::Truncated`] if the stream ends mid-frame.
pub fn read_frame(reader: &mut impl Read, max_frame: usize) -> Result<Option<String>, WireError> {
    let mut prefix = [0u8; LENGTH_PREFIX_BYTES];
    let mut filled = 0;
    while filled < prefix.len() {
        let n = reader.read(&mut prefix[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Ok(None)
            } else {
                Err(WireError::Truncated)
            };
        }
        filled += n;
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > max_frame {
        return Err(WireError::FrameTooLarge {
            size: len,
            max_frame,
        });
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        let n = reader.read(&mut payload[filled..])?;
        if n == 0 {
            return Err(WireError::Truncated);
        }
        filled += n;
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| WireError::Protocol("frame payload is not valid UTF-8".to_string()))
}

/// The incremental frame decoder. See the [module docs](self).
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    max_frame: usize,
}

impl FrameDecoder {
    /// A decoder enforcing `max_frame` as the payload-size bound.
    pub fn new(max_frame: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            max_frame,
        }
    }

    /// Appends raw socket bytes to the decode buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame payload, if one is buffered.
    ///
    /// `Ok(None)` means "need more bytes". An oversized length prefix
    /// errors immediately — even before the payload arrives — and the
    /// decoder must be discarded (the stream has no recoverable framing
    /// past that point).
    pub fn next_frame(&mut self) -> Result<Option<String>, WireError> {
        if self.buf.len() < LENGTH_PREFIX_BYTES {
            return Ok(None);
        }
        let len = u32::from_be_bytes(
            self.buf[..LENGTH_PREFIX_BYTES]
                .try_into()
                .expect("prefix length checked"),
        ) as usize;
        if len > self.max_frame {
            return Err(WireError::FrameTooLarge {
                size: len,
                max_frame: self.max_frame,
            });
        }
        if self.buf.len() < LENGTH_PREFIX_BYTES + len {
            return Ok(None);
        }
        let payload: Vec<u8> = self
            .buf
            .drain(..LENGTH_PREFIX_BYTES + len)
            .skip(LENGTH_PREFIX_BYTES)
            .collect();
        String::from_utf8(payload)
            .map(Some)
            .map_err(|_| WireError::Protocol("frame payload is not valid UTF-8".to_string()))
    }

    /// Bytes currently buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let frame = encode_frame("{\"type\":\"hello\"}", DEFAULT_MAX_FRAME).unwrap();
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME);
        decoder.feed(&frame);
        assert_eq!(
            decoder.next_frame().unwrap().as_deref(),
            Some("{\"type\":\"hello\"}")
        );
        assert!(decoder.next_frame().unwrap().is_none());
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn torn_reads_reassemble_at_every_split_point() {
        // A frame split at every possible byte boundary still decodes —
        // the codec never assumes a read delivers a whole frame.
        let frame = encode_frame("{\"id\":12345,\"payload\":\"abcdef\"}", 1024).unwrap();
        for split in 0..=frame.len() {
            let mut decoder = FrameDecoder::new(1024);
            decoder.feed(&frame[..split]);
            if split < frame.len() {
                assert!(decoder.next_frame().unwrap().is_none(), "split {split}");
                decoder.feed(&frame[split..]);
            }
            assert_eq!(
                decoder.next_frame().unwrap().as_deref(),
                Some("{\"id\":12345,\"payload\":\"abcdef\"}"),
                "split {split}"
            );
        }
    }

    #[test]
    fn seeded_random_chunking_preserves_frame_stream() {
        // Many frames, delivered in pseudo-random chunk sizes: the decoder
        // must yield exactly the original payload sequence.
        let payloads: Vec<String> = (0..50)
            .map(|i| format!("{{\"seq\":{i},\"body\":\"{}\"}}", "x".repeat(i * 7 % 90)))
            .collect();
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p, 4096).unwrap());
        }
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DEC);
        let mut decoder = FrameDecoder::new(4096);
        let mut decoded = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let chunk = rng.gen_range(1usize..18);
            let end = (pos + chunk).min(stream.len());
            decoder.feed(&stream[pos..end]);
            pos = end;
            while let Some(frame) = decoder.next_frame().unwrap() {
                decoded.push(frame);
            }
        }
        assert_eq!(decoded, payloads);
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn oversized_frames_are_rejected_before_payload_arrives() {
        let mut decoder = FrameDecoder::new(64);
        // Prefix declares 1 MiB; only the prefix has arrived.
        decoder.feed(&(1_048_576u32).to_be_bytes());
        match decoder.next_frame() {
            Err(WireError::FrameTooLarge { size, max_frame }) => {
                assert_eq!(size, 1_048_576);
                assert_eq!(max_frame, 64);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        // The sender enforces the same bound.
        let big = "y".repeat(65);
        assert!(matches!(
            encode_frame(&big, 64),
            Err(WireError::FrameTooLarge { size: 65, .. })
        ));
    }

    #[test]
    fn blocking_reader_handles_eof_and_truncation() {
        let frame = encode_frame("{\"ok\":true}", 128).unwrap();
        let mut cursor = std::io::Cursor::new(frame.clone());
        assert_eq!(
            read_frame(&mut cursor, 128).unwrap().as_deref(),
            Some("{\"ok\":true}")
        );
        // Clean EOF at the boundary.
        assert!(read_frame(&mut cursor, 128).unwrap().is_none());
    }

    #[test]
    fn blocking_reader_truncation_is_typed() {
        let frame = encode_frame("{\"ok\":true}", 128).unwrap();
        let mut torn = std::io::Cursor::new(frame[..frame.len() - 3].to_vec());
        assert!(matches!(
            read_frame(&mut torn, 128),
            Err(WireError::Truncated)
        ));
        // EOF inside the length prefix is also truncation.
        let mut torn_prefix = std::io::Cursor::new(frame[..2].to_vec());
        assert!(matches!(
            read_frame(&mut torn_prefix, 128),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn invalid_utf8_payload_is_a_protocol_error() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&2u32.to_be_bytes());
        raw.extend_from_slice(&[0xFF, 0xFE]);
        let mut decoder = FrameDecoder::new(64);
        decoder.feed(&raw);
        assert!(matches!(decoder.next_frame(), Err(WireError::Protocol(_))));
    }
}
