//! The protocol layer: typed frames and their JSON encoding.
//!
//! Every frame payload is a JSON object with a `type` discriminator. A
//! connection opens with a handshake — the client's `hello` (protocol
//! version + optional tenant name) answered by the server's `hello_ack`
//! (negotiated version, the tenant the connection resolved to, and the
//! server's frame-size limit) — after which the client pipelines `request`
//! frames freely; the server answers each with exactly one of `report`,
//! `rejected`, `timeout`, `cancelled` or `failed`, correlated by the
//! client-chosen request `id` (responses may arrive out of submission
//! order). A connection-level `error` frame (malformed JSON, oversized
//! frame, protocol violation, version mismatch) is terminal: the server
//! sends it and closes.
//!
//! Amplitudes travel as exact `f64` bit patterns (`u64`), the same encoding
//! the cache snapshots use, so a state round-trips the wire bit-identically
//! and `cnot_cost` parity with the in-process path is structural, not
//! approximate.

use qsp_core::json::{self, Value};
use qsp_state::{BasisIndex, SparseState};

use crate::error::WireError;

/// The protocol version this build speaks. A client announcing a different
/// version is refused at the handshake with a `version_mismatch` error
/// frame.
pub const PROTOCOL_VERSION: u32 = 1;

/// A frame sent by the client.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// The handshake opener: protocol version plus the tenant this
    /// connection's requests bill to (`None` = the server's default
    /// tenant).
    Hello {
        /// The client's protocol version.
        version: u32,
        /// The tenant name to resolve against the server's policy.
        tenant: Option<String>,
    },
    /// One synthesis request. `id` is chosen by the client and echoed on
    /// the response, so requests can be pipelined.
    Request {
        /// Client-chosen correlation id.
        id: u64,
        /// The target state to synthesize.
        target: SparseState,
        /// Relative deadline in milliseconds (the server anchors it at
        /// decode time).
        deadline_ms: Option<u64>,
        /// Scheduling priority (deadline ties in the drain order).
        priority: Option<u8>,
    },
}

/// A frame sent by the server.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// The handshake answer.
    HelloAck {
        /// The protocol version the server speaks.
        version: u32,
        /// The tenant the connection resolved to (`"default"` when the
        /// hello named no tenant or an unknown one).
        tenant: String,
        /// The server's maximum frame payload size; client frames above it
        /// are refused.
        max_frame: u64,
    },
    /// A completed request: the synthesized circuit and its provenance.
    Report {
        /// The request's correlation id.
        id: u64,
        /// CNOT cost of the circuit — identical to an in-process solve of
        /// the same request.
        cnot_cost: u64,
        /// How the circuit was produced (`solved`, `cache_hit`,
        /// `dedup_attach`, `batch_rep`).
        provenance: String,
        /// End-to-end service time in milliseconds (server-side:
        /// submission to completion).
        total_ms: f64,
        /// The circuit as OpenQASM 2.0.
        qasm: String,
    },
    /// The submission was turned away without being queued.
    Rejected {
        /// The request's correlation id.
        id: u64,
        /// Why: `throttled` (tenant admission control), `queue_full`
        /// (backpressure) or `shutdown`.
        reason: String,
    },
    /// The request's deadline expired before a worker started solving it.
    Timeout {
        /// The request's correlation id.
        id: u64,
    },
    /// The service shut down before the request was solved.
    Cancelled {
        /// The request's correlation id.
        id: u64,
    },
    /// Synthesis of this request failed (invalid or unsupported target).
    Failed {
        /// The request's correlation id.
        id: u64,
        /// The error message.
        message: String,
        /// For JSON-shaped failures: byte offset of the malformed byte.
        byte_offset: Option<u64>,
    },
    /// A terminal connection-level error; the server closes after sending
    /// it.
    Error {
        /// Machine-readable code: `frame_too_large`, `bad_json`,
        /// `protocol` or `version_mismatch`.
        code: String,
        /// Human-readable description.
        message: String,
        /// For `bad_json`: byte offset of the malformed byte within the
        /// offending frame payload.
        byte_offset: Option<u64>,
    },
}

/// Encodes a sparse state as `{n, amps: [[index, f64_bits], …]}`.
fn state_to_value(state: &SparseState) -> Value {
    Value::Object(vec![
        ("n".to_string(), Value::Num(state.num_qubits() as u64)),
        (
            "amps".to_string(),
            Value::Array(
                state
                    .iter()
                    .map(|(index, amplitude)| {
                        Value::Array(vec![
                            Value::Num(index.value()),
                            Value::Num(amplitude.to_bits()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn state_from_value(value: &Value) -> Result<SparseState, WireError> {
    let n = value
        .get("n")
        .and_then(Value::as_u64)
        .ok_or_else(|| WireError::Protocol("target missing qubit count `n`".to_string()))?;
    let amps = value
        .get("amps")
        .and_then(Value::as_array)
        .ok_or_else(|| WireError::Protocol("target missing `amps` array".to_string()))?;
    let mut entries = Vec::with_capacity(amps.len());
    for amp in amps {
        let pair = amp
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| WireError::Protocol("amplitude entry is not a pair".to_string()))?;
        let index = pair[0]
            .as_u64()
            .ok_or_else(|| WireError::Protocol("basis index is not an integer".to_string()))?;
        let bits = pair[1]
            .as_u64()
            .ok_or_else(|| WireError::Protocol("amplitude bits are not an integer".to_string()))?;
        entries.push((BasisIndex::new(index), f64::from_bits(bits)));
    }
    SparseState::from_amplitudes(n as usize, entries)
        .map_err(|e| WireError::Protocol(format!("invalid target state: {e}")))
}

fn optional_field(fields: &mut Vec<(String, Value)>, key: &str, value: Option<Value>) {
    if let Some(value) = value {
        fields.push((key.to_string(), value));
    }
}

fn require_id(value: &Value) -> Result<u64, WireError> {
    value
        .get("id")
        .and_then(Value::as_u64)
        .ok_or_else(|| WireError::Protocol("frame missing request `id`".to_string()))
}

fn require_type(value: &Value) -> Result<&str, WireError> {
    value
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| WireError::Protocol("frame missing `type` discriminator".to_string()))
}

impl ClientFrame {
    /// The frame as a JSON value.
    pub fn to_value(&self) -> Value {
        match self {
            ClientFrame::Hello { version, tenant } => {
                let mut fields = vec![
                    ("type".to_string(), Value::Str("hello".to_string())),
                    ("version".to_string(), Value::Num(u64::from(*version))),
                ];
                optional_field(
                    &mut fields,
                    "tenant",
                    tenant.as_ref().map(|t| Value::Str(t.clone())),
                );
                Value::Object(fields)
            }
            ClientFrame::Request {
                id,
                target,
                deadline_ms,
                priority,
            } => {
                let mut fields = vec![
                    ("type".to_string(), Value::Str("request".to_string())),
                    ("id".to_string(), Value::Num(*id)),
                    ("target".to_string(), state_to_value(target)),
                ];
                optional_field(&mut fields, "deadline_ms", deadline_ms.map(Value::Num));
                optional_field(
                    &mut fields,
                    "priority",
                    priority.map(|p| Value::Num(u64::from(p))),
                );
                Value::Object(fields)
            }
        }
    }

    /// The frame as a compact JSON payload string.
    pub fn to_payload(&self) -> String {
        self.to_value().to_json()
    }

    /// Parses a frame payload. A JSON parse failure carries the
    /// [`byte_offset`](qsp_core::JsonError::byte_offset) of the malformed
    /// byte.
    pub fn parse(payload: &str) -> Result<Self, WireError> {
        let value = json::parse(payload)?;
        match require_type(&value)? {
            "hello" => {
                let version = value
                    .get("version")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| WireError::Protocol("hello missing `version`".to_string()))?;
                let tenant = value
                    .get("tenant")
                    .and_then(Value::as_str)
                    .map(str::to_string);
                Ok(ClientFrame::Hello {
                    version: version as u32,
                    tenant,
                })
            }
            "request" => {
                let id = require_id(&value)?;
                let target =
                    state_from_value(value.get("target").ok_or_else(|| {
                        WireError::Protocol("request missing `target`".to_string())
                    })?)?;
                let deadline_ms = value.get("deadline_ms").and_then(Value::as_u64);
                let priority = value
                    .get("priority")
                    .and_then(Value::as_u64)
                    .map(|p| p.min(u64::from(u8::MAX)) as u8);
                Ok(ClientFrame::Request {
                    id,
                    target,
                    deadline_ms,
                    priority,
                })
            }
            other => Err(WireError::Protocol(format!(
                "unknown client frame type `{other}`"
            ))),
        }
    }
}

impl ServerFrame {
    /// The frame as a JSON value.
    pub fn to_value(&self) -> Value {
        match self {
            ServerFrame::HelloAck {
                version,
                tenant,
                max_frame,
            } => Value::Object(vec![
                ("type".to_string(), Value::Str("hello_ack".to_string())),
                ("version".to_string(), Value::Num(u64::from(*version))),
                ("tenant".to_string(), Value::Str(tenant.clone())),
                ("max_frame".to_string(), Value::Num(*max_frame)),
            ]),
            ServerFrame::Report {
                id,
                cnot_cost,
                provenance,
                total_ms,
                qasm,
            } => Value::Object(vec![
                ("type".to_string(), Value::Str("report".to_string())),
                ("id".to_string(), Value::Num(*id)),
                ("cnot_cost".to_string(), Value::Num(*cnot_cost)),
                ("provenance".to_string(), Value::Str(provenance.clone())),
                ("total_ms".to_string(), Value::Float(*total_ms)),
                ("qasm".to_string(), Value::Str(qasm.clone())),
            ]),
            ServerFrame::Rejected { id, reason } => Value::Object(vec![
                ("type".to_string(), Value::Str("rejected".to_string())),
                ("id".to_string(), Value::Num(*id)),
                ("reason".to_string(), Value::Str(reason.clone())),
            ]),
            ServerFrame::Timeout { id } => Value::Object(vec![
                ("type".to_string(), Value::Str("timeout".to_string())),
                ("id".to_string(), Value::Num(*id)),
            ]),
            ServerFrame::Cancelled { id } => Value::Object(vec![
                ("type".to_string(), Value::Str("cancelled".to_string())),
                ("id".to_string(), Value::Num(*id)),
            ]),
            ServerFrame::Failed {
                id,
                message,
                byte_offset,
            } => {
                let mut fields = vec![
                    ("type".to_string(), Value::Str("failed".to_string())),
                    ("id".to_string(), Value::Num(*id)),
                    ("message".to_string(), Value::Str(message.clone())),
                ];
                optional_field(&mut fields, "byte_offset", byte_offset.map(Value::Num));
                Value::Object(fields)
            }
            ServerFrame::Error {
                code,
                message,
                byte_offset,
            } => {
                let mut fields = vec![
                    ("type".to_string(), Value::Str("error".to_string())),
                    ("code".to_string(), Value::Str(code.clone())),
                    ("message".to_string(), Value::Str(message.clone())),
                ];
                optional_field(&mut fields, "byte_offset", byte_offset.map(Value::Num));
                Value::Object(fields)
            }
        }
    }

    /// The frame as a compact JSON payload string.
    pub fn to_payload(&self) -> String {
        self.to_value().to_json()
    }

    /// Parses a frame payload.
    pub fn parse(payload: &str) -> Result<Self, WireError> {
        let value = json::parse(payload)?;
        let get_str = |key: &str| -> Result<String, WireError> {
            value
                .get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| WireError::Protocol(format!("frame missing `{key}`")))
        };
        match require_type(&value)? {
            "hello_ack" => Ok(ServerFrame::HelloAck {
                version: value
                    .get("version")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| WireError::Protocol("hello_ack missing `version`".to_string()))?
                    as u32,
                tenant: get_str("tenant")?,
                max_frame: value
                    .get("max_frame")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| {
                        WireError::Protocol("hello_ack missing `max_frame`".to_string())
                    })?,
            }),
            "report" => Ok(ServerFrame::Report {
                id: require_id(&value)?,
                cnot_cost: value
                    .get("cnot_cost")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| WireError::Protocol("report missing `cnot_cost`".to_string()))?,
                provenance: get_str("provenance")?,
                total_ms: value.get("total_ms").and_then(Value::as_f64).unwrap_or(0.0),
                qasm: get_str("qasm")?,
            }),
            "rejected" => Ok(ServerFrame::Rejected {
                id: require_id(&value)?,
                reason: get_str("reason")?,
            }),
            "timeout" => Ok(ServerFrame::Timeout {
                id: require_id(&value)?,
            }),
            "cancelled" => Ok(ServerFrame::Cancelled {
                id: require_id(&value)?,
            }),
            "failed" => Ok(ServerFrame::Failed {
                id: require_id(&value)?,
                message: get_str("message")?,
                byte_offset: value.get("byte_offset").and_then(Value::as_u64),
            }),
            "error" => Ok(ServerFrame::Error {
                code: get_str("code")?,
                message: get_str("message")?,
                byte_offset: value.get("byte_offset").and_then(Value::as_u64),
            }),
            other => Err(WireError::Protocol(format!(
                "unknown server frame type `{other}`"
            ))),
        }
    }

    /// The response's correlation id, if this frame answers a request.
    pub fn request_id(&self) -> Option<u64> {
        match self {
            ServerFrame::Report { id, .. }
            | ServerFrame::Rejected { id, .. }
            | ServerFrame::Timeout { id }
            | ServerFrame::Cancelled { id }
            | ServerFrame::Failed { id, .. } => Some(*id),
            ServerFrame::HelloAck { .. } | ServerFrame::Error { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_state::generators;

    #[test]
    fn client_frames_round_trip() {
        let hello = ClientFrame::Hello {
            version: PROTOCOL_VERSION,
            tenant: Some("acme".to_string()),
        };
        assert_eq!(ClientFrame::parse(&hello.to_payload()).unwrap(), hello);
        let anonymous = ClientFrame::Hello {
            version: PROTOCOL_VERSION,
            tenant: None,
        };
        assert_eq!(
            ClientFrame::parse(&anonymous.to_payload()).unwrap(),
            anonymous
        );
        let request = ClientFrame::Request {
            id: 42,
            target: generators::w_state(4).unwrap(),
            deadline_ms: Some(250),
            priority: Some(3),
        };
        assert_eq!(ClientFrame::parse(&request.to_payload()).unwrap(), request);
    }

    #[test]
    fn state_encoding_is_bit_exact() {
        // The W state's 1/sqrt(3) amplitudes are irrational; bit-pattern
        // transport must reproduce them exactly, not to-within-epsilon.
        let target = generators::w_state(3).unwrap();
        let frame = ClientFrame::Request {
            id: 1,
            target: target.clone(),
            deadline_ms: None,
            priority: None,
        };
        let ClientFrame::Request {
            target: decoded, ..
        } = ClientFrame::parse(&frame.to_payload()).unwrap()
        else {
            panic!("wrong frame type");
        };
        let original: Vec<(u64, u64)> = target
            .iter()
            .map(|(i, a)| (i.value(), a.to_bits()))
            .collect();
        let round_tripped: Vec<(u64, u64)> = decoded
            .iter()
            .map(|(i, a)| (i.value(), a.to_bits()))
            .collect();
        assert_eq!(original, round_tripped);
    }

    #[test]
    fn server_frames_round_trip() {
        let frames = vec![
            ServerFrame::HelloAck {
                version: 1,
                tenant: "default".to_string(),
                max_frame: 1 << 20,
            },
            ServerFrame::Report {
                id: 9,
                cnot_cost: 4,
                provenance: "solved".to_string(),
                total_ms: 1.25,
                qasm: "OPENQASM 2.0;\n".to_string(),
            },
            ServerFrame::Rejected {
                id: 10,
                reason: "throttled".to_string(),
            },
            ServerFrame::Timeout { id: 11 },
            ServerFrame::Cancelled { id: 12 },
            ServerFrame::Failed {
                id: 13,
                message: "target state not supported".to_string(),
                byte_offset: None,
            },
            ServerFrame::Error {
                code: "bad_json".to_string(),
                message: "malformed frame".to_string(),
                byte_offset: Some(7),
            },
        ];
        for frame in frames {
            assert_eq!(ServerFrame::parse(&frame.to_payload()).unwrap(), frame);
        }
    }

    #[test]
    fn request_ids_correlate_responses_only() {
        assert_eq!(ServerFrame::Timeout { id: 3 }.request_id(), Some(3));
        assert_eq!(
            ServerFrame::Error {
                code: "protocol".to_string(),
                message: "nope".to_string(),
                byte_offset: None,
            }
            .request_id(),
            None
        );
    }

    #[test]
    fn malformed_payloads_carry_byte_offsets() {
        let Err(WireError::Json(error)) = ClientFrame::parse("{\"type\": \"hello\", nope}") else {
            panic!("expected a JSON error");
        };
        assert!(error.byte_offset > 0);
        assert!(matches!(
            ClientFrame::parse("{\"type\":\"warp\"}"),
            Err(WireError::Protocol(_))
        ));
        assert!(matches!(
            ClientFrame::parse("{\"version\":1}"),
            Err(WireError::Protocol(_))
        ));
    }

    #[test]
    fn invalid_targets_are_protocol_errors() {
        // An empty amplitude list cannot build a state.
        let payload = "{\"type\":\"request\",\"id\":1,\"target\":{\"n\":3,\"amps\":[]}}";
        assert!(matches!(
            ClientFrame::parse(payload),
            Err(WireError::Protocol(_))
        ));
        // An out-of-register index is caught by state validation.
        let bits = 1.0f64.to_bits();
        let payload = format!(
            "{{\"type\":\"request\",\"id\":1,\"target\":{{\"n\":2,\"amps\":[[9,{bits}]]}}}}"
        );
        assert!(matches!(
            ClientFrame::parse(&payload),
            Err(WireError::Protocol(_))
        ));
    }
}
