//! The wire layer's typed error surface.

use std::error::Error;
use std::fmt;
use std::io;

use qsp_core::json::JsonError;

/// Errors produced by the frame codec, the protocol layer and the client.
#[derive(Debug)]
#[non_exhaustive]
pub enum WireError {
    /// An underlying socket operation failed.
    Io(io::Error),
    /// A frame's length prefix exceeds the configured maximum. The codec
    /// rejects the frame *before* buffering its payload, so an abusive peer
    /// cannot make the receiver allocate unboundedly.
    FrameTooLarge {
        /// The length the prefix declared.
        size: usize,
        /// The receiver's configured maximum payload size.
        max_frame: usize,
    },
    /// The connection ended mid-frame (EOF inside a length prefix or
    /// payload).
    Truncated,
    /// A frame payload failed to parse as JSON. The carried
    /// [`JsonError::byte_offset`] localizes the malformed byte *within the
    /// frame payload*, and is forwarded to the peer in the error reply.
    Json(JsonError),
    /// A structurally valid JSON frame that violates the protocol (unknown
    /// `type`, missing field, handshake out of order, …).
    Protocol(String),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// The version the client announced.
        client: u32,
        /// The version the server speaks.
        server: u32,
    },
    /// A typed error frame received from the remote peer.
    Remote {
        /// The machine-readable error code (`frame_too_large`, `bad_json`,
        /// `protocol`, `version_mismatch`).
        code: String,
        /// The human-readable message.
        message: String,
        /// For `bad_json`: the byte offset of the malformed byte within the
        /// offending frame payload.
        byte_offset: Option<u64>,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::FrameTooLarge { size, max_frame } => write!(
                f,
                "frame of {size} bytes exceeds the {max_frame}-byte frame limit"
            ),
            WireError::Truncated => write!(f, "connection closed mid-frame"),
            WireError::Json(e) => write!(f, "malformed frame payload: {e}"),
            WireError::Protocol(reason) => write!(f, "protocol violation: {reason}"),
            WireError::VersionMismatch { client, server } => write!(
                f,
                "protocol version mismatch: client speaks v{client}, server v{server}"
            ),
            WireError::Remote {
                code,
                message,
                byte_offset,
            } => match byte_offset {
                Some(offset) => {
                    write!(f, "remote error [{code}] at byte {offset}: {message}")
                }
                None => write!(f, "remote error [{code}]: {message}"),
            },
        }
    }
}

impl Error for WireError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            WireError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(value: io::Error) -> Self {
        WireError::Io(value)
    }
}

impl From<JsonError> for WireError {
    fn from(value: JsonError) -> Self {
        WireError::Json(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = WireError::FrameTooLarge {
            size: 2048,
            max_frame: 1024,
        };
        assert!(e.to_string().contains("2048"));
        assert!(e.source().is_none());
        let e: WireError = qsp_core::json::parse("{").unwrap_err().into();
        assert!(matches!(e, WireError::Json(_)));
        assert!(e.source().is_some());
        let e: WireError = io::Error::new(io::ErrorKind::ConnectionReset, "gone").into();
        assert!(e.to_string().contains("gone"));
        let e = WireError::Remote {
            code: "bad_json".to_string(),
            message: "oops".to_string(),
            byte_offset: Some(17),
        };
        assert!(e.to_string().contains("byte 17"));
    }
}
