//! A blocking wire client.
//!
//! [`WireClient::connect`] performs the hello/ack handshake; after that,
//! [`WireClient::send_request`] pipelines requests (each tagged with a
//! client-assigned id) and [`WireClient::recv`] reads response frames as
//! the server settles them — possibly out of submission order; match on
//! [`ServerFrame::request_id`] to correlate. [`WireClient::call`] is the
//! convenience one-request-one-response path for unpipelined use.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

use qsp_state::SparseState;

use crate::codec::{self, DEFAULT_MAX_FRAME};
use crate::error::WireError;
use crate::proto::{ClientFrame, ServerFrame, PROTOCOL_VERSION};

/// What the server's `hello_ack` negotiated for this connection.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Handshake {
    /// The protocol version both sides speak.
    pub version: u32,
    /// The tenant the connection resolved to on the server (`"default"`
    /// when no or an unknown tenant was named).
    pub tenant: String,
    /// The server's maximum frame payload size.
    pub max_frame: u64,
}

/// A blocking client connection to a [`WireServer`](crate::WireServer).
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    handshake: Handshake,
    max_frame: usize,
    next_id: u64,
}

impl WireClient {
    /// Connects, sends the hello (with the optional tenant name) and waits
    /// for the server's ack.
    ///
    /// # Errors
    ///
    /// [`WireError::VersionMismatch`] if the server speaks another
    /// protocol version; [`WireError::Remote`] if the server answered the
    /// hello with a typed error frame; [`WireError::Protocol`] on any
    /// other non-ack reply.
    pub fn connect(addr: impl ToSocketAddrs, tenant: Option<&str>) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        let mut client = WireClient {
            stream,
            handshake: Handshake {
                version: PROTOCOL_VERSION,
                tenant: String::new(),
                max_frame: DEFAULT_MAX_FRAME as u64,
            },
            max_frame: DEFAULT_MAX_FRAME,
            next_id: 0,
        };
        let hello = ClientFrame::Hello {
            version: PROTOCOL_VERSION,
            tenant: tenant.map(str::to_string),
        };
        client.send_frame(&hello)?;
        match client.recv()? {
            ServerFrame::HelloAck {
                version,
                tenant,
                max_frame,
            } => {
                if version != PROTOCOL_VERSION {
                    return Err(WireError::VersionMismatch {
                        client: PROTOCOL_VERSION,
                        server: version,
                    });
                }
                client.handshake = Handshake {
                    version,
                    tenant,
                    max_frame,
                };
                // Honour the server's (possibly tighter) frame bound for
                // everything we send from here on.
                client.max_frame = client.max_frame.min(max_frame as usize);
                Ok(client)
            }
            other => Err(WireError::Protocol(format!(
                "expected hello_ack, got {other:?}"
            ))),
        }
    }

    /// What the handshake negotiated.
    pub fn handshake(&self) -> &Handshake {
        &self.handshake
    }

    /// The local socket address of this connection.
    pub fn local_addr(&self) -> Result<SocketAddr, WireError> {
        Ok(self.stream.local_addr()?)
    }

    /// Sends one request frame without waiting for its response
    /// (pipelined). Returns the id assigned to the request.
    pub fn send_request(
        &mut self,
        target: &SparseState,
        deadline_ms: Option<u64>,
        priority: Option<u8>,
    ) -> Result<u64, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send_frame(&ClientFrame::Request {
            id,
            target: target.clone(),
            deadline_ms,
            priority,
        })?;
        Ok(id)
    }

    /// Reads the next server frame, blocking until one arrives.
    ///
    /// A received connection-level error frame is surfaced as
    /// [`WireError::Remote`]; a closed connection as
    /// [`WireError::Truncated`].
    pub fn recv(&mut self) -> Result<ServerFrame, WireError> {
        match codec::read_frame(&mut self.stream, self.max_frame)? {
            Some(payload) => match ServerFrame::parse(&payload)? {
                ServerFrame::Error {
                    code,
                    message,
                    byte_offset,
                } => Err(WireError::Remote {
                    code,
                    message,
                    byte_offset,
                }),
                frame => Ok(frame),
            },
            None => Err(WireError::Truncated),
        }
    }

    /// Sends one request and blocks for its response frame. Intended for
    /// unpipelined callers — it assumes no other requests are in flight
    /// (any stray frame for another id is a protocol error).
    pub fn call(
        &mut self,
        target: &SparseState,
        deadline_ms: Option<u64>,
        priority: Option<u8>,
    ) -> Result<ServerFrame, WireError> {
        let id = self.send_request(target, deadline_ms, priority)?;
        let frame = self.recv()?;
        if frame.request_id() != Some(id) {
            return Err(WireError::Protocol(format!(
                "response correlates to id {:?}, expected {id}",
                frame.request_id()
            )));
        }
        Ok(frame)
    }

    /// Writes a raw frame payload, bypassing the typed frame model. Test
    /// and tooling hook — lets callers send deliberately malformed
    /// payloads to exercise the server's error surface.
    pub fn send_raw(&mut self, payload: &str) -> Result<(), WireError> {
        codec::write_frame(&mut self.stream, payload, self.max_frame)
    }

    fn send_frame(&mut self, frame: &ClientFrame) -> Result<(), WireError> {
        codec::write_frame(&mut self.stream, &frame.to_payload(), self.max_frame)
    }
}
