//! The sharded metrics registry: named counters, gauges and histograms.
//!
//! The registry is the one place every layer (keying pipeline, cache, batch
//! engine, serve scheduler, A* core) reports into. Registration is the cold
//! path: the metric name (plus its sorted label set) hashes to one of a
//! fixed set of mutex shards, and the shard lock is only taken while a
//! handle is looked up or created. The returned handle ([`Counter`],
//! [`Gauge`] or a shared [`Histogram`]) is a cheap `Arc`
//! around the underlying atomic — callers keep it and update it lock-free,
//! so the steady-state cost of a metric update is one relaxed atomic op.
//!
//! Naming convention: `layer.signal` (`batch.solver_runs`,
//! `serve.queue_depth`, `cache.probe_us`), with labels for low-cardinality
//! dimensions such as the register width (`width="4"`).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::json::Value;

/// A monotonically increasing counter handle (relaxed atomic increments).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a signed instantaneous value (queue depth, in-flight
/// classes) updated with relaxed atomics.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Subtracts `delta`.
    pub fn sub(&self, delta: i64) {
        self.0.fetch_sub(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A metric's identity: its name plus its sorted label set.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

#[derive(Debug, Clone)]
enum MetricHandle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
}

impl MetricHandle {
    fn kind(&self) -> &'static str {
        match self {
            MetricHandle::Counter(_) => "counter",
            MetricHandle::Gauge(_) => "gauge",
            MetricHandle::Histogram(_) => "histogram",
        }
    }
}

const REGISTRY_SHARDS: usize = 16;

/// The sharded metrics registry. See the [module docs](self).
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: [Mutex<HashMap<MetricKey, MetricHandle>>; REGISTRY_SHARDS],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn shard_of(&self, key: &MetricKey) -> &Mutex<HashMap<MetricKey, MetricHandle>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % REGISTRY_SHARDS]
    }

    fn get_or_register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        create: impl FnOnce() -> MetricHandle,
    ) -> MetricHandle {
        let key = MetricKey::new(name, labels);
        let mut shard = self.shard_of(&key).lock().expect("registry shard poisoned");
        let handle = shard.entry(key).or_insert_with(create);
        handle.clone()
    }

    /// The counter registered under `name` + `labels`, creating it on first
    /// use. Label order does not matter.
    ///
    /// # Panics
    ///
    /// If the same name + labels was already registered as a different
    /// metric kind (a programming error in the instrumentation).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_register(name, labels, || MetricHandle::Counter(Counter::default())) {
            MetricHandle::Counter(c) => c,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// The gauge registered under `name` + `labels`, creating it on first
    /// use.
    ///
    /// # Panics
    ///
    /// If the same name + labels was already registered as a different
    /// metric kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_register(name, labels, || MetricHandle::Gauge(Gauge::default())) {
            MetricHandle::Gauge(g) => g,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// The histogram registered under `name` + `labels`, creating it on
    /// first use.
    ///
    /// # Panics
    ///
    /// If the same name + labels was already registered as a different
    /// metric kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.get_or_register(name, labels, || {
            MetricHandle::Histogram(Arc::new(Histogram::new()))
        }) {
            MetricHandle::Histogram(h) => h,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// A point-in-time copy of every registered metric, sorted by
    /// `(name, labels)` so dumps are deterministic.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut samples = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("registry shard poisoned");
            for (key, handle) in shard.iter() {
                samples.push(MetricSample {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    value: match handle {
                        MetricHandle::Counter(c) => MetricValue::Counter(c.get()),
                        MetricHandle::Gauge(g) => MetricValue::Gauge(g.get()),
                        MetricHandle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                });
            }
        }
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        MetricsSnapshot { samples }
    }
}

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's running total.
    Counter(u64),
    /// A gauge's instantaneous value.
    Gauge(i64),
    /// A histogram's bucket counts.
    Histogram(HistogramSnapshot),
}

/// One named metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// The metric name (`layer.signal`).
    pub name: String,
    /// The sorted label set.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

impl MetricSample {
    /// The sample as JSON: `{name, labels, type, value}`.
    pub fn to_json(&self) -> Value {
        let labels = Value::Object(
            self.labels
                .iter()
                .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                .collect(),
        );
        let (kind, value) = match &self.value {
            MetricValue::Counter(v) => ("counter", Value::Num(*v)),
            MetricValue::Gauge(v) => (
                "gauge",
                if *v >= 0 {
                    Value::Num(*v as u64)
                } else {
                    Value::Float(*v as f64)
                },
            ),
            MetricValue::Histogram(h) => ("histogram", h.to_json()),
        };
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("labels".to_string(), labels),
            ("type".to_string(), Value::Str(kind.to_string())),
            ("value".to_string(), value),
        ])
    }
}

/// A deterministic (name-sorted) copy of the whole registry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Every registered metric, sorted by `(name, labels)`.
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// The first sample with this name (any labels), if registered.
    pub fn get(&self, name: &str) -> Option<&MetricSample> {
        self.samples.iter().find(|s| s.name == name)
    }

    /// The snapshot as a JSON array of samples.
    pub fn to_json(&self) -> Value {
        Value::Array(self.samples.iter().map(MetricSample::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn handles_are_shared_per_identity() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("batch.solver_runs", &[]);
        let b = registry.counter("batch.solver_runs", &[]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Label order does not fork the identity...
        let w1 = registry.counter("key.width", &[("width", "4"), ("kind", "sparse")]);
        let w2 = registry.counter("key.width", &[("kind", "sparse"), ("width", "4")]);
        w1.inc();
        assert_eq!(w2.get(), 1);
        // ...but a different label value does.
        let w3 = registry.counter("key.width", &[("width", "5"), ("kind", "sparse")]);
        assert_eq!(w3.get(), 0);
    }

    #[test]
    fn gauges_go_up_and_down() {
        let registry = MetricsRegistry::new();
        let depth = registry.gauge("serve.queue_depth", &[]);
        depth.add(5);
        depth.sub(2);
        assert_eq!(depth.get(), 3);
        depth.set(-1);
        assert_eq!(depth.get(), -1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_is_a_loud_error() {
        let registry = MetricsRegistry::new();
        registry.counter("serve.queue_depth", &[]);
        registry.gauge("serve.queue_depth", &[]);
    }

    #[test]
    fn snapshot_is_sorted_and_serializable() {
        let registry = MetricsRegistry::new();
        registry.counter("z.last", &[]).inc();
        registry.gauge("a.first", &[]).set(7);
        registry
            .histogram("m.middle", &[("width", "3")])
            .record(Duration::from_micros(10));
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.samples.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a.first", "m.middle", "z.last"]);
        assert_eq!(
            snapshot.get("z.last").unwrap().value,
            MetricValue::Counter(1)
        );
        let parsed = crate::json::parse(&snapshot.to_json().to_json()).unwrap();
        let samples = parsed.as_array().unwrap();
        assert_eq!(samples.len(), 3);
        assert_eq!(
            samples[1]
                .get("labels")
                .unwrap()
                .get("width")
                .unwrap()
                .as_str(),
            Some("3")
        );
    }

    #[test]
    fn concurrent_registration_converges_on_one_atom() {
        let registry = Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    for _ in 0..100 {
                        registry.counter("hot.path", &[]).inc();
                    }
                });
            }
        });
        assert_eq!(registry.counter("hot.path", &[]).get(), 800);
    }
}
