//! The workspace-shared power-of-two-bucket latency histogram.
//!
//! One implementation serves every layer: the serve scheduler's queue-wait /
//! service-time / end-to-end histograms, the registry's named histograms
//! ([`crate::MetricsRegistry::histogram`]) and the batch engine's per-width
//! keying-time and cache probe/evict latency signals. Buckets are powers of
//! two in microseconds — coarse, but recording is a single relaxed atomic
//! increment, cheap enough for every completion hot path, and plenty for
//! p50/p95/p99 reporting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::json::Value;

/// Number of histogram buckets: bucket `i < 25` counts latencies below
/// `2^i` microseconds (the bounded range tops out at `2^24` µs ≈ 16.8 s);
/// the last bucket is the unbounded overflow.
pub const HISTOGRAM_BUCKETS: usize = 26;

/// A fixed-bucket, lock-free latency histogram. See the [module
/// docs](self).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one observation (a single relaxed atomic increment).
    pub fn record(&self, latency: Duration) {
        self.buckets[bucket_of(latency)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// The bucket index of a latency: the bit length of its microsecond count
/// (0 µs → bucket 0), clamped to the overflow bucket.
pub(crate) fn bucket_of(latency: Duration) -> usize {
    let micros = latency.as_micros();
    let bits = (u128::BITS - micros.leading_zeros()) as usize;
    bits.min(HISTOGRAM_BUCKETS - 1)
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; bucket `i` covers latencies below
    /// [`HistogramSnapshot::bucket_upper_bound`]`(i)`.
    pub counts: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// The exclusive upper bound of bucket `i`. The last bucket is
    /// unbounded; the value returned for it (`2^25` µs ≈ 33.5 s) is the
    /// clamp [`HistogramSnapshot::percentile`] reports overflow
    /// observations at.
    pub fn bucket_upper_bound(i: usize) -> Duration {
        Duration::from_micros(1u64 << i.min(HISTOGRAM_BUCKETS - 1))
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// An upper bound on the `p`-quantile latency, with `p` in `[0, 1]`:
    /// the upper bound of the bucket the quantile's rank falls in.
    ///
    /// Every input has a defined value — no bucket-boundary surprises:
    ///
    /// * an **empty** histogram returns [`Duration::ZERO`] for every `p`;
    /// * `p ≤ 0` (and `NaN`) return the upper bound of the smallest
    ///   non-empty bucket;
    /// * `p ≥ 1` (including out-of-range values like a percent-style `95`)
    ///   returns the upper bound of the largest non-empty bucket — the
    ///   domain is clamped, never extrapolated;
    /// * a **single-bucket** histogram returns that bucket's upper bound
    ///   for every `p`;
    /// * quantiles landing in the unbounded overflow bucket are *clamped*
    ///   to its nominal bound (≈ 33.5 s).
    pub fn percentile(&self, p: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        Self::bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// The histogram as JSON: bucket counts plus p50/p95/p99 milliseconds.
    pub fn to_json(&self) -> Value {
        let quantile_ms = |p: f64| Value::Float(self.percentile(p).as_secs_f64() * 1e3);
        Value::Object(vec![
            ("count".to_string(), Value::Num(self.count())),
            ("p50_ms".to_string(), quantile_ms(0.50)),
            ("p95_ms".to_string(), quantile_ms(0.95)),
            ("p99_ms".to_string(), quantile_ms(0.99)),
            (
                "bucket_counts".to_string(),
                Value::Array(self.counts.iter().map(|&c| Value::Num(c)).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_latency_range() {
        assert_eq!(bucket_of(Duration::ZERO), 0);
        assert_eq!(bucket_of(Duration::from_micros(1)), 1);
        assert_eq!(bucket_of(Duration::from_micros(2)), 2);
        assert_eq!(bucket_of(Duration::from_micros(3)), 2);
        assert_eq!(bucket_of(Duration::from_micros(1023)), 10);
        // Far beyond the range clamps into the overflow bucket.
        assert_eq!(bucket_of(Duration::from_secs(3600)), HISTOGRAM_BUCKETS - 1);
        // Every bucket's upper bound is inside the next bucket.
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_of(HistogramSnapshot::bucket_upper_bound(i)), i + 1);
        }
    }

    #[test]
    fn percentiles_walk_the_buckets() {
        let histogram = Histogram::new();
        // 90 fast observations (~4 µs) and 10 slow (~1 ms).
        for _ in 0..90 {
            histogram.record(Duration::from_micros(3));
        }
        for _ in 0..10 {
            histogram.record(Duration::from_micros(900));
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count(), 100);
        assert_eq!(snapshot.percentile(0.5), Duration::from_micros(4));
        assert_eq!(snapshot.percentile(0.9), Duration::from_micros(4));
        assert_eq!(snapshot.percentile(0.95), Duration::from_micros(1024));
        assert_eq!(snapshot.percentile(0.99), Duration::from_micros(1024));
        assert!(snapshot.percentile(1.0) >= snapshot.percentile(0.5));
    }

    #[test]
    fn percentile_is_total_on_its_domain() {
        // Empty: every p, including garbage, is zero.
        let empty = Histogram::new().snapshot();
        for p in [-1.0, 0.0, 0.5, 1.0, 95.0, f64::NAN] {
            assert_eq!(empty.percentile(p), Duration::ZERO);
        }

        let histogram = Histogram::new();
        for _ in 0..9 {
            histogram.record(Duration::from_micros(3)); // bucket 2, bound 4 µs
        }
        histogram.record(Duration::from_micros(900)); // bucket 10, bound 1024 µs
        let snapshot = histogram.snapshot();
        let low = Duration::from_micros(4);
        let high = Duration::from_micros(1024);
        // p ≤ 0 and NaN: the smallest non-empty bucket.
        assert_eq!(snapshot.percentile(0.0), low);
        assert_eq!(snapshot.percentile(-3.0), low);
        assert_eq!(snapshot.percentile(f64::NAN), low);
        // p ≥ 1 (including percent-style inputs): the largest non-empty
        // bucket, clamped, never past it.
        assert_eq!(snapshot.percentile(1.0), high);
        assert_eq!(snapshot.percentile(95.0), high);
        assert_eq!(snapshot.percentile(f64::INFINITY), high);
    }

    #[test]
    fn single_bucket_histogram_is_flat() {
        let histogram = Histogram::new();
        for _ in 0..7 {
            histogram.record(Duration::from_micros(100)); // bucket 7, bound 128 µs
        }
        let snapshot = histogram.snapshot();
        let bound = Duration::from_micros(128);
        for p in [-1.0, 0.0, 0.25, 0.5, 0.99, 1.0, 100.0, f64::NAN] {
            assert_eq!(snapshot.percentile(p), bound);
        }
    }

    #[test]
    fn overflow_observations_clamp_to_the_nominal_bound() {
        let histogram = Histogram::new();
        histogram.record(Duration::from_secs(3600));
        let snapshot = histogram.snapshot();
        assert_eq!(
            snapshot.percentile(1.0),
            HistogramSnapshot::bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
        );
    }

    #[test]
    fn snapshot_serializes_to_parseable_json() {
        let histogram = Histogram::new();
        histogram.record(Duration::from_micros(10));
        let text = histogram.snapshot().to_json().to_json();
        let parsed = crate::json::parse(&text).unwrap();
        assert_eq!(parsed.get("count").unwrap().as_u64(), Some(1));
        assert!(parsed.get("p95_ms").unwrap().as_f64().unwrap() > 0.0);
    }
}
