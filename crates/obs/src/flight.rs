//! The solver flight recorder: opt-in A* progress probes per solve.
//!
//! A [`SearchProbe`] is handed into the A* core (and shared by every racer
//! of a portfolio solve); the search reports nodes expanded/pushed, the
//! frontier high-water mark, incumbent-bound updates and — when it stops
//! early — the cancellation cause. When the solve returns, the engine folds
//! the probe plus the outcome into a [`SolveFlight`] and files it with the
//! [`FlightRecorder`], a bounded most-recent-solves log that makes slow
//! classes diagnosable post-hoc ("the p95 burst request raced 6 variants,
//! hit the incumbent bound twice and expanded 48k nodes").
//!
//! The probe is opt-in: the search takes `Option<&SearchProbe>` and the
//! per-node accounting is only paid when a probe is attached.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::json::Value;

/// Why a search stopped before exhausting its frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancellationCause {
    /// A portfolio sibling found an optimum first and cancelled the race.
    IncumbentRace,
    /// The node budget ran out.
    BudgetExhausted,
}

impl CancellationCause {
    /// The stable snake_case name used in JSON dumps.
    pub fn name(self) -> &'static str {
        match self {
            CancellationCause::IncumbentRace => "incumbent_race",
            CancellationCause::BudgetExhausted => "budget_exhausted",
        }
    }

    fn as_u64(self) -> u64 {
        match self {
            CancellationCause::IncumbentRace => 1,
            CancellationCause::BudgetExhausted => 2,
        }
    }

    fn from_u64(raw: u64) -> Option<CancellationCause> {
        match raw {
            1 => Some(CancellationCause::IncumbentRace),
            2 => Some(CancellationCause::BudgetExhausted),
            _ => None,
        }
    }
}

/// Shared progress counters for one solve (all racers of a portfolio solve
/// update the same probe; every update is a relaxed atomic op).
#[derive(Debug, Default)]
pub struct SearchProbe {
    nodes_expanded: AtomicU64,
    nodes_pushed: AtomicU64,
    frontier_high_water: AtomicU64,
    incumbent_updates: AtomicU64,
    cancellation: AtomicU64,
}

impl SearchProbe {
    /// A zeroed probe.
    pub fn new() -> Self {
        SearchProbe::default()
    }

    /// Adds expanded (popped) nodes.
    pub fn add_expanded(&self, n: u64) {
        self.nodes_expanded.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds pushed (generated) nodes.
    pub fn add_pushed(&self, n: u64) {
        self.nodes_pushed.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the frontier high-water mark to at least `depth`.
    pub fn update_frontier(&self, depth: u64) {
        self.frontier_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// Counts one incumbent-bound improvement (a portfolio racer finding a
    /// better solution).
    pub fn note_incumbent_update(&self) {
        self.incumbent_updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Records why the search stopped early (first cause wins).
    pub fn note_cancellation(&self, cause: CancellationCause) {
        let _ = self.cancellation.compare_exchange(
            0,
            cause.as_u64(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Nodes expanded so far.
    pub fn nodes_expanded(&self) -> u64 {
        self.nodes_expanded.load(Ordering::Relaxed)
    }

    /// Nodes pushed so far.
    pub fn nodes_pushed(&self) -> u64 {
        self.nodes_pushed.load(Ordering::Relaxed)
    }

    /// The deepest the frontier has been.
    pub fn frontier_high_water(&self) -> u64 {
        self.frontier_high_water.load(Ordering::Relaxed)
    }

    /// Incumbent-bound improvements observed.
    pub fn incumbent_updates(&self) -> u64 {
        self.incumbent_updates.load(Ordering::Relaxed)
    }

    /// Why the search stopped early, if it did.
    pub fn cancellation(&self) -> Option<CancellationCause> {
        CancellationCause::from_u64(self.cancellation.load(Ordering::Relaxed))
    }
}

/// One solve's flight record: the probe's final counters plus the outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveFlight {
    /// A human-readable class label (width + canonical signature).
    pub label: String,
    /// Wall-clock duration of the solve.
    pub duration: Duration,
    /// The CNOT cost of the winning circuit, if the solve succeeded.
    pub cnot_cost: Option<usize>,
    /// Nodes expanded across all racers.
    pub nodes_expanded: u64,
    /// Nodes pushed across all racers.
    pub nodes_pushed: u64,
    /// The deepest any racer's frontier got.
    pub frontier_high_water: u64,
    /// Incumbent-bound improvements during the race.
    pub incumbent_updates: u64,
    /// Canonical variants raced (1 = sequential).
    pub variants: usize,
    /// Why the search stopped early, if it did.
    pub cancellation: Option<CancellationCause>,
}

impl SolveFlight {
    /// Folds a finished probe plus the solve outcome into a record.
    pub fn from_probe(
        label: String,
        probe: &SearchProbe,
        duration: Duration,
        cnot_cost: Option<usize>,
        variants: usize,
    ) -> Self {
        SolveFlight {
            label,
            duration,
            cnot_cost,
            nodes_expanded: probe.nodes_expanded(),
            nodes_pushed: probe.nodes_pushed(),
            frontier_high_water: probe.frontier_high_water(),
            incumbent_updates: probe.incumbent_updates(),
            variants,
            cancellation: probe.cancellation(),
        }
    }

    /// The record as JSON.
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("label".to_string(), Value::Str(self.label.clone())),
            (
                "duration_us".to_string(),
                Value::Num(self.duration.as_micros() as u64),
            ),
            (
                "cnot_cost".to_string(),
                match self.cnot_cost {
                    Some(cost) => Value::Num(cost as u64),
                    None => Value::Null,
                },
            ),
            (
                "nodes_expanded".to_string(),
                Value::Num(self.nodes_expanded),
            ),
            ("nodes_pushed".to_string(), Value::Num(self.nodes_pushed)),
            (
                "frontier_high_water".to_string(),
                Value::Num(self.frontier_high_water),
            ),
            (
                "incumbent_updates".to_string(),
                Value::Num(self.incumbent_updates),
            ),
            ("variants".to_string(), Value::Num(self.variants as u64)),
            (
                "cancellation".to_string(),
                match self.cancellation {
                    Some(cause) => Value::Str(cause.name().to_string()),
                    None => Value::Null,
                },
            ),
        ])
    }
}

/// A bounded most-recent-solves log. Disabled by default; when enabled,
/// every fresh solve files one [`SolveFlight`], and the oldest record is
/// dropped once `capacity` is reached.
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: AtomicBool,
    capacity: usize,
    records: Mutex<VecDeque<SolveFlight>>,
}

impl FlightRecorder {
    /// A recorder holding up to `capacity` records.
    pub fn new(enabled: bool, capacity: usize) -> Self {
        FlightRecorder {
            enabled: AtomicBool::new(enabled),
            capacity: capacity.max(1),
            records: Mutex::new(VecDeque::new()),
        }
    }

    /// Whether solves should carry a probe and file records (one relaxed
    /// load).
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flips recording at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The record capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Files one record, dropping the oldest when full. (Callers gate on
    /// [`FlightRecorder::enabled`] before paying for probe accounting; the
    /// recorder does not re-check.)
    pub fn record(&self, flight: SolveFlight) {
        let mut records = self.records.lock().expect("flight recorder poisoned");
        if records.len() == self.capacity {
            records.pop_front();
        }
        records.push_back(flight);
    }

    /// Records currently held, oldest first.
    pub fn snapshot(&self) -> Vec<SolveFlight> {
        self.records
            .lock()
            .expect("flight recorder poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// The `k` slowest recorded solves, slowest first.
    pub fn top_slowest(&self, k: usize) -> Vec<SolveFlight> {
        let mut records = self.snapshot();
        records.sort_by_key(|record| std::cmp::Reverse(record.duration));
        records.truncate(k);
        records
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.lock().expect("flight recorder poisoned").len()
    }

    /// Whether no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flight(label: &str, millis: u64) -> SolveFlight {
        SolveFlight {
            label: label.to_string(),
            duration: Duration::from_millis(millis),
            cnot_cost: Some(3),
            nodes_expanded: 10,
            nodes_pushed: 20,
            frontier_high_water: 5,
            incumbent_updates: 1,
            variants: 2,
            cancellation: None,
        }
    }

    #[test]
    fn probe_accumulates_and_first_cancellation_wins() {
        let probe = SearchProbe::new();
        probe.add_expanded(10);
        probe.add_expanded(5);
        probe.add_pushed(40);
        probe.update_frontier(7);
        probe.update_frontier(3);
        probe.note_incumbent_update();
        assert_eq!(probe.nodes_expanded(), 15);
        assert_eq!(probe.nodes_pushed(), 40);
        assert_eq!(probe.frontier_high_water(), 7);
        assert_eq!(probe.incumbent_updates(), 1);
        assert_eq!(probe.cancellation(), None);
        probe.note_cancellation(CancellationCause::IncumbentRace);
        probe.note_cancellation(CancellationCause::BudgetExhausted);
        assert_eq!(probe.cancellation(), Some(CancellationCause::IncumbentRace));
        let record = SolveFlight::from_probe(
            "n4/sig1".to_string(),
            &probe,
            Duration::from_millis(2),
            Some(4),
            3,
        );
        assert_eq!(record.nodes_expanded, 15);
        assert_eq!(record.variants, 3);
        assert_eq!(record.cancellation, Some(CancellationCause::IncumbentRace));
    }

    #[test]
    fn recorder_bounds_and_ranks() {
        let recorder = FlightRecorder::new(true, 3);
        assert!(recorder.is_empty());
        for (label, ms) in [("a", 5), ("b", 50), ("c", 1), ("d", 20)] {
            recorder.record(flight(label, ms));
        }
        assert_eq!(recorder.len(), 3); // "a" (oldest) was dropped
        let labels: Vec<String> = recorder.snapshot().into_iter().map(|f| f.label).collect();
        assert_eq!(labels, ["b", "c", "d"]);
        let slowest: Vec<String> = recorder
            .top_slowest(2)
            .into_iter()
            .map(|f| f.label)
            .collect();
        assert_eq!(slowest, ["b", "d"]);
    }

    #[test]
    fn flight_serializes_to_parseable_json() {
        let mut record = flight("n5/sig42", 7);
        record.cancellation = Some(CancellationCause::BudgetExhausted);
        let parsed = crate::json::parse(&record.to_json().to_json()).unwrap();
        assert_eq!(parsed.get("label").unwrap().as_str(), Some("n5/sig42"));
        assert_eq!(parsed.get("cnot_cost").unwrap().as_u64(), Some(3));
        assert_eq!(
            parsed.get("cancellation").unwrap().as_str(),
            Some("budget_exhausted")
        );
        let mut no_cost = flight("x", 1);
        no_cost.cnot_cost = None;
        no_cost.cancellation = None;
        let parsed = crate::json::parse(&no_cost.to_json().to_json()).unwrap();
        assert!(matches!(parsed.get("cnot_cost"), Some(Value::Null)));
    }
}
