//! # qsp-obs
//!
//! Workspace-wide observability for the QSP synthesis stack, hand-rolled in
//! repo style (the offline build has no `tracing`/`prometheus`/serde):
//!
//! * [`metrics`] — the **sharded metrics registry**: named atomic counters,
//!   gauges and power-of-two-bucket histograms with labels. `BatchStats` and
//!   `ServiceStats` upstream become typed views over it, and new signals
//!   (cache probe/evict latency, per-width keying-time histograms, queue
//!   depth, orbit-budget exhaustion) report into the same place.
//! * [`trace`] — **per-request tracing**: every synthesis request gets a
//!   [`TraceId`]; each pipeline stage (queue wait → validate → key → cache
//!   probe → solve → reconstruct) records a span; the assembled
//!   [`RequestTrace`] rides on the request's `SynthesisReport`, and a
//!   head-sampled subset is copied into a fixed-capacity lock-free
//!   [`TraceRing`].
//! * [`flight`] — the **solver flight recorder**: opt-in A* progress probes
//!   (nodes expanded, frontier high-water, incumbent-bound updates,
//!   cancellation cause) folded into per-solve [`SolveFlight`] records.
//! * [`hist`] — the one shared power-of-two latency [`Histogram`] used by
//!   the registry and the serve layer alike.
//! * [`json`] — the workspace-shared hand-rolled JSON reader/writer (moved
//!   here from `qsp-core`, which re-exports it) that every snapshot and
//!   bench report dumps through.
//!
//! The [`ObsHub`] bundles one registry + tracer + flight recorder per
//! engine; [`ObsHub::snapshot`] freezes all three into an [`ObsSnapshot`]
//! with a single [`ObsSnapshot::to_json`].
//!
//! Cost discipline: with tracing and the flight recorder disabled (the
//! default), the per-request overhead is a handful of relaxed atomic ops —
//! counter bumps and one enabled-flag load.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flight;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod trace;

pub use flight::{CancellationCause, FlightRecorder, SearchProbe, SolveFlight};
pub use hist::{Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use metrics::{Counter, Gauge, MetricSample, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use trace::{RecordedSpan, RequestTrace, SpanKind, SpanTiming, TraceId, TraceRing, Tracer};

use json::Value;

/// Observability knobs, carried by the batch engine's options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ObsOptions {
    /// Record sampled request traces into the ring (default `false`; the
    /// per-report [`RequestTrace`] is always assembled).
    pub tracing: bool,
    /// Record every `sample_every`-th trace id (default 1 = all; 0 = none).
    pub sample_every: u64,
    /// Span capacity of the trace ring (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Attach an A* probe to every fresh solve and file a
    /// [`SolveFlight`] per solve (default `false`).
    pub flight: bool,
    /// Record capacity of the flight recorder.
    pub flight_capacity: usize,
    /// Time cache probes/evictions into registry histograms (default
    /// `false`; adds two `Instant` reads per cache access).
    pub timing_detail: bool,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            tracing: false,
            sample_every: 1,
            ring_capacity: 1024,
            flight: false,
            flight_capacity: 256,
            timing_detail: false,
        }
    }
}

impl ObsOptions {
    /// Enables or disables ring tracing.
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Sets the head-sampling modulus (1 = every trace, 0 = none).
    pub fn with_sample_every(mut self, every: u64) -> Self {
        self.sample_every = every;
        self
    }

    /// Sets the trace-ring span capacity.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Enables or disables the solver flight recorder.
    pub fn with_flight(mut self, on: bool) -> Self {
        self.flight = on;
        self
    }

    /// Sets the flight recorder's record capacity.
    pub fn with_flight_capacity(mut self, capacity: usize) -> Self {
        self.flight_capacity = capacity;
        self
    }

    /// Enables or disables cache probe/evict latency timing.
    pub fn with_timing_detail(mut self, on: bool) -> Self {
        self.timing_detail = on;
        self
    }
}

/// One engine's observability bundle: metrics registry, tracer and flight
/// recorder, built from [`ObsOptions`] and shared (by `Arc`) across every
/// clone, worker and layer of that engine.
#[derive(Debug)]
pub struct ObsHub {
    options: ObsOptions,
    metrics: MetricsRegistry,
    tracer: Tracer,
    flight: FlightRecorder,
}

impl Default for ObsHub {
    fn default() -> Self {
        ObsHub::new(ObsOptions::default())
    }
}

impl ObsHub {
    /// Builds the bundle from its knobs.
    pub fn new(options: ObsOptions) -> Self {
        ObsHub {
            options,
            metrics: MetricsRegistry::new(),
            tracer: Tracer::new(options.tracing, options.sample_every, options.ring_capacity),
            flight: FlightRecorder::new(options.flight, options.flight_capacity),
        }
    }

    /// The knobs the hub was built from.
    pub fn options(&self) -> ObsOptions {
        self.options
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The request tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The solver flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Freezes every surface into one dump.
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            metrics: self.metrics.snapshot(),
            tracer_enabled: self.tracer.enabled(),
            sample_every: self.tracer.sample_every(),
            ring_capacity: self.tracer.ring().capacity(),
            spans_recorded: self.tracer.ring().recorded(),
            spans_dropped: self.tracer.ring().dropped(),
            spans: self.tracer.ring().read(),
            flight_enabled: self.flight.enabled(),
            flights: self.flight.snapshot(),
        }
    }
}

/// A point-in-time dump of an [`ObsHub`]: every registered metric, the
/// trace ring's contents and stats, and the flight recorder's records.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSnapshot {
    /// Every registered metric, name-sorted.
    pub metrics: MetricsSnapshot,
    /// Whether ring tracing was on at snapshot time.
    pub tracer_enabled: bool,
    /// The head-sampling modulus.
    pub sample_every: u64,
    /// The ring's span capacity.
    pub ring_capacity: usize,
    /// Spans ever written to the ring.
    pub spans_recorded: u64,
    /// Spans dropped by full-lap races.
    pub spans_dropped: u64,
    /// The ring's surviving spans, oldest first.
    pub spans: Vec<RecordedSpan>,
    /// Whether the flight recorder was on at snapshot time.
    pub flight_enabled: bool,
    /// The flight recorder's records, oldest first.
    pub flights: Vec<SolveFlight>,
}

impl ObsSnapshot {
    /// The whole dump as one JSON value:
    /// `{metrics, tracing: {…, spans}, flight: {…, records}}`.
    pub fn to_json(&self) -> Value {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("order".to_string(), Value::Num(s.order)),
                    ("trace_id".to_string(), Value::Num(s.trace.as_u64())),
                    (
                        "kind".to_string(),
                        Value::Str(s.span.kind.name().to_string()),
                    ),
                    (
                        "start_ns".to_string(),
                        Value::Num(s.span.start.as_nanos() as u64),
                    ),
                    (
                        "duration_ns".to_string(),
                        Value::Num(s.span.duration.as_nanos() as u64),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            ("metrics".to_string(), self.metrics.to_json()),
            (
                "tracing".to_string(),
                Value::Object(vec![
                    ("enabled".to_string(), Value::Bool(self.tracer_enabled)),
                    ("sample_every".to_string(), Value::Num(self.sample_every)),
                    (
                        "ring_capacity".to_string(),
                        Value::Num(self.ring_capacity as u64),
                    ),
                    (
                        "spans_recorded".to_string(),
                        Value::Num(self.spans_recorded),
                    ),
                    ("spans_dropped".to_string(), Value::Num(self.spans_dropped)),
                    ("spans".to_string(), Value::Array(spans)),
                ]),
            ),
            (
                "flight".to_string(),
                Value::Object(vec![
                    ("enabled".to_string(), Value::Bool(self.flight_enabled)),
                    (
                        "records".to_string(),
                        Value::Array(self.flights.iter().map(SolveFlight::to_json).collect()),
                    ),
                ]),
            ),
        ])
    }

    /// The dump as a compact JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn hub_defaults_are_quiet() {
        let hub = ObsHub::default();
        assert!(!hub.tracer().enabled());
        assert!(!hub.flight().enabled());
        assert!(!hub.options().timing_detail);
        assert!(!hub.tracer().should_record(TraceId::next()));
    }

    #[test]
    fn snapshot_serializes_every_surface() {
        let options = ObsOptions::default()
            .with_tracing(true)
            .with_sample_every(1)
            .with_ring_capacity(16)
            .with_flight(true)
            .with_flight_capacity(4)
            .with_timing_detail(true);
        let hub = ObsHub::new(options);
        hub.metrics().counter("batch.solver_runs", &[]).add(3);
        hub.metrics()
            .histogram("key.keying_us", &[("width", "4")])
            .record(Duration::from_micros(12));
        let mut trace = RequestTrace::new(TraceId::from_raw(2));
        trace.push(SpanKind::Key, Duration::ZERO, Duration::from_micros(5));
        trace.push(
            SpanKind::Solve,
            Duration::from_micros(5),
            Duration::from_micros(40),
        );
        assert!(hub.tracer().record_trace(&trace));
        let probe = SearchProbe::new();
        probe.add_expanded(7);
        hub.flight().record(SolveFlight::from_probe(
            "n4/sig7".to_string(),
            &probe,
            Duration::from_micros(40),
            Some(4),
            1,
        ));

        let snapshot = hub.snapshot();
        assert_eq!(snapshot.spans.len(), 2);
        assert_eq!(snapshot.flights.len(), 1);
        let parsed = json::parse(&snapshot.to_json_string()).unwrap();
        let metrics = parsed.get("metrics").unwrap().as_array().unwrap();
        assert!(metrics
            .iter()
            .any(|m| m.get("name").unwrap().as_str() == Some("batch.solver_runs")));
        let tracing = parsed.get("tracing").unwrap();
        assert_eq!(tracing.get("enabled").unwrap().as_bool(), Some(true));
        assert_eq!(tracing.get("spans_recorded").unwrap().as_u64(), Some(2));
        assert_eq!(tracing.get("spans").unwrap().as_array().unwrap().len(), 2);
        let flight = parsed.get("flight").unwrap();
        assert_eq!(flight.get("records").unwrap().as_array().unwrap().len(), 1);
    }
}
